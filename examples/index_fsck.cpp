// Structural check ("fsck") walkthrough: build each index design, churn it
// with a concurrent mixed workload, then run the IndexInspector over the
// physical pages and print the invariant report — the tool an operator
// would reach for when a NAM index misbehaves.
//
//   ./build/examples/index_fsck [--keys=200000] [--clients=32]
//   ./build/examples/index_fsck --corrupt   (demonstrates detection)

#include <cstdio>
#include <memory>

#include "common/arg_parser.h"
#include "index/inspector.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

using namespace namtree;

namespace {

ycsb::WorkloadMix ChurnMix() {
  ycsb::WorkloadMix mix;
  mix.point = 0.3;
  mix.range = 0.1;
  mix.insert = 0.35;
  mix.update = 0.1;
  mix.remove = 0.15;
  mix.range_selectivity = 0.01;
  return mix;
}

template <typename Index>
void CheckDesign(const char* label, uint64_t keys, uint32_t clients,
                 bool corrupt) {
  rdma::FabricConfig fabric_config;
  nam::Cluster cluster(fabric_config, 256ull << 20);
  index::IndexConfig index_config;
  Index index(cluster, index_config);
  if (!index.BulkLoad(ycsb::GenerateDataset(keys)).ok()) {
    std::fprintf(stderr, "%s: bulk load failed\n", label);
    return;
  }

  ycsb::RunConfig run;
  run.num_clients = clients;
  run.warmup = 0;
  run.duration = 20 * kMillisecond;
  run.gc_interval = 5 * kMillisecond;
  run.mix = ChurnMix();
  const auto result = ycsb::RunWorkload(cluster, index, keys, run);

  if (corrupt) {
    // Flip a fence in some page of server 0's region to show detection.
    uint8_t* page = cluster.fabric().region(0)->at(
        rdma::MemoryRegion::kHeaderSize + 3 * index_config.page_size);
    btree::PageView view(page, index_config.page_size);
    view.header().high_key = 1;  // almost certainly below its keys
  }

  const auto report = index::IndexInspector::Inspect(cluster.fabric(), index);
  std::printf("%-16s %8s ops churned | %s\n", label,
              FormatCount(static_cast<double>(result.ops())).c_str(),
              report.ok() ? "STRUCTURE OK" : "VIOLATIONS FOUND");
  std::printf("  %s\n\n", report.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 200000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 32));
  const bool corrupt = args.GetBool("corrupt", false);

  std::printf("churn + structural check, %llu keys, %u clients%s\n\n",
              static_cast<unsigned long long>(keys), clients,
              corrupt ? " (with injected corruption)" : "");

  CheckDesign<index::CoarseGrainedIndex>("coarse-grained", keys, clients,
                                         corrupt);
  CheckDesign<index::FineGrainedIndex>("fine-grained", keys, clients,
                                       corrupt);
  CheckDesign<index::HybridIndex>("hybrid", keys, clients, corrupt);
  CheckDesign<index::CoarseOneSidedIndex>("coarse-1-sided", keys, clients,
                                          corrupt);
  return 0;
}
