// Quickstart: bring up a simulated NAM cluster, bulk-load the hybrid
// distributed index, and run point queries, a range scan, inserts and a
// delete from a compute-server client.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "index/hybrid.h"
#include "nam/cluster.h"
#include "sim/task.h"

using namespace namtree;

namespace {

// Client logic runs as a coroutine in simulated time: every co_await is a
// real protocol step (RPCs and one-sided verbs) against the memory servers.
sim::Task<> ClientMain(index::DistributedIndex& index,
                       nam::ClientContext& ctx) {
  // Point lookup.
  index::LookupResult hit = co_await index.Lookup(ctx, 4200);
  std::printf("lookup(4200)  -> %s (value=%llu)\n",
              hit.found ? "found" : "missing",
              static_cast<unsigned long long>(hit.value));

  // Insert a new key, then find it.
  (void)co_await index.Insert(ctx, 4201, 999);
  hit = co_await index.Lookup(ctx, 4201);
  std::printf("insert(4201) + lookup -> %s (value=%llu)\n",
              hit.found ? "found" : "missing",
              static_cast<unsigned long long>(hit.value));

  // Range scan [4000, 4250).
  std::vector<btree::KV> out;
  const uint64_t n = co_await index.Scan(ctx, 4000, 4250, &out);
  std::printf("scan[4000,4250) -> %llu entries, first=(%llu,%llu) "
              "last=(%llu,%llu)\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(out.front().key),
              static_cast<unsigned long long>(out.front().value),
              static_cast<unsigned long long>(out.back().key),
              static_cast<unsigned long long>(out.back().value));

  // Delete (tombstone) and verify.
  (void)co_await index.Delete(ctx, 4200);
  hit = co_await index.Lookup(ctx, 4200);
  std::printf("delete(4200) + lookup -> %s\n",
              hit.found ? "still there?!" : "gone");

  // Epoch GC reclaims the tombstone.
  const uint64_t reclaimed = co_await index.GarbageCollect(ctx);
  std::printf("garbage collect -> reclaimed %llu entries\n",
              static_cast<unsigned long long>(reclaimed));

  std::printf("client issued %llu network round trips in %s of virtual "
              "time\n",
              static_cast<unsigned long long>(ctx.round_trips),
              FormatDuration(ctx.fabric().simulator().now()).c_str());
}

}  // namespace

int main() {
  // A NAM cluster: 4 memory servers (64 MiB registered memory each) behind
  // a simulated FDR-4x fabric. Compute clients are coroutines.
  rdma::FabricConfig fabric_config;  // paper §6.1 defaults
  nam::Cluster cluster(fabric_config, /*region_bytes_per_server=*/64 << 20);

  // Design 3 (hybrid): range-partitioned inner levels accessed by RPC,
  // globally scattered leaf level accessed one-sided.
  index::IndexConfig index_config;  // 1KB pages, head nodes every 16 leaves
  index::HybridIndex index(cluster, index_config);

  // Bulk-load 100K sequential keys: key = 2*i, value = i.
  std::vector<btree::KV> data;
  for (uint64_t i = 0; i < 100000; ++i) data.push_back({i * 2, i});
  Status status = index.BulkLoad(data);
  if (!status.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu keys into '%s' across %u memory servers\n\n",
              data.size(), index.name().c_str(),
              cluster.num_memory_servers());

  nam::ClientContext ctx(/*client_id=*/0, cluster.fabric(),
                         index.page_size());
  sim::Spawn(cluster.simulator(), ClientMain(index, ctx));
  cluster.simulator().Run();
  return 0;
}
