// Capacity planning with the paper's analytical model (§2.3): given a
// cluster and dataset description, print the Table 2 analysis and the
// predicted maximal throughput of every scheme, uniform and skewed.
//
//   ./build/examples/scalability_model --servers=8 --data=1e9 --sel=0.01

#include <cstdio>

#include "common/arg_parser.h"
#include "common/units.h"
#include "model/scalability.h"

using namespace namtree;
using model::Distribution;
using model::Scheme;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  model::ModelParams p;
  p.num_servers = args.GetDouble("servers", 4);
  p.data_size = args.GetDouble("data", 100e6);
  p.page_size = args.GetDouble("page", 1024);
  p.key_size = args.GetDouble("key", 8);
  p.bandwidth = args.GetDouble("bandwidth", 50e9);
  const double sel = args.GetDouble("sel", 0.001);
  const double z = args.GetDouble("z", 10);

  std::printf("cluster: S=%.0f memory servers x %s, P=%.0fB pages, D=%s "
              "tuples, K=%.0fB keys\n",
              p.num_servers, FormatBandwidth(p.bandwidth).c_str(),
              p.page_size, FormatCount(p.data_size).c_str(), p.key_size);
  std::printf("derived: fanout M=%.1f, leaves L=%s, H_FG=%.0f, "
              "H_CG(unif)=%.0f\n\n",
              p.Fanout(), FormatCount(p.Leaves()).c_str(),
              p.HeightFineGrained(), p.HeightCoarseUniform());

  std::printf("predicted maximal throughput (queries/s), sel=%g, z=%g:\n",
              sel, z);
  std::printf("%-24s %14s %14s %14s %14s\n", "scheme", "point unif",
              "point skew", "range unif", "range skew");
  for (Scheme scheme : {Scheme::kFineGrained, Scheme::kCoarseRange,
                        Scheme::kCoarseHash}) {
    std::printf(
        "%-24s %14s %14s %14s %14s\n", model::SchemeName(scheme),
        FormatCount(
            model::MaxThroughputPoint(p, scheme, Distribution::kUniform, z))
            .c_str(),
        FormatCount(
            model::MaxThroughputPoint(p, scheme, Distribution::kSkew, z))
            .c_str(),
        FormatCount(model::MaxThroughputRange(p, scheme,
                                              Distribution::kUniform, sel, z))
            .c_str(),
        FormatCount(model::MaxThroughputRange(p, scheme, Distribution::kSkew,
                                              sel, z))
            .c_str());
  }
  std::printf("\nreading the table: under skew the coarse-grained schemes "
              "are pinned to one server's bandwidth (Table 2 step 1), while "
              "fine-grained keeps farming requests over all %d servers.\n",
              static_cast<int>(p.num_servers));
  return 0;
}
