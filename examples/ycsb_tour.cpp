// Runs the paper's four YCSB workloads (Table 3) against one index design
// and prints a results table: throughput, latency percentiles and network
// utilisation — the same metrics the evaluation section reports.
//
//   ./build/examples/ycsb_tour [--design=coarse|fine|hybrid]
//                              [--keys=500000] [--clients=80] [--skew]

#include <cstdio>
#include <memory>
#include <string>

#include "common/arg_parser.h"
#include "common/units.h"
#include "index/coarse_grained.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

using namespace namtree;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string design = args.GetString("design", "hybrid");
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 80));
  const bool skew = args.GetBool("skew", false);

  rdma::FabricConfig fabric_config;
  nam::Cluster cluster(fabric_config, 512ull << 20);

  index::IndexConfig index_config;
  if (skew) index_config.partition_weights = {0.80, 0.12, 0.05, 0.03};

  std::unique_ptr<index::DistributedIndex> index;
  if (design == "coarse") {
    index = std::make_unique<index::CoarseGrainedIndex>(cluster,
                                                        index_config);
  } else if (design == "fine") {
    index = std::make_unique<index::FineGrainedIndex>(cluster, index_config);
  } else {
    index = std::make_unique<index::HybridIndex>(cluster, index_config);
  }

  const auto data = ycsb::GenerateDataset(keys);
  if (Status s = index->BulkLoad(data); !s.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("design=%s  keys=%llu  clients=%u  placement=%s\n\n",
              index->name().c_str(), static_cast<unsigned long long>(keys),
              clients, skew ? "skewed(80/12/5/3)" : "uniform");
  std::printf("%-22s %12s %10s %10s %10s %12s\n", "workload", "ops/s",
              "mean", "p50", "p99", "net GB/s");

  struct Entry {
    std::string label;
    ycsb::WorkloadMix mix;
  };
  const Entry entries[] = {
      {"A: 100% point", ycsb::WorkloadA()},
      {"B: range sel=0.001", ycsb::WorkloadB(0.001)},
      {"B: range sel=0.01", ycsb::WorkloadB(0.01)},
      {"B: range sel=0.1", ycsb::WorkloadB(0.1)},
      {"C: 95% pt / 5% ins", ycsb::WorkloadC()},
      {"D: 50% pt / 50% ins", ycsb::WorkloadD()},
  };

  for (const Entry& entry : entries) {
    ycsb::RunConfig run;
    run.num_clients = clients;
    run.mix = entry.mix;
    run.duration =
        entry.mix.range > 0 ? 60 * kMillisecond : 20 * kMillisecond;
    run.warmup = run.duration / 10;
    const ycsb::RunResult result =
        ycsb::RunWorkload(cluster, *index, keys, run);
    std::printf("%-22s %12s %10s %10s %10s %12.2f\n", entry.label.c_str(),
                FormatCount(result.ops_per_sec).c_str(),
                FormatDuration(static_cast<SimTime>(result.latency.mean()))
                    .c_str(),
                FormatDuration(
                    static_cast<SimTime>(result.latency.Quantile(0.5)))
                    .c_str(),
                FormatDuration(
                    static_cast<SimTime>(result.latency.Quantile(0.99)))
                    .c_str(),
                result.gb_per_sec);
    if (result.failed_ops() > 0) {
      const auto& f = result.failures();
      std::printf(
          "  failed=%llu (not-found=%llu unavailable=%llu timed-out=%llu "
          "oom=%llu aborted=%llu other=%llu) steals=%llu\n",
          static_cast<unsigned long long>(result.failed_ops()),
          static_cast<unsigned long long>(f.not_found),
          static_cast<unsigned long long>(f.unavailable),
          static_cast<unsigned long long>(f.timed_out),
          static_cast<unsigned long long>(f.out_of_memory),
          static_cast<unsigned long long>(f.aborted),
          static_cast<unsigned long long>(f.other),
          static_cast<unsigned long long>(result.lock_steals()));
    }
  }
  return 0;
}
