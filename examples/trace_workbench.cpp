// Workload trace workbench: generate (or load) a trace, replay it against
// any design, and print the per-operation-type breakdown — the workflow for
// sharing reproducible experiments ("here is the trace that makes design X
// slow on my cluster").
//
//   ./build/examples/trace_workbench --design=hybrid --clients=32
//   ./build/examples/trace_workbench --save=/tmp/t.trace
//   ./build/examples/trace_workbench --load=/tmp/t.trace --design=fine

#include <cstdio>
#include <memory>
#include <string>

#include "common/arg_parser.h"
#include "common/units.h"
#include "index/coarse_grained.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "nam/cluster.h"
#include "ycsb/trace.h"

using namespace namtree;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string design = args.GetString("design", "hybrid");
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 200000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 32));
  const uint32_t ops = static_cast<uint32_t>(args.GetInt("ops", 500));

  // Obtain a trace: load from file or generate a mixed workload.
  ycsb::Trace trace;
  const std::string load_path = args.GetString("load", "");
  if (!load_path.empty()) {
    auto loaded = ycsb::Trace::Load(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load trace: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
    std::printf("loaded %zu ops (%u clients) from %s\n", trace.size(),
                trace.num_clients(), load_path.c_str());
  } else {
    ycsb::WorkloadMix mix;
    mix.point = 0.55;
    mix.range = 0.05;
    mix.insert = 0.25;
    mix.update = 0.10;
    mix.remove = 0.05;
    mix.range_selectivity = 0.01;
    trace = ycsb::Trace::Generate(mix, keys, clients, ops,
                                  static_cast<uint64_t>(args.GetInt("seed", 1)));
    std::printf("generated %zu ops across %u clients\n", trace.size(),
                clients);
  }

  const std::string save_path = args.GetString("save", "");
  if (!save_path.empty()) {
    if (Status s = trace.Save(save_path); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("saved trace to %s\n", save_path.c_str());
  }

  // Replay against the chosen design.
  rdma::FabricConfig fabric_config;
  nam::Cluster cluster(fabric_config, 256ull << 20);
  index::IndexConfig index_config;
  std::unique_ptr<index::DistributedIndex> index;
  if (design == "coarse") {
    index = std::make_unique<index::CoarseGrainedIndex>(cluster,
                                                        index_config);
  } else if (design == "fine") {
    index = std::make_unique<index::FineGrainedIndex>(cluster, index_config);
  } else {
    index = std::make_unique<index::HybridIndex>(cluster, index_config);
  }
  if (Status s = index->BulkLoad(ycsb::GenerateDataset(keys)); !s.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const ycsb::RunResult result = ycsb::ReplayTrace(cluster, *index, trace);
  std::printf("\nreplayed on %-14s: %s ops in %s virtual time "
              "(%s ops/s, %.2f GB/s on the fabric)\n",
              index->name().c_str(),
              FormatCount(static_cast<double>(result.ops())).c_str(),
              FormatDuration(static_cast<SimTime>(result.seconds * kSecond))
                  .c_str(),
              FormatCount(result.ops_per_sec).c_str(), result.gb_per_sec);
  std::printf("%-10s %10s %12s %12s %12s\n", "op", "count", "mean", "p50",
              "p99");
  for (int t = 0; t < ycsb::kNumOpTypes; ++t) {
    const auto& per_type = result.per_type[t];
    if (per_type.count == 0) continue;
    std::printf("%-10s %10llu %12s %12s %12s\n",
                ycsb::OpTypeName(static_cast<ycsb::OpType>(t)),
                static_cast<unsigned long long>(per_type.count),
                FormatDuration(static_cast<SimTime>(per_type.latency.mean()))
                    .c_str(),
                FormatDuration(
                    static_cast<SimTime>(per_type.latency.Quantile(0.5)))
                    .c_str(),
                FormatDuration(
                    static_cast<SimTime>(per_type.latency.Quantile(0.99)))
                    .c_str());
  }
  return 0;
}
