// Design advisor: describe your workload, and the tool measures all three
// index designs of the paper on a simulated NAM cluster and recommends one
// — an executable version of the paper's design-space discussion (§2.2).
//
//   ./build/examples/design_advisor --point=0.6 --range=0.3 --insert=0.1
//        [--sel=0.01] [--skew] [--clients=160] [--keys=500000]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/arg_parser.h"
#include "common/units.h"
#include "index/coarse_grained.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

using namespace namtree;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 160));
  const bool skew = args.GetBool("skew", false);

  ycsb::WorkloadMix mix;
  mix.point = args.GetDouble("point", 0.6);
  mix.range = args.GetDouble("range", 0.3);
  mix.insert = args.GetDouble("insert", 0.1);
  mix.range_selectivity = args.GetDouble("sel", 0.01);
  const double total = mix.point + mix.range + mix.insert;
  if (total <= 0) {
    std::fprintf(stderr, "mix fractions must sum to a positive value\n");
    return 1;
  }
  mix.point /= total;
  mix.range /= total;
  mix.insert /= total;

  std::printf("workload: %.0f%% point, %.0f%% range (sel=%g), %.0f%% "
              "insert; %u clients; %s data placement; %llu keys\n\n",
              mix.point * 100, mix.range * 100, mix.range_selectivity,
              mix.insert * 100, clients, skew ? "skewed" : "uniform",
              static_cast<unsigned long long>(keys));

  struct Candidate {
    const char* name;
    double ops = 0;
    double mean_latency_us = 0;
    double gbps = 0;
  };
  std::vector<Candidate> candidates = {{"coarse-grained"},
                                       {"fine-grained"},
                                       {"hybrid"}};

  const auto data = ycsb::GenerateDataset(keys);
  for (size_t d = 0; d < candidates.size(); ++d) {
    rdma::FabricConfig fabric_config;
    nam::Cluster cluster(fabric_config, 512ull << 20);
    index::IndexConfig index_config;
    if (skew) index_config.partition_weights = {0.80, 0.12, 0.05, 0.03};

    std::unique_ptr<index::DistributedIndex> index;
    switch (d) {
      case 0:
        index = std::make_unique<index::CoarseGrainedIndex>(cluster,
                                                            index_config);
        break;
      case 1:
        index = std::make_unique<index::FineGrainedIndex>(cluster,
                                                          index_config);
        break;
      default:
        index = std::make_unique<index::HybridIndex>(cluster, index_config);
        break;
    }
    if (Status s = index->BulkLoad(data); !s.ok()) {
      std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
      return 1;
    }

    ycsb::RunConfig run;
    run.num_clients = clients;
    run.mix = mix;
    run.duration = mix.range > 0 ? 60 * kMillisecond : 20 * kMillisecond;
    run.warmup = run.duration / 10;
    const ycsb::RunResult result =
        ycsb::RunWorkload(cluster, *index, keys, run);
    candidates[d].ops = result.ops_per_sec;
    candidates[d].mean_latency_us = result.latency.mean() / 1000.0;
    candidates[d].gbps = result.gb_per_sec;
  }

  std::printf("%-16s %12s %14s %12s\n", "design", "ops/s", "mean latency",
              "net GB/s");
  for (const Candidate& c : candidates) {
    std::printf("%-16s %12s %11.1fus %12.2f\n", c.name,
                FormatCount(c.ops).c_str(), c.mean_latency_us, c.gbps);
  }

  const auto best = std::max_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.ops < b.ops; });
  std::printf("\nrecommendation: %s (%.1fx over the runner-up)\n",
              best->name,
              best->ops /
                  std::max(1.0, [&] {
                    double second = 0;
                    for (const Candidate& c : candidates) {
                      if (&c != &*best) second = std::max(second, c.ops);
                    }
                    return second;
                  }()));
  std::printf("paper guidance: hybrid is the most robust overall; "
              "fine-grained wins under heavy skew or large scans; "
              "coarse-grained wins latency at low load (§6).\n");
  return 0;
}
