#ifndef NAMTREE_INDEX_TREE_BUILD_H_
#define NAMTREE_INDEX_TREE_BUILD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/server_tree.h"
#include "rdma/fabric.h"
#include "rdma/remote_ptr.h"

namespace namtree::index {

/// Builds the inner levels of a one-sided B-link tree over an already built
/// leaf level at setup time (direct region writes). Inner nodes are
/// scattered round-robin over all memory servers, or placed entirely on
/// `fixed_server` when >= 0 (coarse-grained one-sided partitions).
Status BuildUpperLevels(rdma::Fabric& fabric,
                        std::vector<ServerTree::ChildRef> level_nodes,
                        uint32_t page_size, uint32_t fill_percent,
                        int32_t fixed_server, rdma::RemotePtr* root,
                        uint8_t* root_level);

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_TREE_BUILD_H_
