#ifndef NAMTREE_INDEX_INDEX_H_
#define NAMTREE_INDEX_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "btree/types.h"
#include "common/status.h"
#include "nam/cluster.h"
#include "sim/task.h"

namespace namtree::index {

/// How the key space is assigned to memory servers in the coarse-grained
/// and hybrid designs (paper §2.2 / Table 2).
enum class PartitionKind {
  kRange,
  kHash,
};

/// Tuning knobs shared by all index designs.
struct IndexConfig {
  /// Index node (page) size in bytes; the paper's default is 1024 (Table 1).
  uint32_t page_size = 1024;

  /// Install a head node after every `head_node_interval` real leaves
  /// (paper §4.3); 0 disables head nodes. Only meaningful for designs with
  /// a fine-grained leaf level (FG, hybrid).
  uint32_t head_node_interval = 16;

  /// Partitioning scheme for the coarse-grained / hybrid upper levels.
  PartitionKind partition = PartitionKind::kRange;

  /// Fraction of the data assigned to each memory server under range
  /// partitioning. Empty = uniform. The paper's attribute-value-skew setup
  /// uses {0.80, 0.12, 0.05, 0.03} (§6.1).
  std::vector<double> partition_weights;

  /// Bulk-load fill factor of leaf pages, percent.
  uint32_t leaf_fill_percent = 90;

  /// Epoch rebalancing (paper §3.2/§4.2: GC "removing and re-balancing the
  /// index in regular intervals"): during GarbageCollect of designs with a
  /// one-sided leaf level, merge adjacent leaves whose combined live
  /// entries fit within this percentage of a page (0 disables).
  uint32_t gc_merge_fill_percent = 70;

  /// Appendix A.4 extension: per-client cache budget (entries) for the
  /// traversal engine's cache policy (0 = disabled). The fine-grained and
  /// coarse-one-sided designs cache inner-node images to skip remote reads
  /// during descent; the hybrid design caches resolved leaf routes
  /// (key -> leaf pointer) to skip find-leaf RPCs. Stale entries are safe
  /// (the B-link sibling chase recovers — see docs/traversal.md);
  /// `client_cache_ttl` bounds the staleness window.
  uint32_t client_cache_pages = 0;
  SimTime client_cache_ttl = 2 * kMillisecond;

  /// One-RTT speculative descent for the one-sided designs (FG,
  /// CG-one-sided; requires client_cache_pages > 0). Predict the full
  /// root→leaf path from cached inner images — including TTL-expired ones —
  /// and fetch every missing/expired predicted page plus the leaf in a
  /// single doorbell-batched READ, validating top-down with fallback to the
  /// level-by-level descent. Default off: bit-identical behavior to the
  /// plain loop (see docs/traversal.md, "Speculative descent").
  bool speculative_descent = false;
};

/// Outcome of a point query. `status` distinguishes a clean miss (OK,
/// found=false) from a degraded-mode failure (kUnavailable / kTimedOut).
struct [[nodiscard]] LookupResult {
  bool found = false;
  btree::Value value = 0;
  Status status;
};

/// Point-operation kinds that can ride in a coalesced multi-op batch
/// (everything except range scans, which carry variable-size results).
enum class PointOpKind : uint8_t {
  kLookup,
  kInsert,
  kUpdate,
  kDelete,
};

/// One point operation inside a coalesced batch.
struct PointOp {
  PointOpKind kind = PointOpKind::kLookup;
  btree::Key key = 0;
  btree::Value value = 0;  ///< payload for kInsert / kUpdate
};

/// Per-op outcome of a coalesced batch. `found`/`value` are meaningful for
/// kLookup only; `status` carries NotFound for a failed kUpdate / kDelete
/// and transport errors for every kind.
struct PointOpResult {
  Status status;
  bool found = false;
  btree::Value value = 0;
};

/// The common interface of the distributed index designs (the paper's
/// Designs 1-3, the design-matrix completion, and the hash baseline). All
/// data-path operations are coroutines running in simulated time on behalf
/// of one compute-server client.
class DistributedIndex {
 public:
  virtual ~DistributedIndex() = default;

  /// Builds the index over `sorted` (ascending by key) at setup time
  /// (outside simulated time). Must be called once, before any operation.
  virtual Status BulkLoad(std::span<const btree::KV> sorted) = 0;

  /// Point query: any live entry with `key` (workload A).
  virtual sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                         btree::Key key) = 0;

  /// Range query over [lo, hi) (workload B). Appends hits to `out` when it
  /// is non-null; returns the match count either way. `status`, when
  /// non-null, reports how the scan ended: OK for a complete pass,
  /// kUnavailable/kTimedOut when degraded mode truncated it (the count is
  /// then partial) — the distinction feeds the YCSB FailureBreakdown via
  /// StatusClassOf.
  virtual sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                                   btree::Key hi, std::vector<btree::KV>* out,
                                   Status* status = nullptr) = 0;

  /// Inserts (key, value); duplicates allowed (workloads C/D).
  virtual sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                                   btree::Value value) = 0;

  /// Overwrites the value of the first live entry with `key` in place
  /// (original YCSB's update operation). Returns NotFound when the key has
  /// no live entry.
  virtual sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                                   btree::Value value) = 0;

  /// Collects the values of *all* live entries with `key` (non-unique
  /// secondary index semantics). Returns the number found.
  virtual sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx,
                                        btree::Key key,
                                        std::vector<btree::Value>* out) = 0;

  /// Tombstones one live entry with `key` (removed later by epoch GC).
  virtual sim::Task<Status> Delete(nam::ClientContext& ctx,
                                   btree::Key key) = 0;

  /// One epoch-GC pass: leaf compaction, and for designs with a one-sided
  /// leaf level also rebalancing (merge underfull pages) and head-node
  /// rebuilds. Runs as the design prescribes: on the memory servers for
  /// CG, from a compute client for FG leaves. Returns reclaimed entries.
  virtual sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) = 0;

  /// True when RunBatch coalesces same-server point ops into multi-op RPC
  /// frames (one SEND per server per batch) instead of the default
  /// sequential fallback. RPC-based designs override this.
  virtual bool SupportsBatchedPointOps() const { return false; }

  /// Executes `ops` on behalf of one client and writes one PointOpResult
  /// per op into `results` (which must have space for ops.size() entries).
  /// The default runs the ops sequentially through the point-op virtuals —
  /// correct for every design; RPC-based designs override it to coalesce
  /// same-server ops into a single multi-op request frame.
  virtual sim::Task<void> RunBatch(nam::ClientContext& ctx,
                                   std::span<const PointOp> ops,
                                   PointOpResult* results);

  /// Batched point lookup: answers `keys[i]` into `results[i]` (which must
  /// have space for keys.size() entries). Semantically identical to
  /// keys.size() independent Lookup calls — same found/value/status per key
  /// — but designs exploit batch locality: the one-sided designs sort the
  /// keys, group them by locally predicted leaf, and serve each group from
  /// one chain walk (one READ per visited page); the hybrid design groups
  /// by cached route; the RPC design coalesces per-server multi-op frames.
  /// The default runs the keys sequentially through Lookup.
  virtual sim::Task<void> MultiGet(nam::ClientContext& ctx,
                                   std::span<const btree::Key> keys,
                                   LookupResult* results);

  /// Human-readable design name ("coarse-grained", ...).
  virtual std::string name() const = 0;

  /// Index page size (clients size their scratch buffers from this).
  virtual uint32_t page_size() const = 0;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_INDEX_H_
