#ifndef NAMTREE_INDEX_INSPECTOR_H_
#define NAMTREE_INDEX_INSPECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "rdma/fabric.h"

namespace namtree::index {

/// Offline structural validator: walks an index's physical pages directly
/// through the registered regions (host-side, quiescent use only — run it
/// between simulated workloads, not during one) and checks the B-link
/// invariants every design maintains:
///
///   * page-local: entries/separators sorted, counts within capacity,
///     version words unlocked, level bytes consistent;
///   * fences: keys lie within [low, high] (duplicates may sit exactly on
///     the high fence) and fences ascend along every sibling chain;
///   * chains: each level's chain is connected and terminates at the +inf
///     fence;
///   * reachability: every leaf referenced from the inner levels is on the
///     leaf chain (the converse may legitimately fail transiently in a
///     B-link tree: a freshly split page is chain-reachable before its
///     separator is installed).
///
/// Violations are human-readable strings; an empty list means the
/// structure is sound.
class IndexInspector {
 public:
  struct Report {
    uint64_t leaf_pages = 0;
    uint64_t inner_pages = 0;
    uint64_t head_pages = 0;
    uint64_t live_entries = 0;
    uint64_t tombstones = 0;
    uint64_t height = 0;  ///< levels of the (tallest) tree
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
    std::string ToString() const;
  };

  /// Validates the global tree of a fine-grained index.
  static Report Inspect(rdma::Fabric& fabric, const FineGrainedIndex& index);

  /// Validates every partition tree of a coarse-grained index.
  static Report Inspect(rdma::Fabric& fabric, CoarseGrainedIndex& index);

  /// Validates the hybrid's per-server upper levels and the global leaf
  /// chain.
  static Report Inspect(rdma::Fabric& fabric, HybridIndex& index);

  /// Validates every partition tree of a coarse-grained one-sided index.
  static Report Inspect(rdma::Fabric& fabric,
                        const CoarseOneSidedIndex& index);

 private:
  /// Validates the inner levels of a B-link subtree from `root_raw` down to
  /// `bottom_level` (> 0). Children of bottom-level nodes are appended to
  /// `bottom_children` (leaf references).
  static void InspectInnerLevels(rdma::Fabric& fabric, uint64_t root_raw,
                                 uint32_t page_size, uint8_t bottom_level,
                                 Report* report,
                                 std::vector<uint64_t>* bottom_children);

  /// Validates the leaf sibling chain from `first_raw` (skipping head
  /// nodes) and collects leaf pointers + entry statistics.
  static void InspectLeafChain(rdma::Fabric& fabric, uint64_t first_raw,
                               uint32_t page_size, Report* report,
                               std::vector<uint64_t>* chain_leaves);

  /// Checks `referenced` (from inner levels) against the leaf chain set;
  /// references to drained pages are allowed (searches chase through them).
  static void CheckReachability(rdma::Fabric& fabric, uint32_t page_size,
                                const std::vector<uint64_t>& referenced,
                                const std::vector<uint64_t>& chain,
                                Report* report);
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_INSPECTOR_H_
