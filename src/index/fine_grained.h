#ifndef NAMTREE_INDEX_FINE_GRAINED_H_
#define NAMTREE_INDEX_FINE_GRAINED_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/index.h"
#include "index/leaf_level.h"
#include "index/node_cache.h"
#include "index/remote_ops.h"
#include "nam/cluster.h"
#include "rdma/remote_ptr.h"

namespace namtree::index {

/// Design 2 (paper §4): fine-grained distribution + one-sided access.
///
/// One global B-link tree whose nodes (inner and leaf) are scattered
/// round-robin over all memory servers and connected by remote pointers.
/// Compute servers traverse and modify the tree themselves using only
/// one-sided verbs: READ for traversal, CAS to acquire node locks, WRITE +
/// FETCH_AND_ADD to install modifications and release, FETCH_AND_ADD on the
/// region cursor for RDMA_ALLOC. Head nodes on the leaf level prefetch
/// ranges (§4.3); epoch GC and head rebuilds run from a compute server.
class FineGrainedIndex : public DistributedIndex {
 public:
  FineGrainedIndex(nam::Cluster& cluster, IndexConfig config);

  Status BulkLoad(std::span<const btree::KV> sorted) override;

  sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                 btree::Key key) override;
  sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                           btree::Key hi,
                           std::vector<btree::KV>* out) override;
  sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx, btree::Key key,
                                std::vector<btree::Value>* out) override;
  sim::Task<Status> Delete(nam::ClientContext& ctx, btree::Key key) override;
  sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) override;

  std::string name() const override { return "fine-grained"; }
  uint32_t page_size() const override { return config_.page_size; }

  rdma::RemotePtr root() const { return root_; }
  uint8_t root_level() const { return root_level_; }
  rdma::RemotePtr first_leaf() const { return first_leaf_; }

  /// Rebuilds head nodes (run by the epoch maintenance thread alongside
  /// GarbageCollect; exposed separately for tests/benches).
  sim::Task<Status> RebuildHeads(nam::ClientContext& ctx);

  /// Re-reads the root pointer from the catalog slot on server 0 with an
  /// RDMA READ — how a freshly connected compute server bootstraps (§4.2:
  /// the root pointer lives in the database's catalog service). Also
  /// refreshes the cached root level from the page header.
  sim::Task<Status> BootstrapFromCatalog(nam::ClientContext& ctx);

  /// The client's inner-node cache (Appendix A.4), or nullptr when caching
  /// is disabled. Created lazily per client id.
  NodeCache* CacheFor(uint32_t client_id);

  /// Aggregate cache statistics over all clients.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t expirations = 0;
  };
  CacheStats GetCacheStats() const;

 private:
  /// Descends the inner levels one-sided (Listing 2) and returns the
  /// remote pointer of a leaf candidate for `key` (leaf-chain chases are
  /// handled by the leaf-level routines).
  sim::Task<rdma::RemotePtr> DescendToLeafPtr(RemoteOps& ops,
                                              btree::Key key);

  /// Installs `sep` / `right` at inner `level` after a split of `left`.
  /// Unavailable means this client died mid-install; the tree stays valid
  /// (B-link: the split is reachable via the left sibling pointer).
  sim::Task<Status> InstallSeparator(RemoteOps& ops, uint8_t level,
                                     btree::Key sep, rdma::RemotePtr left,
                                     rdma::RemotePtr right);

  /// Publishes a new root through the catalog slot on server 0.
  sim::Task<bool> TryGrowRoot(RemoteOps& ops, uint8_t new_level,
                              btree::Key sep, rdma::RemotePtr left,
                              rdma::RemotePtr right);

  nam::Cluster& cluster_;
  IndexConfig config_;
  // Catalog state (paper: part of the database catalog service). The
  // authoritative copy also lives in server 0's catalog slot for clients
  // that bootstrap remotely.
  rdma::RemotePtr root_;
  uint8_t root_level_ = 0;
  rdma::RemotePtr first_leaf_;
  uint32_t catalog_slot_;
  std::unordered_map<uint32_t, std::unique_ptr<NodeCache>> caches_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_FINE_GRAINED_H_
