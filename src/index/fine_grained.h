#ifndef NAMTREE_INDEX_FINE_GRAINED_H_
#define NAMTREE_INDEX_FINE_GRAINED_H_

#include <vector>

#include "index/index.h"
#include "index/leaf_level.h"
#include "index/node_cache.h"
#include "index/remote_ops.h"
#include "index/traversal.h"
#include "nam/cluster.h"
#include "rdma/remote_ptr.h"

namespace namtree::index {

/// Design 2 (paper §4): fine-grained distribution + one-sided access.
///
/// One global B-link tree whose nodes (inner and leaf) are scattered
/// round-robin over all memory servers and connected by remote pointers.
/// Compute servers traverse and modify the tree themselves using only
/// one-sided verbs: READ for traversal, CAS to acquire node locks, WRITE +
/// FETCH_AND_ADD to install modifications and release, FETCH_AND_ADD on the
/// region cursor for RDMA_ALLOC. Head nodes on the leaf level prefetch
/// ranges (§4.3); epoch GC and head rebuilds run from a compute server.
///
/// The descent/lock/retry protocol itself lives in TraversalEngine
/// (docs/traversal.md); this design is the policy triple {global tree,
/// round-robin allocation, catalog slot on server 0} + inner-image cache.
class FineGrainedIndex : public DistributedIndex {
 public:
  FineGrainedIndex(nam::Cluster& cluster, IndexConfig config);

  Status BulkLoad(std::span<const btree::KV> sorted) override;

  sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                 btree::Key key) override;
  sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                           btree::Key hi, std::vector<btree::KV>* out,
                           Status* status = nullptr) override;
  sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx, btree::Key key,
                                std::vector<btree::Value>* out) override;
  sim::Task<Status> Delete(nam::ClientContext& ctx, btree::Key key) override;
  sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) override;

  /// Sorts the keys, groups consecutive ones by locally predicted leaf
  /// (PredictLeaf over the inner-image cache), and serves each group from
  /// one chain walk (LeafLevel::SearchChainMulti); unpredictable keys fall
  /// back to single lookups.
  sim::Task<void> MultiGet(nam::ClientContext& ctx,
                           std::span<const btree::Key> keys,
                           LookupResult* results) override;

  std::string name() const override { return "fine-grained"; }
  uint32_t page_size() const override { return config_.page_size; }

  rdma::RemotePtr root() const { return engine_.root(tree_); }
  uint8_t root_level() const { return engine_.root_level(tree_); }
  rdma::RemotePtr first_leaf() const { return first_leaf_; }

  /// Rebuilds head nodes (run by the epoch maintenance thread alongside
  /// GarbageCollect; exposed separately for tests/benches).
  sim::Task<Status> RebuildHeads(nam::ClientContext& ctx);

  /// Re-reads the root pointer from the catalog slot on server 0 with an
  /// RDMA READ — how a freshly connected compute server bootstraps (§4.2:
  /// the root pointer lives in the database's catalog service). Also
  /// refreshes the cached root level from the page header.
  sim::Task<Status> BootstrapFromCatalog(nam::ClientContext& ctx);

  /// The client's inner-node cache (Appendix A.4), or nullptr when caching
  /// is disabled. Created lazily per client id.
  NodeCache* CacheFor(uint32_t client_id) {
    return engine_.CacheFor(client_id);
  }

  /// Aggregate cache statistics over all clients.
  using CacheStats = TraversalEngine::CacheStats;
  CacheStats GetCacheStats() const { return engine_.GetCacheStats(); }

 private:
  nam::Cluster& cluster_;
  IndexConfig config_;
  uint32_t catalog_slot_;
  TraversalEngine engine_;
  uint32_t tree_;
  rdma::RemotePtr first_leaf_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_FINE_GRAINED_H_
