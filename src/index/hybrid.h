#ifndef NAMTREE_INDEX_HYBRID_H_
#define NAMTREE_INDEX_HYBRID_H_

#include <memory>
#include <vector>

#include "index/index.h"
#include "index/leaf_level.h"
#include "index/node_cache.h"
#include "index/partition.h"
#include "index/remote_ops.h"
#include "index/server_tree.h"
#include "index/traversal.h"
#include "nam/cluster.h"

namespace namtree::index {

/// Design 3 (paper §5): hybrid scheme.
///
/// The upper levels (root + inner nodes) are range-partitioned across the
/// memory servers and traversed by RPC (two-sided, low latency); the leaf
/// level is one global fine-grained chain scattered round-robin over all
/// servers and accessed one-sided (aggregated bandwidth, skew-immune).
/// Lookups: one RPC that returns a leaf remote pointer, then RDMA READs.
/// Inserts: RPC for the pointer, one-sided leaf insert; on a split an extra
/// RPC installs the separator into the owning server's upper levels.
///
/// Leaf resolution goes through TraversalEngine's RPC root policy
/// (docs/traversal.md): the engine fronts the find-leaf RPC with a
/// per-client leaf-route cache (key -> leaf pointer). A stale route is
/// B-link safe — leaf coverage only ever moves right (splits,
/// drain-merges), so the leaf-chain chase recovers.
class HybridIndex : public DistributedIndex,
                    private TraversalEngine::LeafResolver {
 public:
  enum Op : uint16_t {
    kFindLeaf = 1,
    kInstallSep = 2,
  };

  HybridIndex(nam::Cluster& cluster, IndexConfig config);

  Status BulkLoad(std::span<const btree::KV> sorted) override;

  sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                 btree::Key key) override;
  sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                           btree::Key hi, std::vector<btree::KV>* out,
                           Status* status = nullptr) override;
  sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx, btree::Key key,
                                std::vector<btree::Value>* out) override;
  sim::Task<Status> Delete(nam::ClientContext& ctx, btree::Key key) override;
  sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) override;

  /// Sorts the keys and groups consecutive ones sharing a fresh cached
  /// route (no find-leaf RPC per grouped key); each group is one chain
  /// walk, uncached keys fall back to Lookup (which seeds the cache).
  sim::Task<void> MultiGet(nam::ClientContext& ctx,
                           std::span<const btree::Key> keys,
                           LookupResult* results) override;

  std::string name() const override { return "hybrid"; }
  uint32_t page_size() const override { return config_.page_size; }

  const Partitioner& partitioner() const { return partitioner_; }
  rdma::RemotePtr first_leaf() const { return first_leaf_; }
  ServerTree& tree(uint32_t server) { return *trees_[server]; }

  /// The client's leaf-route cache, or nullptr when caching is disabled.
  NodeCache* CacheFor(uint32_t client_id) {
    return engine_.CacheFor(client_id);
  }

  using CacheStats = TraversalEngine::CacheStats;
  CacheStats GetCacheStats() const { return engine_.GetCacheStats(); }

 private:
  sim::Task<> Handle(nam::MemoryServer& server, rdma::IncomingRpc rpc);

  /// TraversalEngine::LeafResolver: the find-leaf RPC to the owner of
  /// `key`, returning a candidate leaf pointer.
  sim::Task<DescentResult> ResolveLeaf(nam::ClientContext& ctx,
                                       btree::Key key) override;

  nam::Cluster& cluster_;
  IndexConfig config_;
  Partitioner partitioner_;
  uint16_t rpc_service_;
  TraversalEngine engine_;
  std::vector<std::unique_ptr<ServerTree>> trees_;
  rdma::RemotePtr first_leaf_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_HYBRID_H_
