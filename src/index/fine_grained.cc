#include "index/fine_grained.h"

#include <algorithm>

#include "btree/page.h"
#include "index/tree_build.h"
#include "rdma/memory_region.h"

namespace namtree::index {

using btree::Key;
using btree::KV;
using btree::Value;

FineGrainedIndex::FineGrainedIndex(nam::Cluster& cluster, IndexConfig config)
    : cluster_(cluster),
      config_(config),
      catalog_slot_(cluster.AllocateCatalogSlot()),
      engine_(TraversalEngine::Options{
          config.page_size,
          config.client_cache_pages > 0
              ? TraversalEngine::CacheMode::kInnerImages
              : TraversalEngine::CacheMode::kNone,
          config.client_cache_pages, config.client_cache_ttl,
          config.speculative_descent}),
      tree_(engine_.AddTree(
          /*alloc_server=*/-1,
          rdma::RemotePtr::Make(
              0, rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_)))) {}

Status FineGrainedIndex::BulkLoad(std::span<const KV> sorted) {
  LeafLevel::BuildResult leaves;
  Status status = LeafLevel::Build(cluster_.fabric(), sorted, config_,
                                   &leaves);
  if (!status.ok()) return status;
  first_leaf_ = leaves.first;

  rdma::RemotePtr root;
  uint8_t root_level = 0;
  status = BuildUpperLevels(cluster_.fabric(), std::move(leaves.leaf_refs),
                            config_.page_size, config_.leaf_fill_percent,
                            /*fixed_server=*/-1, &root, &root_level);
  if (!status.ok()) return status;
  engine_.SetRoot(tree_, root, root_level);

  // Publish the root in this index's catalog slot (server 0) for remote
  // bootstrap.
  cluster_.fabric().region(0)->WriteU64(
      rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_), root.raw());
  // Seed backup replicas from the bulk-loaded primaries (no-op at R=1).
  cluster_.fabric().SyncReplicasFromPrimaries();
  return Status::OK();
}

sim::Task<LookupResult> FineGrainedIndex::Lookup(nam::ClientContext& ctx,
                                                 Key key) {
  metrics::OpSpan span(ctx.trace(), "lookup");
  RemoteOps ops(ctx);
  // Under speculative descent the predicted leaf's image rides the descent
  // batch into page_b (free on this read-only path) and, when confirmed,
  // feeds SearchChain's first iteration — the one-RTT lookup.
  TraversalEngine::DescentPrefetch prefetch;
  prefetch.leaf_buf = ctx.page_b();
  const rdma::RemotePtr leaf =
      co_await engine_.DescendToLeaf(ops, tree_, key, &prefetch);
  if (leaf.is_null()) {
    co_return LookupResult{false, 0, Status::Unavailable("client crashed")};
  }
  co_return co_await LeafLevel::SearchChain(
      ops, leaf, key, prefetch.leaf_image_valid ? ctx.page_b() : nullptr);
}

sim::Task<void> FineGrainedIndex::MultiGet(nam::ClientContext& ctx,
                                           std::span<const Key> keys,
                                           LookupResult* results) {
  metrics::OpSpan span(ctx.trace(), "multiget");
  RemoteOps ops(ctx);
  // Sort (stably, by key) so chain walks move strictly right, then group
  // consecutive keys whose locally predicted leaf matches: each group costs
  // one descent plus one READ per visited leaf instead of one full lookup
  // per key. Keys the cache cannot place fall back to single lookups.
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&keys](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  const SimTime now = ctx.fabric().simulator().now();
  size_t i = 0;
  while (i < order.size()) {
    const rdma::RemotePtr predicted =
        engine_.PredictLeaf(ctx.client_id(), tree_, keys[order[i]], now);
    size_t j = i + 1;
    if (!predicted.is_null()) {
      while (j < order.size() &&
             engine_.PredictLeaf(ctx.client_id(), tree_, keys[order[j]],
                                 now) == predicted) {
        j++;
      }
    }
    if (predicted.is_null() || j == i + 1) {
      results[order[i]] = co_await Lookup(ctx, keys[order[i]]);
      i = j;
      continue;
    }
    std::vector<Key> group(j - i);
    for (size_t k = i; k < j; ++k) group[k - i] = keys[order[k]];
    std::vector<LookupResult> group_results(group.size());
    // A stale prediction can only name a leaf too far left; the chain
    // chase inside SearchChainMulti recovers, exactly as for Lookup.
    // namtree-lint: status-ok(per-key statuses land in group_results)
    (void)co_await LeafLevel::SearchChainMulti(ops, predicted, group,
                                               group_results.data());
    for (size_t k = i; k < j; ++k) {
      results[order[k]] = group_results[k - i];
    }
    i = j;
  }
}

sim::Task<uint64_t> FineGrainedIndex::Scan(nam::ClientContext& ctx, Key lo,
                                           Key hi, std::vector<KV>* out,
                                           Status* status) {
  metrics::OpSpan span(ctx.trace(), "scan");
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await engine_.DescendToLeaf(ops, tree_, lo);
  if (leaf.is_null()) {
    if (status != nullptr) *status = Status::Unavailable("client crashed");
    co_return 0;
  }
  co_return co_await LeafLevel::ScanChain(ops, leaf, lo, hi, out, status);
}

sim::Task<Status> FineGrainedIndex::Insert(nam::ClientContext& ctx, Key key,
                                           Value value) {
  metrics::OpSpan span(ctx.trace(), "insert");
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await engine_.DescendToLeaf(ops, tree_, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  LeafLevel::SplitInfo split;
  const Status status =
      co_await LeafLevel::InsertAt(ops, leaf, key, value, &split);
  if (!status.ok()) co_return status;
  if (split.split) {
    // The left page of the split is the page InsertAt actually modified;
    // it may differ from `leaf` after chain chases, but the separator
    // install only needs (sep, right).
    co_return co_await engine_.InstallSeparator(ops, tree_, 1,
                                                split.separator, leaf,
                                                split.right);
  }
  co_return Status::OK();
}

sim::Task<Status> FineGrainedIndex::Update(nam::ClientContext& ctx, Key key,
                                           Value value) {
  metrics::OpSpan span(ctx.trace(), "update");
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await engine_.DescendToLeaf(ops, tree_, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::UpdateAt(ops, leaf, key, value);
}

sim::Task<uint64_t> FineGrainedIndex::LookupAll(nam::ClientContext& ctx,
                                                Key key,
                                                std::vector<Value>* out) {
  metrics::OpSpan span(ctx.trace(), "lookup_all");
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await engine_.DescendToLeaf(ops, tree_, key);
  if (leaf.is_null()) co_return 0;
  co_return co_await LeafLevel::CollectAt(ops, leaf, key, out);
}

sim::Task<Status> FineGrainedIndex::Delete(nam::ClientContext& ctx, Key key) {
  metrics::OpSpan span(ctx.trace(), "delete");
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await engine_.DescendToLeaf(ops, tree_, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::DeleteAt(ops, leaf, key);
}

sim::Task<uint64_t> FineGrainedIndex::GarbageCollect(nam::ClientContext& ctx) {
  // The global epoch GC runs from a compute server using the same
  // one-sided lock protocol as writers (§4.2): leaf compaction first, then
  // head-node maintenance.
  RemoteOps ops(ctx);
  uint64_t reclaimed = co_await LeafLevel::CompactChain(ops, first_leaf_);
  if (config_.gc_merge_fill_percent > 0) {
    // Page merges/unlinks are counted separately from entry reclaims.
    (void)co_await LeafLevel::RebalanceChain(ops, first_leaf_,
                                             config_.gc_merge_fill_percent);
  }
  (void)co_await LeafLevel::RebuildHeadNodes(ops, first_leaf_,
                                             config_.head_node_interval);
  co_return reclaimed;
}

sim::Task<Status> FineGrainedIndex::BootstrapFromCatalog(
    nam::ClientContext& ctx) {
  RemoteOps ops(ctx);
  co_return co_await engine_.BootstrapFromCatalog(ops, tree_);
}

sim::Task<Status> FineGrainedIndex::RebuildHeads(nam::ClientContext& ctx) {
  RemoteOps ops(ctx);
  co_return co_await LeafLevel::RebuildHeadNodes(ops, first_leaf_,
                                                 config_.head_node_interval);
}

}  // namespace namtree::index
