#include "index/fine_grained.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "btree/page.h"
#include "index/tree_build.h"
#include "rdma/memory_region.h"

namespace namtree::index {

using btree::Key;
using btree::KV;
using btree::kInfinityKey;
using btree::PageView;
using btree::Value;

FineGrainedIndex::FineGrainedIndex(nam::Cluster& cluster, IndexConfig config)
    : cluster_(cluster),
      config_(config),
      catalog_slot_(cluster.AllocateCatalogSlot()) {}

Status FineGrainedIndex::BulkLoad(std::span<const KV> sorted) {
  LeafLevel::BuildResult leaves;
  Status status = LeafLevel::Build(cluster_.fabric(), sorted, config_,
                                   &leaves);
  if (!status.ok()) return status;
  first_leaf_ = leaves.first;

  status = BuildUpperLevels(cluster_.fabric(), std::move(leaves.leaf_refs),
                            config_.page_size, config_.leaf_fill_percent,
                            /*fixed_server=*/-1, &root_, &root_level_);
  if (!status.ok()) return status;

  // Publish the root in this index's catalog slot (server 0) for remote
  // bootstrap.
  cluster_.fabric().region(0)->WriteU64(
      rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_), root_.raw());
  return Status::OK();
}

NodeCache* FineGrainedIndex::CacheFor(uint32_t client_id) {
  if (config_.client_cache_pages == 0) return nullptr;
  auto it = caches_.find(client_id);
  if (it == caches_.end()) {
    it = caches_
             .emplace(client_id, std::make_unique<NodeCache>(
                                     config_.page_size,
                                     config_.client_cache_pages,
                                     config_.client_cache_ttl))
             .first;
  }
  return it->second.get();
}

FineGrainedIndex::CacheStats FineGrainedIndex::GetCacheStats() const {
  CacheStats stats;
  for (const auto& [id, cache] : caches_) {
    stats.hits += cache->hits();
    stats.misses += cache->misses();
    stats.expirations += cache->expirations();
  }
  return stats;
}

sim::Task<rdma::RemotePtr> FineGrainedIndex::DescendToLeafPtr(RemoteOps& ops,
                                                              Key key) {
  rdma::RemotePtr ptr = root_;
  if (root_level_ == 0) co_return ptr;  // single-leaf tree
  uint8_t* buf = ops.ctx().page_a();
  NodeCache* cache = CacheFor(ops.ctx().client_id());
  // namtree-lint: bounded-loop(blink-descent: every step moves down a level or right along ascending fences; read failures exit)
  for (;;) {
    // A.4 caching: inner-node images may come from the client cache; a
    // stale image can only route us too far left, which the B-link chase
    // at the next level (or leaf chain) corrects.
    const uint8_t* image = nullptr;
    if (cache != nullptr) {
      image = cache->Get(ptr.raw(), ops.fabric().simulator().now());
    }
    if (image == nullptr) {
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return rdma::RemotePtr::Null();
      image = buf;
      if (cache != nullptr &&
          PageView(buf, ops.page_size()).level() >= 1) {
        cache->Put(ptr.raw(), buf, ops.fabric().simulator().now());
      }
    }
    PageView view(const_cast<uint8_t*>(image), ops.page_size());
    if (view.level() == 0) {
      // Stale root metadata can land us on a leaf; hand it to the caller.
      co_return ptr;
    }
    if (key > view.high_key() && view.right_sibling() != 0) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    const rdma::RemotePtr child(view.InnerChildFor(key));
    if (view.level() == 1) co_return child;
    ptr = child;
  }
}

sim::Task<LookupResult> FineGrainedIndex::Lookup(nam::ClientContext& ctx,
                                                 Key key) {
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, key);
  if (leaf.is_null()) {
    co_return LookupResult{false, 0, Status::Unavailable("client crashed")};
  }
  co_return co_await LeafLevel::SearchChain(ops, leaf, key);
}

sim::Task<uint64_t> FineGrainedIndex::Scan(nam::ClientContext& ctx, Key lo,
                                           Key hi, std::vector<KV>* out) {
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, lo);
  if (leaf.is_null()) co_return 0;
  co_return co_await LeafLevel::ScanChain(ops, leaf, lo, hi, out);
}

sim::Task<Status> FineGrainedIndex::Insert(nam::ClientContext& ctx, Key key,
                                           Value value) {
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  LeafLevel::SplitInfo split;
  const Status status =
      co_await LeafLevel::InsertAt(ops, leaf, key, value, &split);
  if (!status.ok()) co_return status;
  if (split.split) {
    // The left page of the split is the page InsertAt actually modified;
    // it may differ from `leaf` after chain chases, but the separator
    // install only needs (sep, right).
    co_return co_await InstallSeparator(ops, 1, split.separator, leaf,
                                        split.right);
  }
  co_return Status::OK();
}

sim::Task<Status> FineGrainedIndex::Update(nam::ClientContext& ctx, Key key,
                                           Value value) {
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::UpdateAt(ops, leaf, key, value);
}

sim::Task<uint64_t> FineGrainedIndex::LookupAll(nam::ClientContext& ctx,
                                                Key key,
                                                std::vector<Value>* out) {
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, key);
  if (leaf.is_null()) co_return 0;
  co_return co_await LeafLevel::CollectAt(ops, leaf, key, out);
}

sim::Task<Status> FineGrainedIndex::Delete(nam::ClientContext& ctx, Key key) {
  RemoteOps ops(ctx);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::DeleteAt(ops, leaf, key);
}

sim::Task<bool> FineGrainedIndex::TryGrowRoot(RemoteOps& ops,
                                              uint8_t new_level, Key sep,
                                              rdma::RemotePtr left,
                                              rdma::RemotePtr right) {
  const rdma::RemotePtr new_root = co_await ops.AllocPageRoundRobin();
  if (new_root.is_null()) co_return true;  // give up silently: tree still valid
  std::vector<uint8_t> image(ops.page_size());
  PageView view(image.data(), ops.page_size());
  view.InitInner(new_level, kInfinityKey, 0);
  view.inner_keys()[0] = sep;
  view.inner_children()[0] = left.raw();
  view.inner_children()[1] = right.raw();
  view.header().count = 1;
  ops.ctx().round_trips++;
  co_await ops.fabric().Write(ops.ctx().client_id(), new_root, image.data(),
                              ops.page_size());
  // A dropped root-image write must not be published: give up, tree valid.
  if (!ops.alive()) co_return true;
  // Publish through the catalog. The check-and-update happens atomically in
  // virtual time (no awaits in between), mirroring a catalog-service CAS.
  if (root_ != left) co_return false;  // somebody else grew the tree
  root_ = new_root;
  root_level_ = new_level;
  ops.ctx().round_trips++;
  co_await ops.fabric().Write(
      ops.ctx().client_id(),
      rdma::RemotePtr::Make(
          0, rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_)),
      &new_root, 8);
  co_return true;
}

sim::Task<Status> FineGrainedIndex::InstallSeparator(RemoteOps& ops,
                                                     uint8_t level, Key sep,
                                                     rdma::RemotePtr left,
                                                     rdma::RemotePtr right) {
  uint8_t* buf = ops.ctx().page_a();
  // Bounded: every pass makes B-link progress or propagates a failure
  // status. namtree-lint: bounded-loop(blink-restart)
  for (;;) {
    if (root_level_ < level) {
      if (co_await TryGrowRoot(ops, level, sep, left, right)) {
        co_return ops.alive() ? Status::OK()
                              : Status::Unavailable("client crashed");
      }
      continue;
    }
    // Descend to the target level for `sep`.
    rdma::RemotePtr ptr = root_;
    bool restart = false;
    NodeCache* cache = CacheFor(ops.ctx().client_id());
    // namtree-lint: bounded-loop(blink-descent)
    for (;;) {
      // A.4 caching on the install descent: hops *above* the target level
      // may come from the client cache (a stale image only routes too far
      // left, and the B-link chase corrects that). The target node itself
      // always takes a fresh read — its version word seeds the lock CAS.
      if (cache != nullptr) {
        const uint8_t* image =
            cache->Get(ptr.raw(), ops.fabric().simulator().now());
        if (image != nullptr) {
          PageView cview(const_cast<uint8_t*>(image), ops.page_size());
          if (cview.level() > level) {
            if (sep > cview.high_key() && cview.right_sibling() != 0) {
              ptr = rdma::RemotePtr(cview.right_sibling());
            } else {
              ptr = rdma::RemotePtr(cview.InnerChildFor(sep));
            }
            continue;
          }
        }
      }
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return read.status;
      PageView view(buf, ops.page_size());
      if (view.level() < level) {
        // Stale root below the target level: re-check the catalog state.
        restart = true;
        break;
      }
      if (view.level() > level) {
        if (cache != nullptr) {
          cache->Put(ptr.raw(), buf, ops.fabric().simulator().now());
        }
        if (sep > view.high_key() && view.right_sibling() != 0) {
          ptr = rdma::RemotePtr(view.right_sibling());
          continue;
        }
        ptr = rdma::RemotePtr(view.InnerChildFor(sep));
        continue;
      }
      // At the target level: chase, then lock.
      if (sep > view.high_key() && view.right_sibling() != 0) {
        ptr = rdma::RemotePtr(view.right_sibling());
        continue;
      }
      const Status lock = co_await ops.TryLockPage(ptr, read.version);
      if (!lock.ok()) {
        if (!lock.IsAborted()) co_return lock;
        ops.ctx().restarts++;
        continue;  // lost the CAS race: re-read this node
      }
      ops.StampLocked(buf, read.version);

      // Re-validate the range under the lock (version pinned by the CAS).
      if (view.InnerInsert(sep, right.raw())) {
        const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
        if (!wu.ok()) co_return wu;
        if (cache != nullptr) {
          // Seed the cache with the image we just published, patched to
          // the post-release version word: the next descent routes through
          // this node with zero remote reads instead of re-reading it.
          uint64_t word;
          std::memcpy(&word, buf + btree::kVersionOffset, 8);
          const uint64_t unlocked = btree::VersionOf(word) + 2;
          std::memcpy(buf + btree::kVersionOffset, &unlocked, 8);
          cache->Put(ptr.raw(), buf, ops.fabric().simulator().now());
        }
        co_return Status::OK();
      }
      // Full: split this inner node and recurse with the promoted key.
      const rdma::RemotePtr new_right = co_await ops.AllocPageRoundRobin();
      if (new_right.is_null()) {
        if (!ops.alive()) co_return Status::Unavailable("client crashed");
        (void)co_await ops.UnlockPage(ptr);
        co_return Status::OK();  // OOM; separator uninstalled (B-link safe)
      }
      std::vector<uint8_t> rimage(ops.page_size());
      PageView rview(rimage.data(), ops.page_size());
      const Key promoted = view.SplitInnerInto(rview, new_right.raw());
      PageView target = sep < promoted ? view : rview;
      const bool ok = target.InnerInsert(sep, right.raw());
      assert(ok);
      (void)ok;
      // One chained {right WRITE, left WRITE, unlock} publication; a crash
      // drops the unexecuted tail, orphans the lock on `ptr` (lease-steal
      // reclaims it) and leaks the unpublished right node — both sound.
      const Status wu = co_await ops.WriteSiblingAndUnlockPage(
          new_right, rimage.data(), ptr, buf);
      if (!wu.ok()) co_return wu;
      if (cache != nullptr) {
        // Seed both halves of the split with their freshly published
        // images (left patched to the post-release version word).
        uint64_t word;
        std::memcpy(&word, buf + btree::kVersionOffset, 8);
        const uint64_t unlocked = btree::VersionOf(word) + 2;
        std::memcpy(buf + btree::kVersionOffset, &unlocked, 8);
        const SimTime now = ops.fabric().simulator().now();
        cache->Put(ptr.raw(), buf, now);
        cache->Put(new_right.raw(), rimage.data(), now);
      }
      co_return co_await InstallSeparator(
          ops, static_cast<uint8_t>(level + 1), promoted, ptr, new_right);
    }
    if (restart) continue;
  }
}

sim::Task<uint64_t> FineGrainedIndex::GarbageCollect(nam::ClientContext& ctx) {
  // The global epoch GC runs from a compute server using the same
  // one-sided lock protocol as writers (§4.2): leaf compaction first, then
  // head-node maintenance.
  RemoteOps ops(ctx);
  uint64_t reclaimed = co_await LeafLevel::CompactChain(ops, first_leaf_);
  if (config_.gc_merge_fill_percent > 0) {
    // Page merges/unlinks are counted separately from entry reclaims.
    (void)co_await LeafLevel::RebalanceChain(ops, first_leaf_,
                                             config_.gc_merge_fill_percent);
  }
  (void)co_await LeafLevel::RebuildHeadNodes(ops, first_leaf_,
                                             config_.head_node_interval);
  co_return reclaimed;
}

sim::Task<Status> FineGrainedIndex::BootstrapFromCatalog(
    nam::ClientContext& ctx) {
  RemoteOps ops(ctx);
  uint64_t raw = 0;
  ctx.round_trips++;
  co_await cluster_.fabric().Read(
      ctx.client_id(),
      rdma::RemotePtr::Make(
          0, rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_)),
      &raw, 8);
  if (!ops.alive()) co_return Status::Unavailable("client crashed");
  const rdma::RemotePtr root(raw);
  if (root.is_null()) co_return Status::NotFound("catalog slot empty");
  // Learn the root's level from its page header.
  const Status read = co_await ops.ReadPage(root, ctx.page_a());
  if (!read.ok()) co_return read;
  PageView view(ctx.page_a(), ops.page_size());
  root_ = root;
  root_level_ = view.level();
  co_return Status::OK();
}

sim::Task<Status> FineGrainedIndex::RebuildHeads(nam::ClientContext& ctx) {
  RemoteOps ops(ctx);
  co_return co_await LeafLevel::RebuildHeadNodes(ops, first_leaf_,
                                                 config_.head_node_interval);
}

}  // namespace namtree::index
