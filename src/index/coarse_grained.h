#ifndef NAMTREE_INDEX_COARSE_GRAINED_H_
#define NAMTREE_INDEX_COARSE_GRAINED_H_

#include <memory>
#include <vector>

#include "index/index.h"
#include "index/partition.h"
#include "index/server_tree.h"
#include "nam/cluster.h"

namespace namtree::index {

/// Design 1 (paper §3): coarse-grained distribution + two-sided access.
///
/// The key space is partitioned (range- or hash-based) over the memory
/// servers; each server builds a local B-link tree over its keys and
/// executes index operations itself when compute servers ship them over as
/// RPCs (SEND/RECV pairs into a shared receive queue). Concurrency control
/// on the server is optimistic lock coupling (Listing 1/3).
class CoarseGrainedIndex : public DistributedIndex {
 public:
  /// RPC opcodes of the coarse-grained protocol.
  enum Op : uint16_t {
    kLookup = 1,
    kScan = 2,
    kInsert = 3,
    kDelete = 4,
    kGc = 5,
    kUpdate = 6,
    kLookupAll = 7,
    /// Coalesced multi-op frame: the request payload carries 3 words per
    /// point op [opcode, key, value]; the response carries 2 words per op
    /// [status, value]. The whole frame pays one RequestOverhead.
    kBatch = 8,
  };

  CoarseGrainedIndex(nam::Cluster& cluster, IndexConfig config);

  Status BulkLoad(std::span<const btree::KV> sorted) override;

  sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                 btree::Key key) override;
  sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                           btree::Key hi, std::vector<btree::KV>* out,
                           Status* status = nullptr) override;
  sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx, btree::Key key,
                                std::vector<btree::Value>* out) override;
  sim::Task<Status> Delete(nam::ClientContext& ctx, btree::Key key) override;
  sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) override;

  bool SupportsBatchedPointOps() const override { return true; }

  /// Multi-op RPC coalescing (the two-sided analogue of doorbell
  /// batching): groups `ops` by home server and ships each group as one
  /// kBatch SEND, so n same-server ops pay one RPC round-trip and one
  /// server dispatch instead of n.
  sim::Task<void> RunBatch(nam::ClientContext& ctx,
                           std::span<const PointOp> ops,
                           PointOpResult* results) override;

  /// Batched lookups ride the same multi-op coalescing as RunBatch: the
  /// keys become kLookup point ops, grouped by home server into one kBatch
  /// SEND per server.
  sim::Task<void> MultiGet(nam::ClientContext& ctx,
                           std::span<const btree::Key> keys,
                           LookupResult* results) override;

  std::string name() const override { return "coarse-grained"; }
  uint32_t page_size() const override { return config_.page_size; }

  const Partitioner& partitioner() const { return partitioner_; }
  ServerTree& tree(uint32_t server) { return *trees_[server]; }

 private:
  sim::Task<> Handle(nam::MemoryServer& server, rdma::IncomingRpc rpc);

  nam::Cluster& cluster_;
  IndexConfig config_;
  Partitioner partitioner_;
  uint16_t rpc_service_;
  std::vector<std::unique_ptr<ServerTree>> trees_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_COARSE_GRAINED_H_
