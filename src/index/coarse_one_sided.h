#ifndef NAMTREE_INDEX_COARSE_ONE_SIDED_H_
#define NAMTREE_INDEX_COARSE_ONE_SIDED_H_

#include <vector>

#include "index/index.h"
#include "index/leaf_level.h"
#include "index/partition.h"
#include "index/remote_ops.h"
#include "nam/cluster.h"
#include "rdma/remote_ptr.h"

namespace namtree::index {

/// Design 4: coarse-grained distribution + one-sided access — the fourth
/// corner of the paper's §2.2 design matrix (distribution x RDMA
/// primitives), which the paper discusses but does not implement.
///
/// The key space is range- or hash-partitioned exactly as in Design 1, but
/// each partition's B-link tree is traversed and modified by the *clients*
/// with one-sided verbs (the Design 2 protocol, confined to one server per
/// operation). This isolates the two design axes experimentally:
///
///   vs. Design 1 (CG/2-sided): same data placement, no remote CPU — shows
///       what the access primitive alone contributes;
///   vs. Design 2 (FG/1-sided): same access protocol, partitioned
///       placement — shows what the distribution alone contributes (e.g.
///       under skew this design collapses like Design 1, because one
///       server's NIC serves 80% of all one-sided reads).
///
/// Section 7's shared-nothing discussion maps onto this design directly:
/// "use the coarse-grained index design to make indexes built locally per
/// partition accessible via RDMA from other nodes".
class CoarseOneSidedIndex : public DistributedIndex {
 public:
  CoarseOneSidedIndex(nam::Cluster& cluster, IndexConfig config);

  Status BulkLoad(std::span<const btree::KV> sorted) override;

  sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                 btree::Key key) override;
  sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                           btree::Key hi,
                           std::vector<btree::KV>* out) override;
  sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx, btree::Key key,
                                std::vector<btree::Value>* out) override;
  sim::Task<Status> Delete(nam::ClientContext& ctx, btree::Key key) override;
  sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) override;

  std::string name() const override { return "coarse-one-sided"; }
  uint32_t page_size() const override { return config_.page_size; }

  const Partitioner& partitioner() const { return partitioner_; }
  rdma::RemotePtr root_of(uint32_t server) const { return roots_[server]; }
  uint8_t root_level_of(uint32_t server) const { return root_levels_[server]; }
  rdma::RemotePtr first_leaf_of(uint32_t server) const {
    return first_leaves_[server];
  }

 private:
  /// One-sided descent through partition `server`'s inner levels to a leaf
  /// candidate for `key` (Listing 2 confined to one server).
  sim::Task<rdma::RemotePtr> DescendToLeafPtr(RemoteOps& ops, uint32_t server,
                                              btree::Key key);

  /// Installs a separator into partition `server`'s tree one-sided.
  /// Unavailable means this client died mid-install; the partition's tree
  /// stays valid via the B-link sibling chain.
  sim::Task<Status> InstallSeparator(RemoteOps& ops, uint32_t server,
                                     uint8_t level, btree::Key sep,
                                     rdma::RemotePtr left,
                                     rdma::RemotePtr right);

  sim::Task<bool> TryGrowRoot(RemoteOps& ops, uint32_t server,
                              uint8_t new_level, btree::Key sep,
                              rdma::RemotePtr left, rdma::RemotePtr right);

  nam::Cluster& cluster_;
  IndexConfig config_;
  Partitioner partitioner_;
  uint32_t catalog_slot_;
  // Per-partition catalog state.
  std::vector<rdma::RemotePtr> roots_;
  std::vector<uint8_t> root_levels_;
  std::vector<rdma::RemotePtr> first_leaves_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_COARSE_ONE_SIDED_H_
