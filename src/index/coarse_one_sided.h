#ifndef NAMTREE_INDEX_COARSE_ONE_SIDED_H_
#define NAMTREE_INDEX_COARSE_ONE_SIDED_H_

#include <vector>

#include "index/index.h"
#include "index/leaf_level.h"
#include "index/node_cache.h"
#include "index/partition.h"
#include "index/remote_ops.h"
#include "index/traversal.h"
#include "nam/cluster.h"
#include "rdma/remote_ptr.h"

namespace namtree::index {

/// Design 4: coarse-grained distribution + one-sided access — the fourth
/// corner of the paper's §2.2 design matrix (distribution x RDMA
/// primitives), which the paper discusses but does not implement.
///
/// The key space is range- or hash-partitioned exactly as in Design 1, but
/// each partition's B-link tree is traversed and modified by the *clients*
/// with one-sided verbs (the Design 2 protocol, confined to one server per
/// operation). This isolates the two design axes experimentally:
///
///   vs. Design 1 (CG/2-sided): same data placement, no remote CPU — shows
///       what the access primitive alone contributes;
///   vs. Design 2 (FG/1-sided): same access protocol, partitioned
///       placement — shows what the distribution alone contributes (e.g.
///       under skew this design collapses like Design 1, because one
///       server's NIC serves 80% of all one-sided reads).
///
/// Section 7's shared-nothing discussion maps onto this design directly:
/// "use the coarse-grained index design to make indexes built locally per
/// partition accessible via RDMA from other nodes".
///
/// The descent/lock/retry protocol lives in TraversalEngine
/// (docs/traversal.md); this design is the policy triple {one tree per
/// partition, fixed-server allocation, catalog slot on server s} + the
/// same inner-image cache as the fine-grained design.
class CoarseOneSidedIndex : public DistributedIndex {
 public:
  CoarseOneSidedIndex(nam::Cluster& cluster, IndexConfig config);

  Status BulkLoad(std::span<const btree::KV> sorted) override;

  sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                 btree::Key key) override;
  sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                           btree::Key hi, std::vector<btree::KV>* out,
                           Status* status = nullptr) override;
  sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx, btree::Key key,
                                std::vector<btree::Value>* out) override;
  sim::Task<Status> Delete(nam::ClientContext& ctx, btree::Key key) override;
  sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) override;

  /// Sorts the keys and groups consecutive ones by (partition, locally
  /// predicted leaf); each group is served by one chain walk
  /// (LeafLevel::SearchChainMulti), the rest by single lookups.
  sim::Task<void> MultiGet(nam::ClientContext& ctx,
                           std::span<const btree::Key> keys,
                           LookupResult* results) override;

  std::string name() const override { return "coarse-one-sided"; }
  uint32_t page_size() const override { return config_.page_size; }

  const Partitioner& partitioner() const { return partitioner_; }
  rdma::RemotePtr root_of(uint32_t server) const {
    return engine_.root(server);
  }
  uint8_t root_level_of(uint32_t server) const {
    return engine_.root_level(server);
  }
  rdma::RemotePtr first_leaf_of(uint32_t server) const {
    return first_leaves_[server];
  }

  /// The client's inner-node cache (shared with the fine-grained design
  /// through the engine's cache policy), or nullptr when disabled.
  NodeCache* CacheFor(uint32_t client_id) {
    return engine_.CacheFor(client_id);
  }

  using CacheStats = TraversalEngine::CacheStats;
  CacheStats GetCacheStats() const { return engine_.GetCacheStats(); }

 private:
  nam::Cluster& cluster_;
  IndexConfig config_;
  Partitioner partitioner_;
  uint32_t catalog_slot_;
  // Tree id s in the engine is partition s's tree.
  TraversalEngine engine_;
  std::vector<rdma::RemotePtr> first_leaves_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_COARSE_ONE_SIDED_H_
