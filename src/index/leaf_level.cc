#include "index/leaf_level.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace namtree::index {

using btree::IsLocked;
using btree::Key;
using btree::KV;
using btree::kInfinityKey;
using btree::PageView;
using btree::Value;

namespace {

/// Writes `view`'s backing buffer directly into a region at setup time.
uint8_t* RegionPage(rdma::Fabric& fabric, rdma::RemotePtr ptr) {
  return fabric.region(ptr.server_id())->at(ptr.offset());
}

}  // namespace

Status LeafLevel::Build(rdma::Fabric& fabric,
                        std::span<const btree::KV> sorted,
                        const IndexConfig& config, BuildResult* out,
                        int32_t fixed_server) {
  const uint32_t page_size = config.page_size;
  const uint32_t servers = fabric.num_memory_servers();
  const uint32_t fill = std::max<uint32_t>(
      1, PageView::LeafCapacity(page_size) * config.leaf_fill_percent / 100);
  const uint32_t interval = config.head_node_interval;

  out->leaf_refs.clear();

  // Pass 1: allocate and fill the real leaves, round-robin over servers.
  std::vector<rdma::RemotePtr> leaves;
  size_t i = 0;
  uint32_t rr = 0;
  do {
    rdma::RemotePtr ptr;
    if (fixed_server >= 0) {
      ptr = fabric.region(static_cast<uint32_t>(fixed_server))
                ->AllocateLocal(page_size);
    } else {
      for (uint32_t attempt = 0; attempt < servers; ++attempt) {
        ptr = fabric.region(rr % servers)->AllocateLocal(page_size);
        rr++;
        if (!ptr.is_null()) break;
      }
    }
    if (ptr.is_null()) return Status::OutOfMemory("leaf level build");
    PageView leaf(RegionPage(fabric, ptr), page_size);
    leaf.InitLeaf(kInfinityKey, 0);
    const size_t take = std::min<size_t>(fill, sorted.size() - i);
    for (size_t j = 0; j < take; ++j) leaf.leaf_entries()[j] = sorted[i + j];
    leaf.header().count = static_cast<uint16_t>(take);
    out->leaf_refs.push_back(
        {take > 0 ? sorted[i].key : 0, ptr.raw()});
    leaves.push_back(ptr);
    i += take;
  } while (i < sorted.size());

  // Pass 2: link siblings + fences, inserting a head node after every
  // `interval`-th real leaf.
  for (size_t l = 0; l < leaves.size(); ++l) {
    PageView leaf(RegionPage(fabric, leaves[l]), page_size);
    const bool last = (l + 1 == leaves.size());
    const Key next_low = last ? kInfinityKey : out->leaf_refs[l + 1].low;
    leaf.header().high_key = next_low;
    if (last) {
      leaf.header().right_sibling = 0;
      break;
    }
    const bool head_here = interval > 0 && ((l + 1) % interval == 0);
    if (!head_here) {
      leaf.header().right_sibling = leaves[l + 1].raw();
      continue;
    }
    // Heads participate in the round-robin scatter like any other node
    // (or stay on the partition's server in fixed mode).
    rdma::RemotePtr head_ptr =
        fabric
            .region(fixed_server >= 0 ? static_cast<uint32_t>(fixed_server)
                                      : rr % servers)
            ->AllocateLocal(page_size);
    rr++;
    if (head_ptr.is_null()) {
      // Degrade gracefully: skip the head.
      leaf.header().right_sibling = leaves[l + 1].raw();
      continue;
    }
    PageView head(RegionPage(fabric, head_ptr), page_size);
    head.InitHead(leaves[l + 1].raw());
    const uint32_t n = static_cast<uint32_t>(std::min<size_t>(
        {static_cast<size_t>(interval), leaves.size() - (l + 1),
         static_cast<size_t>(head.head_capacity())}));
    for (uint32_t k = 0; k < n; ++k) {
      head.head_ptrs()[k] = leaves[l + 1 + k].raw();
    }
    head.header().count = static_cast<uint16_t>(n);
    leaf.header().right_sibling = head_ptr.raw();
  }

  out->first = leaves.front();
  return Status::OK();
}

sim::Task<LookupResult> LeafLevel::SearchChain(RemoteOps ops,
                                               rdma::RemotePtr start,
                                               Key key,
                                               const uint8_t* preread) {
  uint8_t* buf = ops.ctx().page_a();
  rdma::RemotePtr ptr = start;
  // namtree-lint: bounded-loop(chain-chase: every step moves right along ascending fences and stops at the first fence above key; read failures exit)
  for (;;) {
    const uint8_t* image;
    if (preread != nullptr) {
      // Speculatively prefetched image of `start`: already validated
      // unlocked by the descent, consumed exactly once.
      image = preread;
      preread = nullptr;
    } else {
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return LookupResult{false, 0, read.status};
      image = buf;
    }
    PageView view(const_cast<uint8_t*>(image), ops.page_size());
    if (view.is_head()) {
      ptr = rdma::RemotePtr(view.right_sibling());
      if (ptr.is_null()) co_return LookupResult{false, 0, Status::OK()};
      continue;
    }
    const int32_t idx = view.LeafFindLive(key);
    if (idx >= 0) {
      co_return LookupResult{true, view.leaf_entries()[idx].value,
                             Status::OK()};
    }
    if (view.NeedsChase(key)) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    co_return LookupResult{false, 0, Status::OK()};
  }
}

sim::Task<Status> LeafLevel::SearchChainMulti(RemoteOps ops,
                                              rdma::RemotePtr start,
                                              std::span<const Key> keys,
                                              LookupResult* results) {
  uint8_t* buf = ops.ctx().page_a();
  rdma::RemotePtr ptr = start;
  size_t i = 0;
  bool have_image = false;
  // Ascending keys make the walk monotone: the cursor only ever moves
  // right, and each visited page is read once no matter how many of the
  // group's keys it answers.
  // namtree-lint: bounded-loop(chain-chase: keys ascend and every re-read step moves right along ascending fences; read failures exit)
  while (i < keys.size()) {
    if (!have_image) {
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) {
        for (; i < keys.size(); ++i) {
          results[i] = LookupResult{false, 0, read.status};
        }
        co_return read.status;
      }
      have_image = true;
    }
    PageView view(buf, ops.page_size());
    if (view.is_head()) {
      ptr = rdma::RemotePtr(view.right_sibling());
      if (ptr.is_null()) {  // chain ends in a trailing head: clean misses
        for (; i < keys.size(); ++i) {
          results[i] = LookupResult{false, 0, Status::OK()};
        }
        co_return Status::OK();
      }
      have_image = false;
      continue;
    }
    const Key key = keys[i];
    const int32_t idx = view.LeafFindLive(key);
    if (idx >= 0) {
      results[i] =
          LookupResult{true, view.leaf_entries()[idx].value, Status::OK()};
      i++;
      continue;
    }
    if (view.NeedsChase(key)) {
      ptr = rdma::RemotePtr(view.right_sibling());
      have_image = false;
      continue;
    }
    results[i] = LookupResult{false, 0, Status::OK()};
    i++;
  }
  co_return Status::OK();
}

namespace {

/// Collects live [lo, hi) entries from a consistent leaf image.
uint64_t CollectFromImage(PageView view, Key lo, Key hi,
                          std::vector<KV>* out) {
  uint64_t found = 0;
  const uint32_t n = view.count();
  const KV* entries = view.leaf_entries();
  for (uint32_t i = view.LeafLowerBound(lo); i < n; ++i) {
    if (entries[i].key >= hi) break;
    if (!view.LeafIsTombstoned(i)) {
      if (out != nullptr) out->push_back(entries[i]);
      found++;
    }
  }
  return found;
}

}  // namespace

sim::Task<uint64_t> LeafLevel::ScanChain(RemoteOps ops, rdma::RemotePtr start,
                                         Key lo, Key hi,
                                         std::vector<KV>* out, Status* status) {
  // Every clean exit leaves this OK; the degraded-mode exits overwrite it
  // with the failing read's status so the caller can tell kUnavailable
  // (dead server/client) from kTimedOut (flaky-net budget exhausted).
  if (status != nullptr) *status = Status::OK();
  if (lo >= hi) co_return 0;
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();
  uint64_t found = 0;
  rdma::RemotePtr ptr = start;
  // Monotonic low bound: entries below the highest fence seen so far were
  // either already collected or belonged to a page we saw *after* an epoch
  // merge drained it — in both cases the absorber to the right holds them
  // and this cursor makes collection exactly-once (see RebalanceChain).
  Key cursor = lo;

  // Scratch space for prefetched leaves (sized on first head encounter).
  std::vector<uint8_t> prefetch_buf;

  // namtree-lint: bounded-loop(chain-chase: every step moves right along ascending fences and stops at the first fence >= hi or the rightmost page; read failures exit)
  for (;;) {
    // Degraded mode returns the partial count collected so far.
    const PageReadResult step = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!step.ok()) {
      if (status != nullptr) *status = step.status;
      co_return found;
    }
    PageView view(buf, page_size);

    if (!view.is_head()) {
      found += CollectFromImage(view, cursor, hi, out);
      if (!view.is_drained()) {
        cursor = std::max(cursor, std::min(view.high_key(), hi));
      }
      if (view.right_sibling() == 0) co_return found;
      if (view.high_key() >= hi) co_return found;
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }

    // Head node: prefetch the following leaves with one selectively
    // signaled batch (§4.3), then consume the images.
    const uint32_t n = view.count();
    if (n == 0) {
      ptr = rdma::RemotePtr(view.right_sibling());
      if (ptr.is_null()) co_return found;
      continue;
    }
    std::vector<uint64_t> targets(view.head_ptrs(), view.head_ptrs() + n);
    prefetch_buf.resize(static_cast<size_t>(n) * page_size);
    std::vector<rdma::Fabric::ReadRequest> reqs;
    reqs.reserve(n);
    for (uint32_t k = 0; k < n; ++k) {
      reqs.push_back({rdma::RemotePtr(targets[k]),
                      prefetch_buf.data() + static_cast<size_t>(k) * page_size,
                      page_size});
    }
    const Status batch = co_await ops.ReadPagesBatch(std::move(reqs));
    if (!batch.ok()) {
      if (status != nullptr) *status = batch;
      co_return found;  // batch dropped; images unspecified
    }

    bool resumed_chain = false;
    for (uint32_t k = 0; k < n; ++k) {
      uint8_t* image = prefetch_buf.data() + static_cast<size_t>(k) * page_size;
      PageView leaf(image, page_size);
      if (!ops.fabric().ServerAlive(rdma::RemotePtr(targets[k]).server_id()) ||
          IsLocked(leaf.version_word())) {
        // The prefetched image was mid-write, or its batch member was
        // dropped by a dead target server and the buffer slot holds stale
        // bytes from an earlier batch: fall back to a fresh spin-read,
        // which fails over to a live replica under replication.
        const PageReadResult reread =
            co_await ops.ReadPageUnlocked(rdma::RemotePtr(targets[k]), image);
        if (!reread.ok()) {
          if (status != nullptr) *status = reread.status;
          co_return found;
        }
        leaf = PageView(image, page_size);
      }
      if (leaf.is_head()) {  // stale pointer now naming a head: re-walk
        ptr = rdma::RemotePtr(targets[k]);
        resumed_chain = true;
        break;
      }
      found += CollectFromImage(leaf, cursor, hi, out);
      if (!leaf.is_drained()) {
        cursor = std::max(cursor, std::min(leaf.high_key(), hi));
      }
      if (leaf.right_sibling() == 0) co_return found;
      if (leaf.high_key() >= hi) co_return found;
      const uint64_t expected_next =
          (k + 1 < n) ? targets[k + 1] : leaf.right_sibling();
      if (leaf.right_sibling() != expected_next) {
        // Outdated head (a split added a leaf): abandon the remaining
        // prefetched images and follow the chain directly — one extra
        // remote read, exactly the §4.3 fallback.
        ptr = rdma::RemotePtr(leaf.right_sibling());
        resumed_chain = true;
        break;
      }
      if (k + 1 == n) {
        ptr = rdma::RemotePtr(leaf.right_sibling());
        resumed_chain = true;
      }
    }
    if (!resumed_chain || ptr.is_null()) co_return found;
  }
}

sim::Task<Status> LeafLevel::InsertAt(RemoteOps ops, rdma::RemotePtr start,
                                      Key key, Value value,
                                      SplitInfo* split,
                                      int32_t alloc_server) {
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();
  rdma::RemotePtr ptr = start;
  split->split = false;

  for (;;) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read.status;
    const uint64_t version = read.version;
    PageView view(buf, page_size);
    if (view.is_head()) {
      ptr = rdma::RemotePtr(view.right_sibling());
      if (ptr.is_null()) co_return Status::Corruption("chain ends in a head");
      continue;
    }
    if (view.NeedsChase(key)) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    const Status lock = co_await ops.TryLockPage(ptr, version);
    if (!lock.ok()) {
      if (!lock.IsAborted()) co_return lock;  // dead: no partial state
      ops.ctx().restarts.Inc();
      continue;  // version moved: re-read and retry
    }
    // The CAS succeeded against the version of our image, so the image is
    // the current content; stamp the locked word into it.
    ops.StampLocked(buf, version);

    if (view.LeafInsert(key, value)) {
      const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
      if (wu.IsAborted()) {
        // The locked acting primary died mid-publication (R>1): the lock
        // evaporated with the server; retry against the promoted replica.
        ops.ctx().restarts.Inc();
        continue;
      }
      co_return wu;
    }

    // Split: allocate the right page round-robin (RDMA_ALLOC), then
    // publish {right page, left page, unlock} as one in-order verb chain
    // (the right page lands before the left page points at it). A crash at
    // any point here is sound: the chain's unexecuted tail drops
    // atomically, an unpublished right page is an unreachable leak, and
    // the orphaned left lock is lease-stolen (the image behind it is
    // either the old or the fully split content — verbs are atomic).
    AllocResult alloc;
    if (alloc_server >= 0) {
      alloc = co_await ops.AllocPage(static_cast<uint32_t>(alloc_server));
    } else {
      alloc = co_await ops.AllocPageRoundRobin();
    }
    if (!alloc.ok()) {
      const Status unlock = co_await ops.UnlockPage(ptr);
      if (!unlock.ok()) co_return unlock;
      if (alloc.status.IsOutOfMemory()) {
        co_return Status::OutOfMemory("leaf split");
      }
      co_return alloc.status;  // dead allocation pool: surface it
    }
    const rdma::RemotePtr right_ptr = alloc.ptr;
    uint8_t* rbuf = ops.ctx().page_b();
    PageView right(rbuf, page_size);
    const Key separator = view.SplitLeafInto(right, right_ptr.raw());
    const bool ok = key < separator ? view.LeafInsert(key, value)
                                    : right.LeafInsert(key, value);
    assert(ok);
    (void)ok;
    const Status unlock =
        co_await ops.WriteSiblingAndUnlockPage(right_ptr, rbuf, ptr, buf);
    if (unlock.IsAborted()) {
      // Locked primary died mid-split-publication: the promoted replica
      // still shows the pre-split image. The allocated right page leaks
      // (unreachable); retry the whole pass.
      ops.ctx().restarts.Inc();
      continue;
    }
    if (!unlock.ok()) co_return unlock;

    split->split = true;
    split->separator = separator;
    split->right = right_ptr;
    co_return Status::OK();
  }
}

sim::Task<Status> LeafLevel::UpdateAt(RemoteOps ops, rdma::RemotePtr start,
                                      Key key, Value value) {
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();
  rdma::RemotePtr ptr = start;
  for (;;) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read.status;
    PageView view(buf, page_size);
    if (view.is_head()) {
      ptr = rdma::RemotePtr(view.right_sibling());
      if (ptr.is_null()) co_return Status::NotFound();
      continue;
    }
    if (view.LeafFindLive(key) < 0) {
      if (view.NeedsChase(key)) {
        ptr = rdma::RemotePtr(view.right_sibling());
        continue;
      }
      co_return Status::NotFound();
    }
    const Status lock = co_await ops.TryLockPage(ptr, read.version);
    if (!lock.ok()) {
      if (!lock.IsAborted()) co_return lock;
      ops.ctx().restarts.Inc();
      continue;
    }
    ops.StampLocked(buf, read.version);
    if (!view.LeafUpdateFirst(key, value)) {
      const Status unlock = co_await ops.UnlockPage(ptr);
      if (!unlock.ok()) co_return unlock;
      co_return Status::NotFound();  // defensive; CAS pinned the version
    }
    const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
    if (wu.IsAborted()) {
      ops.ctx().restarts.Inc();  // primary died mid-publication: retry promoted
      continue;
    }
    co_return wu;
  }
}

sim::Task<uint64_t> LeafLevel::CollectAt(RemoteOps ops, rdma::RemotePtr start,
                                         Key key,
                                         std::vector<Value>* out) {
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();
  rdma::RemotePtr ptr = start;
  uint64_t found = 0;
  // Chasing stops at the first fence above `key`; epoch merges never
  // straddle a duplicate run, so a fence above `key` guarantees no copies
  // of the run live further right (absorbed or otherwise).
  // namtree-lint: bounded-loop(chain-chase: every step moves right along ascending fences; read failures exit)
  for (;;) {
    if (!(co_await ops.ReadPageUnlocked(ptr, buf)).ok()) co_return found;
    PageView view(buf, page_size);
    if (view.is_head()) {
      ptr = rdma::RemotePtr(view.right_sibling());
      if (ptr.is_null()) co_return found;
      continue;
    }
    found += view.LeafCollect(key, out);
    if (view.NeedsChase(key)) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    co_return found;
  }
}

sim::Task<Status> LeafLevel::DeleteAt(RemoteOps ops, rdma::RemotePtr start,
                                      Key key) {
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();
  rdma::RemotePtr ptr = start;
  for (;;) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read.status;
    PageView view(buf, page_size);
    if (view.is_head()) {
      ptr = rdma::RemotePtr(view.right_sibling());
      if (ptr.is_null()) co_return Status::NotFound();
      continue;
    }
    if (view.LeafFindLive(key) < 0) {
      if (view.NeedsChase(key)) {
        ptr = rdma::RemotePtr(view.right_sibling());
        continue;
      }
      co_return Status::NotFound();
    }
    const Status lock = co_await ops.TryLockPage(ptr, read.version);
    if (!lock.ok()) {
      if (!lock.IsAborted()) co_return lock;
      ops.ctx().restarts.Inc();
      continue;
    }
    ops.StampLocked(buf, read.version);
    if (!view.LeafMarkDeleted(key)) {
      // Entry vanished between read and lock? Impossible: CAS pinned the
      // version. Defensive anyway.
      const Status unlock = co_await ops.UnlockPage(ptr);
      if (!unlock.ok()) co_return unlock;
      co_return Status::NotFound();
    }
    const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
    if (wu.IsAborted()) {
      ops.ctx().restarts.Inc();  // primary died mid-publication: retry promoted
      continue;
    }
    co_return wu;
  }
}

sim::Task<uint64_t> LeafLevel::CompactChain(RemoteOps ops,
                                            rdma::RemotePtr first) {
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();
  rdma::RemotePtr ptr = first;
  uint64_t reclaimed = 0;
  while (!ptr.is_null()) {
    if (!(co_await ops.ReadPageUnlocked(ptr, buf)).ok()) co_return reclaimed;
    PageView view(buf, page_size);
    if (view.is_head()) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    bool dirty = false;
    for (uint32_t i = 0; i < view.count(); ++i) {
      if (view.LeafIsTombstoned(i)) {
        dirty = true;
        break;
      }
    }
    if (!dirty) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    if (!(co_await ops.LockPage(ptr, buf)).ok()) co_return reclaimed;
    PageView locked_view(buf, page_size);
    reclaimed += locked_view.LeafCompact();
    const rdma::RemotePtr next(locked_view.right_sibling());
    if (!(co_await ops.WriteUnlockPage(ptr, buf)).ok()) co_return reclaimed;
    ptr = next;
  }
  co_return reclaimed;
}

sim::Task<uint64_t> LeafLevel::RebalanceChain(RemoteOps ops,
                                              rdma::RemotePtr first,
                                              uint32_t max_fill_percent) {
  const uint32_t page_size = ops.page_size();
  uint8_t* left_buf = ops.ctx().page_a();
  uint8_t* right_buf = ops.ctx().page_b();
  std::vector<uint8_t> peek_buf(page_size);

  uint64_t changed = 0;
  rdma::RemotePtr prev;  // last live leaf whose direct sibling is `ptr`
  rdma::RemotePtr ptr = first;

  while (!ptr.is_null()) {
    // A failed protocol step aborts the pass; epoch GC retries next epoch.
    if (!(co_await ops.ReadPageUnlocked(ptr, left_buf)).ok()) {
      co_return changed;
    }
    PageView page(left_buf, page_size);

    if (page.is_head()) {
      prev = rdma::RemotePtr();  // a head intervenes: no relink across it
      ptr = rdma::RemotePtr(page.right_sibling());
      continue;
    }

    if (page.is_drained()) {
      // Unlink a drained page when its direct predecessor is a live leaf
      // we tracked (GC is single-threaded, so its sibling is stable).
      const rdma::RemotePtr next(page.right_sibling());
      if (!prev.is_null()) {
        if (!(co_await ops.LockPage(prev, right_buf)).ok()) co_return changed;
        PageView pv(right_buf, page_size);
        if (pv.right_sibling() == ptr.raw()) {
          pv.header().right_sibling = next.raw();
          if (!(co_await ops.WriteUnlockPage(prev, right_buf)).ok()) {
            co_return changed;
          }
          changed++;
        } else {
          if (!(co_await ops.UnlockPage(prev)).ok()) co_return changed;
          prev = rdma::RemotePtr();  // chain changed; re-anchor later
        }
      }
      ptr = next;
      continue;
    }

    // Candidate merge: direct live-leaf successor, combined live entries
    // within budget, no duplicate run straddling the boundary (checked
    // again under the locks in TryMerge).
    const rdma::RemotePtr next(page.right_sibling());
    bool merged = false;
    rdma::RemotePtr replacement;
    bool relinked = false;
    if (!next.is_null()) {
      if (!(co_await ops.ReadPage(next, peek_buf.data())).ok()) {
        co_return changed;
      }
      PageView peek(peek_buf.data(), page_size);
      if (peek.is_leaf() && !peek.is_drained() &&
          !btree::IsLocked(peek.version_word())) {
        uint32_t left_live = 0;
        for (uint32_t i = 0; i < page.count(); ++i) {
          if (!page.LeafIsTombstoned(i)) left_live++;
        }
        uint32_t right_live = 0;
        for (uint32_t i = 0; i < peek.count(); ++i) {
          if (!peek.LeafIsTombstoned(i)) right_live++;
        }
        const uint32_t budget =
            PageView::LeafCapacity(page_size) * max_fill_percent / 100;
        if (left_live + right_live <= budget) {
          merged = co_await TryMerge(ops, prev, ptr, next, &replacement,
                                     &relinked, &changed);
        }
      }
    }
    if (merged) {
      // Continue at the freshly allocated absorber; `prev` is still its
      // direct predecessor iff the relink succeeded.
      if (!relinked) prev = rdma::RemotePtr();
      ptr = replacement;
    } else {
      prev = ptr;
      ptr = next;
    }
  }
  co_return changed;
}

sim::Task<bool> LeafLevel::TryMerge(RemoteOps ops, rdma::RemotePtr prev,
                                    rdma::RemotePtr left,
                                    rdma::RemotePtr right,
                                    rdma::RemotePtr* replacement,
                                    bool* relinked, uint64_t* changed) {
  const uint32_t page_size = ops.page_size();
  uint8_t* left_buf = ops.ctx().page_a();
  uint8_t* right_buf = ops.ctx().page_b();
  *relinked = false;

  // Any Unavailable below means *this* client died: no cleanup is possible
  // (our verbs are dropped); orphaned locks are reclaimed by lease-steal.
  if (!(co_await ops.LockPage(left, left_buf)).ok()) co_return false;
  PageView lv(left_buf, page_size);
  if (!lv.is_leaf() || lv.is_drained() ||
      lv.right_sibling() != right.raw()) {
    (void)co_await ops.UnlockPage(left);
    co_return false;  // the chain moved under us
  }
  if (!(co_await ops.LockPage(right, right_buf)).ok()) {
    (void)co_await ops.UnlockPage(left);
    co_return false;
  }
  PageView rv(right_buf, page_size);
  if (!rv.is_leaf() || rv.is_drained()) {
    (void)co_await ops.UnlockPage(right);
    (void)co_await ops.UnlockPage(left);
    co_return false;
  }

  lv.LeafCompact();
  rv.LeafCompact();
  const uint32_t ln = lv.count();
  const uint32_t rn = rv.count();
  const bool straddle = ln > 0 && rn > 0 &&
                        lv.leaf_entries()[ln - 1].key ==
                            rv.leaf_entries()[0].key;
  if (ln + rn > lv.leaf_capacity() || straddle) {
    (void)co_await ops.UnlockPage(right);
    (void)co_await ops.UnlockPage(left);
    co_return false;
  }

  // Migrate both pages into a fresh round-robin page so repeated merges
  // do not collapse the chain's server scatter (the fine-grained design's
  // whole point).
  const AllocResult fresh_alloc = co_await ops.AllocPageRoundRobin();
  if (!fresh_alloc.ok()) {
    (void)co_await ops.UnlockPage(right);
    (void)co_await ops.UnlockPage(left);
    co_return false;  // merge abandoned; GC retries next epoch
  }
  const rdma::RemotePtr fresh = fresh_alloc.ptr;
  std::vector<uint8_t> image(page_size);
  PageView nv(image.data(), page_size);
  nv.InitLeaf(rv.high_key(), rv.right_sibling());
  btree::KV* ne = nv.leaf_entries();
  for (uint32_t i = 0; i < ln; ++i) ne[i] = lv.leaf_entries()[i];
  for (uint32_t i = 0; i < rn; ++i) ne[ln + i] = rv.leaf_entries()[i];
  nv.header().count = static_cast<uint16_t>(ln + rn);
  // Fresh-page publication (primary + live backups under replication).
  if (!(co_await ops.WriteFreshPage(fresh, image.data())).ok()) {
    co_return false;  // absorber unpublished: harmless leak
  }

  // Publish right first (drained, rerouted to the absorber), then left:
  // any reader entering through either page converges on the absorber, and
  // the scans' monotonic fence cursor de-duplicates the transient overlap.
  rv.header().count = 0;
  rv.header().high_key = 0;
  rv.header().flags |= btree::kDrainedFlag;
  rv.header().right_sibling = fresh.raw();
  if (!(co_await ops.WriteUnlockPage(right, right_buf)).ok()) co_return false;

  lv.header().count = 0;
  lv.header().high_key = 0;
  lv.header().flags |= btree::kDrainedFlag;
  lv.header().right_sibling = fresh.raw();
  if (!(co_await ops.WriteUnlockPage(left, left_buf)).ok()) co_return false;

  // Bypass the drained pair when the tracked predecessor still points at
  // the left page (failure is benign: the chain via the drained pages
  // still reaches the absorber, and a later epoch unlinks them).
  if (!prev.is_null()) {
    const PageReadResult plock = co_await ops.LockPage(prev, right_buf);
    if (!plock.ok()) co_return false;
    PageView pv(right_buf, page_size);
    if (pv.right_sibling() == left.raw()) {
      pv.header().right_sibling = fresh.raw();
      if ((co_await ops.WriteUnlockPage(prev, right_buf)).ok()) {
        *relinked = true;
      }
    } else {
      (void)co_await ops.UnlockPage(prev);
    }
  }

  *replacement = fresh;
  (*changed)++;
  co_return true;
}

sim::Task<Status> LeafLevel::RebuildHeadNodes(RemoteOps ops,
                                              rdma::RemotePtr first,
                                              uint32_t interval) {
  if (interval == 0) co_return Status::OK();
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();

  // Pass 1: collect the current real-leaf chain.
  std::vector<uint64_t> leaves;
  rdma::RemotePtr ptr = first;
  while (!ptr.is_null()) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read.status;
    PageView view(buf, page_size);
    if (!view.is_head() && !view.is_drained()) leaves.push_back(ptr.raw());
    ptr = rdma::RemotePtr(view.right_sibling());
  }

  // Pass 2: rewire the whole chain against the pass-1 snapshot — install a
  // fresh head after every interval-th leaf and bypass every old head
  // elsewhere. A leaf whose sibling matches neither the snapshot's next
  // leaf nor a head has split meanwhile; it is left alone and the next
  // epoch pass fixes its grouping.
  std::vector<uint8_t> probe_buf(page_size);
  for (size_t i = 0; i + 1 < leaves.size(); ++i) {
    const rdma::RemotePtr leaf_ptr(leaves[i]);
    const bool boundary = ((i + 1) % interval == 0);

    uint64_t desired = leaves[i + 1];
    if (boundary) {
      const size_t g = i + 1;
      const uint32_t n = static_cast<uint32_t>(std::min<size_t>(
          {static_cast<size_t>(interval), leaves.size() - g,
           static_cast<size_t>(PageView::HeadCapacity(page_size))}));
      const AllocResult head_alloc =
          co_await ops.AllocPage(rdma::RemotePtr(leaves[g]).server_id());
      if (!head_alloc.ok()) {
        if (head_alloc.status.IsOutOfMemory()) {
          co_return Status::OutOfMemory("head rebuild");
        }
        co_return head_alloc.status;
      }
      const rdma::RemotePtr head_ptr = head_alloc.ptr;
      uint8_t* hbuf = ops.ctx().page_b();
      PageView head(hbuf, page_size);
      head.InitHead(leaves[g]);
      for (uint32_t k = 0; k < n; ++k) head.head_ptrs()[k] = leaves[g + k];
      head.header().count = static_cast<uint16_t>(n);
      // Fresh-page publication (primary + live backups under replication).
      const Status published = co_await ops.WriteFreshPage(head_ptr, hbuf);
      if (!published.ok()) co_return published;
      desired = head_ptr.raw();
    }

    const PageReadResult lock = co_await ops.LockPage(leaf_ptr, buf);
    if (!lock.ok()) co_return lock.status;
    PageView pv(buf, page_size);
    const uint64_t sibling = pv.right_sibling();
    bool relink = sibling == desired ? false : sibling == leaves[i + 1];
    if (!relink && sibling != desired && sibling != 0) {
      const Status probe =
          co_await ops.ReadPage(rdma::RemotePtr(sibling), probe_buf.data());
      if (!probe.ok()) {
        (void)co_await ops.UnlockPage(leaf_ptr);
        co_return probe;
      }
      relink = PageView(probe_buf.data(), page_size).is_head();
    }
    if (relink) {
      pv.header().right_sibling = desired;
      const Status wu = co_await ops.WriteUnlockPage(leaf_ptr, buf);
      if (!wu.ok()) co_return wu;
    } else {
      const Status ul = co_await ops.UnlockPage(leaf_ptr);
      if (!ul.ok()) co_return ul;
    }
  }
  co_return Status::OK();
}

sim::Task<uint64_t> LeafLevel::CountChain(RemoteOps ops,
                                          rdma::RemotePtr first,
                                          uint64_t* live_entries,
                                          uint64_t* tombstones) {
  const uint32_t page_size = ops.page_size();
  uint8_t* buf = ops.ctx().page_a();
  uint64_t pages = 0;
  uint64_t live = 0;
  uint64_t dead = 0;
  rdma::RemotePtr ptr = first;
  while (!ptr.is_null()) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) break;  // degraded: report the pages counted so far
    PageView view(buf, page_size);
    pages++;
    if (!view.is_head()) {
      for (uint32_t i = 0; i < view.count(); ++i) {
        if (view.LeafIsTombstoned(i)) {
          dead++;
        } else {
          live++;
        }
      }
    }
    ptr = rdma::RemotePtr(view.right_sibling());
  }
  if (live_entries != nullptr) *live_entries = live;
  if (tombstones != nullptr) *tombstones = dead;
  co_return pages;
}

}  // namespace namtree::index
