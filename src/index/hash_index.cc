#include "index/hash_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "btree/types.h"
#include "rdma/memory_region.h"

namespace namtree::index {

using btree::Key;
using btree::KV;
using btree::Value;

namespace {

/// Host/client view over one 128-byte bucket image.
struct BucketView {
  explicit BucketView(uint8_t* data) : data_(data) {}

  uint64_t version() const { return Read64(0); }
  uint16_t count() const {
    uint16_t v;
    std::memcpy(&v, data_ + 8, 2);
    return v;
  }
  void set_count(uint16_t v) { std::memcpy(data_ + 8, &v, 2); }

  KV slot(uint32_t i) const {
    KV kv;
    std::memcpy(&kv, data_ + 16 + i * sizeof(KV), sizeof(KV));
    return kv;
  }
  void set_slot(uint32_t i, KV kv) {
    std::memcpy(data_ + 16 + i * sizeof(KV), &kv, sizeof(KV));
  }

  uint64_t overflow() const {
    return Read64(16 + DistributedHashIndex::kSlotsPerBucket * sizeof(KV));
  }
  void set_overflow(uint64_t raw) {
    std::memcpy(
        data_ + 16 + DistributedHashIndex::kSlotsPerBucket * sizeof(KV),
        &raw, 8);
  }

  void Init() { std::memset(data_, 0, DistributedHashIndex::kBucketBytes); }

  /// Index of the first slot holding `key`, or -1.
  int32_t Find(Key key) const {
    for (uint32_t i = 0; i < count(); ++i) {
      if (slot(i).key == key) return static_cast<int32_t>(i);
    }
    return -1;
  }

 private:
  uint64_t Read64(uint32_t offset) const {
    uint64_t v;
    std::memcpy(&v, data_ + offset, 8);
    return v;
  }

  uint8_t* data_;
};

}  // namespace

DistributedHashIndex::DistributedHashIndex(nam::Cluster& cluster,
                                           IndexConfig config,
                                           double buckets_per_key)
    : cluster_(cluster), config_(config), buckets_per_key_(buckets_per_key) {}

uint64_t DistributedHashIndex::HashKey(Key key) {
  uint64_t h = key * 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return h;
}

rdma::RemotePtr DistributedHashIndex::HeadBucketFor(Key key) const {
  const uint64_t h = HashKey(key);
  const uint32_t servers = cluster_.num_memory_servers();
  const uint32_t server = static_cast<uint32_t>(h % servers);
  const uint64_t bucket = (h / servers) % buckets_per_server_;
  return rdma::RemotePtr::Make(server,
                               base_offsets_[server] + bucket * kBucketBytes);
}

Status DistributedHashIndex::BulkLoad(std::span<const KV> sorted) {
  const uint32_t servers = cluster_.num_memory_servers();
  buckets_per_server_ = std::max<uint64_t>(
      16, static_cast<uint64_t>(buckets_per_key_ *
                                static_cast<double>(sorted.size())) /
              servers);
  base_offsets_.assign(servers, 0);
  for (uint32_t s = 0; s < servers; ++s) {
    const rdma::RemotePtr base = cluster_.fabric().region(s)->AllocateLocal(
        buckets_per_server_ * kBucketBytes);
    if (base.is_null()) return Status::OutOfMemory("bucket arrays");
    base_offsets_[s] = base.offset();
    std::memset(cluster_.fabric().region(s)->at(base.offset()), 0,
                buckets_per_server_ * kBucketBytes);
  }

  // Host-side scatter of the initial data, chaining overflows as needed.
  for (const KV& kv : sorted) {
    rdma::RemotePtr ptr = HeadBucketFor(kv.key);
    for (;;) {
      rdma::MemoryRegion* region = cluster_.fabric().region(ptr.server_id());
      BucketView bucket(region->at(ptr.offset()));
      if (bucket.count() < kSlotsPerBucket) {
        bucket.set_slot(bucket.count(), kv);
        bucket.set_count(bucket.count() + 1);
        break;
      }
      if (bucket.overflow() != 0) {
        ptr = rdma::RemotePtr(bucket.overflow());
        continue;
      }
      const rdma::RemotePtr next = region->AllocateLocal(kBucketBytes);
      if (next.is_null()) return Status::OutOfMemory("overflow bucket");
      BucketView(region->at(next.offset())).Init();
      bucket.set_overflow(next.raw());
      ptr = next;
    }
  }
  // Seed backup replicas from the bulk-loaded primaries (no-op at R=1).
  cluster_.fabric().SyncReplicasFromPrimaries();
  return Status::OK();
}

sim::Task<LookupResult> DistributedHashIndex::Lookup(nam::ClientContext& ctx,
                                                     Key key) {
  metrics::OpSpan span(ctx.trace(), "lookup");
  RemoteOps ops(ctx);
  uint8_t* buf = ctx.page_a();
  rdma::RemotePtr ptr = HeadBucketFor(key);
  while (!ptr.is_null()) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return LookupResult{false, 0, read.status};
    BucketView bucket(buf);
    const int32_t i = bucket.Find(key);
    if (i >= 0) {
      co_return LookupResult{true, bucket.slot(i).value, Status::OK()};
    }
    ptr = rdma::RemotePtr(bucket.overflow());
  }
  co_return LookupResult{false, 0, Status::OK()};
}

sim::Task<uint64_t> DistributedHashIndex::Scan(nam::ClientContext& ctx,
                                               Key lo, Key hi,
                                               std::vector<KV>* out,
                                               Status* status) {
  metrics::OpSpan span(ctx.trace(), "scan");
  // Range queries are the tree designs' raison d'etre; a hash index simply
  // cannot serve them (paper §8). Not a failure — the count is exactly 0.
  (void)ctx;
  (void)lo;
  (void)hi;
  (void)out;
  if (status != nullptr) *status = Status::OK();
  co_return 0;
}

sim::Task<Status> DistributedHashIndex::Insert(nam::ClientContext& ctx,
                                               Key key, Value value) {
  metrics::OpSpan span(ctx.trace(), "insert");
  RemoteOps ops(ctx);
  uint8_t* buf = ctx.page_a();
  rdma::RemotePtr ptr = HeadBucketFor(key);
  // Bounded: chain hops terminate and lock retries back off / propagate
  // failures. namtree-lint: bounded-loop(chain)
  for (;;) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read.status;
    BucketView bucket(buf);
    if (bucket.count() >= kSlotsPerBucket && bucket.overflow() != 0) {
      ptr = rdma::RemotePtr(bucket.overflow());
      continue;
    }
    const Status lock = co_await ops.TryLockPage(ptr, read.version);
    if (!lock.ok()) {
      if (!lock.IsAborted()) co_return lock;
      ctx.restarts.Inc();
      continue;
    }
    ops.StampLocked(buf, read.version);

    if (bucket.count() < kSlotsPerBucket) {
      bucket.set_slot(bucket.count(), KV{key, value});
      bucket.set_count(bucket.count() + 1);
      const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
      if (wu.IsAborted()) {
        ctx.restarts.Inc();  // primary died mid-publication: retry promoted
        continue;
      }
      co_return wu;
    }
    // Full tail bucket: chain a fresh overflow bucket holding the entry.
    const AllocResult next_alloc = co_await ops.AllocPage(ptr.server_id());
    if (!next_alloc.ok()) {
      if (!ops.alive()) co_return Status::Unavailable("client crashed");
      (void)co_await ops.UnlockPage(ptr);
      if (next_alloc.status.IsOutOfMemory()) {
        co_return Status::OutOfMemory("overflow bucket");
      }
      co_return next_alloc.status;
    }
    const rdma::RemotePtr next = next_alloc.ptr;
    std::vector<uint8_t> fresh(kBucketBytes, 0);
    BucketView next_bucket(fresh.data());
    next_bucket.set_slot(0, KV{key, value});
    next_bucket.set_count(1);
    // Crashing here orphans the bucket lock (lease-steal reclaims it) and
    // leaks the unpublished overflow bucket — both sound.
    const Status fresh_write =
        co_await ops.WriteRaw(next, fresh.data(), kBucketBytes);
    if (!fresh_write.ok()) co_return fresh_write;
    bucket.set_overflow(next.raw());
    const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
    if (wu.IsAborted()) {
      ctx.restarts.Inc();  // overflow bucket leaks (unreachable); retry promoted
      continue;
    }
    co_return wu;
  }
}

sim::Task<Status> DistributedHashIndex::Update(nam::ClientContext& ctx,
                                               Key key, Value value) {
  metrics::OpSpan span(ctx.trace(), "update");
  RemoteOps ops(ctx);
  uint8_t* buf = ctx.page_a();
  rdma::RemotePtr ptr = HeadBucketFor(key);
  while (!ptr.is_null()) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read.status;
    BucketView bucket(buf);
    const int32_t i = bucket.Find(key);
    if (i < 0) {
      ptr = rdma::RemotePtr(bucket.overflow());
      continue;
    }
    const Status lock = co_await ops.TryLockPage(ptr, read.version);
    if (!lock.ok()) {
      if (!lock.IsAborted()) co_return lock;
      ctx.restarts.Inc();
      continue;  // re-read the same bucket
    }
    ops.StampLocked(buf, read.version);
    KV kv = bucket.slot(i);
    kv.value = value;
    bucket.set_slot(i, kv);
    const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
    if (wu.IsAborted()) {
      ctx.restarts.Inc();  // primary died mid-publication: retry promoted
      continue;
    }
    co_return wu;
  }
  co_return Status::NotFound();
}

sim::Task<uint64_t> DistributedHashIndex::LookupAll(nam::ClientContext& ctx,
                                                    Key key,
                                                    std::vector<Value>* out) {
  metrics::OpSpan span(ctx.trace(), "lookup_all");
  RemoteOps ops(ctx);
  uint8_t* buf = ctx.page_a();
  rdma::RemotePtr ptr = HeadBucketFor(key);
  uint64_t found = 0;
  while (!ptr.is_null()) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) break;  // degraded: report the matches found so far
    BucketView bucket(buf);
    for (uint32_t i = 0; i < bucket.count(); ++i) {
      if (bucket.slot(i).key == key) {
        if (out != nullptr) out->push_back(bucket.slot(i).value);
        found++;
      }
    }
    ptr = rdma::RemotePtr(bucket.overflow());
  }
  co_return found;
}

sim::Task<Status> DistributedHashIndex::Delete(nam::ClientContext& ctx,
                                               Key key) {
  metrics::OpSpan span(ctx.trace(), "delete");
  RemoteOps ops(ctx);
  uint8_t* buf = ctx.page_a();
  rdma::RemotePtr ptr = HeadBucketFor(key);
  while (!ptr.is_null()) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read.status;
    BucketView bucket(buf);
    const int32_t i = bucket.Find(key);
    if (i < 0) {
      ptr = rdma::RemotePtr(bucket.overflow());
      continue;
    }
    const Status lock = co_await ops.TryLockPage(ptr, read.version);
    if (!lock.ok()) {
      if (!lock.IsAborted()) co_return lock;
      ctx.restarts.Inc();
      continue;
    }
    ops.StampLocked(buf, read.version);
    // In-place removal: swap the last slot down (hash order is arbitrary).
    bucket.set_slot(static_cast<uint32_t>(i),
                    bucket.slot(bucket.count() - 1));
    bucket.set_count(bucket.count() - 1);
    const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
    if (wu.IsAborted()) {
      ctx.restarts.Inc();  // primary died mid-publication: retry promoted
      continue;
    }
    co_return wu;
  }
  co_return Status::NotFound();
}

sim::Task<uint64_t> DistributedHashIndex::GarbageCollect(
    nam::ClientContext& ctx) {
  (void)ctx;
  co_return 0;  // deletes are physical; nothing to reclaim
}

DistributedHashIndex::Report DistributedHashIndex::ValidateStructure() const {
  Report report;
  const uint64_t chain_limit = 1'000'000;  // cycle guard
  for (uint32_t s = 0; s < cluster_.num_memory_servers(); ++s) {
    rdma::MemoryRegion* region = cluster_.fabric().region(s);
    for (uint64_t b = 0; b < buckets_per_server_; ++b) {
      rdma::RemotePtr ptr =
          rdma::RemotePtr::Make(s, base_offsets_[s] + b * kBucketBytes);
      report.head_buckets++;
      uint64_t hops = 0;
      bool head = true;
      while (!ptr.is_null()) {
        if (++hops > chain_limit) {
          report.violations.push_back("overflow chain cycle at server " +
                                      std::to_string(s) + " bucket " +
                                      std::to_string(b));
          break;
        }
        if (ptr.server_id() != s ||
            !region->Contains(ptr.offset(), kBucketBytes)) {
          report.violations.push_back("bad bucket pointer " + ptr.ToString());
          break;
        }
        BucketView bucket(region->at(ptr.offset()));
        if (!head) report.overflow_buckets++;
        if (btree::IsLocked(bucket.version())) {
          report.violations.push_back("leaked lock at " + ptr.ToString());
        }
        if (bucket.count() > kSlotsPerBucket) {
          report.violations.push_back("count over capacity at " +
                                      ptr.ToString());
          break;
        }
        for (uint32_t i = 0; i < bucket.count(); ++i) {
          report.entries++;
          const rdma::RemotePtr home = HeadBucketFor(bucket.slot(i).key);
          if (home.server_id() != s ||
              home.offset() != base_offsets_[s] + b * kBucketBytes) {
            report.violations.push_back("misplaced key " +
                                        std::to_string(bucket.slot(i).key));
          }
        }
        ptr = rdma::RemotePtr(bucket.overflow());
        head = false;
      }
    }
  }
  return report;
}

}  // namespace namtree::index
