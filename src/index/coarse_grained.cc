#include "index/coarse_grained.h"

#include <algorithm>

namespace namtree::index {

using btree::Key;
using btree::KV;
using btree::Value;

CoarseGrainedIndex::CoarseGrainedIndex(nam::Cluster& cluster,
                                       IndexConfig config)
    : cluster_(cluster),
      config_(config),
      partitioner_(config.partition, cluster.num_memory_servers()),
      rpc_service_(cluster.AllocateRpcService()) {}

Status CoarseGrainedIndex::BulkLoad(std::span<const KV> sorted) {
  partitioner_.FitBoundaries(sorted, config_.partition_weights);

  // Slice the sorted data into per-server runs. Hash partitioning needs a
  // scatter pass; range partitioning slices contiguously.
  const uint32_t servers = cluster_.num_memory_servers();
  std::vector<std::vector<KV>> scattered;
  std::vector<std::span<const KV>> slices(servers);
  if (partitioner_.kind() == PartitionKind::kHash) {
    scattered.resize(servers);
    for (const KV& kv : sorted) {
      scattered[partitioner_.ServerFor(kv.key)].push_back(kv);
    }
    for (uint32_t s = 0; s < servers; ++s) slices[s] = scattered[s];
  } else {
    size_t begin = 0;
    for (uint32_t s = 0; s < servers; ++s) {
      const Key upper = partitioner_.UpperBoundOf(s);
      size_t end = begin;
      while (end < sorted.size() && sorted[end].key < upper) end++;
      slices[s] = sorted.subspan(begin, end - begin);
      begin = end;
    }
  }

  trees_.clear();
  for (uint32_t s = 0; s < servers; ++s) {
    nam::MemoryServer& server = cluster_.memory_server(s);
    trees_.push_back(std::make_unique<ServerTree>(server, config_.page_size));
    Status status = trees_[s]->Build(slices[s], config_.leaf_fill_percent);
    if (!status.ok()) return status;
    server.RegisterHandler(
        rpc_service_, [this](nam::MemoryServer& srv, rdma::IncomingRpc rpc) {
          return Handle(srv, std::move(rpc));
        });
  }
  // Seed backup replicas from the bulk-loaded primaries (no-op at R=1).
  cluster_.fabric().SyncReplicasFromPrimaries();
  return Status::OK();
}

sim::Task<> CoarseGrainedIndex::Handle(nam::MemoryServer& server,
                                       rdma::IncomingRpc rpc) {
  co_await sim::Delay(cluster_.simulator(), server.RequestOverhead());
  ServerTree& tree = *trees_[server.server_id()];
  rdma::RpcResponse resp;

  switch (rpc.request.op) {
    case kLookup: {
      const LookupResult result = co_await tree.Lookup(rpc.request.arg0);
      resp.status = result.found
                        ? static_cast<uint16_t>(StatusCode::kOk)
                        : static_cast<uint16_t>(StatusCode::kNotFound);
      resp.arg0 = result.value;
      break;
    }
    case kScan: {
      std::vector<KV> hits;
      const uint64_t count =
          co_await tree.Scan(rpc.request.arg0, rpc.request.arg1, &hits);
      resp.status = static_cast<uint16_t>(StatusCode::kOk);
      resp.arg0 = count;
      resp.payload.reserve(hits.size() * 2);
      for (const KV& kv : hits) {
        resp.payload.push_back(kv.key);
        resp.payload.push_back(kv.value);
      }
      break;
    }
    case kInsert: {
      const Status status =
          co_await tree.Insert(rpc.request.arg0, rpc.request.arg1);
      resp.status = static_cast<uint16_t>(status.code());
      break;
    }
    case kDelete: {
      const Status status = co_await tree.Delete(rpc.request.arg0);
      resp.status = static_cast<uint16_t>(status.code());
      break;
    }
    case kGc: {
      resp.arg0 = co_await tree.Compact();
      resp.status = static_cast<uint16_t>(StatusCode::kOk);
      break;
    }
    case kUpdate: {
      const Status status =
          co_await tree.Update(rpc.request.arg0, rpc.request.arg1);
      resp.status = static_cast<uint16_t>(status.code());
      break;
    }
    case kLookupAll: {
      std::vector<Value> values;
      resp.arg0 = co_await tree.LookupAll(rpc.request.arg0, &values);
      resp.status = static_cast<uint16_t>(StatusCode::kOk);
      resp.payload.assign(values.begin(), values.end());
      break;
    }
    case kBatch: {
      // Coalesced multi-op frame: triples of [opcode, key, value] in the
      // request payload, pairs of [status, value] in the response. All ops
      // execute under this one handler dispatch — the batch paid a single
      // RequestOverhead above.
      const std::vector<uint64_t>& in = rpc.request.payload;
      resp.status = static_cast<uint16_t>(StatusCode::kOk);
      resp.arg0 = in.size() / 3;
      resp.payload.reserve((in.size() / 3) * 2);
      for (size_t i = 0; i + 2 < in.size(); i += 3) {
        const auto op = static_cast<uint16_t>(in[i]);
        const Key key = in[i + 1];
        const Value value = in[i + 2];
        uint64_t op_status = static_cast<uint16_t>(StatusCode::kUnsupported);
        uint64_t op_value = 0;
        switch (op) {
          case kLookup: {
            const LookupResult result = co_await tree.Lookup(key);
            op_status = result.found
                            ? static_cast<uint16_t>(StatusCode::kOk)
                            : static_cast<uint16_t>(StatusCode::kNotFound);
            op_value = result.value;
            break;
          }
          case kInsert:
            op_status = static_cast<uint16_t>(
                (co_await tree.Insert(key, value)).code());
            break;
          case kUpdate:
            op_status = static_cast<uint16_t>(
                (co_await tree.Update(key, value)).code());
            break;
          case kDelete:
            op_status =
                static_cast<uint16_t>((co_await tree.Delete(key)).code());
            break;
          default:
            break;
        }
        resp.payload.push_back(op_status);
        resp.payload.push_back(op_value);
      }
      break;
    }
    default:
      resp.status = static_cast<uint16_t>(StatusCode::kUnsupported);
      break;
  }

  cluster_.fabric().Respond(server.server_id(), rpc, std::move(resp));
}

sim::Task<LookupResult> CoarseGrainedIndex::Lookup(nam::ClientContext& ctx,
                                                   Key key) {
  metrics::OpSpan span(ctx.trace(), "lookup");
  rdma::RpcRequest req;
  req.service = rpc_service_;
  req.op = kLookup;
  req.arg0 = key;
  rdma::RpcResponse resp =
      co_await ctx.Call(partitioner_.ServerFor(key), std::move(req));
  const auto code = static_cast<StatusCode>(resp.status);
  if (code == StatusCode::kOk) {
    co_return LookupResult{true, resp.arg0, Status::OK()};
  }
  if (code == StatusCode::kNotFound) {
    co_return LookupResult{false, 0, Status::OK()};
  }
  // Transport-level failure (dead caller / RPC deadline exhausted).
  co_return LookupResult{false, 0, Status::FromCode(code, "lookup rpc")};
}

sim::Task<uint64_t> CoarseGrainedIndex::Scan(nam::ClientContext& ctx, Key lo,
                                             Key hi, std::vector<KV>* out,
                                             Status* status) {
  metrics::OpSpan span(ctx.trace(), "scan");
  if (status != nullptr) *status = Status::OK();
  uint64_t found = 0;
  std::vector<KV> merged;
  const bool hash = partitioner_.kind() == PartitionKind::kHash;
  for (uint32_t server : partitioner_.ServersFor(lo, hi)) {
    rdma::RpcRequest req;
    req.service = rpc_service_;
    req.op = kScan;
    req.arg0 = lo;
    req.arg1 = hi;
    rdma::RpcResponse resp = co_await ctx.Call(server, std::move(req));
    if (resp.status != static_cast<uint16_t>(StatusCode::kOk)) {
      // Transport failure (kUnavailable = dead caller/server, kTimedOut =
      // RPC deadline exhausted): report the partial count and the reason.
      if (status != nullptr) {
        *status = Status::FromCode(static_cast<StatusCode>(resp.status),
                                   "scan rpc");
      }
      break;
    }
    found += resp.arg0;
    if (out != nullptr) {
      std::vector<KV>& sink = hash ? merged : *out;
      for (size_t i = 0; i + 1 < resp.payload.size(); i += 2) {
        sink.push_back(KV{resp.payload[i], resp.payload[i + 1]});
      }
    }
  }
  if (out != nullptr && hash) {
    // Hash partitioning scatters the range over all servers: merge by key.
    // Stable so duplicates keep their per-server (insertion) order.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
    out->insert(out->end(), merged.begin(), merged.end());
  }
  co_return found;
}

sim::Task<Status> CoarseGrainedIndex::Insert(nam::ClientContext& ctx, Key key,
                                             Value value) {
  metrics::OpSpan span(ctx.trace(), "insert");
  rdma::RpcRequest req;
  req.service = rpc_service_;
  req.op = kInsert;
  req.arg0 = key;
  req.arg1 = value;
  rdma::RpcResponse resp =
      co_await ctx.Call(partitioner_.ServerFor(key), std::move(req));
  const auto code = static_cast<StatusCode>(resp.status);
  if (code == StatusCode::kOk) co_return Status::OK();
  if (code == StatusCode::kUnavailable || code == StatusCode::kTimedOut ||
      code == StatusCode::kResourceExhausted) {
    co_return Status::FromCode(code, "insert rpc");
  }
  co_return Status::Aborted("insert failed");
}

sim::Task<Status> CoarseGrainedIndex::Update(nam::ClientContext& ctx, Key key,
                                             Value value) {
  metrics::OpSpan span(ctx.trace(), "update");
  rdma::RpcRequest req;
  req.service = rpc_service_;
  req.op = kUpdate;
  req.arg0 = key;
  req.arg1 = value;
  rdma::RpcResponse resp =
      co_await ctx.Call(partitioner_.ServerFor(key), std::move(req));
  const auto code = static_cast<StatusCode>(resp.status);
  if (code == StatusCode::kOk) co_return Status::OK();
  if (code == StatusCode::kUnavailable || code == StatusCode::kTimedOut) {
    co_return Status::FromCode(code, "update rpc");
  }
  co_return Status::NotFound();
}

sim::Task<uint64_t> CoarseGrainedIndex::LookupAll(
    nam::ClientContext& ctx, Key key, std::vector<Value>* out) {
  metrics::OpSpan span(ctx.trace(), "lookup_all");
  rdma::RpcRequest req;
  req.service = rpc_service_;
  req.op = kLookupAll;
  req.arg0 = key;
  rdma::RpcResponse resp =
      co_await ctx.Call(partitioner_.ServerFor(key), std::move(req));
  if (resp.status != static_cast<uint16_t>(StatusCode::kOk)) co_return 0;
  if (out != nullptr) {
    out->insert(out->end(), resp.payload.begin(), resp.payload.end());
  }
  co_return resp.arg0;
}

sim::Task<Status> CoarseGrainedIndex::Delete(nam::ClientContext& ctx,
                                             Key key) {
  metrics::OpSpan span(ctx.trace(), "delete");
  rdma::RpcRequest req;
  req.service = rpc_service_;
  req.op = kDelete;
  req.arg0 = key;
  rdma::RpcResponse resp =
      co_await ctx.Call(partitioner_.ServerFor(key), std::move(req));
  const auto code = static_cast<StatusCode>(resp.status);
  if (code == StatusCode::kOk) co_return Status::OK();
  if (code == StatusCode::kUnavailable || code == StatusCode::kTimedOut) {
    co_return Status::FromCode(code, "delete rpc");
  }
  co_return Status::NotFound();
}

sim::Task<void> CoarseGrainedIndex::RunBatch(nam::ClientContext& ctx,
                                             std::span<const PointOp> ops,
                                             PointOpResult* results) {
  metrics::OpSpan span(ctx.trace(), "batch");
  // Group ops by home server, preserving submission order inside a group,
  // then ship one kBatch frame per server: n same-server ops cost one
  // SEND/RECV round-trip and one server dispatch instead of n.
  const uint32_t servers = cluster_.num_memory_servers();
  std::vector<std::vector<size_t>> by_server(servers);
  for (size_t i = 0; i < ops.size(); ++i) {
    results[i] = PointOpResult{};
    by_server[partitioner_.ServerFor(ops[i].key)].push_back(i);
  }

  for (uint32_t s = 0; s < servers; ++s) {
    const std::vector<size_t>& group = by_server[s];
    if (group.empty()) continue;
    rdma::RpcRequest req;
    req.service = rpc_service_;
    req.op = kBatch;
    req.payload.reserve(group.size() * 3);
    for (size_t idx : group) {
      const PointOp& op = ops[idx];
      uint16_t opcode = kLookup;
      switch (op.kind) {
        case PointOpKind::kLookup: opcode = kLookup; break;
        case PointOpKind::kInsert: opcode = kInsert; break;
        case PointOpKind::kUpdate: opcode = kUpdate; break;
        case PointOpKind::kDelete: opcode = kDelete; break;
      }
      req.payload.push_back(opcode);
      req.payload.push_back(op.key);
      req.payload.push_back(op.value);
    }
    rdma::RpcResponse resp = co_await ctx.Call(s, std::move(req));
    if (resp.status != static_cast<uint16_t>(StatusCode::kOk)) {
      // Transport failure: the whole group shares the frame's fate.
      const auto code = static_cast<StatusCode>(resp.status);
      for (size_t idx : group) {
        results[idx].status = Status::FromCode(code, "batch rpc");
      }
      continue;
    }
    for (size_t g = 0; g < group.size(); ++g) {
      if (g * 2 + 1 >= resp.payload.size()) break;  // short frame: keep zeros
      PointOpResult& r = results[group[g]];
      const auto code = static_cast<StatusCode>(resp.payload[g * 2]);
      const uint64_t value = resp.payload[g * 2 + 1];
      if (ops[group[g]].kind == PointOpKind::kLookup) {
        // A lookup miss is a clean OK/not-found, not an error.
        r.found = code == StatusCode::kOk;
        r.value = value;
        r.status = (code == StatusCode::kOk || code == StatusCode::kNotFound)
                       ? Status::OK()
                       : Status::FromCode(code, "batch lookup");
      } else {
        r.status = code == StatusCode::kOk
                       ? Status::OK()
                       : Status::FromCode(code, "batch op");
      }
    }
  }
}

sim::Task<void> CoarseGrainedIndex::MultiGet(nam::ClientContext& ctx,
                                             std::span<const btree::Key> keys,
                                             LookupResult* results) {
  metrics::OpSpan span(ctx.trace(), "multiget");
  // Reuse the multi-op coalescing path: the keys become kLookup point ops,
  // one kBatch frame per home server.
  std::vector<PointOp> ops(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ops[i].kind = PointOpKind::kLookup;
    ops[i].key = keys[i];
  }
  std::vector<PointOpResult> op_results(keys.size());
  co_await RunBatch(ctx, ops, op_results.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    results[i] = LookupResult{op_results[i].found, op_results[i].value,
                              op_results[i].status};
  }
}

sim::Task<uint64_t> CoarseGrainedIndex::GarbageCollect(
    nam::ClientContext& ctx) {
  // Epoch GC runs on each memory server (paper §3.2); triggering it costs
  // one RPC per server.
  uint64_t reclaimed = 0;
  for (uint32_t s = 0; s < cluster_.num_memory_servers(); ++s) {
    rdma::RpcRequest req;
    req.service = rpc_service_;
    req.op = kGc;
    rdma::RpcResponse resp = co_await ctx.Call(s, std::move(req));
    if (resp.status != static_cast<uint16_t>(StatusCode::kOk)) break;
    reclaimed += resp.arg0;
  }
  co_return reclaimed;
}

}  // namespace namtree::index
