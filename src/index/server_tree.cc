#include "index/server_tree.h"

#include <algorithm>
#include <cassert>

#include "rdma/remote_ptr.h"

namespace namtree::index {

using btree::IsLocked;
using btree::Key;
using btree::KV;
using btree::kInfinityKey;
using btree::PageView;
using btree::Value;
using btree::WithLockBit;

namespace {

uint64_t& Word(PageView view) { return view.header().version_lock; }

}  // namespace

PageView ServerTree::View(uint64_t raw) const {
  const rdma::RemotePtr ptr(raw);
  assert(!ptr.is_null());
  assert(ptr.server_id() == server_.server_id());
  return PageView(server_.region().at(ptr.offset()), page_size_);
}

bool ServerTree::IsLocalPage(uint64_t raw) const {
  const rdma::RemotePtr ptr(raw);
  return !ptr.is_null() && ptr.server_id() == server_.server_id();
}

uint64_t ServerTree::AllocatePage() {
  const rdma::RemotePtr ptr = server_.region().AllocateLocal(page_size_);
  if (ptr.is_null()) return 0;  // region exhausted: caller surfaces it
  return ptr.raw();
}

sim::Task<void> ServerTree::Cpu(SimTime base) {
  co_await sim::Delay(server_.fabric().simulator(), server_.ScaledCpu(base));
}

sim::Task<uint64_t> ServerTree::AwaitUnlocked(uint64_t raw) {
  PageView view = View(raw);
  for (;;) {
    const uint64_t word = Word(view);
    if (!IsLocked(word)) co_return word;
    // The handler thread spins on the lock bit (Listing 3), keeping its
    // worker busy — exactly the effect §6.3 observes under write load.
    co_await sim::Delay(server_.fabric().simulator(),
                        server_.fabric().config().lock_retry_ns);
  }
}

sim::Task<uint64_t> ServerTree::DescendToBottom(Key key, uint64_t* version) {
  const auto& config = server_.fabric().config();
  for (;;) {  // restart loop
    uint64_t node = root_raw_;
    uint64_t v = co_await AwaitUnlocked(node);
    bool restart = false;
    while (!restart) {
      PageView view = View(node);
      if (view.level() == bottom_level_) {
        *version = v;
        co_return node;
      }
      // Model the binary search of the node, then act on a validated
      // snapshot (readUnlockOrRestart/checkOrRestart in Listing 1).
      co_await Cpu(config.cpu_inner_node_ns);
      if (Word(view) != v) {
        restart = true;
        break;
      }
      if (key > view.high_key()) {
        const uint64_t next = view.right_sibling();
        if (next == 0) {
          restart = true;
          break;
        }
        node = next;
        v = co_await AwaitUnlocked(node);
        continue;
      }
      const uint64_t child = view.InnerChildFor(key);
      const uint64_t child_version = co_await AwaitUnlocked(child);
      if (Word(view) != v) {
        restart = true;
        break;
      }
      node = child;
      v = child_version;
    }
  }
}

sim::Task<LookupResult> ServerTree::Lookup(Key key) {
  assert(!remote_leaves_ && "use FindLeafChild in hybrid mode");
  const auto& config = server_.fabric().config();
  for (;;) {
    uint64_t v = 0;
    uint64_t node = co_await DescendToBottom(key, &v);
    bool restart = false;
    while (!restart) {
      PageView view = View(node);
      co_await Cpu(config.cpu_leaf_node_ns);
      if (Word(view) != v) {
        restart = true;
        break;
      }
      const int32_t idx = view.LeafFindLive(key);
      if (idx >= 0) {
        co_return LookupResult{true, view.leaf_entries()[idx].value,
                               Status::OK()};
      }
      if (view.NeedsChase(key)) {
        node = view.right_sibling();
        v = co_await AwaitUnlocked(node);
        continue;
      }
      co_return LookupResult{false, 0, Status::OK()};
    }
  }
}

sim::Task<uint64_t> ServerTree::Scan(Key lo, Key hi,
                                     std::vector<KV>* out) {
  assert(!remote_leaves_ && "hybrid scans walk the leaf chain client-side");
  const auto& config = server_.fabric().config();
  if (lo >= hi) co_return 0;
  uint64_t v = 0;
  uint64_t node = co_await DescendToBottom(lo, &v);
  uint64_t found = 0;
  for (;;) {
    PageView view = View(node);
    co_await Cpu(config.cpu_leaf_node_ns);
    if (Word(view) != v) {
      v = co_await AwaitUnlocked(node);
      continue;  // re-scan this page
    }
    const uint32_t n = view.count();
    const KV* entries = view.leaf_entries();
    for (uint32_t i = view.LeafLowerBound(lo); i < n; ++i) {
      if (entries[i].key >= hi) break;
      if (!view.LeafIsTombstoned(i)) {
        if (out != nullptr) out->push_back(entries[i]);
        found++;
      }
    }
    if (view.right_sibling() == 0) co_return found;
    if (view.high_key() >= hi) co_return found;
    node = view.right_sibling();
    v = co_await AwaitUnlocked(node);
  }
}

sim::Task<Status> ServerTree::Insert(Key key, Value value) {
  assert(!remote_leaves_);
  const auto& config = server_.fabric().config();
  for (;;) {
    uint64_t v = 0;
    uint64_t node = co_await DescendToBottom(key, &v);
    // Chase right while the key belongs further on (duplicate-run fences or
    // a concurrent split).
    bool restart = false;
    for (;;) {
      PageView view = View(node);
      if (Word(view) != v) {
        restart = true;
        break;
      }
      if (view.NeedsChase(key)) {
        node = view.right_sibling();
        v = co_await AwaitUnlocked(node);
        continue;
      }
      break;
    }
    if (restart) continue;

    PageView view = View(node);
    if (Word(view) != v) continue;
    Word(view) = WithLockBit(v);  // upgradeToWriteLockOrRestart (CAS)
    co_await Cpu(config.cpu_leaf_node_ns + config.cpu_insert_extra_ns);

    if (view.LeafInsert(key, value)) {
      Word(view) = v + 2;  // writeUnlock
      co_return Status::OK();
    }

    // Split while holding the leaf lock (Listing 1 propagation).
    const uint64_t right_raw = AllocatePage();
    if (right_raw == 0) {
      Word(view) = v + 2;  // release the leaf lock, nothing changed
      co_return Status::ResourceExhausted("leaf split");
    }
    PageView right = View(right_raw);
    const Key separator = view.SplitLeafInto(right, right_raw);
    const bool ok = key < separator ? view.LeafInsert(key, value)
                                    : right.LeafInsert(key, value);
    assert(ok);
    (void)ok;
    co_await Cpu(config.cpu_insert_extra_ns);  // split work
    Word(view) = v + 2;

    // The insert itself took effect (the key is in the left or right half,
    // reachable via the sibling chain); a failed propagation still reports
    // the exhausted region to the caller.
    co_return co_await InstallSeparator(
        static_cast<uint8_t>(bottom_level_ + 1), separator, node, right_raw);
  }
}

sim::Task<Status> ServerTree::Update(Key key, Value value) {
  assert(!remote_leaves_);
  const auto& config = server_.fabric().config();
  for (;;) {
    uint64_t v = 0;
    uint64_t node = co_await DescendToBottom(key, &v);
    for (;;) {
      PageView view = View(node);
      if (Word(view) != v) break;  // restart descent
      Word(view) = WithLockBit(v);
      co_await Cpu(config.cpu_leaf_node_ns);
      const bool updated = view.LeafUpdateFirst(key, value);
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      Word(view) = v + 2;
      if (updated) co_return Status::OK();
      if (key >= high && next != 0) {
        node = next;
        v = co_await AwaitUnlocked(node);
        continue;
      }
      co_return Status::NotFound();
    }
  }
}

sim::Task<uint64_t> ServerTree::LookupAll(Key key,
                                          std::vector<Value>* out) {
  assert(!remote_leaves_);
  const auto& config = server_.fabric().config();
  for (;;) {
    uint64_t v = 0;
    uint64_t node = co_await DescendToBottom(key, &v);
    uint64_t found = 0;
    std::vector<Value> page_hits;
    for (;;) {
      PageView view = View(node);
      co_await Cpu(config.cpu_leaf_node_ns);
      if (Word(view) != v) {
        v = co_await AwaitUnlocked(node);
        continue;  // retry this page
      }
      page_hits.clear();
      view.LeafCollect(key, &page_hits);
      found += page_hits.size();
      if (out != nullptr) {
        out->insert(out->end(), page_hits.begin(), page_hits.end());
      }
      if (view.NeedsChase(key)) {
        node = view.right_sibling();
        v = co_await AwaitUnlocked(node);
        continue;
      }
      co_return found;
    }
  }
}

sim::Task<Status> ServerTree::Delete(Key key) {
  assert(!remote_leaves_);
  const auto& config = server_.fabric().config();
  for (;;) {
    uint64_t v = 0;
    uint64_t node = co_await DescendToBottom(key, &v);
    for (;;) {
      PageView view = View(node);
      if (Word(view) != v) break;  // restart descent
      Word(view) = WithLockBit(v);
      co_await Cpu(config.cpu_leaf_node_ns);
      const bool marked = view.LeafMarkDeleted(key);
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      Word(view) = v + 2;
      if (marked) co_return Status::OK();
      if (key >= high && next != 0) {
        node = next;
        v = co_await AwaitUnlocked(node);
        continue;
      }
      co_return Status::NotFound();
    }
  }
}

sim::Task<uint64_t> ServerTree::Compact() {
  assert(!remote_leaves_);
  const auto& config = server_.fabric().config();
  uint64_t v = 0;
  uint64_t node = co_await DescendToBottom(0, &v);
  uint64_t reclaimed = 0;
  while (node != 0) {
    PageView view = View(node);
    const uint64_t version = co_await AwaitUnlocked(node);
    Word(view) = WithLockBit(version);
    co_await Cpu(config.cpu_leaf_node_ns);
    reclaimed += view.LeafCompact();
    const uint64_t next = view.right_sibling();
    Word(view) = version + 2;
    node = next;
  }
  co_return reclaimed;
}

sim::Task<uint64_t> ServerTree::FindLeafChild(Key key) {
  assert(remote_leaves_);
  for (;;) {
    uint64_t v = 0;
    uint64_t node = co_await DescendToBottom(key, &v);
    bool restart = false;
    while (!restart) {
      PageView view = View(node);
      co_await Cpu(server_.fabric().config().cpu_inner_node_ns);
      if (Word(view) != v) {
        restart = true;
        break;
      }
      if (view.NeedsChase(key)) {
        // The bottom node split while we descended: chase right.
        node = view.right_sibling();
        v = co_await AwaitUnlocked(node);
        continue;
      }
      co_return view.InnerChildFor(key);
    }
  }
}

sim::Task<Status> ServerTree::InstallChildSeparator(Key sep,
                                                    uint64_t child_raw) {
  assert(remote_leaves_);
  co_return co_await InstallSeparator(bottom_level_, sep, /*left_raw=*/0,
                                      child_raw);
}

sim::Task<uint64_t> ServerTree::DescendToLevelLocked(uint8_t level, Key sep) {
  const auto& config = server_.fabric().config();
  for (;;) {
    if (root_level_ < level) co_return 0;
    uint64_t node = root_raw_;
    uint64_t v = co_await AwaitUnlocked(node);
    if (View(node).level() < level) continue;
    bool restart = false;
    while (!restart) {
      PageView view = View(node);
      if (view.level() == level) {
        if (Word(view) != v) {
          v = co_await AwaitUnlocked(node);
          continue;
        }
        Word(view) = WithLockBit(v);
        // Locked; hand over the lock rightwards while the separator
        // belongs further on (lock coupling along the chain).
        for (;;) {
          PageView cur = View(node);
          if (cur.NeedsChase(sep)) {
            const uint64_t next = cur.right_sibling();
            Word(cur) = btree::VersionOf(Word(cur)) + 2;  // unlock
            node = next;
            // AwaitUnlocked's final read and this store are in the same
            // event, so the lock acquisition cannot be interleaved.
            const uint64_t nv = co_await AwaitUnlocked(node);
            Word(View(node)) = WithLockBit(nv);
            continue;
          }
          break;
        }
        co_return node;
      }
      co_await Cpu(config.cpu_inner_node_ns);
      if (Word(view) != v) {
        restart = true;
        break;
      }
      if (sep > view.high_key()) {
        const uint64_t next = view.right_sibling();
        if (next == 0) {
          restart = true;
          break;
        }
        node = next;
        v = co_await AwaitUnlocked(node);
        continue;
      }
      const uint64_t child = view.InnerChildFor(sep);
      const uint64_t child_version = co_await AwaitUnlocked(child);
      if (Word(view) != v) {
        restart = true;
        break;
      }
      node = child;
      v = child_version;
    }
  }
}

ServerTree::GrowResult ServerTree::TryGrowRoot(uint8_t new_level, Key sep,
                                               uint64_t left_raw,
                                               uint64_t right_raw) {
  if (root_raw_ != left_raw) return GrowResult::kLostRace;
  const uint64_t new_root = AllocatePage();
  if (new_root == 0) return GrowResult::kExhausted;
  PageView view = View(new_root);
  view.InitInner(new_level, kInfinityKey, 0);
  view.inner_keys()[0] = sep;
  view.inner_children()[0] = left_raw;
  view.inner_children()[1] = right_raw;
  view.header().count = 1;
  root_raw_ = new_root;
  root_level_ = new_level;
  return GrowResult::kDone;
}

sim::Task<Status> ServerTree::InstallSeparator(uint8_t level, Key sep,
                                               uint64_t left_raw,
                                               uint64_t right_raw) {
  const auto& config = server_.fabric().config();
  for (;;) {
    if (root_level_ < level) {
      // Only possible when the split node was the root (left_raw known).
      assert(left_raw != 0);
      const GrowResult grew = TryGrowRoot(level, sep, left_raw, right_raw);
      if (grew == GrowResult::kDone) co_return Status::OK();
      if (grew == GrowResult::kExhausted) {
        co_return Status::ResourceExhausted("root growth");
      }
      continue;  // lost the race: some other handler grew the root
    }
    const uint64_t parent = co_await DescendToLevelLocked(level, sep);
    if (parent == 0) continue;
    PageView view = View(parent);
    co_await Cpu(config.cpu_inner_node_ns + config.cpu_insert_extra_ns);
    const uint64_t locked_word = Word(view);
    if (view.InnerInsert(sep, right_raw)) {
      Word(view) = btree::VersionOf(locked_word) + 2;
      co_return Status::OK();
    }
    const uint64_t new_raw = AllocatePage();
    if (new_raw == 0) {
      // Release the held parent lock before surfacing exhaustion: the
      // separator stays uninstalled but the chain below remains navigable.
      Word(view) = btree::VersionOf(locked_word) + 2;
      co_return Status::ResourceExhausted("inner split");
    }
    PageView right = View(new_raw);
    const Key promoted = view.SplitInnerInto(right, new_raw);
    PageView target = sep < promoted ? view : right;
    const bool ok = target.InnerInsert(sep, right_raw);
    assert(ok);
    (void)ok;
    Word(view) = btree::VersionOf(locked_word) + 2;
    co_return co_await InstallSeparator(static_cast<uint8_t>(level + 1),
                                        promoted, parent, new_raw);
  }
}

Status ServerTree::Build(std::span<const KV> sorted, uint32_t fill_percent) {
  remote_leaves_ = false;
  bottom_level_ = 0;
  const uint32_t leaf_fill = std::max<uint32_t>(
      1, PageView::LeafCapacity(page_size_) * fill_percent / 100);

  std::vector<ChildRef> level_nodes;
  size_t i = 0;
  uint64_t prev = 0;
  do {
    const uint64_t raw = AllocatePage();
    if (raw == 0) return Status::ResourceExhausted("bulk-load leaves");
    PageView leaf = View(raw);
    leaf.InitLeaf(kInfinityKey, 0);
    const size_t take = std::min<size_t>(leaf_fill, sorted.size() - i);
    for (size_t j = 0; j < take; ++j) leaf.leaf_entries()[j] = sorted[i + j];
    leaf.header().count = static_cast<uint16_t>(take);
    const Key low = take > 0 ? sorted[i].key : 0;
    if (prev != 0) {
      View(prev).header().right_sibling = raw;
      View(prev).header().high_key = low;
    }
    level_nodes.push_back({low, raw});
    prev = raw;
    i += take;
  } while (i < sorted.size());

  return BuildUpper(std::move(level_nodes), 0, fill_percent);
}

Status ServerTree::BuildOverChildren(std::span<const ChildRef> children,
                                     uint32_t fill_percent) {
  remote_leaves_ = true;
  bottom_level_ = 1;
  if (children.empty()) {
    return Status::InvalidArgument("hybrid tree needs at least one child");
  }
  std::vector<ChildRef> refs(children.begin(), children.end());
  return BuildUpper(std::move(refs), 0, fill_percent);
}

Status ServerTree::BuildUpper(std::vector<ChildRef> level_nodes,
                              uint8_t bottom_level, uint32_t fill_percent) {
  const uint32_t inner_fill = std::max<uint32_t>(
      2, PageView::InnerKeyCapacity(page_size_) * fill_percent / 100);

  uint8_t level = bottom_level;
  // In hybrid mode the lowest local level (1) must exist even when it only
  // has a single child, so build at least one inner level.
  const bool force_one_level = remote_leaves_;
  while (level_nodes.size() > 1 || (force_one_level && level == 0)) {
    level++;
    std::vector<ChildRef> upper;
    size_t j = 0;
    uint64_t prev = 0;
    while (j < level_nodes.size()) {
      const uint64_t raw = AllocatePage();
      if (raw == 0) return Status::ResourceExhausted("bulk-load inner levels");
      PageView inner = View(raw);
      inner.InitInner(level, kInfinityKey, 0);
      const size_t children =
          std::min<size_t>(inner_fill + 1, level_nodes.size() - j);
      inner.inner_children()[0] = level_nodes[j].raw_ptr;
      for (size_t c = 1; c < children; ++c) {
        inner.inner_keys()[c - 1] = level_nodes[j + c].low;
        inner.inner_children()[c] = level_nodes[j + c].raw_ptr;
      }
      inner.header().count = static_cast<uint16_t>(children - 1);
      if (prev != 0) {
        View(prev).header().right_sibling = raw;
        View(prev).header().high_key = level_nodes[j].low;
      }
      upper.push_back({level_nodes[j].low, raw});
      prev = raw;
      j += children;
    }
    level_nodes.swap(upper);
  }

  root_raw_ = level_nodes[0].raw_ptr;
  root_level_ = level;
  return Status::OK();
}

ServerTree::TreeStats ServerTree::GetStats() const {
  TreeStats stats;
  if (root_raw_ == 0) return stats;
  stats.height = root_level_ + 1ull;
  uint64_t node = root_raw_;
  for (;;) {
    PageView view = View(node);
    uint64_t chain = node;
    while (chain != 0 && IsLocalPage(chain)) {
      PageView cv = View(chain);
      stats.pages++;
      if (cv.is_leaf() && !remote_leaves_) {
        for (uint32_t i = 0; i < cv.count(); ++i) {
          if (cv.LeafIsTombstoned(i)) {
            stats.tombstones++;
          } else {
            stats.live_entries++;
          }
        }
      }
      chain = cv.right_sibling();
    }
    if (view.level() == bottom_level_) break;
    node = view.inner_children()[0];
    if (!IsLocalPage(node)) break;
  }
  return stats;
}

}  // namespace namtree::index
