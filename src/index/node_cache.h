#ifndef NAMTREE_INDEX_NODE_CACHE_H_
#define NAMTREE_INDEX_NODE_CACHE_H_

#include <cstdint>
#include <cstring>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace namtree::index {

/// Client-side cache of (inner) index-node images, the Appendix A.4
/// extension: compute servers keep copies of hot index nodes to skip remote
/// reads during traversal.
///
/// Invalidation is epoch-based: an entry older than `ttl` is discarded on
/// access (the appendix observes that precise invalidation is the hard
/// problem; a TTL bounds the staleness window instead). Stale images are
/// *safe* in a B-link tree — they can only route a traversal to a node
/// whose key range has since shrunk, and the sibling chase recovers — so
/// staleness costs extra hops, never correctness.
///
/// Eviction is LRU over a fixed page budget.
class NodeCache {
 public:
  NodeCache(uint32_t page_size, size_t capacity_pages, SimTime ttl)
      : page_size_(page_size), capacity_(capacity_pages), ttl_(ttl) {}

  uint32_t page_size() const { return page_size_; }
  size_t capacity() const { return capacity_; }
  SimTime ttl() const { return ttl_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t expirations() const { return expirations_; }
  size_t size() const { return entries_.size(); }

  /// Returns the cached image for `ptr_raw` (valid until the next cache
  /// mutation) or nullptr on miss/expiry.
  const uint8_t* Get(uint64_t ptr_raw, SimTime now) {
    auto it = entries_.find(ptr_raw);
    if (it == entries_.end()) {
      misses_++;
      return nullptr;
    }
    if (ttl_ > 0 && now - it->second.loaded_at > ttl_) {
      expirations_++;
      misses_++;
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
      return nullptr;
    }
    hits_++;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.image.data();
  }

  /// Non-mutating lookup for the speculative path predictor: no LRU touch,
  /// no hit/miss/expiration accounting, and — unlike Get — TTL-expired
  /// entries are neither erased nor hidden: the image is returned with
  /// `*expired = true` so the predictor can route through it locally (a
  /// stale inner image only routes too far left) while scheduling a fresh
  /// batched read for it. The pointer is valid until the next cache
  /// mutation; prediction must not await between Peek and use.
  const uint8_t* Peek(uint64_t ptr_raw, SimTime now, bool* expired) const {
    *expired = false;
    auto it = entries_.find(ptr_raw);
    if (it == entries_.end()) return nullptr;
    if (ttl_ > 0 && now - it->second.loaded_at > ttl_) *expired = true;
    return it->second.image.data();
  }

  /// Debug/test introspection: cached keys in LRU order (most recent
  /// first). Lets tests pin that speculative probing leaves the
  /// replacement state bit-identical to a no-speculation run.
  std::vector<uint64_t> LruKeys() const {
    return std::vector<uint64_t>(lru_.begin(), lru_.end());
  }

  /// Inserts/overwrites the image for `ptr_raw`, evicting the LRU entry
  /// when over budget.
  void Put(uint64_t ptr_raw, const uint8_t* image, SimTime now) {
    if (capacity_ == 0) return;
    auto it = entries_.find(ptr_raw);
    if (it != entries_.end()) {
      std::memcpy(it->second.image.data(), image, page_size_);
      it->second.loaded_at = now;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return;
    }
    if (entries_.size() >= capacity_) {
      const uint64_t victim = lru_.back();
      lru_.pop_back();
      entries_.erase(victim);
    }
    Entry entry;
    entry.image.assign(image, image + page_size_);
    entry.loaded_at = now;
    lru_.push_front(ptr_raw);
    entry.lru_pos = lru_.begin();
    entries_.emplace(ptr_raw, std::move(entry));
  }

  /// Drops one entry (e.g. after this client split that node itself).
  void Invalidate(uint64_t ptr_raw) {
    auto it = entries_.find(ptr_raw);
    if (it == entries_.end()) return;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }

  void Clear() {
    entries_.clear();
    lru_.clear();
  }

 private:
  struct Entry {
    std::vector<uint8_t> image;
    SimTime loaded_at = 0;
    std::list<uint64_t>::iterator lru_pos;
  };

  uint32_t page_size_;
  size_t capacity_;
  SimTime ttl_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;
  // namtree-lint: metric-ok(cache-local accounting surfaced through CacheStats; the cache is a value type created per context, not a registry owner)
  uint64_t hits_ = 0;
  // namtree-lint: metric-ok(see hits_)
  uint64_t misses_ = 0;
  uint64_t expirations_ = 0;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_NODE_CACHE_H_
