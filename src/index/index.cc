#include "index/index.h"

namespace namtree::index {

sim::Task<void> DistributedIndex::RunBatch(nam::ClientContext& ctx,
                                           std::span<const PointOp> ops,
                                           PointOpResult* results) {
  metrics::OpSpan span(ctx.trace(), "batch");
  // Sequential fallback: one point-op virtual per entry, in order. Designs
  // with an RPC transport override this with a coalesced multi-op frame.
  for (size_t i = 0; i < ops.size(); ++i) {
    const PointOp& op = ops[i];
    PointOpResult& r = results[i];
    r = PointOpResult{};
    switch (op.kind) {
      case PointOpKind::kLookup: {
        const LookupResult lr = co_await Lookup(ctx, op.key);
        r.status = lr.status;
        r.found = lr.found;
        r.value = lr.value;
        break;
      }
      case PointOpKind::kInsert:
        r.status = co_await Insert(ctx, op.key, op.value);
        break;
      case PointOpKind::kUpdate:
        r.status = co_await Update(ctx, op.key, op.value);
        break;
      case PointOpKind::kDelete:
        r.status = co_await Delete(ctx, op.key);
        break;
    }
  }
}

sim::Task<void> DistributedIndex::MultiGet(nam::ClientContext& ctx,
                                           std::span<const btree::Key> keys,
                                           LookupResult* results) {
  metrics::OpSpan span(ctx.trace(), "multiget");
  // Sequential fallback — the semantic contract every override must match.
  for (size_t i = 0; i < keys.size(); ++i) {
    results[i] = co_await Lookup(ctx, keys[i]);
  }
}

}  // namespace namtree::index
