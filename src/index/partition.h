#ifndef NAMTREE_INDEX_PARTITION_H_
#define NAMTREE_INDEX_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "btree/types.h"
#include "index/index.h"

namespace namtree::index {

/// Maps keys to memory servers for the coarse-grained and hybrid designs.
///
/// Range partitioning derives its split points from the bulk-loaded data
/// and a weight vector (so the paper's 80/12/5/3 attribute-value-skew
/// placement is expressed as weights); hash partitioning scatters keys and
/// therefore requires fan-out to all servers for range queries (Table 2).
class Partitioner {
 public:
  Partitioner(PartitionKind kind, uint32_t num_servers)
      : kind_(kind), num_servers_(num_servers) {}

  PartitionKind kind() const { return kind_; }
  uint32_t num_servers() const { return num_servers_; }

  /// Fixes range boundaries from the sorted bulk-load data: server i
  /// receives `weights[i]` (default: uniform) of the entries. No-op for
  /// hash partitioning.
  void FitBoundaries(std::span<const btree::KV> sorted,
                     std::span<const double> weights);

  /// Overrides range boundaries explicitly (`boundaries[i]` = exclusive
  /// upper bound of server i; size num_servers - 1). The hybrid design uses
  /// this to align partition edges with leaf fences.
  void SetBoundaries(std::vector<btree::Key> boundaries) {
    boundaries_ = std::move(boundaries);
  }

  /// The memory server owning `key`.
  uint32_t ServerFor(btree::Key key) const;

  /// Servers whose partitions intersect [lo, hi), in ascending key order
  /// for range partitioning; all servers for hash partitioning.
  std::vector<uint32_t> ServersFor(btree::Key lo, btree::Key hi) const;

  /// Exclusive upper bound of server `s`'s range (range partitioning).
  btree::Key UpperBoundOf(uint32_t s) const {
    return s < boundaries_.size() ? boundaries_[s] : btree::kInfinityKey;
  }

 private:
  static uint64_t HashKey(btree::Key key);

  PartitionKind kind_;
  uint32_t num_servers_;
  // boundaries_[i] = exclusive upper bound of server i (size num_servers-1).
  std::vector<btree::Key> boundaries_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_PARTITION_H_
