#include "index/remote_ops.h"

#include <cstring>

#include "btree/types.h"

namespace namtree::index {

using btree::IsLocked;
using btree::WithLockBit;

sim::Task<void> RemoteOps::ReadPage(rdma::RemotePtr ptr, uint8_t* buf) {
  ctx_->round_trips++;
  co_await fabric().Read(ctx_->client_id(), ptr, buf, page_size());
}

sim::Task<uint64_t> RemoteOps::ReadPageUnlocked(rdma::RemotePtr ptr,
                                                uint8_t* buf) {
  for (;;) {
    co_await ReadPage(ptr, buf);
    uint64_t version;
    std::memcpy(&version, buf + btree::kVersionOffset, 8);
    if (!IsLocked(version)) co_return version;
    ctx_->lock_waits++;
    co_await sim::Delay(fabric().simulator(), fabric().config().lock_retry_ns);
  }
}

sim::Task<bool> RemoteOps::TryLockPage(rdma::RemotePtr ptr,
                                       uint64_t version) {
  ctx_->round_trips++;
  const uint64_t old = co_await fabric().CompareAndSwap(
      ctx_->client_id(), ptr.Plus(btree::kVersionOffset), version,
      WithLockBit(version));
  co_return old == version;
}

sim::Task<uint64_t> RemoteOps::LockPage(rdma::RemotePtr ptr, uint8_t* buf) {
  for (;;) {
    const uint64_t version = co_await ReadPageUnlocked(ptr, buf);
    if (co_await TryLockPage(ptr, version)) {
      // Keep the local image consistent with the now-locked remote word so
      // a later WriteUnlockPage does not transiently clear the lock bit.
      const uint64_t locked = WithLockBit(version);
      std::memcpy(buf + btree::kVersionOffset, &locked, 8);
      co_return version;
    }
    ctx_->restarts++;
  }
}

sim::Task<void> RemoteOps::WriteUnlockPage(rdma::RemotePtr ptr,
                                           const uint8_t* buf) {
#ifndef NDEBUG
  uint64_t word;
  std::memcpy(&word, buf + btree::kVersionOffset, 8);
  assert(IsLocked(word) && "image must carry the lock bit until the FAA");
#endif
  ctx_->round_trips += 2;
  co_await fabric().Write(ctx_->client_id(), ptr, buf, page_size());
  co_await fabric().FetchAndAdd(ctx_->client_id(),
                                ptr.Plus(btree::kVersionOffset), 1);
}

sim::Task<void> RemoteOps::UnlockPage(rdma::RemotePtr ptr) {
  ctx_->round_trips++;
  co_await fabric().FetchAndAdd(ctx_->client_id(),
                                ptr.Plus(btree::kVersionOffset), 1);
}

sim::Task<rdma::RemotePtr> RemoteOps::AllocPage(uint32_t server) {
  const rdma::RemotePtr cursor =
      rdma::RemotePtr::Make(server, rdma::MemoryRegion::kAllocCursorOffset);
  ctx_->round_trips++;
  const uint64_t offset = co_await fabric().FetchAndAdd(
      ctx_->client_id(), cursor, page_size());
  if (offset + page_size() > fabric().region(server)->capacity()) {
    co_return rdma::RemotePtr::Null();
  }
  co_return rdma::RemotePtr::Make(server, offset);
}

sim::Task<rdma::RemotePtr> RemoteOps::AllocPageRoundRobin() {
  const uint32_t servers = fabric().num_memory_servers();
  const uint32_t server = ctx_->alloc_rr % servers;
  ctx_->alloc_rr++;
  co_return co_await AllocPage(server);
}

}  // namespace namtree::index
