#include "index/remote_ops.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "btree/types.h"

namespace namtree::index {

using btree::IsLocked;

// Network-fault recovery discipline (docs/fault_model.md §8): a verb that
// comes back kLost is *ambiguous* — the fabric may have executed its memory
// effect and lost only the completion. Every recovery below therefore
// either (a) re-posts a verb that is byte-idempotent (READs, WRITEs of the
// same image), or (b) resolves the ambiguity with a read-back before
// re-posting a non-idempotent atomic. Blind atomic re-posts are what the
// auditor's kUnresolvedAmbiguousRetry violation exists to catch. All
// re-posts are bounded by RetryPolicy::ForVerbs; exhaustion surfaces as
// kTimedOut so restart loops and the YCSB failure breakdown can tell a
// flaky link (kTimedOut) from a dead server (kUnavailable).

RouteResult RemoteOps::ActingPrimary(rdma::RemotePtr primary) const {
  rdma::Fabric& fabric = ctx_->fabric();
  for (uint32_t r = 0; r < fabric.replication(); ++r) {
    const rdma::RemotePtr replica = fabric.ReplicaPtr(primary, r);
    if (fabric.ServerAlive(replica.server_id())) {
      return RouteResult{Status::OK(), replica};
    }
  }
  return RouteResult{Status::Unavailable("all replicas dead"),
                     rdma::RemotePtr::Null()};
}

RouteResult RemoteOps::LockedReplica(rdma::RemotePtr ptr) const {
  auto it = ctx_->lock_routes.find(ptr.raw());
  if (it != ctx_->lock_routes.end()) {
    return RouteResult{Status::OK(), rdma::RemotePtr(it->second)};
  }
  return ActingPrimary(ptr);
}

void RemoteOps::StampLocked(uint8_t* buf, uint64_t version) {
  const uint64_t locked = btree::MakeLockedWord(version, ctx_->client_id());
  std::memcpy(buf + btree::kVersionOffset, &locked, 8);
}

sim::Task<Status> RemoteOps::ReadPageFrom(rdma::RemotePtr at, uint8_t* buf) {
  // With FabricConfig::read_combining a concurrent lane's identical READ
  // serves this one too: no verb posted, no round trip — only the
  // combined-read counter moves. Off (default), CombinedRead degenerates
  // to a plain Read and the toll is the historical one.
  const rdma::RetryPolicy policy = VerbPolicy();
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    const SimTime t0 = TraceStart();
    const rdma::CombinedReadResult read = co_await fabric().CombinedRead(
        ctx_->client_id(), at, buf, page_size());
    TraceVerbEvent(metrics::TraceVerb::kRead, at.server_id(), /*chain=*/0, t0);
    if (read.combined) {
      ctx_->combined_reads.Inc();
    } else {
      ctx_->round_trips.Inc();
    }
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (!fabric().ServerAlive(at.server_id())) {
      co_return Status::Unavailable("memory server dead");
    }
    if (read.ok()) co_return Status::OK();
    // The READ or its completion was lost. A READ has no remote effect, so
    // the re-post is sanctioned as-is.
    // namtree-lint: retry-ok(READ is idempotent)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("READ lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
}

sim::Task<Status> RemoteOps::ReadWord(rdma::RemotePtr at, uint64_t* out) {
  const rdma::RetryPolicy policy = VerbPolicy();
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    ctx_->round_trips.Inc();
    const SimTime t0 = TraceStart();
    const rdma::VerbCompletion done =
        co_await fabric().Read(ctx_->client_id(), at, out, 8);
    TraceVerbEvent(metrics::TraceVerb::kRead, at.server_id(), /*chain=*/0, t0);
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (done == rdma::VerbCompletion::kOk) co_return Status::OK();
    // namtree-lint: retry-ok(READ is idempotent)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("READ lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
}

sim::Task<Status> RemoteOps::WriteWord(rdma::RemotePtr at, uint64_t value) {
  const rdma::RetryPolicy policy = VerbPolicy();
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    ctx_->round_trips.Inc();
    const SimTime t0 = TraceStart();
    const rdma::VerbCompletion done =
        co_await fabric().Write(ctx_->client_id(), at, &value, 8);
    TraceVerbEvent(metrics::TraceVerb::kWrite, at.server_id(), /*chain=*/0,
                   t0);
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (done == rdma::VerbCompletion::kOk) co_return Status::OK();
    // Re-posts the same 8 bytes — byte-idempotent.
    // namtree-lint: retry-ok(WRITE of identical bytes)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("WRITE lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
}

sim::Task<Status> RemoteOps::WriteRaw(rdma::RemotePtr at, const void* src,
                                      uint32_t len) {
  const rdma::RetryPolicy policy = VerbPolicy();
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    ctx_->round_trips.Inc();
    const SimTime t0 = TraceStart();
    const rdma::VerbCompletion done =
        co_await fabric().Write(ctx_->client_id(), at, src, len);
    TraceVerbEvent(metrics::TraceVerb::kWrite, at.server_id(), /*chain=*/0,
                   t0);
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (done == rdma::VerbCompletion::kOk) co_return Status::OK();
    // namtree-lint: retry-ok(WRITE of identical bytes)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("WRITE lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
}

sim::Task<Status> RemoteOps::ReadPagesBatch(
    std::vector<rdma::Fabric::ReadRequest> requests) {
  const rdma::RetryPolicy policy = VerbPolicy();
  // One event per batch slot, all under one chain id: the whole batch rides
  // one doorbell, so the slots share start/finish but keep per-server
  // attribution.
  const uint64_t chain = ctx_->trace().NextChainId();
  std::vector<uint32_t> servers;
  if (ctx_->trace().in_span()) {
    servers.reserve(requests.size());
    for (const rdma::Fabric::ReadRequest& r : requests) {
      servers.push_back(r.src.server_id());
    }
  }
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    ctx_->round_trips.Inc();
    const SimTime t0 = TraceStart();
    const rdma::VerbCompletion done =
        co_await fabric().ReadBatch(ctx_->client_id(), requests);
    for (const uint32_t server : servers) {
      TraceVerbEvent(metrics::TraceVerb::kReadBatch, server, chain, t0);
    }
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (done == rdma::VerbCompletion::kOk) co_return Status::OK();
    // A READ-only chain has no remote effect: re-post it wholesale.
    // namtree-lint: retry-ok(READ batch is idempotent)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("READ batch lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
}

sim::Task<Status> RemoteOps::ReadPage(rdma::RemotePtr ptr, uint8_t* buf) {
  // Bounded: each pass either returns or permanently excludes a replica
  // whose server died mid-read. namtree-lint: bounded-loop(failover)
  for (;;) {
    const RouteResult route = ActingPrimary(ptr);
    if (!route.ok()) co_return route.status;
    const Status read = co_await ReadPageFrom(route.ptr, buf);
    if (read.ok()) co_return Status::OK();
    if (!alive() || !fabric().replicated()) co_return read;
    // The acting primary died with the READ in flight: promote the next
    // live replica (ActingPrimary re-resolves past the dead server).
    if (fabric().ServerAlive(route.ptr.server_id())) co_return read;
    ctx_->restarts.Inc();
  }
}

sim::Task<PageReadResult> RemoteOps::ReadPageUnlocked(rdma::RemotePtr ptr,
                                                      uint8_t* buf) {
  const rdma::FabricConfig& cfg = fabric().config();
  sim::Simulator& simulator = fabric().simulator();
  const rdma::RetryPolicy lock_policy = rdma::RetryPolicy::ForLocks(cfg);
  const rdma::RetryPolicy steal_policy = rdma::RetryPolicy::ForSteal(cfg);
  // The exact locked word we have been watching, and since when. A change
  // of the word (new holder or new cycle) restarts both the lease window
  // and the backoff schedule.
  uint64_t watched_word = 0;
  SimTime locked_since = 0;
  uint32_t backoff_round = 0;
  // Consecutive liveness-registry probes that failed because the registry
  // host was dead; bounded like RPC retries so an unreachable registry
  // cannot wedge the waiter forever.
  uint32_t failed_probes = 0;
  // Bounded: each pass either returns, backs off (capped exponential), or
  // lease-steals from a dead holder. namtree-lint: bounded-loop(backoff)
  for (;;) {
    // Resolve the acting primary fresh each pass: the lock we watch (and
    // would steal) lives on the replica actually serving reads.
    const RouteResult route = ActingPrimary(ptr);
    if (!route.ok()) co_return PageReadResult{route.status, 0};
    const rdma::RemotePtr at = route.ptr;
    const Status read = co_await ReadPageFrom(at, buf);
    if (!read.ok()) {
      if (alive() && fabric().replicated() &&
          !fabric().ServerAlive(at.server_id())) {
        // Mid-read server death: promote and retry.
        ctx_->restarts.Inc();
        continue;
      }
      co_return PageReadResult{read, 0};
    }
    uint64_t word;
    std::memcpy(&word, buf + btree::kVersionOffset, 8);
    if (!IsLocked(word)) co_return PageReadResult{Status::OK(), word};
    ctx_->lock_waits.Inc();

    if (word != watched_word) {
      watched_word = word;
      locked_since = simulator.now();
      backoff_round = 0;
    } else if (cfg.lock_lease_ns > 0 &&
               simulator.now() - locked_since >= cfg.lock_lease_ns) {
      // Lease expired on this exact locked word: consult the liveness
      // registry. Readers steal too — otherwise a dead writer wedges every
      // optimistic reader of the page forever.
      const uint32_t holder = btree::HolderOf(word);
      ctx_->round_trips.Inc();
      const SimTime probe_t0 = TraceStart();
      const rdma::EpochReadResult probe =
          co_await fabric().ReadClientEpoch(ctx_->client_id(), holder);
      // The holder's registry record lives on server holder % N (its home;
      // failover may promote a replica — home is the attribution).
      TraceVerbEvent(metrics::TraceVerb::kRead,
                     holder % fabric().num_memory_servers(), /*chain=*/0,
                     probe_t0);
      if (!alive()) {
        co_return PageReadResult{Status::Unavailable("client crashed"), 0};
      }
      if (!probe.status.ok()) {
        // The epoch-hosting server is dead. Bounded retry on the steal
        // policy (the host's replica group may recover a route), then give
        // up cleanly instead of spinning forever on the orphaned lock.
        failed_probes++;
        ctx_->steal_retry_attempts.Inc();
        if (steal_policy.Exhausted(failed_probes)) {
          ctx_->steal_retry_exhausted.Inc();
          co_return PageReadResult{
              Status::Unavailable("liveness registry unreachable"), 0};
        }
      } else {
        failed_probes = 0;
        if (!probe.alive) {
          // CAS the orphan's locked word back to unlocked, one full
          // version cycle ahead so the orphan's partial image never
          // revalidates.
          ctx_->round_trips.Inc();
          const SimTime cas_t0 = TraceStart();
          const rdma::AtomicResult cas = co_await fabric().CompareAndSwap(
              ctx_->client_id(), at.Plus(btree::kVersionOffset), word,
              btree::StolenUnlockWord(word));
          TraceVerbEvent(metrics::TraceVerb::kCas, at.server_id(),
                         /*chain=*/0, cas_t0);
          if (!alive()) {
            co_return PageReadResult{Status::Unavailable("client crashed"),
                                     0};
          }
          // A lost steal CAS needs no dedicated resolution: the immediate
          // re-read below observes whichever outcome the network actually
          // delivered, and the CAS never re-posts.
          if (cas.ok() && cas.value == word) ctx_->lock_steals.Inc();
          // Re-read immediately (we or a faster waiter just freed it).
          watched_word = 0;
          backoff_round = 0;
          continue;
        }
        locked_since = simulator.now();  // holder is alive: renew the lease
      }
    }

    // Capped exponential backoff with per-client jitter: the delay doubles
    // per consecutive observation of the same locked word and is drawn
    // uniformly from [base/2, base) — RetryPolicy::BackoffFor is the
    // extracted historical formula (same single RNG draw per round).
    const SimTime delay = lock_policy.BackoffFor(backoff_round, ctx_->rng());
    ctx_->backoff_rounds.Inc();
    ctx_->lock_retry_attempts.Inc();
    backoff_round++;
    co_await sim::Delay(simulator, delay);
  }
}

sim::Task<Status> RemoteOps::TryLockPage(rdma::RemotePtr ptr,
                                         uint64_t version) {
  const RouteResult route = ActingPrimary(ptr);
  if (!route.ok()) co_return route.status;
  const uint64_t locked = btree::MakeLockedWord(version, ctx_->client_id());
  const rdma::RetryPolicy policy = VerbPolicy();
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    ctx_->round_trips.Inc();
    const SimTime t0 = TraceStart();
    const rdma::AtomicResult cas = co_await fabric().CompareAndSwap(
        ctx_->client_id(), route.ptr.Plus(btree::kVersionOffset), version,
        locked);
    TraceVerbEvent(metrics::TraceVerb::kCas, route.ptr.server_id(),
                   /*chain=*/0, t0);
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (!fabric().ServerAlive(route.ptr.server_id())) {
      // The acting primary died mid-CAS. Whether the swap landed or not,
      // that replica is gone — restart against the promoted one.
      co_return fabric().replicated()
          ? Status::Aborted("acting primary died during lock CAS")
          : Status::Unavailable("memory server dead");
    }
    if (cas.ok()) {
      if (cas.value != version) co_return Status::Aborted("lock CAS lost");
      break;  // acquired
    }
    // Ambiguous completion: the CAS — or only its ACK — was lost. Resolve
    // by reading the word back; the holder stamp in our locked word is the
    // witness. Blindly re-CASing here is exactly what the auditor's
    // UnresolvedAmbiguousRetry violation flags: a landed swap would make
    // the retry spin against our own lock.
    uint64_t word = 0;
    const Status read_back =
        co_await ReadWord(route.ptr.Plus(btree::kVersionOffset), &word);
    if (!read_back.ok()) co_return read_back;
    if (word == locked) break;  // the swap landed; only the ACK was lost
    if (word != version) co_return Status::Aborted("lock CAS lost");
    // The word is untouched: the verb itself was dropped. Re-posting is
    // sanctioned — the read-back proved there is no effect to duplicate.
    // namtree-lint: retry-ok(read-back proved the CAS had no effect)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("lock CAS lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
  if (fabric().replicated()) {
    // Remember which replica actually holds the lock so the release lands
    // there even if further failovers change the acting primary.
    ctx_->lock_routes[ptr.raw()] = route.ptr.raw();
  }
  co_return Status::OK();
}

sim::Task<PageReadResult> RemoteOps::LockPage(rdma::RemotePtr ptr,
                                              uint8_t* buf) {
  // Bounded: ReadPageUnlocked backs off / steals, and every failure mode
  // other than a lost CAS race propagates. namtree-lint: bounded-loop(cas)
  for (;;) {
    PageReadResult read = co_await ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read;
    const Status lock = co_await TryLockPage(ptr, read.version);
    if (lock.ok()) {
      // Keep the local image consistent with the now-locked remote word so
      // a later WriteUnlockPage does not transiently clear the lock bit.
      StampLocked(buf, read.version);
      co_return read;
    }
    if (!lock.IsAborted()) co_return PageReadResult{lock, 0};
    ctx_->restarts.Inc();
  }
}

sim::Task<Status> RemoteOps::WriteUnlockPage(rdma::RemotePtr ptr,
                                             const uint8_t* buf) {
  uint64_t word;
  std::memcpy(&word, buf + btree::kVersionOffset, 8);
  assert(IsLocked(word) && "image must carry the lock bit until the release");
  const RouteResult route = LockedReplica(ptr);
  if (!route.ok()) {
    ctx_->lock_routes.erase(ptr.raw());
    co_return route.status;
  }
  const rdma::RemotePtr locked_at = route.ptr;
  const uint32_t locked_server = locked_at.server_id();
  if (!fabric().ServerAlive(locked_server)) {
    // The lock evaporated with its server before we published anything:
    // retry the whole op against the promoted replica.
    ctx_->lock_routes.erase(ptr.raw());
    co_return fabric().replicated()
        ? Status::Aborted("locked primary died before publication")
        : Status::Unavailable("memory server dead");
  }
  const uint64_t unlocked = btree::VersionOf(word) + 2;
  // Backup images carry the clean post-release word: a locked backup word
  // would wedge promotion forever (the holder is alive, so no waiter may
  // steal it), and version-equality across replicas must imply
  // content-equality.
  std::vector<uint8_t> backup_img;
  if (fabric().replicated()) {
    backup_img.assign(buf, buf + page_size());
    std::memcpy(backup_img.data() + btree::kVersionOffset, &unlocked, 8);
  }
  const rdma::RetryPolicy policy = VerbPolicy();

  if (!fabric().config().verb_chaining) {
    // Unchained fallback: individually signaled WRITE + FAA release,
    // bit-identical to the pre-chain protocol (the FAA keeps the stale
    // holder bits in the unlocked word; VersionOf masks them out).
    ctx_->round_trips.Inc(2);
    // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
    for (uint32_t attempt = 0;; ++attempt) {
      const SimTime write_t0 = TraceStart();
      // namtree-lint: unchained-ok(verb_chaining-disabled fallback path)
      const rdma::VerbCompletion done = co_await fabric().Write(
          ctx_->client_id(), locked_at, buf, page_size());
      TraceVerbEvent(metrics::TraceVerb::kWrite, locked_server, /*chain=*/0,
                     write_t0);
      if (!alive()) co_return Status::Unavailable("client crashed");
      if (!fabric().ServerAlive(locked_server)) {
        ctx_->lock_routes.erase(ptr.raw());
        co_return fabric().replicated()
            ? Status::Aborted("locked primary died during publication")
            : Status::Unavailable("memory server dead");
      }
      if (done == rdma::VerbCompletion::kOk) break;
      // Lost page WRITE under our own lock: byte-idempotent re-post.
      // namtree-lint: retry-ok(WRITE of identical bytes under our lock)
      if (policy.Exhausted(attempt + 1)) {
        ctx_->lock_routes.erase(ptr.raw());
        ctx_->verb_retry_exhausted.Inc();
        co_return Status::TimedOut("publication WRITE lost in the network");
      }
      ctx_->verb_retry_attempts.Inc();
      ctx_->round_trips.Inc();
      co_await sim::Delay(fabric().simulator(),
                          policy.BackoffFor(attempt, ctx_->rng()));
    }
    for (uint32_t r = 0; fabric().replicated() && r < fabric().replication();
         ++r) {
      const rdma::RemotePtr rep = fabric().ReplicaPtr(ptr, r);
      if (rep == locked_at || !fabric().ServerAlive(rep.server_id())) {
        continue;
      }
      // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
      for (uint32_t attempt = 0;; ++attempt) {
        ctx_->round_trips.Inc();
        const SimTime rep_t0 = TraceStart();
        // namtree-lint: unchained-ok(verb_chaining-disabled fallback path)
        const rdma::VerbCompletion done = co_await fabric().Write(
            ctx_->client_id(), rep, backup_img.data(), page_size());
        TraceVerbEvent(metrics::TraceVerb::kWrite, rep.server_id(),
                       /*chain=*/0, rep_t0);
        if (!alive()) co_return Status::Unavailable("client crashed");
        if (!fabric().ServerAlive(locked_server)) {
          ctx_->lock_routes.erase(ptr.raw());
          co_return Status::Aborted("locked primary died during publication");
        }
        if (done == rdma::VerbCompletion::kOk) break;
        // A backup whose server died mid-WRITE is skipped, exactly as a
        // pre-WRITE death would have skipped it above.
        if (!fabric().ServerAlive(rep.server_id())) break;
        // namtree-lint: retry-ok(WRITE of identical bytes)
        if (policy.Exhausted(attempt + 1)) {
          ctx_->lock_routes.erase(ptr.raw());
          ctx_->verb_retry_exhausted.Inc();
          co_return Status::TimedOut("backup WRITE lost in the network");
        }
        ctx_->verb_retry_attempts.Inc();
        co_await sim::Delay(fabric().simulator(),
                            policy.BackoffFor(attempt, ctx_->rng()));
      }
    }
    // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
    for (uint32_t attempt = 0;; ++attempt) {
      const SimTime faa_t0 = TraceStart();
      const rdma::AtomicResult faa = co_await fabric().FetchAndAdd(
          ctx_->client_id(), locked_at.Plus(btree::kVersionOffset), 1);
      TraceVerbEvent(metrics::TraceVerb::kFaa, locked_server, /*chain=*/0,
                     faa_t0);
      if (!alive()) {
        ctx_->lock_routes.erase(ptr.raw());
        co_return Status::Unavailable("client crashed");
      }
      if (!fabric().ServerAlive(locked_server)) {
        ctx_->lock_routes.erase(ptr.raw());
        co_return fabric().replicated()
            ? Status::Aborted("locked primary died during publication")
            : Status::Unavailable("memory server dead");
      }
      if (faa.ok()) break;
      // Ambiguous release: did the +1 land before the ACK vanished? Read
      // the word back — it stays our locked word until the release is
      // visible.
      uint64_t now_word = 0;
      const Status read_back = co_await ReadWord(
          locked_at.Plus(btree::kVersionOffset), &now_word);
      if (!read_back.ok()) {
        ctx_->lock_routes.erase(ptr.raw());
        co_return read_back;
      }
      if (now_word != word) break;  // release visible (or lock stolen)
      // Still our locked word: the FAA never executed. Retrying the
      // non-idempotent FAA is sanctioned only behind this read-back — a
      // blind re-post would double-release.
      // namtree-lint: retry-ok(read-back proved the FAA had no effect)
      if (policy.Exhausted(attempt + 1)) {
        ctx_->lock_routes.erase(ptr.raw());
        ctx_->verb_retry_exhausted.Inc();
        co_return Status::TimedOut("unlock FAA lost in the network");
      }
      ctx_->verb_retry_attempts.Inc();
      ctx_->round_trips.Inc();
      co_await sim::Delay(fabric().simulator(),
                          policy.BackoffFor(attempt, ctx_->rng()));
    }
    ctx_->lock_routes.erase(ptr.raw());
    co_return Status::OK();
  }
  // Doorbell-batched {page WRITE, backup WRITEs, unlock WRITE}: one
  // doorbell, one completion. The unlock WRITE installs the next version
  // with the holder bits cleared — the same version an FAA release
  // reaches. Backup WRITEs are fenced on the locked primary: once it dies
  // a reader may already have promoted a backup, so a late backup WRITE
  // must not clobber the promoted copy.
  ctx_->round_trips.Inc();
  std::vector<rdma::Fabric::ChainOp> chain;
  chain.reserve(1 + fabric().replication());
  chain.push_back(
      rdma::Fabric::ChainOp::Write(locked_at, buf, page_size()));
  if (fabric().replicated()) {
    for (uint32_t r = 0; r < fabric().replication(); ++r) {
      const rdma::RemotePtr rep = fabric().ReplicaPtr(ptr, r);
      if (rep == locked_at || !fabric().ServerAlive(rep.server_id())) {
        continue;
      }
      rdma::Fabric::ChainOp op = rdma::Fabric::ChainOp::Write(
          rep, backup_img.data(), page_size());
      op.fence_server = static_cast<int32_t>(locked_server);
      chain.push_back(op);
    }
  }
  chain.push_back(rdma::Fabric::ChainOp::Write(
      locked_at.Plus(btree::kVersionOffset), &unlocked, 8));
  const uint64_t chain_id = ctx_->trace().NextChainId();
  std::vector<uint32_t> chain_servers;
  if (ctx_->trace().in_span()) {
    chain_servers.reserve(chain.size());
    for (const rdma::Fabric::ChainOp& op : chain) {
      chain_servers.push_back(op.target.server_id());
    }
  }
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    const SimTime chain_t0 = TraceStart();
    const rdma::VerbCompletion done =
        co_await fabric().PostChain(ctx_->client_id(), chain);
    for (const uint32_t server : chain_servers) {
      TraceVerbEvent(metrics::TraceVerb::kWrite, server, chain_id, chain_t0);
    }
    if (!alive()) {
      ctx_->lock_routes.erase(ptr.raw());
      co_return Status::Unavailable("client crashed");
    }
    if (!fabric().ServerAlive(locked_server)) {
      ctx_->lock_routes.erase(ptr.raw());
      co_return fabric().replicated()
          ? Status::Aborted("locked primary died during publication")
          : Status::Unavailable("memory server dead");
    }
    if (done == rdma::VerbCompletion::kOk) break;
    // Part of the chain — or only completions — was lost. The page stays
    // ours until the unlock WRITE is visible, so read the version word
    // back to decide.
    uint64_t now_word = 0;
    const Status read_back = co_await ReadWord(
        locked_at.Plus(btree::kVersionOffset), &now_word);
    if (!read_back.ok()) {
      ctx_->lock_routes.erase(ptr.raw());
      co_return read_back;
    }
    if (now_word != word) break;  // the release landed; only ACKs were lost
    // Still locked by us: the unlock WRITE never executed, so nobody can
    // have modified the page — every member re-posts the same bytes.
    // namtree-lint: retry-ok(read-back proved the release missing; chain is byte-idempotent)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->lock_routes.erase(ptr.raw());
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("publication chain lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    ctx_->round_trips.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
  ctx_->lock_routes.erase(ptr.raw());
  co_return Status::OK();
}

sim::Task<Status> RemoteOps::WriteSiblingAndUnlockPage(
    rdma::RemotePtr sibling, const uint8_t* sibling_buf, rdma::RemotePtr ptr,
    const uint8_t* buf) {
  const rdma::RetryPolicy policy = VerbPolicy();
  if (!fabric().config().verb_chaining) {
    // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
    for (uint32_t attempt = 0;; ++attempt) {
      ctx_->round_trips.Inc();
      const SimTime sib_t0 = TraceStart();
      const rdma::VerbCompletion done = co_await fabric().Write(
          ctx_->client_id(), sibling, sibling_buf, page_size());
      TraceVerbEvent(metrics::TraceVerb::kWrite, sibling.server_id(),
                     /*chain=*/0, sib_t0);
      if (!alive()) co_return Status::Unavailable("client crashed");
      if (done == rdma::VerbCompletion::kOk) break;
      // The sibling is unreachable until the page below publishes the
      // link: re-post freely. namtree-lint: retry-ok(unlinked page)
      if (policy.Exhausted(attempt + 1)) {
        ctx_->verb_retry_exhausted.Inc();
        co_return Status::TimedOut("sibling WRITE lost in the network");
      }
      ctx_->verb_retry_attempts.Inc();
      co_await sim::Delay(fabric().simulator(),
                          policy.BackoffFor(attempt, ctx_->rng()));
    }
    for (uint32_t r = 1; fabric().replicated() && r < fabric().replication();
         ++r) {
      const rdma::RemotePtr rep = fabric().ReplicaPtr(sibling, r);
      if (!fabric().ServerAlive(rep.server_id())) continue;
      // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
      for (uint32_t attempt = 0;; ++attempt) {
        ctx_->round_trips.Inc();
        const SimTime rep_t0 = TraceStart();
        // namtree-lint: unchained-ok(verb_chaining-disabled fallback path)
        const rdma::VerbCompletion done = co_await fabric().Write(
            ctx_->client_id(), rep, sibling_buf, page_size());
        TraceVerbEvent(metrics::TraceVerb::kWrite, rep.server_id(),
                       /*chain=*/0, rep_t0);
        if (!alive()) co_return Status::Unavailable("client crashed");
        if (done == rdma::VerbCompletion::kOk) break;
        if (!fabric().ServerAlive(rep.server_id())) break;
        // namtree-lint: retry-ok(unlinked page)
        if (policy.Exhausted(attempt + 1)) {
          ctx_->verb_retry_exhausted.Inc();
          co_return Status::TimedOut("sibling WRITE lost in the network");
        }
        ctx_->verb_retry_attempts.Inc();
        co_await sim::Delay(fabric().simulator(),
                            policy.BackoffFor(attempt, ctx_->rng()));
      }
    }
    co_return co_await WriteUnlockPage(ptr, buf);  // unchained path
  }
  uint64_t word;
  std::memcpy(&word, buf + btree::kVersionOffset, 8);
  assert(IsLocked(word) && "image must carry the lock bit until the release");
  const RouteResult route = LockedReplica(ptr);
  if (!route.ok()) {
    ctx_->lock_routes.erase(ptr.raw());
    co_return route.status;
  }
  const rdma::RemotePtr locked_at = route.ptr;
  const uint32_t locked_server = locked_at.server_id();
  if (!fabric().ServerAlive(locked_server)) {
    ctx_->lock_routes.erase(ptr.raw());
    co_return fabric().replicated()
        ? Status::Aborted("locked primary died before publication")
        : Status::Unavailable("memory server dead");
  }
  const uint64_t unlocked = btree::VersionOf(word) + 2;
  std::vector<uint8_t> backup_img;
  if (fabric().replicated()) {
    backup_img.assign(buf, buf + page_size());
    std::memcpy(backup_img.data() + btree::kVersionOffset, &unlocked, 8);
  }
  ctx_->round_trips.Inc();
  std::vector<rdma::Fabric::ChainOp> chain;
  chain.reserve(1 + 2 * fabric().replication());
  chain.push_back(
      rdma::Fabric::ChainOp::Write(sibling, sibling_buf, page_size()));
  if (fabric().replicated()) {
    // Sibling backups ride unfenced: the sibling is unreachable until the
    // page WRITE below publishes the link, so an orphaned sibling replica
    // (its chain cut by a mid-chain server death) is harmless garbage.
    for (uint32_t r = 1; r < fabric().replication(); ++r) {
      const rdma::RemotePtr rep = fabric().ReplicaPtr(sibling, r);
      if (!fabric().ServerAlive(rep.server_id())) continue;
      chain.push_back(rdma::Fabric::ChainOp::Write(rep, sibling_buf,
                                                   page_size()));
    }
  }
  chain.push_back(rdma::Fabric::ChainOp::Write(locked_at, buf, page_size()));
  if (fabric().replicated()) {
    for (uint32_t r = 0; r < fabric().replication(); ++r) {
      const rdma::RemotePtr rep = fabric().ReplicaPtr(ptr, r);
      if (rep == locked_at || !fabric().ServerAlive(rep.server_id())) {
        continue;
      }
      rdma::Fabric::ChainOp op = rdma::Fabric::ChainOp::Write(
          rep, backup_img.data(), page_size());
      op.fence_server = static_cast<int32_t>(locked_server);
      chain.push_back(op);
    }
  }
  chain.push_back(rdma::Fabric::ChainOp::Write(
      locked_at.Plus(btree::kVersionOffset), &unlocked, 8));
  const uint64_t chain_id = ctx_->trace().NextChainId();
  std::vector<uint32_t> chain_servers;
  if (ctx_->trace().in_span()) {
    chain_servers.reserve(chain.size());
    for (const rdma::Fabric::ChainOp& op : chain) {
      chain_servers.push_back(op.target.server_id());
    }
  }
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    const SimTime chain_t0 = TraceStart();
    const rdma::VerbCompletion done =
        co_await fabric().PostChain(ctx_->client_id(), chain);
    for (const uint32_t server : chain_servers) {
      TraceVerbEvent(metrics::TraceVerb::kWrite, server, chain_id, chain_t0);
    }
    if (!alive()) {
      ctx_->lock_routes.erase(ptr.raw());
      co_return Status::Unavailable("client crashed");
    }
    if (!fabric().ServerAlive(locked_server)) {
      ctx_->lock_routes.erase(ptr.raw());
      co_return fabric().replicated()
          ? Status::Aborted("locked primary died during publication")
          : Status::Unavailable("memory server dead");
    }
    if (done == rdma::VerbCompletion::kOk) break;
    // Same resolution as WriteUnlockPage: the page version word decides
    // whether the (idempotent) chain must be re-posted.
    uint64_t now_word = 0;
    const Status read_back = co_await ReadWord(
        locked_at.Plus(btree::kVersionOffset), &now_word);
    if (!read_back.ok()) {
      ctx_->lock_routes.erase(ptr.raw());
      co_return read_back;
    }
    if (now_word != word) break;  // the release landed; only ACKs were lost
    // namtree-lint: retry-ok(read-back proved the release missing; chain is byte-idempotent)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->lock_routes.erase(ptr.raw());
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("publication chain lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    ctx_->round_trips.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
  ctx_->lock_routes.erase(ptr.raw());
  co_return Status::OK();
}

sim::Task<Status> RemoteOps::UnlockPage(rdma::RemotePtr ptr) {
  const RouteResult route = LockedReplica(ptr);
  ctx_->lock_routes.erase(ptr.raw());
  if (!route.ok()) co_return route.status;
  if (fabric().replicated() &&
      !fabric().ServerAlive(route.ptr.server_id())) {
    // The lock evaporated with its server; the promoted replica carries a
    // clean unlocked word (backups never store locked words).
    co_return Status::OK();
  }
  const rdma::RetryPolicy policy = VerbPolicy();
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    ctx_->round_trips.Inc();
    const SimTime t0 = TraceStart();
    const rdma::AtomicResult faa = co_await fabric().FetchAndAdd(
        ctx_->client_id(), route.ptr.Plus(btree::kVersionOffset), 1);
    TraceVerbEvent(metrics::TraceVerb::kFaa, route.ptr.server_id(),
                   /*chain=*/0, t0);
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (!fabric().ServerAlive(route.ptr.server_id())) {
      co_return fabric().replicated()
          ? Status::OK()  // lock and server vanished together
          : Status::Unavailable("memory server dead");
    }
    if (faa.ok()) co_return Status::OK();
    // Ambiguous release: read the word back. While it is still locked with
    // our holder stamp the FAA provably never executed; anything else
    // means the release is visible (or a lease steal intervened — either
    // way a second +1 would corrupt the word).
    uint64_t now_word = 0;
    const Status read_back = co_await ReadWord(
        route.ptr.Plus(btree::kVersionOffset), &now_word);
    if (!read_back.ok()) co_return read_back;
    if (!(IsLocked(now_word) &&
          btree::HolderOf(now_word) == ctx_->client_id())) {
      co_return Status::OK();
    }
    // namtree-lint: retry-ok(read-back proved the FAA had no effect)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("unlock FAA lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
}

sim::Task<Status> RemoteOps::WriteFreshPage(rdma::RemotePtr ptr,
                                            const uint8_t* buf) {
  const rdma::RetryPolicy policy = VerbPolicy();
  if (!fabric().replicated()) {
    // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
    for (uint32_t attempt = 0;; ++attempt) {
      ctx_->round_trips.Inc();
      const SimTime t0 = TraceStart();
      const rdma::VerbCompletion done = co_await fabric().Write(
          ctx_->client_id(), ptr, buf, page_size());
      TraceVerbEvent(metrics::TraceVerb::kWrite, ptr.server_id(), /*chain=*/0,
                     t0);
      if (!alive()) co_return Status::Unavailable("client crashed");
      if (!fabric().ServerAlive(ptr.server_id())) {
        co_return Status::Unavailable("memory server dead");
      }
      if (done == rdma::VerbCompletion::kOk) co_return Status::OK();
      // The page is unreachable until a later publication links it.
      // namtree-lint: retry-ok(unlinked page, byte-idempotent)
      if (policy.Exhausted(attempt + 1)) {
        ctx_->verb_retry_exhausted.Inc();
        co_return Status::TimedOut("fresh-page WRITE lost in the network");
      }
      ctx_->verb_retry_attempts.Inc();
      co_await sim::Delay(fabric().simulator(),
                          policy.BackoffFor(attempt, ctx_->rng()));
    }
  }
  // Primary + all live backups, unfenced: the page is unreachable until a
  // later (fenced) publication links it, so partial replication after a
  // mid-chain death is harmless.
  ctx_->round_trips.Inc();
  std::vector<rdma::Fabric::ChainOp> chain;
  chain.reserve(fabric().replication());
  for (uint32_t r = 0; r < fabric().replication(); ++r) {
    const rdma::RemotePtr rep = fabric().ReplicaPtr(ptr, r);
    if (!fabric().ServerAlive(rep.server_id())) continue;
    chain.push_back(rdma::Fabric::ChainOp::Write(rep, buf, page_size()));
  }
  if (chain.empty()) co_return Status::Unavailable("all replicas dead");
  const uint64_t chain_id = ctx_->trace().NextChainId();
  std::vector<uint32_t> chain_servers;
  if (ctx_->trace().in_span()) {
    chain_servers.reserve(chain.size());
    for (const rdma::Fabric::ChainOp& op : chain) {
      chain_servers.push_back(op.target.server_id());
    }
  }
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    const SimTime chain_t0 = TraceStart();
    const rdma::VerbCompletion done =
        co_await fabric().PostChain(ctx_->client_id(), chain);
    for (const uint32_t server : chain_servers) {
      TraceVerbEvent(metrics::TraceVerb::kWrite, server, chain_id, chain_t0);
    }
    if (!alive()) co_return Status::Unavailable("client crashed");
    if (done == rdma::VerbCompletion::kOk) co_return Status::OK();
    // namtree-lint: retry-ok(unlinked pages, byte-idempotent)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return Status::TimedOut("fresh-page chain lost in the network");
    }
    ctx_->verb_retry_attempts.Inc();
    ctx_->round_trips.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
}

sim::Task<AllocResult> RemoteOps::AllocPage(uint32_t server) {
  uint32_t target = server;
  if (!fabric().ServerAlive(target)) {
    if (!fabric().replicated()) {
      co_return AllocResult{Status::Unavailable("memory server dead"),
                            rdma::RemotePtr::Null()};
    }
    // A dead home server's allocations move to the next live server; the
    // new page's replica group is the formula group of its actual host.
    const uint32_t n = fabric().num_memory_servers();
    bool found = false;
    for (uint32_t i = 1; i < n; ++i) {
      const uint32_t candidate = (server + i) % n;
      if (fabric().ServerAlive(candidate)) {
        target = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      co_return AllocResult{Status::Unavailable("all memory servers dead"),
                            rdma::RemotePtr::Null()};
    }
  }
  const rdma::RemotePtr cursor =
      rdma::RemotePtr::Make(target, rdma::MemoryRegion::kAllocCursorOffset);
  const rdma::RetryPolicy policy = VerbPolicy();
  // Ambiguity bookkeeping: a lost allocation FAA leaves no witness in the
  // allocated slot (unlike lock words, cursor slots carry no holder
  // stamp), so pre-read the cursor while faults can fire. An unchanged
  // cursor later proves a lost FAA never executed. The extra READ is
  // gated on fault enablement — knobs-off runs stay verb-identical.
  uint64_t cursor_before = 0;
  bool have_cursor_before = false;
  if (fabric().NetFaultsLive()) {
    const Status pre = co_await ReadWord(cursor, &cursor_before);
    if (!pre.ok()) co_return AllocResult{pre, rdma::RemotePtr::Null()};
    have_cursor_before = true;
  }
  uint64_t offset = 0;
  // Bounded by the verb retry budget. namtree-lint: bounded-loop(retry)
  for (uint32_t attempt = 0;; ++attempt) {
    ctx_->round_trips.Inc();
    const SimTime t0 = TraceStart();
    const rdma::AtomicResult faa = co_await fabric().FetchAndAdd(
        ctx_->client_id(), cursor, page_size());
    TraceVerbEvent(metrics::TraceVerb::kFaa, target, /*chain=*/0, t0);
    // A dead client's FAA is dropped and returns 0, which would alias the
    // region header — treat it as an allocation failure.
    if (!alive()) {
      co_return AllocResult{Status::Unavailable("client crashed"),
                            rdma::RemotePtr::Null()};
    }
    if (!fabric().ServerAlive(target)) {  // died mid-FAA: cursor never moved
      co_return AllocResult{Status::Unavailable("memory server dead"),
                            rdma::RemotePtr::Null()};
    }
    if (faa.ok()) {
      offset = faa.value;
      break;
    }
    // Ambiguous allocation: read the cursor back. Unchanged = our FAA
    // never executed, plain re-post. Moved = ours may be among the movers
    // but is indistinguishable from concurrent allocators', so re-draw
    // conservatively: at worst one page-size hole leaks in the stripe
    // (client.alloc_leaks counts the events).
    uint64_t cursor_now = 0;
    const Status read_back = co_await ReadWord(cursor, &cursor_now);
    if (!read_back.ok()) {
      co_return AllocResult{read_back, rdma::RemotePtr::Null()};
    }
    if (have_cursor_before && cursor_now != cursor_before) {
      ctx_->alloc_leaks.Inc();
    }
    cursor_before = cursor_now;
    have_cursor_before = true;
    // namtree-lint: retry-ok(read-back resolved the lost FAA; moved cursors leak, never alias)
    if (policy.Exhausted(attempt + 1)) {
      ctx_->verb_retry_exhausted.Inc();
      co_return AllocResult{Status::TimedOut("alloc FAA lost in the network"),
                            rdma::RemotePtr::Null()};
    }
    ctx_->verb_retry_attempts.Inc();
    co_await sim::Delay(fabric().simulator(),
                        policy.BackoffFor(attempt, ctx_->rng()));
  }
  if (offset + page_size() > fabric().AllocLimit(target)) {
    co_return AllocResult{Status::OutOfMemory("region exhausted"),
                          rdma::RemotePtr::Null()};
  }
  co_return AllocResult{Status::OK(), rdma::RemotePtr::Make(target, offset)};
}

sim::Task<AllocResult> RemoteOps::AllocPageRoundRobin() {
  const uint32_t servers = fabric().num_memory_servers();
  // Skip dead servers (bounded by the server count); exhaustion of the
  // chosen live server still surfaces as OutOfMemory, as before.
  for (uint32_t i = 0; i < servers; ++i) {
    const uint32_t server = ctx_->alloc_rr % servers;
    ctx_->alloc_rr++;
    if (!fabric().ServerAlive(server)) continue;
    co_return co_await AllocPage(server);
  }
  co_return AllocResult{Status::Unavailable("all memory servers dead"),
                        rdma::RemotePtr::Null()};
}

}  // namespace namtree::index
