#include "index/remote_ops.h"

#include <algorithm>
#include <cstring>

#include "btree/types.h"

namespace namtree::index {

using btree::IsLocked;

void RemoteOps::StampLocked(uint8_t* buf, uint64_t version) {
  const uint64_t locked = btree::MakeLockedWord(version, ctx_->client_id());
  std::memcpy(buf + btree::kVersionOffset, &locked, 8);
}

sim::Task<Status> RemoteOps::ReadPage(rdma::RemotePtr ptr, uint8_t* buf) {
  ctx_->round_trips++;
  co_await fabric().Read(ctx_->client_id(), ptr, buf, page_size());
  if (!alive()) co_return Status::Unavailable("client crashed");
  co_return Status::OK();
}

sim::Task<PageReadResult> RemoteOps::ReadPageUnlocked(rdma::RemotePtr ptr,
                                                      uint8_t* buf) {
  const rdma::FabricConfig& cfg = fabric().config();
  sim::Simulator& simulator = fabric().simulator();
  // The exact locked word we have been watching, and since when. A change
  // of the word (new holder or new cycle) restarts both the lease window
  // and the backoff schedule.
  uint64_t watched_word = 0;
  SimTime locked_since = 0;
  uint32_t backoff_round = 0;
  // Bounded: each pass either returns, backs off (capped exponential), or
  // lease-steals from a dead holder. namtree-lint: bounded-loop(backoff)
  for (;;) {
    const Status read = co_await ReadPage(ptr, buf);
    if (!read.ok()) co_return PageReadResult{read, 0};
    uint64_t word;
    std::memcpy(&word, buf + btree::kVersionOffset, 8);
    if (!IsLocked(word)) co_return PageReadResult{Status::OK(), word};
    ctx_->lock_waits++;

    if (word != watched_word) {
      watched_word = word;
      locked_since = simulator.now();
      backoff_round = 0;
    } else if (cfg.lock_lease_ns > 0 &&
               simulator.now() - locked_since >= cfg.lock_lease_ns) {
      // Lease expired on this exact locked word: consult the liveness
      // registry. Readers steal too — otherwise a dead writer wedges every
      // optimistic reader of the page forever.
      const uint32_t holder = btree::HolderOf(word);
      ctx_->round_trips++;
      const bool holder_alive =
          co_await fabric().ReadClientEpoch(ctx_->client_id(), holder);
      if (!alive()) {
        co_return PageReadResult{Status::Unavailable("client crashed"), 0};
      }
      if (!holder_alive) {
        // CAS the orphan's locked word back to unlocked, one full version
        // cycle ahead so the orphan's partial image never revalidates.
        ctx_->round_trips++;
        const uint64_t observed = co_await fabric().CompareAndSwap(
            ctx_->client_id(), ptr.Plus(btree::kVersionOffset), word,
            btree::StolenUnlockWord(word));
        if (!alive()) {
          co_return PageReadResult{Status::Unavailable("client crashed"), 0};
        }
        if (observed == word) ctx_->lock_steals++;
        // Re-read immediately (we or a faster waiter just freed it).
        watched_word = 0;
        backoff_round = 0;
        continue;
      }
      locked_since = simulator.now();  // holder is alive: renew the lease
    }

    // Capped exponential backoff with per-client jitter: the delay doubles
    // per consecutive observation of the same locked word and is drawn
    // uniformly from [base/2, base).
    const uint64_t cap = std::max<uint64_t>(cfg.lock_retry_ns,
                                            cfg.lock_backoff_max_ns);
    uint64_t base = static_cast<uint64_t>(cfg.lock_retry_ns)
                    << std::min<uint32_t>(backoff_round, 16);
    base = std::min(std::max<uint64_t>(base, 1), cap);
    const uint64_t half = base / 2;
    const SimTime delay = static_cast<SimTime>(
        half + static_cast<uint64_t>(ctx_->rng().NextDouble() *
                                     static_cast<double>(base - half)));
    ctx_->backoff_rounds++;
    backoff_round++;
    co_await sim::Delay(simulator, delay);
  }
}

sim::Task<Status> RemoteOps::TryLockPage(rdma::RemotePtr ptr,
                                         uint64_t version) {
  ctx_->round_trips++;
  const uint64_t old = co_await fabric().CompareAndSwap(
      ctx_->client_id(), ptr.Plus(btree::kVersionOffset), version,
      btree::MakeLockedWord(version, ctx_->client_id()));
  if (!alive()) co_return Status::Unavailable("client crashed");
  co_return old == version ? Status::OK() : Status::Aborted("lock CAS lost");
}

sim::Task<PageReadResult> RemoteOps::LockPage(rdma::RemotePtr ptr,
                                              uint8_t* buf) {
  // Bounded: ReadPageUnlocked backs off / steals, and every failure mode
  // other than a lost CAS race propagates. namtree-lint: bounded-loop(cas)
  for (;;) {
    PageReadResult read = co_await ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return read;
    const Status lock = co_await TryLockPage(ptr, read.version);
    if (lock.ok()) {
      // Keep the local image consistent with the now-locked remote word so
      // a later WriteUnlockPage does not transiently clear the lock bit.
      StampLocked(buf, read.version);
      co_return read;
    }
    if (!lock.IsAborted()) co_return PageReadResult{lock, 0};
    ctx_->restarts++;
  }
}

sim::Task<Status> RemoteOps::WriteUnlockPage(rdma::RemotePtr ptr,
                                             const uint8_t* buf) {
  uint64_t word;
  std::memcpy(&word, buf + btree::kVersionOffset, 8);
  assert(IsLocked(word) && "image must carry the lock bit until the release");
  if (!fabric().config().verb_chaining) {
    // Unchained fallback: individually signaled WRITE + FAA release,
    // bit-identical to the pre-chain protocol (the FAA keeps the stale
    // holder bits in the unlocked word; VersionOf masks them out).
    ctx_->round_trips += 2;
    // namtree-lint: unchained-ok(verb_chaining-disabled fallback path)
    co_await fabric().Write(ctx_->client_id(), ptr, buf, page_size());
    if (!alive()) co_return Status::Unavailable("client crashed");
    co_await fabric().FetchAndAdd(ctx_->client_id(),
                                  ptr.Plus(btree::kVersionOffset), 1);
    if (!alive()) co_return Status::Unavailable("client crashed");
    co_return Status::OK();
  }
  // Doorbell-batched {page WRITE, unlock WRITE}: one doorbell, one
  // completion. The unlock WRITE installs the next version with the holder
  // bits cleared — the same version an FAA release reaches.
  const uint64_t unlocked = btree::VersionOf(word) + 2;
  ctx_->round_trips++;
  std::vector<rdma::Fabric::ChainOp> chain;
  chain.reserve(2);
  chain.push_back(rdma::Fabric::ChainOp::Write(ptr, buf, page_size()));
  chain.push_back(rdma::Fabric::ChainOp::Write(
      ptr.Plus(btree::kVersionOffset), &unlocked, 8));
  co_await fabric().PostChain(ctx_->client_id(), std::move(chain));
  if (!alive()) co_return Status::Unavailable("client crashed");
  co_return Status::OK();
}

sim::Task<Status> RemoteOps::WriteSiblingAndUnlockPage(
    rdma::RemotePtr sibling, const uint8_t* sibling_buf, rdma::RemotePtr ptr,
    const uint8_t* buf) {
  if (!fabric().config().verb_chaining) {
    ctx_->round_trips++;
    co_await fabric().Write(ctx_->client_id(), sibling, sibling_buf,
                            page_size());
    if (!alive()) co_return Status::Unavailable("client crashed");
    co_return co_await WriteUnlockPage(ptr, buf);  // unchained path
  }
  uint64_t word;
  std::memcpy(&word, buf + btree::kVersionOffset, 8);
  assert(IsLocked(word) && "image must carry the lock bit until the release");
  const uint64_t unlocked = btree::VersionOf(word) + 2;
  ctx_->round_trips++;
  std::vector<rdma::Fabric::ChainOp> chain;
  chain.reserve(3);
  chain.push_back(
      rdma::Fabric::ChainOp::Write(sibling, sibling_buf, page_size()));
  chain.push_back(rdma::Fabric::ChainOp::Write(ptr, buf, page_size()));
  chain.push_back(rdma::Fabric::ChainOp::Write(
      ptr.Plus(btree::kVersionOffset), &unlocked, 8));
  co_await fabric().PostChain(ctx_->client_id(), std::move(chain));
  if (!alive()) co_return Status::Unavailable("client crashed");
  co_return Status::OK();
}

sim::Task<Status> RemoteOps::UnlockPage(rdma::RemotePtr ptr) {
  ctx_->round_trips++;
  co_await fabric().FetchAndAdd(ctx_->client_id(),
                                ptr.Plus(btree::kVersionOffset), 1);
  if (!alive()) co_return Status::Unavailable("client crashed");
  co_return Status::OK();
}

sim::Task<rdma::RemotePtr> RemoteOps::AllocPage(uint32_t server) {
  const rdma::RemotePtr cursor =
      rdma::RemotePtr::Make(server, rdma::MemoryRegion::kAllocCursorOffset);
  ctx_->round_trips++;
  const uint64_t offset = co_await fabric().FetchAndAdd(
      ctx_->client_id(), cursor, page_size());
  // A dead client's FAA is dropped and returns 0, which would alias the
  // region header — treat it as an allocation failure.
  if (!alive()) co_return rdma::RemotePtr::Null();
  if (offset + page_size() > fabric().region(server)->capacity()) {
    co_return rdma::RemotePtr::Null();
  }
  co_return rdma::RemotePtr::Make(server, offset);
}

sim::Task<rdma::RemotePtr> RemoteOps::AllocPageRoundRobin() {
  const uint32_t servers = fabric().num_memory_servers();
  const uint32_t server = ctx_->alloc_rr % servers;
  ctx_->alloc_rr++;
  co_return co_await AllocPage(server);
}

}  // namespace namtree::index
