#ifndef NAMTREE_INDEX_REMOTE_OPS_H_
#define NAMTREE_INDEX_REMOTE_OPS_H_

#include <cstdint>

#include "btree/page.h"
#include "nam/cluster.h"
#include "rdma/fabric.h"
#include "rdma/memory_region.h"
#include "rdma/remote_ptr.h"
#include "sim/task.h"

namespace namtree::index {

/// The one-sided page protocol of the fine-grained design (paper Listing 4):
/// remote reads with a remote spinlock on the version word, lock upgrade via
/// RDMA CAS, unlock-with-writeback via RDMA WRITE + FETCH_AND_ADD, and
/// remote page allocation via FETCH_AND_ADD on the region's allocation
/// cursor (RDMA_ALLOC).
///
/// A RemoteOps instance is a thin, per-client facade over the fabric; it
/// charges every verb to `ctx` for round-trip accounting.
class RemoteOps {
 public:
  explicit RemoteOps(nam::ClientContext& ctx) : ctx_(&ctx) {}

  nam::ClientContext& ctx() { return *ctx_; }
  rdma::Fabric& fabric() { return ctx_->fabric(); }
  uint32_t page_size() const { return ctx_->page_size(); }

  /// remote_read: one RDMA READ of a full page into `buf`.
  sim::Task<void> ReadPage(rdma::RemotePtr ptr, uint8_t* buf);

  /// remote_readLockOrRestart + remote_awaitNodeUnlocked: reads the page,
  /// re-reading (remote spinlock) while the lock bit is set. Returns the
  /// version word of the returned consistent image.
  sim::Task<uint64_t> ReadPageUnlocked(rdma::RemotePtr ptr, uint8_t* buf);

  /// remote_upgradeToWriteLockOrRestart: RDMA CAS(version -> version|1).
  /// True when the lock was acquired.
  sim::Task<bool> TryLockPage(rdma::RemotePtr ptr, uint64_t version);

  /// Spin variant: read-unlocked + CAS until the lock is held. On return,
  /// `buf` holds the locked image (its version word includes the lock bit)
  /// and the pre-lock version word is returned.
  sim::Task<uint64_t> LockPage(rdma::RemotePtr ptr, uint8_t* buf);

  /// remote_writeUnlock: installs the modified local image (which must
  /// still carry the lock bit) with an RDMA WRITE, then releases the lock
  /// with FETCH_AND_ADD(+1), bumping the version.
  sim::Task<void> WriteUnlockPage(rdma::RemotePtr ptr, const uint8_t* buf);

  /// Releases a lock without content changes (FAA only).
  sim::Task<void> UnlockPage(rdma::RemotePtr ptr);

  /// RDMA_ALLOC on a specific server. Returns a null pointer when the
  /// region is exhausted.
  sim::Task<rdma::RemotePtr> AllocPage(uint32_t server);

  /// RDMA_ALLOC scattering allocations over all memory servers round-robin
  /// (keeps the fine-grained distribution property under splits).
  sim::Task<rdma::RemotePtr> AllocPageRoundRobin();

 private:
  nam::ClientContext* ctx_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_REMOTE_OPS_H_
