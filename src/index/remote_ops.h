#ifndef NAMTREE_INDEX_REMOTE_OPS_H_
#define NAMTREE_INDEX_REMOTE_OPS_H_

#include <cstdint>

#include "btree/page.h"
#include "common/status.h"
#include "nam/cluster.h"
#include "rdma/fabric.h"
#include "rdma/memory_region.h"
#include "rdma/remote_ptr.h"
#include "sim/task.h"

namespace namtree::index {

/// Outcome of a versioned page read: OK with the observed version word, or
/// the error that ended the protocol (kUnavailable once this client is
/// dead). Default-constructible on purpose — coroutine Task payloads must
/// be (Result<T> is not).
struct PageReadResult {
  Status status;
  uint64_t version = 0;

  bool ok() const { return status.ok(); }
};

/// The one-sided page protocol of the fine-grained design (paper Listing 4):
/// remote reads with a remote spinlock on the version word, lock upgrade via
/// RDMA CAS, unlock-with-writeback via RDMA WRITE + FETCH_AND_ADD, and
/// remote page allocation via FETCH_AND_ADD on the region's allocation
/// cursor (RDMA_ALLOC).
///
/// Crash-fault behavior: every op surfaces Status::Unavailable as soon as
/// the owning client is dead (its verbs are dropped by the fabric).
/// Spinning on a locked word uses capped exponential backoff with
/// per-client jitter, and — when FabricConfig::lock_lease_ns is set — a
/// waiter that has watched the same locked word past the lease consults
/// the fabric's liveness registry and CAS-steals the lock from a dead
/// holder (docs/fault_model.md).
///
/// A RemoteOps instance is a thin, per-client facade over the fabric; it
/// charges every verb to `ctx` for round-trip accounting.
class RemoteOps {
 public:
  explicit RemoteOps(nam::ClientContext& ctx) : ctx_(&ctx) {}

  nam::ClientContext& ctx() { return *ctx_; }
  rdma::Fabric& fabric() { return ctx_->fabric(); }
  uint32_t page_size() const { return ctx_->page_size(); }

  /// True while the owning client has not been crash-injected away.
  bool alive() const { return ctx_->fabric().ClientAlive(ctx_->client_id()); }

  /// Stamps the local image's version word with the locked word this client
  /// installs on acquire (lock bit + holder id). Call after a successful
  /// TryLockPage so a later WriteUnlockPage does not transiently clear the
  /// lock bit.
  void StampLocked(uint8_t* buf, uint64_t version);

  /// remote_read: one RDMA READ of a full page into `buf`. Unavailable when
  /// this client is dead (buf is then unspecified).
  sim::Task<Status> ReadPage(rdma::RemotePtr ptr, uint8_t* buf);

  /// remote_readLockOrRestart + remote_awaitNodeUnlocked: reads the page,
  /// re-reading (remote spinlock with backoff, lease-based steal) while the
  /// lock bit is set. OK carries the raw version word of the returned
  /// consistent image.
  sim::Task<PageReadResult> ReadPageUnlocked(rdma::RemotePtr ptr,
                                             uint8_t* buf);

  /// remote_upgradeToWriteLockOrRestart: RDMA CAS installing the locked
  /// word (holder-stamped). OK = lock acquired; Aborted = CAS lost the
  /// race; Unavailable = this client is dead.
  sim::Task<Status> TryLockPage(rdma::RemotePtr ptr, uint64_t version);

  /// Spin variant: read-unlocked + CAS until the lock is held or the
  /// protocol fails. On OK, `buf` holds the locked image (StampLocked
  /// applied) and `version` is the pre-lock version word.
  sim::Task<PageReadResult> LockPage(rdma::RemotePtr ptr, uint8_t* buf);

  /// remote_writeUnlock: installs the modified local image (which must
  /// still carry the lock bit) and releases the lock, bumping the version.
  /// With FabricConfig::verb_chaining (default) this is one doorbell-
  /// batched {page WRITE, unlock WRITE} chain — one doorbell, one
  /// completion; with chaining disabled it falls back to an individually
  /// signaled RDMA WRITE followed by FETCH_AND_ADD(+1).
  sim::Task<Status> WriteUnlockPage(rdma::RemotePtr ptr, const uint8_t* buf);

  /// B-link split publication with one doorbell: chains {new-sibling
  /// WRITE, page WRITE, unlock WRITE}. Chain members take effect in
  /// posting order, so a reader can never follow the freshly published
  /// sibling pointer in `buf` to a not-yet-written `sibling` page. Falls
  /// back to the signaled sibling WRITE + WriteUnlockPage sequence when
  /// verb chaining is disabled.
  sim::Task<Status> WriteSiblingAndUnlockPage(rdma::RemotePtr sibling,
                                              const uint8_t* sibling_buf,
                                              rdma::RemotePtr ptr,
                                              const uint8_t* buf);

  /// Releases a lock without content changes (FAA only).
  sim::Task<Status> UnlockPage(rdma::RemotePtr ptr);

  /// RDMA_ALLOC on a specific server. Returns a null pointer when the
  /// region is exhausted or this client is dead.
  sim::Task<rdma::RemotePtr> AllocPage(uint32_t server);

  /// RDMA_ALLOC scattering allocations over all memory servers round-robin
  /// (keeps the fine-grained distribution property under splits).
  sim::Task<rdma::RemotePtr> AllocPageRoundRobin();

 private:
  nam::ClientContext* ctx_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_REMOTE_OPS_H_
