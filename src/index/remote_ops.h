#ifndef NAMTREE_INDEX_REMOTE_OPS_H_
#define NAMTREE_INDEX_REMOTE_OPS_H_

#include <cstdint>
#include <vector>

#include "btree/page.h"
#include "common/status.h"
#include "nam/cluster.h"
#include "rdma/fabric.h"
#include "rdma/memory_region.h"
#include "rdma/remote_ptr.h"
#include "sim/task.h"

namespace namtree::index {

/// Outcome of a versioned page read: OK with the observed version word, or
/// the error that ended the protocol (kUnavailable once this client is
/// dead). Default-constructible on purpose — coroutine Task payloads must
/// be (Result<T> is not).
struct PageReadResult {
  Status status;
  uint64_t version = 0;

  bool ok() const { return status.ok(); }
};

/// Outcome of a remote page allocation: OK with the new page's (primary)
/// address, kOutOfMemory when the target stripe is exhausted, kUnavailable
/// when the client is dead or no live server can serve the allocation.
/// Replaces the old null-pointer convention so callers can tell a full
/// region from a dead one (the YCSB degraded-mode accounting depends on
/// the distinction).
struct AllocResult {
  Status status;
  rdma::RemotePtr ptr;

  bool ok() const { return status.ok(); }
};

/// Which replica of a page currently acts as its primary (failover
/// routing): rank 0 while the home server lives, the next live rank after
/// its death. kUnavailable when the whole replica group is dead.
struct RouteResult {
  Status status;
  rdma::RemotePtr ptr;

  bool ok() const { return status.ok(); }
};

/// The one-sided page protocol of the fine-grained design (paper Listing 4):
/// remote reads with a remote spinlock on the version word, lock upgrade via
/// RDMA CAS, unlock-with-writeback via RDMA WRITE + FETCH_AND_ADD, and
/// remote page allocation via FETCH_AND_ADD on the region's allocation
/// cursor (RDMA_ALLOC).
///
/// Network-fault behavior: a verb that the flaky fabric reports kLost is
/// ambiguous — its effect may have landed with only the completion gone.
/// Idempotent verbs (READs, WRITEs of the same image) re-post under the
/// bounded RetryPolicy::ForVerbs budget; non-idempotent atomics resolve
/// the ambiguity first with a read-back (lock CAS: the holder-stamped
/// word; unlock FAA / publication chains: the version word; allocation
/// FAA: the cursor) and only re-post when the read-back proved no effect.
/// Budget exhaustion surfaces Status::TimedOut — distinct from the
/// kUnavailable of a dead server (docs/fault_model.md §8).
///
/// Crash-fault behavior: every op surfaces Status::Unavailable as soon as
/// the owning client is dead (its verbs are dropped by the fabric).
/// Spinning on a locked word uses capped exponential backoff with
/// per-client jitter, and — when FabricConfig::lock_lease_ns is set — a
/// waiter that has watched the same locked word past the lease consults
/// the fabric's liveness registry and CAS-steals the lock from a dead
/// holder (docs/fault_model.md).
///
/// Memory-server fault behavior: all page addresses handed in are rank-0
/// *primary* addresses. Under replication (FabricConfig::
/// replication_factor > 1) every access resolves the page's acting primary
/// — the first live replica in rank order — so a reader that hits a dead
/// server deterministically promotes the next replica; disciplined writers
/// publish primary + backups in one doorbell chain, with backup WRITEs
/// fenced on the locked primary so a late backup never clobbers a promoted
/// replica. At R=1 a dead server simply surfaces kUnavailable. A
/// publication whose locked primary died mid-chain returns kAborted (only
/// at R>1): the op retries against the promoted replica.
///
/// A RemoteOps instance is a thin, per-client facade over the fabric; it
/// charges every verb to `ctx` for round-trip accounting.
class RemoteOps {
 public:
  explicit RemoteOps(nam::ClientContext& ctx) : ctx_(&ctx) {}

  nam::ClientContext& ctx() { return *ctx_; }
  rdma::Fabric& fabric() { return ctx_->fabric(); }
  uint32_t page_size() const { return ctx_->page_size(); }

  /// True while the owning client has not been crash-injected away.
  bool alive() const { return ctx_->fabric().ClientAlive(ctx_->client_id()); }

  /// First live replica of the page at `primary`, in rank order (rank 0 =
  /// `primary` itself — the identity at R=1 and on the healthy path).
  /// kUnavailable when every replica's server is dead.
  RouteResult ActingPrimary(rdma::RemotePtr primary) const;

  /// Stamps the local image's version word with the locked word this client
  /// installs on acquire (lock bit + holder id). Call after a successful
  /// TryLockPage so a later WriteUnlockPage does not transiently clear the
  /// lock bit.
  void StampLocked(uint8_t* buf, uint64_t version);

  /// remote_read: one RDMA READ of a full page into `buf`, promoting to
  /// the next live replica when the acting primary('s server) dies.
  /// Unavailable when this client is dead or the whole replica group is
  /// gone (buf is then unspecified).
  sim::Task<Status> ReadPage(rdma::RemotePtr ptr, uint8_t* buf);

  /// remote_readLockOrRestart + remote_awaitNodeUnlocked: reads the page,
  /// re-reading (remote spinlock with backoff, lease-based steal) while the
  /// lock bit is set. OK carries the raw version word of the returned
  /// consistent image.
  sim::Task<PageReadResult> ReadPageUnlocked(rdma::RemotePtr ptr,
                                             uint8_t* buf);

  /// remote_upgradeToWriteLockOrRestart: RDMA CAS installing the locked
  /// word (holder-stamped) on the page's acting primary. OK = lock
  /// acquired (the acting route is recorded in ctx().lock_routes under
  /// replication); Aborted = CAS lost the race or the acting primary died
  /// mid-CAS; Unavailable = this client is dead or no replica is left.
  sim::Task<Status> TryLockPage(rdma::RemotePtr ptr, uint64_t version);

  /// Spin variant: read-unlocked + CAS until the lock is held or the
  /// protocol fails. On OK, `buf` holds the locked image (StampLocked
  /// applied) and `version` is the pre-lock version word.
  sim::Task<PageReadResult> LockPage(rdma::RemotePtr ptr, uint8_t* buf);

  /// remote_writeUnlock: installs the modified local image (which must
  /// still carry the lock bit) and releases the lock, bumping the version.
  /// With FabricConfig::verb_chaining (default) this is one doorbell-
  /// batched {page WRITE, unlock WRITE} chain — one doorbell, one
  /// completion; with chaining disabled it falls back to an individually
  /// signaled RDMA WRITE followed by FETCH_AND_ADD(+1). Under replication
  /// the chain grows backup-page WRITEs (clean unlocked word, fenced on
  /// the locked primary) between the page WRITE and the unlock; a primary
  /// that died mid-publication surfaces kAborted so the op retries against
  /// the promoted replica.
  sim::Task<Status> WriteUnlockPage(rdma::RemotePtr ptr, const uint8_t* buf);

  /// B-link split publication with one doorbell: chains {new-sibling
  /// WRITE, page WRITE, unlock WRITE}. Chain members take effect in
  /// posting order, so a reader can never follow the freshly published
  /// sibling pointer in `buf` to a not-yet-written `sibling` page. Falls
  /// back to the signaled sibling WRITE + WriteUnlockPage sequence when
  /// verb chaining is disabled. Under replication both pages' backups ride
  /// the same chain (sibling backups unfenced — an orphaned sibling
  /// replica is unreachable garbage; page backups fenced on the locked
  /// primary).
  sim::Task<Status> WriteSiblingAndUnlockPage(rdma::RemotePtr sibling,
                                              const uint8_t* sibling_buf,
                                              rdma::RemotePtr ptr,
                                              const uint8_t* buf);

  /// Releases a lock without content changes (FAA only). A lock whose
  /// holding server died has evaporated with the server: OK at R>1.
  sim::Task<Status> UnlockPage(rdma::RemotePtr ptr);

  /// Publishes a freshly initialised, unlocked page image (grow-root
  /// images, GC absorber pages, rebuilt head nodes) to the primary and —
  /// under replication — all live backups, unfenced (the page is
  /// unreachable until a later publication links it).
  sim::Task<Status> WriteFreshPage(rdma::RemotePtr ptr, const uint8_t* buf);

  /// RDMA_ALLOC on a specific server. Under replication a dead home
  /// server's allocations move to the next live server; the stripe bound
  /// surfaces kOutOfMemory and a dead fabric kUnavailable.
  sim::Task<AllocResult> AllocPage(uint32_t server);

  /// RDMA_ALLOC scattering allocations over all *live* memory servers
  /// round-robin (keeps the fine-grained distribution property under
  /// splits).
  sim::Task<AllocResult> AllocPageRoundRobin();

  // ---- Counted raw-verb helpers -------------------------------------------
  // The round-trip toll for client-visible verbs is paid here (or in
  // nam::ClientContext::Call for RPCs), never by hand at call sites, so
  // batched and combined paths cannot miscount.

  /// One counted 8-byte READ of a metadata word (catalog slots). No
  /// failover — region headers are unreplicated; the caller checks the
  /// host's liveness. Unavailable = this client died mid-read.
  sim::Task<Status> ReadWord(rdma::RemotePtr at, uint64_t* out);

  /// One counted 8-byte WRITE of a metadata word (catalog publication).
  /// Unavailable = this client died mid-write (the word may or may not
  /// have landed, exactly like any dropped verb).
  sim::Task<Status> WriteWord(rdma::RemotePtr at, uint64_t value);

  /// One counted WRITE of `len` raw bytes (fresh overflow buckets and
  /// other unversioned payloads outside the page protocol). Unavailable =
  /// this client died mid-write.
  sim::Task<Status> WriteRaw(rdma::RemotePtr at, const void* src,
                             uint32_t len);

  /// One counted doorbell-batched READ-only chain (head-node prefetch,
  /// speculative path prefetch): all requests ride one doorbell — one
  /// round trip regardless of the batch size. Buffers of requests whose
  /// target server died mid-batch are unspecified; the caller re-checks
  /// `alive()` and per-slot `ServerAlive` like any batch consumer.
  sim::Task<Status> ReadPagesBatch(
      std::vector<rdma::Fabric::ReadRequest> requests);

 private:
  /// The lost-verb retry budget for this client's loops: ForVerbs on the
  /// static config, widened to the full budget when only runtime fault
  /// state (PartitionLink) makes the fabric lossy — the config predicate
  /// cannot see severed links, and a partition may heal mid-retry. Knobs
  /// off and no partitions: max_attempts stays 1, bit-identical.
  rdma::RetryPolicy VerbPolicy() const {
    rdma::RetryPolicy p =
        rdma::RetryPolicy::ForVerbs(ctx_->fabric().config());
    if (p.max_attempts == 1 && ctx_->fabric().NetFaultsLive()) {
      p.max_attempts = rdma::RetryPolicy::kNetVerbAttempts;
    }
    return p;
  }

  /// One full-page READ from exactly `at` (no failover), with liveness
  /// checks. Unavailable covers both a dead client and `at`'s server dying
  /// mid-read — ReadPage/ReadPageUnlocked disambiguate via ServerAlive.
  sim::Task<Status> ReadPageFrom(rdma::RemotePtr at, uint8_t* buf);

  // ---- Verb-event tracing --------------------------------------------------
  // Every counted verb above records a metrics::TraceEvent into the owning
  // client's OpTrace when a span is open (ClientContext::trace). TraceStart
  // samples virtual time only inside an open span, so with tracing off (the
  // default) the helpers are a branch and nothing else.

  /// Virtual-time stamp taken just before posting a verb; 0 when no span is
  /// open (the matching TraceVerbEvent is then dropped by the ring).
  SimTime TraceStart() const {
    return ctx_->trace().in_span() ? ctx_->fabric().simulator().now() : 0;
  }

  /// Records the completed verb `[t0, now]` against `server`; `chain` > 0
  /// groups the members of one doorbell-batched chain.
  void TraceVerbEvent(metrics::TraceVerb verb, uint32_t server, uint64_t chain,
                      SimTime t0) {
    ctx_->trace().Event(verb, server, chain, t0);
  }

  /// The replica this client locked for primary address `ptr`: the
  /// recorded lock route when one exists, else the current acting primary.
  RouteResult LockedReplica(rdma::RemotePtr ptr) const;

  nam::ClientContext* ctx_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_REMOTE_OPS_H_
