#include "index/hybrid.h"

#include <algorithm>
#include <cstring>

namespace namtree::index {

using btree::Key;
using btree::KV;
using btree::Value;

HybridIndex::HybridIndex(nam::Cluster& cluster, IndexConfig config)
    : cluster_(cluster),
      config_(config),
      partitioner_(PartitionKind::kRange, cluster.num_memory_servers()),
      rpc_service_(cluster.AllocateRpcService()),
      engine_(TraversalEngine::Options{
          config.page_size,
          config.client_cache_pages > 0
              ? TraversalEngine::CacheMode::kLeafRoutes
              : TraversalEngine::CacheMode::kNone,
          config.client_cache_pages, config.client_cache_ttl}) {}

Status HybridIndex::BulkLoad(std::span<const KV> sorted) {
  if (config_.partition == PartitionKind::kHash) {
    return Status::Unsupported(
        "hybrid upper levels require range partitioning (the leaf chain is "
        "globally sorted)");
  }

  // Build the global fine-grained leaf level first.
  LeafLevel::BuildResult leaves;
  Status status =
      LeafLevel::Build(cluster_.fabric(), sorted, config_, &leaves);
  if (!status.ok()) return status;
  first_leaf_ = leaves.first;

  // Partition the *leaves* by entry weight and align the routing
  // boundaries with the chosen leaf fences so no partition starts in the
  // middle of a leaf's range.
  const uint32_t servers = cluster_.num_memory_servers();
  std::vector<double> weights = config_.partition_weights;
  if (weights.size() != servers) {
    weights.assign(servers, 1.0 / servers);
  }
  double total = 0;
  for (double w : weights) total += w;

  const size_t num_leaves = leaves.leaf_refs.size();
  std::vector<size_t> first_leaf_of(servers, num_leaves);
  std::vector<Key> boundaries;
  double cumulative = 0;
  size_t begin = 0;
  for (uint32_t s = 0; s < servers; ++s) {
    first_leaf_of[s] = begin;
    cumulative += weights[s] / total;
    size_t end = (s + 1 == servers)
                     ? num_leaves
                     : std::min<size_t>(
                           num_leaves,
                           static_cast<size_t>(cumulative *
                                               static_cast<double>(num_leaves)));
    if (end <= begin && begin < num_leaves) end = begin + 1;  // non-empty
    if (s + 1 < servers) {
      boundaries.push_back(end < num_leaves ? leaves.leaf_refs[end].low
                                            : btree::kInfinityKey);
    }
    begin = end;
  }
  partitioner_.SetBoundaries(std::move(boundaries));

  // Build each server's upper levels over its slice of leaf children.
  trees_.clear();
  for (uint32_t s = 0; s < servers; ++s) {
    nam::MemoryServer& server = cluster_.memory_server(s);
    trees_.push_back(std::make_unique<ServerTree>(server, config_.page_size));
    const size_t lo = first_leaf_of[s];
    const size_t hi = (s + 1 == servers) ? num_leaves : first_leaf_of[s + 1];
    std::span<const ServerTree::ChildRef> slice(leaves.leaf_refs.data() + lo,
                                                hi - lo);
    if (slice.empty()) {
      // Give empty partitions a single sentinel child: the last leaf of the
      // previous partition, so chain chases still find every key.
      slice = std::span<const ServerTree::ChildRef>(
          leaves.leaf_refs.data() + (lo == 0 ? 0 : lo - 1), 1);
    }
    status = trees_[s]->BuildOverChildren(slice, config_.leaf_fill_percent);
    if (!status.ok()) return status;
    server.RegisterHandler(
        rpc_service_, [this](nam::MemoryServer& srv, rdma::IncomingRpc rpc) {
          return Handle(srv, std::move(rpc));
        });
  }
  // Seed backup replicas from the bulk-loaded primaries (no-op at R=1).
  cluster_.fabric().SyncReplicasFromPrimaries();
  return Status::OK();
}

sim::Task<> HybridIndex::Handle(nam::MemoryServer& server,
                                rdma::IncomingRpc rpc) {
  co_await sim::Delay(cluster_.simulator(), server.RequestOverhead());
  ServerTree& tree = *trees_[server.server_id()];
  rdma::RpcResponse resp;

  switch (rpc.request.op) {
    case kFindLeaf: {
      resp.arg0 = co_await tree.FindLeafChild(rpc.request.arg0);
      resp.status = static_cast<uint16_t>(StatusCode::kOk);
      break;
    }
    case kInstallSep: {
      const Status status = co_await tree.InstallChildSeparator(
          rpc.request.arg0, rpc.request.arg1);
      resp.status = static_cast<uint16_t>(status.code());
      break;
    }
    default:
      resp.status = static_cast<uint16_t>(StatusCode::kUnsupported);
      break;
  }

  cluster_.fabric().Respond(server.server_id(), rpc, std::move(resp));
}

sim::Task<DescentResult> HybridIndex::ResolveLeaf(nam::ClientContext& ctx,
                                                  Key key) {
  rdma::RpcRequest req;
  req.service = rpc_service_;
  req.op = kFindLeaf;
  req.arg0 = key;
  rdma::RpcResponse resp =
      co_await ctx.Call(partitioner_.ServerFor(key), std::move(req));
  const auto code = static_cast<StatusCode>(resp.status);
  if (code != StatusCode::kOk) {
    co_return DescentResult{Status::FromCode(code, "find-leaf rpc"),
                            rdma::RemotePtr::Null()};
  }
  co_return DescentResult{Status::OK(), rdma::RemotePtr(resp.arg0)};
}

sim::Task<LookupResult> HybridIndex::Lookup(nam::ClientContext& ctx,
                                            Key key) {
  metrics::OpSpan span(ctx.trace(), "lookup");
  const DescentResult fl = co_await engine_.ResolveLeaf(ctx, *this, key);
  if (!fl.ok()) co_return LookupResult{false, 0, fl.status};
  RemoteOps ops(ctx);
  co_return co_await LeafLevel::SearchChain(ops, fl.leaf, key);
}

sim::Task<void> HybridIndex::MultiGet(nam::ClientContext& ctx,
                                      std::span<const Key> keys,
                                      LookupResult* results) {
  metrics::OpSpan span(ctx.trace(), "multiget");
  RemoteOps ops(ctx);
  // Sort, then group consecutive keys sharing a *cached* route (Peek — no
  // find-leaf RPC, no cache-stat skew): each group is one chain walk from
  // that route. Keys without a fresh cached route go through Lookup, which
  // resolves and seeds the route cache as usual. Stale routes only point
  // too far left in the global chain; the chase recovers.
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&keys](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  NodeCache* cache = engine_.CacheFor(ctx.client_id());
  const SimTime now = ctx.fabric().simulator().now();
  const auto cached_route = [&](Key key) {
    if (cache == nullptr) return rdma::RemotePtr::Null();
    bool expired = false;
    const uint8_t* image = cache->Peek(key, now, &expired);
    if (image == nullptr || expired) return rdma::RemotePtr::Null();
    uint64_t raw;
    std::memcpy(&raw, image, 8);
    return rdma::RemotePtr(raw);
  };
  size_t i = 0;
  while (i < order.size()) {
    const rdma::RemotePtr route = cached_route(keys[order[i]]);
    size_t j = i + 1;
    if (!route.is_null()) {
      while (j < order.size() && cached_route(keys[order[j]]) == route) j++;
    }
    if (route.is_null() || j == i + 1) {
      results[order[i]] = co_await Lookup(ctx, keys[order[i]]);
      i = j;
      continue;
    }
    std::vector<Key> group(j - i);
    for (size_t k = i; k < j; ++k) group[k - i] = keys[order[k]];
    std::vector<LookupResult> group_results(group.size());
    // namtree-lint: status-ok(per-key statuses land in group_results)
    (void)co_await LeafLevel::SearchChainMulti(ops, route, group,
                                               group_results.data());
    for (size_t k = i; k < j; ++k) {
      results[order[k]] = group_results[k - i];
    }
    i = j;
  }
}

sim::Task<uint64_t> HybridIndex::Scan(nam::ClientContext& ctx, Key lo, Key hi,
                                      std::vector<KV>* out, Status* status) {
  metrics::OpSpan span(ctx.trace(), "scan");
  const DescentResult fl = co_await engine_.ResolveLeaf(ctx, *this, lo);
  if (!fl.ok()) {
    if (status != nullptr) *status = fl.status;
    co_return 0;
  }
  RemoteOps ops(ctx);
  // The leaf chain is global, so one traversal covers the whole range even
  // across partition boundaries (§5.2).
  co_return co_await LeafLevel::ScanChain(ops, fl.leaf, lo, hi, out, status);
}

sim::Task<Status> HybridIndex::Insert(nam::ClientContext& ctx, Key key,
                                      Value value) {
  metrics::OpSpan span(ctx.trace(), "insert");
  const DescentResult fl = co_await engine_.ResolveLeaf(ctx, *this, key);
  if (!fl.ok()) co_return fl.status;
  RemoteOps ops(ctx);
  LeafLevel::SplitInfo split;
  const Status status =
      co_await LeafLevel::InsertAt(ops, fl.leaf, key, value, &split);
  if (!status.ok()) co_return status;
  if (split.split) {
    // This client just learned where keys at/above the separator live;
    // seed its route cache before announcing the split.
    engine_.SeedRoute(ctx, key,
                      key >= split.separator ? split.right : fl.leaf);
    // Announce the new leaf to the memory server owning the separator's
    // range (§5.2): it installs the key into its upper levels itself.
    rdma::RpcRequest req;
    req.service = rpc_service_;
    req.op = kInstallSep;
    req.arg0 = split.separator;
    req.arg1 = split.right.raw();
    const rdma::RpcResponse resp = co_await ctx.Call(
        partitioner_.ServerFor(split.separator), std::move(req));
    const auto code = static_cast<StatusCode>(resp.status);
    if (code != StatusCode::kOk) {
      // The inserted entry is live and reachable through the leaf chain;
      // only the routing shortcut is missing until a retry installs it.
      co_return Status::FromCode(code, "install-separator rpc");
    }
  }
  co_return Status::OK();
}

sim::Task<Status> HybridIndex::Update(nam::ClientContext& ctx, Key key,
                                      Value value) {
  metrics::OpSpan span(ctx.trace(), "update");
  const DescentResult fl = co_await engine_.ResolveLeaf(ctx, *this, key);
  if (!fl.ok()) co_return fl.status;
  RemoteOps ops(ctx);
  co_return co_await LeafLevel::UpdateAt(ops, fl.leaf, key, value);
}

sim::Task<uint64_t> HybridIndex::LookupAll(nam::ClientContext& ctx, Key key,
                                           std::vector<Value>* out) {
  metrics::OpSpan span(ctx.trace(), "lookup_all");
  const DescentResult fl = co_await engine_.ResolveLeaf(ctx, *this, key);
  if (!fl.ok()) co_return 0;
  RemoteOps ops(ctx);
  co_return co_await LeafLevel::CollectAt(ops, fl.leaf, key, out);
}

sim::Task<Status> HybridIndex::Delete(nam::ClientContext& ctx, Key key) {
  metrics::OpSpan span(ctx.trace(), "delete");
  const DescentResult fl = co_await engine_.ResolveLeaf(ctx, *this, key);
  if (!fl.ok()) co_return fl.status;
  RemoteOps ops(ctx);
  co_return co_await LeafLevel::DeleteAt(ops, fl.leaf, key);
}

sim::Task<uint64_t> HybridIndex::GarbageCollect(nam::ClientContext& ctx) {
  // Global leaf GC from the compute server (one-sided; §5.2 notes it needs
  // no synchronization with the servers' local upper-level maintenance).
  RemoteOps ops(ctx);
  uint64_t reclaimed = co_await LeafLevel::CompactChain(ops, first_leaf_);
  if (config_.gc_merge_fill_percent > 0) {
    // Page merges/unlinks are counted separately from entry reclaims.
    (void)co_await LeafLevel::RebalanceChain(ops, first_leaf_,
                                             config_.gc_merge_fill_percent);
  }
  (void)co_await LeafLevel::RebuildHeadNodes(ops, first_leaf_,
                                             config_.head_node_interval);
  co_return reclaimed;
}

}  // namespace namtree::index
