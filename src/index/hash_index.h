#ifndef NAMTREE_INDEX_HASH_INDEX_H_
#define NAMTREE_INDEX_HASH_INDEX_H_

#include <string>
#include <vector>

#include "index/index.h"
#include "index/remote_ops.h"
#include "nam/cluster.h"
#include "rdma/remote_ptr.h"

namespace namtree::index {

/// Baseline: a one-sided distributed hash index (the related-work class of
/// §8 — Pilaf/FaRM/HERD-style RDMA key-value stores, which [44] used for
/// primary clustered indexes). Implemented to quantify the paper's framing:
/// hash tables win point lookups (one ~128-byte READ versus a tree
/// traversal) but "do not support range queries, which are an important
/// class of queries in OLAP and OLTP workloads".
///
/// Layout: each memory server holds an array of 128-byte buckets; a key
/// hashes to (server, bucket). Buckets carry the same 8-byte version+lock
/// word as tree pages, six key/value slots, and an overflow pointer to a
/// chained bucket allocated via RDMA_ALLOC. Writers use the one-sided lock
/// protocol (CAS / WRITE+FAA) per bucket.
///
/// Scan() is intentionally unsupported and returns 0 — that inability *is*
/// the baseline's story. Run only point/insert/update/delete mixes.
class DistributedHashIndex : public DistributedIndex {
 public:
  /// 8 (version) + 2 (count) + 6 (pad) + 6*16 (slots) + 8 (overflow) + 8.
  static constexpr uint32_t kBucketBytes = 128;
  static constexpr uint32_t kSlotsPerBucket = 6;

  /// `buckets_per_key` controls the load factor at bulk load; the default
  /// targets ~2 live entries per (head) bucket.
  DistributedHashIndex(nam::Cluster& cluster, IndexConfig config,
                       double buckets_per_key = 0.5);

  Status BulkLoad(std::span<const btree::KV> sorted) override;

  sim::Task<LookupResult> Lookup(nam::ClientContext& ctx,
                                 btree::Key key) override;
  /// Unsupported: hash indexes cannot serve range queries (§8). Returns 0
  /// with an OK status (the inability is structural, not a failure).
  sim::Task<uint64_t> Scan(nam::ClientContext& ctx, btree::Key lo,
                           btree::Key hi, std::vector<btree::KV>* out,
                           Status* status = nullptr) override;
  sim::Task<Status> Insert(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<Status> Update(nam::ClientContext& ctx, btree::Key key,
                           btree::Value value) override;
  sim::Task<uint64_t> LookupAll(nam::ClientContext& ctx, btree::Key key,
                                std::vector<btree::Value>* out) override;
  sim::Task<Status> Delete(nam::ClientContext& ctx, btree::Key key) override;
  /// Hash deletes are in-place (no tombstones); nothing to collect.
  sim::Task<uint64_t> GarbageCollect(nam::ClientContext& ctx) override;

  std::string name() const override { return "hash-baseline"; }
  /// Clients size their scratch buffers to one bucket.
  uint32_t page_size() const override { return kBucketBytes; }

  uint64_t buckets_per_server() const { return buckets_per_server_; }

  /// Host-side structural validation (quiescent use): bucket counts within
  /// capacity, overflow chains acyclic, no leaked lock bits, every entry
  /// hashed to its home chain. Returns human-readable violations (empty =
  /// sound) and fills basic statistics.
  struct Report {
    uint64_t head_buckets = 0;
    uint64_t overflow_buckets = 0;
    uint64_t entries = 0;
    std::vector<std::string> violations;
    bool ok() const { return violations.empty(); }
  };
  Report ValidateStructure() const;

 private:
  struct BucketRef {
    rdma::RemotePtr ptr;
  };

  static uint64_t HashKey(btree::Key key);
  rdma::RemotePtr HeadBucketFor(btree::Key key) const;

  nam::Cluster& cluster_;
  IndexConfig config_;
  double buckets_per_key_;
  uint64_t buckets_per_server_ = 0;
  std::vector<uint64_t> base_offsets_;  // bucket array base per server
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_HASH_INDEX_H_
