#include "index/inspector.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "btree/page.h"
#include "btree/types.h"

namespace namtree::index {

using btree::Key;
using btree::kInfinityKey;
using btree::PageView;

namespace {

constexpr uint64_t kHopLimit = 100'000'000;  // cycle guard

/// Resolves a raw remote pointer to a host-side PageView; appends a
/// violation and returns false when the pointer is malformed.
bool Resolve(rdma::Fabric& fabric, uint64_t raw, uint32_t page_size,
             IndexInspector::Report* report, PageView* out) {
  rdma::RemotePtr ptr(raw);
  if (ptr.is_null()) {
    report->violations.push_back("null pointer dereference");
    return false;
  }
  if (ptr.server_id() >= fabric.num_memory_servers()) {
    report->violations.push_back("pointer to unknown server " +
                                 std::to_string(ptr.server_id()));
    return false;
  }
  // Under replication a dead primary is served by its first live replica;
  // inspect the copy clients actually read after failover.
  if (fabric.replicated() && !fabric.ServerAlive(ptr.server_id())) {
    for (uint32_t r = 1; r < fabric.replication(); ++r) {
      const rdma::RemotePtr rep = fabric.ReplicaPtr(ptr, r);
      if (fabric.ServerAlive(rep.server_id())) {
        ptr = rep;
        break;
      }
    }
  }
  rdma::MemoryRegion* region = fabric.region(ptr.server_id());
  if (!region->Contains(ptr.offset(), page_size)) {
    report->violations.push_back("pointer past region end: " +
                                 ptr.ToString());
    return false;
  }
  *out = PageView(region->at(ptr.offset()), page_size);
  return true;
}

void CheckUnlocked(PageView page, const std::string& what,
                   IndexInspector::Report* report) {
  if (btree::IsLocked(page.version_word())) {
    report->violations.push_back(what + ": lock bit set at quiescence");
  }
}

}  // namespace

std::string IndexInspector::Report::ToString() const {
  std::ostringstream os;
  os << "pages: " << inner_pages << " inner, " << leaf_pages << " leaf, "
     << head_pages << " head; entries: " << live_entries << " live, "
     << tombstones << " tombstoned; height " << height << "; "
     << violations.size() << " violation(s)";
  for (const std::string& v : violations) os << "\n  - " << v;
  return os.str();
}

void IndexInspector::InspectLeafChain(rdma::Fabric& fabric,
                                      uint64_t first_raw, uint32_t page_size,
                                      Report* report,
                                      std::vector<uint64_t>* chain_leaves) {
  uint64_t raw = first_raw;
  Key previous_high = 0;
  bool first = true;
  uint64_t hops = 0;

  while (raw != 0) {
    if (++hops > kHopLimit) {
      report->violations.push_back("leaf chain does not terminate (cycle?)");
      return;
    }
    PageView page(nullptr, page_size);
    if (!Resolve(fabric, raw, page_size, report, &page)) return;
    const std::string what =
        "leaf chain page " + rdma::RemotePtr(raw).ToString();
    CheckUnlocked(page, what, report);

    if (page.is_head()) {
      report->head_pages++;
      if (page.count() > page.head_capacity()) {
        report->violations.push_back(what + ": head count over capacity");
      }
      raw = page.right_sibling();
      continue;
    }
    if (page.level() != 0) {
      report->violations.push_back(what + ": non-leaf page in leaf chain");
      return;
    }
    if (page.is_drained()) {
      // Drained by epoch rebalancing: must be empty with a zero fence so
      // every search chases right; exempt from the fence ordering checks.
      if (page.count() != 0 || page.high_key() != 0) {
        report->violations.push_back(what + ": malformed drained page");
      }
      raw = page.right_sibling();
      continue;
    }
    report->leaf_pages++;
    if (chain_leaves != nullptr) chain_leaves->push_back(raw);

    const uint32_t n = page.count();
    if (n > page.leaf_capacity()) {
      report->violations.push_back(what + ": count over capacity");
    }
    const btree::KV* entries = page.leaf_entries();
    for (uint32_t i = 1; i < n; ++i) {
      if (entries[i - 1].key > entries[i].key) {
        report->violations.push_back(what + ": entries out of order");
        break;
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (page.LeafIsTombstoned(i)) {
        report->tombstones++;
      } else {
        report->live_entries++;
      }
    }
    if (n > 0) {
      if (!first && entries[0].key < previous_high) {
        report->violations.push_back(what + ": first key below low fence");
      }
      if (entries[n - 1].key > page.high_key()) {
        report->violations.push_back(what + ": last key above high fence");
      }
    }
    if (!first && page.high_key() < previous_high) {
      report->violations.push_back(what + ": high fences not ascending");
    }
    previous_high = page.high_key();
    first = false;

    const uint64_t next = page.right_sibling();
    if (next == 0 && page.high_key() != kInfinityKey) {
      report->violations.push_back(what +
                                   ": chain ends before the +inf fence");
    }
    raw = next;
  }
}

void IndexInspector::InspectInnerLevels(
    rdma::Fabric& fabric, uint64_t root_raw, uint32_t page_size,
    uint8_t bottom_level, Report* report,
    std::vector<uint64_t>* bottom_children) {
  PageView root(nullptr, page_size);
  if (!Resolve(fabric, root_raw, page_size, report, &root)) return;
  report->height = std::max<uint64_t>(report->height, root.level() + 1ull);

  uint64_t level_left = root_raw;
  for (int level = root.level(); level >= bottom_level; --level) {
    uint64_t raw = level_left;
    uint64_t next_level_left = 0;
    Key previous_high = 0;
    bool first = true;
    uint64_t hops = 0;
    while (raw != 0) {
      if (++hops > kHopLimit) {
        report->violations.push_back("inner chain does not terminate");
        return;
      }
      PageView page(nullptr, page_size);
      if (!Resolve(fabric, raw, page_size, report, &page)) return;
      const std::string what = "inner level " + std::to_string(level) +
                               " page " + rdma::RemotePtr(raw).ToString();
      CheckUnlocked(page, what, report);
      if (page.level() != level) {
        report->violations.push_back(what + ": wrong level byte");
        return;
      }
      report->inner_pages++;
      const uint32_t n = page.count();
      if (n > page.inner_capacity()) {
        report->violations.push_back(what +
                                     ": separator count over capacity");
      }
      const Key* keys = page.inner_keys();
      for (uint32_t i = 1; i < n; ++i) {
        if (keys[i - 1] > keys[i]) {
          report->violations.push_back(what + ": separators out of order");
          break;
        }
      }
      if (n > 0 && keys[n - 1] > page.high_key()) {
        report->violations.push_back(what + ": separator above high fence");
      }
      if (!first && page.high_key() < previous_high) {
        report->violations.push_back(what + ": high fences not ascending");
      }

      for (uint32_t c = 0; c <= n; ++c) {
        const uint64_t child = page.inner_children()[c];
        if (level == bottom_level) {
          if (bottom_children != nullptr) bottom_children->push_back(child);
          continue;
        }
        PageView child_page(nullptr, page_size);
        if (!Resolve(fabric, child, page_size, report, &child_page)) return;
        if (child_page.level() != level - 1) {
          report->violations.push_back(what + ": child at wrong level");
        }
      }
      if (first) next_level_left = page.inner_children()[0];
      previous_high = page.high_key();
      first = false;
      const uint64_t next = page.right_sibling();
      if (next == 0 && page.high_key() != kInfinityKey) {
        report->violations.push_back(what +
                                     ": level chain ends before +inf fence");
      }
      raw = next;
    }
    level_left = next_level_left;
  }
}

void IndexInspector::CheckReachability(rdma::Fabric& fabric,
                                       uint32_t page_size,
                                       const std::vector<uint64_t>& referenced,
                                       const std::vector<uint64_t>& chain,
                                       Report* report) {
  const std::set<uint64_t> chain_set(chain.begin(), chain.end());
  for (uint64_t leaf : referenced) {
    if (chain_set.find(leaf) != chain_set.end()) continue;
    // Stale separators may legitimately reference pages drained by epoch
    // rebalancing; searches chase through them.
    PageView probe(nullptr, page_size);
    if (Resolve(fabric, leaf, page_size, report, &probe) &&
        probe.is_drained()) {
      continue;
    }
    report->violations.push_back(
        "inner levels reference a leaf that is not on the chain: " +
        rdma::RemotePtr(leaf).ToString());
  }
}

IndexInspector::Report IndexInspector::Inspect(
    rdma::Fabric& fabric, const FineGrainedIndex& index) {
  Report report;
  const uint32_t page_size = index.page_size();
  std::vector<uint64_t> referenced;
  if (index.root_level() > 0) {
    InspectInnerLevels(fabric, index.root().raw(), page_size, 1, &report,
                       &referenced);
  } else {
    report.height = 1;
  }
  std::vector<uint64_t> chain;
  InspectLeafChain(fabric, index.first_leaf().raw(), page_size, &report,
                   &chain);
  CheckReachability(fabric, page_size, referenced, chain, &report);
  return report;
}

IndexInspector::Report IndexInspector::Inspect(rdma::Fabric& fabric,
                                               CoarseGrainedIndex& index) {
  Report report;
  const uint32_t page_size = index.page_size();
  for (uint32_t s = 0; s < fabric.num_memory_servers(); ++s) {
    ServerTree& tree = index.tree(s);
    std::vector<uint64_t> referenced;
    std::vector<uint64_t> chain;
    if (tree.root_level() > 0) {
      InspectInnerLevels(fabric, tree.root_raw(), page_size, 1, &report,
                         &referenced);
      if (!referenced.empty()) {
        InspectLeafChain(fabric, referenced.front(), page_size, &report,
                         &chain);
      }
    } else {
      report.height = std::max<uint64_t>(report.height, 1);
      InspectLeafChain(fabric, tree.root_raw(), page_size, &report, &chain);
    }
    CheckReachability(fabric, page_size, referenced, chain, &report);
  }
  return report;
}

IndexInspector::Report IndexInspector::Inspect(
    rdma::Fabric& fabric, const CoarseOneSidedIndex& index) {
  Report report;
  const uint32_t page_size = index.page_size();
  for (uint32_t s = 0; s < fabric.num_memory_servers(); ++s) {
    std::vector<uint64_t> referenced;
    std::vector<uint64_t> chain;
    if (index.root_level_of(s) > 0) {
      InspectInnerLevels(fabric, index.root_of(s).raw(), page_size, 1,
                         &report, &referenced);
    } else {
      report.height = std::max<uint64_t>(report.height, 1);
    }
    InspectLeafChain(fabric, index.first_leaf_of(s).raw(), page_size,
                     &report, &chain);
    CheckReachability(fabric, page_size, referenced, chain, &report);
  }
  return report;
}

IndexInspector::Report IndexInspector::Inspect(rdma::Fabric& fabric,
                                               HybridIndex& index) {
  Report report;
  const uint32_t page_size = index.page_size();
  std::vector<uint64_t> referenced;
  for (uint32_t s = 0; s < fabric.num_memory_servers(); ++s) {
    ServerTree& tree = index.tree(s);
    // Hybrid upper levels end at local level 1 whose children are the
    // remote leaves.
    InspectInnerLevels(fabric, tree.root_raw(), page_size, 1, &report,
                       &referenced);
  }
  std::vector<uint64_t> chain;
  InspectLeafChain(fabric, index.first_leaf().raw(), page_size, &report,
                   &chain);
  CheckReachability(fabric, page_size, referenced, chain, &report);
  return report;
}

}  // namespace namtree::index
