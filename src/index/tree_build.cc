#include "index/tree_build.h"

#include <algorithm>

#include "btree/page.h"
#include "btree/types.h"

namespace namtree::index {

using btree::kInfinityKey;
using btree::PageView;

Status BuildUpperLevels(rdma::Fabric& fabric,
                        std::vector<ServerTree::ChildRef> level_nodes,
                        uint32_t page_size, uint32_t fill_percent,
                        int32_t fixed_server, rdma::RemotePtr* root,
                        uint8_t* root_level) {
  const uint32_t servers = fabric.num_memory_servers();
  const uint32_t inner_fill = std::max<uint32_t>(
      2, PageView::InnerKeyCapacity(page_size) * fill_percent / 100);

  uint8_t level = 0;
  uint32_t rr = 1;  // offset the round-robin so inner levels interleave
  while (level_nodes.size() > 1) {
    level++;
    std::vector<ServerTree::ChildRef> upper;
    size_t j = 0;
    uint8_t* prev = nullptr;
    while (j < level_nodes.size()) {
      rdma::RemotePtr ptr;
      if (fixed_server >= 0) {
        ptr = fabric.region(static_cast<uint32_t>(fixed_server))
                  ->AllocateLocal(page_size);
      } else {
        for (uint32_t attempt = 0; attempt < servers; ++attempt) {
          ptr = fabric.region(rr % servers)->AllocateLocal(page_size);
          rr++;
          if (!ptr.is_null()) break;
        }
      }
      if (ptr.is_null()) return Status::OutOfMemory("inner level build");
      uint8_t* data = fabric.region(ptr.server_id())->at(ptr.offset());
      PageView inner(data, page_size);
      inner.InitInner(level, kInfinityKey, 0);
      const size_t children =
          std::min<size_t>(inner_fill + 1, level_nodes.size() - j);
      inner.inner_children()[0] = level_nodes[j].raw_ptr;
      for (size_t c = 1; c < children; ++c) {
        inner.inner_keys()[c - 1] = level_nodes[j + c].low;
        inner.inner_children()[c] = level_nodes[j + c].raw_ptr;
      }
      inner.header().count = static_cast<uint16_t>(children - 1);
      if (prev != nullptr) {
        PageView prev_view(prev, page_size);
        prev_view.header().right_sibling = ptr.raw();
        prev_view.header().high_key = level_nodes[j].low;
      }
      upper.push_back({level_nodes[j].low, ptr.raw()});
      prev = data;
      j += children;
    }
    level_nodes.swap(upper);
  }

  *root = rdma::RemotePtr(level_nodes[0].raw_ptr);
  *root_level = level;
  return Status::OK();
}

}  // namespace namtree::index
