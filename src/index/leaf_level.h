#ifndef NAMTREE_INDEX_LEAF_LEVEL_H_
#define NAMTREE_INDEX_LEAF_LEVEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "btree/page.h"
#include "btree/types.h"
#include "common/status.h"
#include "index/index.h"
#include "index/remote_ops.h"
#include "index/server_tree.h"
#include "rdma/fabric.h"
#include "rdma/remote_ptr.h"
#include "sim/task.h"

namespace namtree::index {

/// The fine-grained leaf level shared by Design 2 (FG) and Design 3
/// (hybrid): a globally linked B-link chain of leaf pages scattered
/// round-robin over all memory servers, accessed purely with one-sided
/// verbs, with optional head nodes every n leaves for range-scan prefetch
/// (paper §4.3).
///
/// All functions are stateless: chain state lives entirely in the memory
/// servers' regions.
class LeafLevel {
 public:
  /// Outcome of `InsertAt` when the target leaf had to be split.
  struct SplitInfo {
    bool split = false;
    btree::Key separator = 0;
    rdma::RemotePtr right;
  };

  struct BuildResult {
    /// (low key, pointer) of every real leaf, for building upper levels.
    std::vector<ServerTree::ChildRef> leaf_refs;
    /// First page of the chain (the leftmost real leaf).
    rdma::RemotePtr first;
  };

  /// Builds the chain over `sorted` at setup time (direct region writes):
  /// leaves round-robin across servers (or all on `fixed_server` when >= 0,
  /// for coarse-grained one-sided partitions), head nodes per
  /// `config.head_node_interval`.
  static Status Build(rdma::Fabric& fabric, std::span<const btree::KV> sorted,
                      const IndexConfig& config, BuildResult* out,
                      int32_t fixed_server = -1);

  /// Point search starting at the leaf that covers `key` (chases siblings,
  /// skips head nodes). Listing 2's leaf phase. `preread`, when non-null,
  /// is a consistent (unlocked) image of the page at `start` the caller
  /// already holds — a speculative-descent prefetch — consumed in place of
  /// the first remote read; chases past it read remotely as usual.
  static sim::Task<LookupResult> SearchChain(RemoteOps ops,
                                             rdma::RemotePtr start,
                                             btree::Key key,
                                             const uint8_t* preread = nullptr);

  /// Multi-point search (Index::MultiGet): serves `keys` — ascending, all
  /// routed to the chain position at `start` by the caller's grouping —
  /// with one READ per *visited page* instead of one chain walk per key:
  /// every key covered by the current image is answered locally, and the
  /// walk chases right only once the next key is beyond the current fence.
  /// `results[i]` corresponds to `keys[i]`. Stops on the first failed read
  /// (remaining results carry its status).
  static sim::Task<Status> SearchChainMulti(RemoteOps ops,
                                            rdma::RemotePtr start,
                                            std::span<const btree::Key> keys,
                                            LookupResult* results);

  /// Range scan over [lo, hi) starting at the leaf covering `lo`. Uses
  /// head-node prefetch via selectively-signaled batched reads; outdated
  /// head nodes fall back to single reads (§4.3). Appends to `out` if
  /// non-null; returns the hit count. `status`, when non-null, receives OK
  /// on a complete pass or the failing read's status (kUnavailable for a
  /// dead client/server, kTimedOut for an exhausted flaky-net retry
  /// budget) when the count is partial.
  static sim::Task<uint64_t> ScanChain(RemoteOps ops, rdma::RemotePtr start,
                                       btree::Key lo, btree::Key hi,
                                       std::vector<btree::KV>* out,
                                       Status* status = nullptr);

  /// One-sided insert into the chain at the leaf covering `key` (Listing 2
  /// leaf phase): remote CAS lock, local modify, WRITE + FAA unlock. On a
  /// split, the new right page is allocated via RDMA_ALLOC — round-robin
  /// across servers, or on `alloc_server` when >= 0 — and reported through
  /// `split` so the caller can install the separator.
  static sim::Task<Status> InsertAt(RemoteOps ops, rdma::RemotePtr start,
                                    btree::Key key, btree::Value value,
                                    SplitInfo* split,
                                    int32_t alloc_server = -1);

  /// One-sided in-place value update of the first live entry with `key`.
  static sim::Task<Status> UpdateAt(RemoteOps ops, rdma::RemotePtr start,
                                    btree::Key key, btree::Value value);

  /// Collects the values of all live entries with `key`, chasing the chain
  /// across duplicate runs. Returns the number found.
  static sim::Task<uint64_t> CollectAt(RemoteOps ops, rdma::RemotePtr start,
                                       btree::Key key,
                                       std::vector<btree::Value>* out);

  /// One-sided tombstone delete at the leaf covering `key`.
  static sim::Task<Status> DeleteAt(RemoteOps ops, rdma::RemotePtr start,
                                    btree::Key key);

  /// Epoch-GC pass run from a compute server: compacts tombstoned entries
  /// out of every leaf using the one-sided lock protocol. Returns the
  /// number of reclaimed entries.
  static sim::Task<uint64_t> CompactChain(RemoteOps ops,
                                          rdma::RemotePtr first);

  /// Epoch rebalancing (the paper's "removing and re-balancing the index
  /// in regular intervals"): migrates adjacent underfull leaf pairs into a
  /// fresh round-robin page (preserving the chain's server scatter), marks
  /// the pair drained (empty, high fence 0, rerouted to the absorber, so
  /// every search chases into it), and unlinks previously drained pages.
  /// Merging happens when the combined live entries fit within
  /// `max_fill_percent` of a leaf and never straddles a duplicate run.
  /// Intended to run from the single epoch-GC thread (it holds two page
  /// locks left-to-right). Returns the number of pages drained or unlinked.
  static sim::Task<uint64_t> RebalanceChain(RemoteOps ops,
                                            rdma::RemotePtr first,
                                            uint32_t max_fill_percent);

  /// Epoch head-node maintenance: re-walks the chain and installs fresh
  /// head nodes every `interval` leaves (old heads become garbage).
  static sim::Task<Status> RebuildHeadNodes(RemoteOps ops,
                                            rdma::RemotePtr first,
                                            uint32_t interval);

  /// Collects the pointers of all real leaves by walking the chain
  /// (diagnostics / maintenance).
  static sim::Task<uint64_t> CountChain(RemoteOps ops, rdma::RemotePtr first,
                                        uint64_t* live_entries,
                                        uint64_t* tombstones);

 private:
  /// Locks (left, right) in chain order, migrates both pages' live entries
  /// into a fresh round-robin page (preserving the chain's server scatter),
  /// drains the pair, and bypasses it from `prev` when possible. Returns
  /// false (all locks released, nothing changed) when the chain moved or
  /// the merge preconditions fail under the locks.
  static sim::Task<bool> TryMerge(RemoteOps ops, rdma::RemotePtr prev,
                                  rdma::RemotePtr left, rdma::RemotePtr right,
                                  rdma::RemotePtr* replacement,
                                  bool* relinked, uint64_t* changed);
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_LEAF_LEVEL_H_
