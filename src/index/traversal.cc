#include "index/traversal.h"

#include <cassert>
#include <cstring>

namespace namtree::index {

using btree::Key;
using btree::kInfinityKey;
using btree::PageView;

uint32_t TraversalEngine::AddTree(int32_t alloc_server,
                                  rdma::RemotePtr catalog_ptr) {
  Tree tree;
  tree.alloc_server = alloc_server;
  tree.catalog_ptr = catalog_ptr;
  trees_.push_back(tree);
  return static_cast<uint32_t>(trees_.size() - 1);
}

void TraversalEngine::SetRoot(uint32_t tree, rdma::RemotePtr root,
                              uint8_t root_level) {
  trees_[tree].root = root;
  trees_[tree].root_level = root_level;
}

NodeCache* TraversalEngine::CacheFor(uint32_t client_id) {
  if (opts_.cache_mode == CacheMode::kNone || opts_.cache_pages == 0) {
    return nullptr;
  }
  auto it = caches_.find(client_id);
  if (it == caches_.end()) {
    // Route entries are one 8-byte leaf pointer, not a page image.
    const uint32_t entry_size =
        opts_.cache_mode == CacheMode::kLeafRoutes ? 8 : opts_.page_size;
    it = caches_
             .emplace(client_id,
                      std::make_unique<NodeCache>(entry_size,
                                                  opts_.cache_pages,
                                                  opts_.cache_ttl))
             .first;
  }
  return it->second.get();
}

TraversalEngine::CacheStats TraversalEngine::GetCacheStats() const {
  CacheStats stats;
  for (const auto& [id, cache] : caches_) {
    stats.hits += cache->hits();
    stats.misses += cache->misses();
    stats.expirations += cache->expirations();
  }
  return stats;
}

sim::Task<AllocResult> TraversalEngine::AllocFor(RemoteOps& ops,
                                                 const Tree& tree) {
  if (tree.alloc_server >= 0) {
    co_return co_await ops.AllocPage(
        static_cast<uint32_t>(tree.alloc_server));
  }
  co_return co_await ops.AllocPageRoundRobin();
}

void TraversalEngine::SeedPublishedImage(NodeCache* cache,
                                         rdma::RemotePtr ptr, uint8_t* buf,
                                         SimTime now) {
  // The local image still carries the locked word this client stamped;
  // patch it to the post-release version (unlock adds 2) so the cached
  // copy matches what the next remote read would observe.
  uint64_t word;
  std::memcpy(&word, buf + btree::kVersionOffset, 8);
  const uint64_t unlocked = btree::VersionOf(word) + 2;
  std::memcpy(buf + btree::kVersionOffset, &unlocked, 8);
  cache->Put(ptr.raw(), buf, now);
}

sim::Task<rdma::RemotePtr> TraversalEngine::DescendToLeaf(RemoteOps& ops,
                                                          uint32_t tree,
                                                          Key key) {
  rdma::RemotePtr ptr = trees_[tree].root;
  if (trees_[tree].root_level == 0) co_return ptr;  // single-leaf tree
  uint8_t* buf = ops.ctx().page_a();
  NodeCache* cache = CacheFor(ops.ctx().client_id());
  // namtree-lint: bounded-loop(blink-descent: every step moves down a level or right along ascending fences; read failures exit)
  for (;;) {
    // A.4 caching: inner-node images may come from the client cache; a
    // stale image can only route us too far left, which the B-link chase
    // at the next level (or leaf chain) corrects.
    const uint8_t* image = nullptr;
    if (cache != nullptr) {
      image = cache->Get(ptr.raw(), ops.fabric().simulator().now());
    }
    if (image == nullptr) {
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return rdma::RemotePtr::Null();
      image = buf;
      if (cache != nullptr && PageView(buf, ops.page_size()).level() >= 1) {
        cache->Put(ptr.raw(), buf, ops.fabric().simulator().now());
      }
    }
    PageView view(const_cast<uint8_t*>(image), ops.page_size());
    if (view.level() == 0) {
      // Stale root metadata can land us on a leaf; hand it to the caller.
      co_return ptr;
    }
    if (view.NeedsChase(key)) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    const rdma::RemotePtr child(view.InnerChildFor(key));
    if (view.level() == 1) co_return child;
    ptr = child;
  }
}

sim::Task<bool> TraversalEngine::TryGrowRoot(RemoteOps& ops, uint32_t tree,
                                             uint8_t new_level, Key sep,
                                             rdma::RemotePtr left,
                                             rdma::RemotePtr right) {
  const AllocResult alloc = co_await AllocFor(ops, trees_[tree]);
  if (!alloc.ok()) co_return true;  // give up silently: tree valid
  const rdma::RemotePtr new_root = alloc.ptr;
  std::vector<uint8_t> image(ops.page_size());
  PageView view(image.data(), ops.page_size());
  view.InitInner(new_level, kInfinityKey, 0);
  view.inner_keys()[0] = sep;
  view.inner_children()[0] = left.raw();
  view.inner_children()[1] = right.raw();
  view.header().count = 1;
  // Fresh-page publication (primary + live backups under replication); a
  // dropped root-image write must not be published: give up, tree valid.
  const Status published = co_await ops.WriteFreshPage(new_root, image.data());
  if (!published.ok()) co_return true;
  // Publish through the catalog. The check-and-update happens atomically in
  // virtual time (no awaits in between), mirroring a catalog-service CAS.
  if (trees_[tree].root != left) co_return false;  // somebody else grew it
  trees_[tree].root = new_root;
  trees_[tree].root_level = new_level;
  if (!trees_[tree].catalog_ptr.is_null()) {
    ops.ctx().round_trips++;
    co_await ops.fabric().Write(ops.ctx().client_id(),
                                trees_[tree].catalog_ptr, &new_root, 8);
  }
  co_return true;
}

sim::Task<Status> TraversalEngine::InstallSeparator(RemoteOps& ops,
                                                    uint32_t tree,
                                                    uint8_t level, Key sep,
                                                    rdma::RemotePtr left,
                                                    rdma::RemotePtr right) {
  uint8_t* buf = ops.ctx().page_a();
  // Bounded: every pass makes B-link progress or propagates a failure
  // status. namtree-lint: bounded-loop(blink-restart)
  for (;;) {
    if (trees_[tree].root_level < level) {
      if (co_await TryGrowRoot(ops, tree, level, sep, left, right)) {
        co_return ops.alive() ? Status::OK()
                              : Status::Unavailable("client crashed");
      }
      continue;
    }
    // Descend to the target level for `sep`.
    rdma::RemotePtr ptr = trees_[tree].root;
    bool restart = false;
    NodeCache* cache = CacheFor(ops.ctx().client_id());
    // namtree-lint: bounded-loop(blink-descent)
    for (;;) {
      // A.4 caching on the install descent: hops *above* the target level
      // may come from the client cache (a stale image only routes too far
      // left, and the B-link chase corrects that). The target node itself
      // always takes a fresh read — its version word seeds the lock CAS.
      if (cache != nullptr) {
        const uint8_t* image =
            cache->Get(ptr.raw(), ops.fabric().simulator().now());
        if (image != nullptr) {
          PageView cview(const_cast<uint8_t*>(image), ops.page_size());
          if (cview.level() > level) {
            if (cview.NeedsChase(sep)) {
              ptr = rdma::RemotePtr(cview.right_sibling());
            } else {
              ptr = rdma::RemotePtr(cview.InnerChildFor(sep));
            }
            continue;
          }
        }
      }
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return read.status;
      PageView view(buf, ops.page_size());
      if (view.level() < level) {
        // Stale root below the target level: re-check the catalog state.
        restart = true;
        break;
      }
      if (view.level() > level) {
        if (cache != nullptr) {
          cache->Put(ptr.raw(), buf, ops.fabric().simulator().now());
        }
        if (view.NeedsChase(sep)) {
          ptr = rdma::RemotePtr(view.right_sibling());
          continue;
        }
        ptr = rdma::RemotePtr(view.InnerChildFor(sep));
        continue;
      }
      // At the target level: chase, then lock.
      if (view.NeedsChase(sep)) {
        ptr = rdma::RemotePtr(view.right_sibling());
        continue;
      }
      const Status lock = co_await ops.TryLockPage(ptr, read.version);
      if (!lock.ok()) {
        if (!lock.IsAborted()) co_return lock;
        ops.ctx().restarts++;
        continue;  // lost the CAS race: re-read this node
      }
      ops.StampLocked(buf, read.version);

      // Re-validate the range under the lock (version pinned by the CAS).
      if (view.InnerInsert(sep, right.raw())) {
        const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
        if (wu.IsAborted()) {
          // The locked acting primary died mid-publication (R>1): the lock
          // evaporated with it; retry against the promoted replica.
          ops.ctx().restarts++;
          continue;
        }
        if (!wu.ok()) co_return wu;
        if (cache != nullptr) {
          // Seed the cache with the image we just published: the next
          // descent routes through this node with zero remote reads.
          SeedPublishedImage(cache, ptr, buf,
                             ops.fabric().simulator().now());
        }
        co_return Status::OK();
      }
      // Full: split this inner node and recurse with the promoted key.
      const AllocResult alloc = co_await AllocFor(ops, trees_[tree]);
      if (!alloc.ok()) {
        if (!ops.alive()) co_return Status::Unavailable("client crashed");
        (void)co_await ops.UnlockPage(ptr);
        if (alloc.status.IsOutOfMemory()) {
          co_return Status::OK();  // OOM; separator uninstalled (B-link safe)
        }
        co_return alloc.status;  // dead allocation pool: surface it
      }
      const rdma::RemotePtr new_right = alloc.ptr;
      std::vector<uint8_t> rimage(ops.page_size());
      PageView rview(rimage.data(), ops.page_size());
      const Key promoted = view.SplitInnerInto(rview, new_right.raw());
      PageView target = sep < promoted ? view : rview;
      const bool ok = target.InnerInsert(sep, right.raw());
      assert(ok);
      (void)ok;
      // One chained {right WRITE, left WRITE, unlock} publication; a crash
      // drops the unexecuted tail, orphans the lock on `ptr` (lease-steal
      // reclaims it) and leaks the unpublished right node — both sound.
      const Status wu = co_await ops.WriteSiblingAndUnlockPage(
          new_right, rimage.data(), ptr, buf);
      if (wu.IsAborted()) {
        // Locked primary died mid-split-publication: the promoted replica
        // still shows the pre-split image and the lock evaporated. The
        // allocated right node leaks (unreachable) — retry the pass.
        ops.ctx().restarts++;
        continue;
      }
      if (!wu.ok()) co_return wu;
      if (cache != nullptr) {
        // Seed both halves of the split with their freshly published
        // images (left patched to the post-release version word).
        const SimTime now = ops.fabric().simulator().now();
        SeedPublishedImage(cache, ptr, buf, now);
        cache->Put(new_right.raw(), rimage.data(), now);
      }
      co_return co_await InstallSeparator(
          ops, tree, static_cast<uint8_t>(level + 1), promoted, ptr,
          new_right);
    }
    if (restart) continue;
  }
}

sim::Task<Status> TraversalEngine::BootstrapFromCatalog(RemoteOps& ops,
                                                        uint32_t tree) {
  if (trees_[tree].catalog_ptr.is_null()) {
    co_return Status::Unsupported("tree has no catalog slot");
  }
  uint64_t raw = 0;
  ops.ctx().round_trips++;
  co_await ops.fabric().Read(ops.ctx().client_id(), trees_[tree].catalog_ptr,
                             &raw, 8);
  if (!ops.alive()) co_return Status::Unavailable("client crashed");
  if (!ops.fabric().ServerAlive(trees_[tree].catalog_ptr.server_id())) {
    // Catalog slots live in the (unreplicated) region header.
    co_return Status::Unavailable("catalog host dead");
  }
  const rdma::RemotePtr root(raw);
  if (root.is_null()) co_return Status::NotFound("catalog slot empty");
  // Learn the root's level from its page header.
  const Status read = co_await ops.ReadPage(root, ops.ctx().page_a());
  if (!read.ok()) co_return read;
  PageView view(ops.ctx().page_a(), ops.page_size());
  trees_[tree].root = root;
  trees_[tree].root_level = view.level();
  co_return Status::OK();
}

sim::Task<DescentResult> TraversalEngine::ResolveLeaf(nam::ClientContext& ctx,
                                                      LeafResolver& resolver,
                                                      Key key) {
  NodeCache* cache = CacheFor(ctx.client_id());
  if (cache != nullptr) {
    const uint8_t* image =
        cache->Get(key, ctx.fabric().simulator().now());
    if (image != nullptr) {
      uint64_t raw;
      std::memcpy(&raw, image, 8);
      co_return DescentResult{Status::OK(), rdma::RemotePtr(raw)};
    }
  }
  DescentResult result = co_await resolver.ResolveLeaf(ctx, key);
  if (result.ok() && cache != nullptr) {
    const uint64_t raw = result.leaf.raw();
    cache->Put(key, reinterpret_cast<const uint8_t*>(&raw),
               ctx.fabric().simulator().now());
  }
  co_return result;
}

void TraversalEngine::SeedRoute(nam::ClientContext& ctx, Key key,
                                rdma::RemotePtr leaf) {
  NodeCache* cache = CacheFor(ctx.client_id());
  if (cache == nullptr) return;
  const uint64_t raw = leaf.raw();
  cache->Put(key, reinterpret_cast<const uint8_t*>(&raw),
             ctx.fabric().simulator().now());
}

}  // namespace namtree::index
