#include "index/traversal.h"

#include <cassert>
#include <cstring>

namespace namtree::index {

using btree::Key;
using btree::kInfinityKey;
using btree::PageView;

uint32_t TraversalEngine::AddTree(int32_t alloc_server,
                                  rdma::RemotePtr catalog_ptr) {
  Tree tree;
  tree.alloc_server = alloc_server;
  tree.catalog_ptr = catalog_ptr;
  trees_.push_back(tree);
  return static_cast<uint32_t>(trees_.size() - 1);
}

void TraversalEngine::SetRoot(uint32_t tree, rdma::RemotePtr root,
                              uint8_t root_level) {
  trees_[tree].root = root;
  trees_[tree].root_level = root_level;
}

NodeCache* TraversalEngine::CacheFor(uint32_t client_id) {
  if (opts_.cache_mode == CacheMode::kNone || opts_.cache_pages == 0) {
    return nullptr;
  }
  auto it = caches_.find(client_id);
  if (it == caches_.end()) {
    // Route entries are one 8-byte leaf pointer, not a page image.
    const uint32_t entry_size =
        opts_.cache_mode == CacheMode::kLeafRoutes ? 8 : opts_.page_size;
    it = caches_
             .emplace(client_id,
                      std::make_unique<NodeCache>(entry_size,
                                                  opts_.cache_pages,
                                                  opts_.cache_ttl))
             .first;
  }
  return it->second.get();
}

TraversalEngine::CacheStats TraversalEngine::GetCacheStats() const {
  CacheStats stats;
  for (const auto& [id, cache] : caches_) {
    stats.hits += cache->hits();
    stats.misses += cache->misses();
    stats.expirations += cache->expirations();
  }
  return stats;
}

sim::Task<AllocResult> TraversalEngine::AllocFor(RemoteOps& ops,
                                                 const Tree& tree) {
  if (tree.alloc_server >= 0) {
    co_return co_await ops.AllocPage(
        static_cast<uint32_t>(tree.alloc_server));
  }
  co_return co_await ops.AllocPageRoundRobin();
}

void TraversalEngine::SeedPublishedImage(NodeCache* cache,
                                         rdma::RemotePtr ptr, uint8_t* buf,
                                         SimTime now) {
  // The local image still carries the locked word this client stamped;
  // patch it to the post-release version (unlock adds 2) so the cached
  // copy matches what the next remote read would observe.
  uint64_t word;
  std::memcpy(&word, buf + btree::kVersionOffset, 8);
  const uint64_t unlocked = btree::VersionOf(word) + 2;
  std::memcpy(buf + btree::kVersionOffset, &unlocked, 8);
  cache->Put(ptr.raw(), buf, now);
}

sim::Task<void> TraversalEngine::SpeculatePath(RemoteOps& ops, uint32_t tree,
                                               Key key, NodeCache* cache,
                                               DescentPrefetch* prefetch,
                                               SpecState* spec) {
  const SimTime now = ops.fabric().simulator().now();
  const uint32_t page = opts_.page_size;
  rdma::RemotePtr ptr = trees_[tree].root;
  // Hop budget: a healthy path is root_level hops and staleness adds a few
  // chases; a cyclic stale-fence walk trips the budget and abandons
  // speculation entirely (the plain loop then runs untouched).
  const size_t max_hops =
      static_cast<size_t>(trees_[tree].root_level) * 2 + 8;
  struct Hop {
    uint64_t raw = 0;
    bool fresh = false;  ///< missing or TTL-expired: ride the batch
  };
  std::vector<Hop> path;
  // Local prediction: no awaits, so Peek pointers stay valid throughout.
  // A TTL-expired image still routes the prediction (stale = too far
  // left, recoverable) while scheduling its refresh in the batch.
  // namtree-lint: bounded-loop(speculative prediction: hop budget max_hops)
  while (path.size() < max_hops) {
    if (ptr.is_null()) co_return;  // garbage route: abandon speculation
    bool expired = false;
    const uint8_t* img = cache->Peek(ptr.raw(), now, &expired);
    if (img == nullptr) {
      // Frontier: the pointer is known but its image is not. Batch the
      // page itself; prediction cannot see below it.
      path.push_back({ptr.raw(), true});
      break;
    }
    PageView v(const_cast<uint8_t*>(img), page);
    if (v.level() == 0) {
      // A leaf image under an inner-path pointer (stale root metadata):
      // treat as frontier and let validation sort it out.
      path.push_back({ptr.raw(), true});
      break;
    }
    path.push_back({ptr.raw(), expired});
    if (v.NeedsChase(key)) {
      ptr = rdma::RemotePtr(v.right_sibling());
      continue;
    }
    const rdma::RemotePtr child(v.InnerChildFor(key));
    if (v.level() == 1) {
      if (child.is_null()) co_return;  // hybrid sentinel / garbage entry
      spec->predicted_leaf = child;
      spec->complete = true;
      break;
    }
    ptr = child;
  }
  if (!spec->complete && path.size() >= max_hops) co_return;  // cycle trip

  size_t fresh_count = 0;
  for (const Hop& h : path) {
    if (h.fresh) fresh_count++;
  }
  const bool want_leaf =
      spec->complete && prefetch != nullptr && prefetch->leaf_buf != nullptr;
  spec->attempted = spec->complete || fresh_count > 0;
  for (const Hop& h : path) spec->predicted.emplace(h.raw, true);
  if (spec->complete) {
    spec->predicted.emplace(spec->predicted_leaf.raw(), true);
  }
  if (fresh_count == 0 && !want_leaf) co_return;  // pure warm-cache path

  // One doorbell: every missing/expired predicted page plus the leaf.
  spec->arena.resize(fresh_count * static_cast<size_t>(page));
  std::vector<rdma::Fabric::ReadRequest> reqs;
  reqs.reserve(fresh_count + 1);
  size_t slot = 0;
  for (const Hop& h : path) {
    if (!h.fresh) continue;
    reqs.push_back(
        {rdma::RemotePtr(h.raw), spec->arena.data() + slot * page, page});
    slot++;
  }
  if (want_leaf) {
    reqs.push_back({spec->predicted_leaf, prefetch->leaf_buf, page});
    spec->leaf_in_batch = true;
  }
  if (!(co_await ops.ReadPagesBatch(std::move(reqs))).ok()) co_return;

  // Accept only usable slots: live target server, unlocked image. A
  // locked or dropped slot simply never enters `fresh` — validation falls
  // back to a real read there, which fails over under replication.
  slot = 0;
  for (const Hop& h : path) {
    if (!h.fresh) continue;
    uint8_t* img = spec->arena.data() + slot * page;
    slot++;
    if (!ops.fabric().ServerAlive(rdma::RemotePtr(h.raw).server_id())) {
      continue;
    }
    uint64_t word;
    std::memcpy(&word, img + btree::kVersionOffset, 8);
    if (btree::IsLocked(word)) continue;
    spec->fresh.emplace(h.raw, img);
  }
}

rdma::RemotePtr TraversalEngine::PredictLeaf(uint32_t client_id,
                                             uint32_t tree, Key key,
                                             SimTime now) const {
  if (opts_.cache_mode != CacheMode::kInnerImages) {
    return rdma::RemotePtr::Null();
  }
  if (trees_[tree].root_level == 0) return trees_[tree].root;
  auto it = caches_.find(client_id);
  if (it == caches_.end()) return rdma::RemotePtr::Null();
  const NodeCache& cache = *it->second;
  rdma::RemotePtr ptr = trees_[tree].root;
  const size_t max_hops =
      static_cast<size_t>(trees_[tree].root_level) * 2 + 8;
  // namtree-lint: bounded-loop(local cache walk: hop budget max_hops)
  for (size_t hop = 0; hop < max_hops; ++hop) {
    if (ptr.is_null()) return rdma::RemotePtr::Null();
    bool expired = false;
    const uint8_t* img = cache.Peek(ptr.raw(), now, &expired);
    if (img == nullptr) return rdma::RemotePtr::Null();
    PageView v(const_cast<uint8_t*>(img), opts_.page_size);
    if (v.level() == 0) return rdma::RemotePtr::Null();
    if (v.NeedsChase(key)) {
      ptr = rdma::RemotePtr(v.right_sibling());
      continue;
    }
    const rdma::RemotePtr child(v.InnerChildFor(key));
    if (v.level() == 1) return child;
    ptr = child;
  }
  return rdma::RemotePtr::Null();
}

sim::Task<rdma::RemotePtr> TraversalEngine::DescendToLeaf(
    RemoteOps& ops, uint32_t tree, Key key, DescentPrefetch* prefetch) {
  if (prefetch != nullptr) prefetch->leaf_image_valid = false;
  rdma::RemotePtr ptr = trees_[tree].root;
  if (trees_[tree].root_level == 0) co_return ptr;  // single-leaf tree
  uint8_t* buf = ops.ctx().page_a();
  NodeCache* cache = CacheFor(ops.ctx().client_id());

  // Speculative path prefetch (Options::speculative_descent): predict the
  // whole path from cached images, batch the missing/expired prefix in one
  // RTT, then let the loop below validate top-down — it consumes batch
  // images in place of remote reads and degrades to the plain
  // level-by-level descent from the first hop speculation cannot serve.
  SpecState spec;
  if (opts_.speculative_descent &&
      opts_.cache_mode == CacheMode::kInnerImages && cache != nullptr) {
    co_await SpeculatePath(ops, tree, key, cache, prefetch, &spec);
    if (!ops.alive()) co_return rdma::RemotePtr::Null();
  }

  rdma::RemotePtr leaf;
  bool fallback_read = false;  // a predicted hop needed a real read
  // namtree-lint: bounded-loop(blink-descent: every step moves down a level or right along ascending fences; read failures exit)
  for (;;) {
    // A.4 caching: inner-node images may come from the client cache; a
    // stale image can only route us too far left, which the B-link chase
    // at the next level (or leaf chain) corrects. The cache is consulted
    // *before* the speculative batch — the exact order of the plain loop,
    // so hit/miss/expiration accounting and LRU motion are bit-identical
    // with speculation on (pinned by the Peek regression test).
    const uint8_t* image = nullptr;
    bool fresh_from_batch = false;
    if (cache != nullptr) {
      image = cache->Get(ptr.raw(), ops.fabric().simulator().now());
    }
    if (image == nullptr && spec.attempted) {
      auto it = spec.fresh.find(ptr.raw());
      if (it != spec.fresh.end()) {
        image = it->second;
        fresh_from_batch = true;
      }
    }
    if (image == nullptr) {
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return rdma::RemotePtr::Null();
      image = buf;
      if (spec.attempted &&
          (spec.complete || spec.predicted.count(ptr.raw()) > 0)) {
        // Below an incomplete prediction's frontier real reads are the
        // plan, not a mispredict; on a predicted hop (or anywhere under a
        // complete prediction) they mean speculation failed here.
        fallback_read = true;
      }
      if (cache != nullptr && PageView(buf, ops.page_size()).level() >= 1) {
        cache->Put(ptr.raw(), buf, ops.fabric().simulator().now());
      }
    } else if (fresh_from_batch && cache != nullptr &&
               PageView(const_cast<uint8_t*>(image), ops.page_size())
                       .level() >= 1) {
      // The batched read substitutes for the remote read the plain loop
      // would have issued at this hop; seed the cache the same way.
      cache->Put(ptr.raw(), image, ops.fabric().simulator().now());
    }
    PageView view(const_cast<uint8_t*>(image), ops.page_size());
    if (view.level() == 0) {
      // Stale root metadata can land us on a leaf; hand it to the caller.
      leaf = ptr;
      break;
    }
    if (view.NeedsChase(key)) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    const rdma::RemotePtr child(view.InnerChildFor(key));
    if (view.level() == 1) {
      leaf = child;
      break;
    }
    ptr = child;
  }

  if (spec.attempted) {
    bool leaf_usable = false;
    if (spec.leaf_in_batch && leaf == spec.predicted_leaf &&
        ops.fabric().ServerAlive(leaf.server_id())) {
      uint64_t word;
      std::memcpy(&word, prefetch->leaf_buf + btree::kVersionOffset, 8);
      leaf_usable = !btree::IsLocked(word);
    }
    const bool mispredicted = fallback_read ||
                              (spec.complete && leaf != spec.predicted_leaf) ||
                              (spec.leaf_in_batch && !leaf_usable);
    if (mispredicted) {
      ops.ctx().mispredicts.Inc();
    } else if (spec.complete) {
      ops.ctx().speculative_hits.Inc();
    }
    if (leaf_usable) prefetch->leaf_image_valid = true;
  }
  co_return leaf;
}

sim::Task<bool> TraversalEngine::TryGrowRoot(RemoteOps& ops, uint32_t tree,
                                             uint8_t new_level, Key sep,
                                             rdma::RemotePtr left,
                                             rdma::RemotePtr right) {
  const AllocResult alloc = co_await AllocFor(ops, trees_[tree]);
  if (!alloc.ok()) co_return true;  // give up silently: tree valid
  const rdma::RemotePtr new_root = alloc.ptr;
  std::vector<uint8_t> image(ops.page_size());
  PageView view(image.data(), ops.page_size());
  view.InitInner(new_level, kInfinityKey, 0);
  view.inner_keys()[0] = sep;
  view.inner_children()[0] = left.raw();
  view.inner_children()[1] = right.raw();
  view.header().count = 1;
  // Fresh-page publication (primary + live backups under replication); a
  // dropped root-image write must not be published: give up, tree valid.
  const Status published = co_await ops.WriteFreshPage(new_root, image.data());
  if (!published.ok()) co_return true;
  // Publish through the catalog. The check-and-update happens atomically in
  // virtual time (no awaits in between), mirroring a catalog-service CAS.
  if (trees_[tree].root != left) co_return false;  // somebody else grew it
  trees_[tree].root = new_root;
  trees_[tree].root_level = new_level;
  if (!trees_[tree].catalog_ptr.is_null()) {
    // A dropped catalog write (dead client) is sound: the in-memory root
    // already moved, and bootstrapping clients re-read the slot anyway.
    // namtree-lint: status-ok(catalog publication is best-effort)
    (void)co_await ops.WriteWord(trees_[tree].catalog_ptr, new_root.raw());
  }
  co_return true;
}

sim::Task<Status> TraversalEngine::InstallSeparator(RemoteOps& ops,
                                                    uint32_t tree,
                                                    uint8_t level, Key sep,
                                                    rdma::RemotePtr left,
                                                    rdma::RemotePtr right) {
  uint8_t* buf = ops.ctx().page_a();
  // Bounded: every pass makes B-link progress or propagates a failure
  // status. namtree-lint: bounded-loop(blink-restart)
  for (;;) {
    if (trees_[tree].root_level < level) {
      if (co_await TryGrowRoot(ops, tree, level, sep, left, right)) {
        co_return ops.alive() ? Status::OK()
                              : Status::Unavailable("client crashed");
      }
      continue;
    }
    // Descend to the target level for `sep`.
    rdma::RemotePtr ptr = trees_[tree].root;
    bool restart = false;
    NodeCache* cache = CacheFor(ops.ctx().client_id());
    // namtree-lint: bounded-loop(blink-descent)
    for (;;) {
      // A.4 caching on the install descent: hops *above* the target level
      // may come from the client cache (a stale image only routes too far
      // left, and the B-link chase corrects that). The target node itself
      // always takes a fresh read — its version word seeds the lock CAS.
      if (cache != nullptr) {
        const uint8_t* image =
            cache->Get(ptr.raw(), ops.fabric().simulator().now());
        if (image != nullptr) {
          PageView cview(const_cast<uint8_t*>(image), ops.page_size());
          if (cview.level() > level) {
            if (cview.NeedsChase(sep)) {
              ptr = rdma::RemotePtr(cview.right_sibling());
            } else {
              ptr = rdma::RemotePtr(cview.InnerChildFor(sep));
            }
            continue;
          }
        }
      }
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return read.status;
      PageView view(buf, ops.page_size());
      if (view.level() < level) {
        // Stale root below the target level: re-check the catalog state.
        restart = true;
        break;
      }
      if (view.level() > level) {
        if (cache != nullptr) {
          cache->Put(ptr.raw(), buf, ops.fabric().simulator().now());
        }
        if (view.NeedsChase(sep)) {
          ptr = rdma::RemotePtr(view.right_sibling());
          continue;
        }
        ptr = rdma::RemotePtr(view.InnerChildFor(sep));
        continue;
      }
      // At the target level: chase, then lock.
      if (view.NeedsChase(sep)) {
        ptr = rdma::RemotePtr(view.right_sibling());
        continue;
      }
      const Status lock = co_await ops.TryLockPage(ptr, read.version);
      if (!lock.ok()) {
        if (!lock.IsAborted()) co_return lock;
        ops.ctx().restarts.Inc();
        continue;  // lost the CAS race: re-read this node
      }
      ops.StampLocked(buf, read.version);

      // Re-validate the range under the lock (version pinned by the CAS).
      if (view.InnerInsert(sep, right.raw())) {
        const Status wu = co_await ops.WriteUnlockPage(ptr, buf);
        if (wu.IsAborted()) {
          // The locked acting primary died mid-publication (R>1): the lock
          // evaporated with it; retry against the promoted replica.
          ops.ctx().restarts.Inc();
          continue;
        }
        if (!wu.ok()) co_return wu;
        if (cache != nullptr) {
          // Seed the cache with the image we just published: the next
          // descent routes through this node with zero remote reads.
          SeedPublishedImage(cache, ptr, buf,
                             ops.fabric().simulator().now());
        }
        co_return Status::OK();
      }
      // Full: split this inner node and recurse with the promoted key.
      const AllocResult alloc = co_await AllocFor(ops, trees_[tree]);
      if (!alloc.ok()) {
        if (!ops.alive()) co_return Status::Unavailable("client crashed");
        (void)co_await ops.UnlockPage(ptr);
        if (alloc.status.IsOutOfMemory()) {
          co_return Status::OK();  // OOM; separator uninstalled (B-link safe)
        }
        co_return alloc.status;  // dead allocation pool: surface it
      }
      const rdma::RemotePtr new_right = alloc.ptr;
      std::vector<uint8_t> rimage(ops.page_size());
      PageView rview(rimage.data(), ops.page_size());
      const Key promoted = view.SplitInnerInto(rview, new_right.raw());
      PageView target = sep < promoted ? view : rview;
      const bool ok = target.InnerInsert(sep, right.raw());
      assert(ok);
      (void)ok;
      // One chained {right WRITE, left WRITE, unlock} publication; a crash
      // drops the unexecuted tail, orphans the lock on `ptr` (lease-steal
      // reclaims it) and leaks the unpublished right node — both sound.
      const Status wu = co_await ops.WriteSiblingAndUnlockPage(
          new_right, rimage.data(), ptr, buf);
      if (wu.IsAborted()) {
        // Locked primary died mid-split-publication: the promoted replica
        // still shows the pre-split image and the lock evaporated. The
        // allocated right node leaks (unreachable) — retry the pass.
        ops.ctx().restarts.Inc();
        continue;
      }
      if (!wu.ok()) co_return wu;
      if (cache != nullptr) {
        // Seed both halves of the split with their freshly published
        // images (left patched to the post-release version word).
        const SimTime now = ops.fabric().simulator().now();
        SeedPublishedImage(cache, ptr, buf, now);
        cache->Put(new_right.raw(), rimage.data(), now);
      }
      co_return co_await InstallSeparator(
          ops, tree, static_cast<uint8_t>(level + 1), promoted, ptr,
          new_right);
    }
    if (restart) continue;
  }
}

sim::Task<Status> TraversalEngine::BootstrapFromCatalog(RemoteOps& ops,
                                                        uint32_t tree) {
  if (trees_[tree].catalog_ptr.is_null()) {
    co_return Status::Unsupported("tree has no catalog slot");
  }
  uint64_t raw = 0;
  const Status word = co_await ops.ReadWord(trees_[tree].catalog_ptr, &raw);
  if (!word.ok()) co_return word;
  if (!ops.fabric().ServerAlive(trees_[tree].catalog_ptr.server_id())) {
    // Catalog slots live in the (unreplicated) region header.
    co_return Status::Unavailable("catalog host dead");
  }
  const rdma::RemotePtr root(raw);
  if (root.is_null()) co_return Status::NotFound("catalog slot empty");
  // Learn the root's level from its page header.
  const Status read = co_await ops.ReadPage(root, ops.ctx().page_a());
  if (!read.ok()) co_return read;
  PageView view(ops.ctx().page_a(), ops.page_size());
  trees_[tree].root = root;
  trees_[tree].root_level = view.level();
  co_return Status::OK();
}

sim::Task<DescentResult> TraversalEngine::ResolveLeaf(nam::ClientContext& ctx,
                                                      LeafResolver& resolver,
                                                      Key key) {
  NodeCache* cache = CacheFor(ctx.client_id());
  if (cache != nullptr) {
    const uint8_t* image =
        cache->Get(key, ctx.fabric().simulator().now());
    if (image != nullptr) {
      uint64_t raw;
      std::memcpy(&raw, image, 8);
      co_return DescentResult{Status::OK(), rdma::RemotePtr(raw)};
    }
  }
  DescentResult result = co_await resolver.ResolveLeaf(ctx, key);
  if (result.ok() && cache != nullptr) {
    const uint64_t raw = result.leaf.raw();
    cache->Put(key, reinterpret_cast<const uint8_t*>(&raw),
               ctx.fabric().simulator().now());
  }
  co_return result;
}

void TraversalEngine::SeedRoute(nam::ClientContext& ctx, Key key,
                                rdma::RemotePtr leaf) {
  NodeCache* cache = CacheFor(ctx.client_id());
  if (cache == nullptr) return;
  const uint64_t raw = leaf.raw();
  cache->Put(key, reinterpret_cast<const uint8_t*>(&raw),
             ctx.fabric().simulator().now());
}

}  // namespace namtree::index
