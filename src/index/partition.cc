#include "index/partition.h"

#include <algorithm>
#include <cassert>

namespace namtree::index {

void Partitioner::FitBoundaries(std::span<const btree::KV> sorted,
                                std::span<const double> weights) {
  if (kind_ == PartitionKind::kHash) return;
  boundaries_.clear();
  if (num_servers_ <= 1) return;

  std::vector<double> w(weights.begin(), weights.end());
  if (w.size() != num_servers_) {
    w.assign(num_servers_, 1.0 / num_servers_);
  }
  double total = 0;
  for (double x : w) total += x;

  double cumulative = 0;
  for (uint32_t s = 0; s + 1 < num_servers_; ++s) {
    cumulative += w[s] / total;
    const size_t idx = std::min<size_t>(
        sorted.empty() ? 0
                       : static_cast<size_t>(cumulative *
                                             static_cast<double>(sorted.size())),
        sorted.empty() ? 0 : sorted.size() - 1);
    const btree::Key boundary = sorted.empty()
                                    ? (s + 1) * (btree::kInfinityKey /
                                                 num_servers_)
                                    : sorted[idx].key;
    boundaries_.push_back(boundary);
  }
  // Boundaries must be non-decreasing; enforce in degenerate cases.
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    boundaries_[i] = std::max(boundaries_[i], boundaries_[i - 1]);
  }
}

uint64_t Partitioner::HashKey(btree::Key key) {
  // Fibonacci hash with an avalanche step.
  uint64_t h = key * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return h;
}

uint32_t Partitioner::ServerFor(btree::Key key) const {
  if (kind_ == PartitionKind::kHash) {
    return static_cast<uint32_t>(HashKey(key) % num_servers_);
  }
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), key);
  return static_cast<uint32_t>(it - boundaries_.begin());
}

std::vector<uint32_t> Partitioner::ServersFor(btree::Key lo,
                                              btree::Key hi) const {
  std::vector<uint32_t> servers;
  if (kind_ == PartitionKind::kHash) {
    for (uint32_t s = 0; s < num_servers_; ++s) servers.push_back(s);
    return servers;
  }
  if (lo >= hi) return servers;
  const uint32_t first = ServerFor(lo);
  const uint32_t last = ServerFor(hi - 1);
  for (uint32_t s = first; s <= last; ++s) servers.push_back(s);
  return servers;
}

}  // namespace namtree::index
