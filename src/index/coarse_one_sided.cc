#include "index/coarse_one_sided.h"

#include <algorithm>

#include "btree/page.h"
#include "index/tree_build.h"
#include "rdma/memory_region.h"

namespace namtree::index {

using btree::Key;
using btree::KV;
using btree::Value;

CoarseOneSidedIndex::CoarseOneSidedIndex(nam::Cluster& cluster,
                                         IndexConfig config)
    : cluster_(cluster),
      config_(config),
      partitioner_(config.partition, cluster.num_memory_servers()),
      catalog_slot_(cluster.AllocateCatalogSlot()),
      engine_(TraversalEngine::Options{
          config.page_size,
          config.client_cache_pages > 0
              ? TraversalEngine::CacheMode::kInnerImages
              : TraversalEngine::CacheMode::kNone,
          config.client_cache_pages, config.client_cache_ttl,
          config.speculative_descent}) {
  // One engine tree per partition: splits allocate on the partition's
  // server and the root is published in that server's catalog slot.
  for (uint32_t s = 0; s < cluster.num_memory_servers(); ++s) {
    engine_.AddTree(
        static_cast<int32_t>(s),
        rdma::RemotePtr::Make(
            s, rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_)));
  }
}

Status CoarseOneSidedIndex::BulkLoad(std::span<const KV> sorted) {
  partitioner_.FitBoundaries(sorted, config_.partition_weights);
  const uint32_t servers = cluster_.num_memory_servers();

  std::vector<std::vector<KV>> scattered;
  std::vector<std::span<const KV>> slices(servers);
  if (partitioner_.kind() == PartitionKind::kHash) {
    scattered.resize(servers);
    for (const KV& kv : sorted) {
      scattered[partitioner_.ServerFor(kv.key)].push_back(kv);
    }
    for (uint32_t s = 0; s < servers; ++s) slices[s] = scattered[s];
  } else {
    size_t begin = 0;
    for (uint32_t s = 0; s < servers; ++s) {
      const Key upper = partitioner_.UpperBoundOf(s);
      size_t end = begin;
      while (end < sorted.size() && sorted[end].key < upper) end++;
      slices[s] = sorted.subspan(begin, end - begin);
      begin = end;
    }
  }

  first_leaves_.assign(servers, rdma::RemotePtr());
  for (uint32_t s = 0; s < servers; ++s) {
    LeafLevel::BuildResult leaves;
    Status status = LeafLevel::Build(cluster_.fabric(), slices[s], config_,
                                     &leaves, static_cast<int32_t>(s));
    if (!status.ok()) return status;
    first_leaves_[s] = leaves.first;
    rdma::RemotePtr root;
    uint8_t root_level = 0;
    status = BuildUpperLevels(cluster_.fabric(),
                              std::move(leaves.leaf_refs), config_.page_size,
                              config_.leaf_fill_percent,
                              static_cast<int32_t>(s), &root, &root_level);
    if (!status.ok()) return status;
    engine_.SetRoot(s, root, root_level);
    // Publish each partition root in this index's catalog slot.
    cluster_.fabric().region(s)->WriteU64(
        rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_), root.raw());
  }
  // Seed backup replicas from the bulk-loaded primaries (no-op at R=1).
  cluster_.fabric().SyncReplicasFromPrimaries();
  return Status::OK();
}

sim::Task<LookupResult> CoarseOneSidedIndex::Lookup(nam::ClientContext& ctx,
                                                    Key key) {
  metrics::OpSpan span(ctx.trace(), "lookup");
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  // As in FG: the predicted leaf rides the speculative-descent batch into
  // page_b and feeds SearchChain's first iteration when confirmed.
  TraversalEngine::DescentPrefetch prefetch;
  prefetch.leaf_buf = ctx.page_b();
  const rdma::RemotePtr leaf =
      co_await engine_.DescendToLeaf(ops, server, key, &prefetch);
  if (leaf.is_null()) {
    co_return LookupResult{false, 0, Status::Unavailable("client crashed")};
  }
  co_return co_await LeafLevel::SearchChain(
      ops, leaf, key, prefetch.leaf_image_valid ? ctx.page_b() : nullptr);
}

sim::Task<void> CoarseOneSidedIndex::MultiGet(nam::ClientContext& ctx,
                                              std::span<const Key> keys,
                                              LookupResult* results) {
  metrics::OpSpan span(ctx.trace(), "multiget");
  RemoteOps ops(ctx);
  // Sort, then group consecutive keys by locally predicted leaf within
  // their partition tree; each group is one chain walk. Prediction never
  // crosses partitions: ServerFor pins the tree, and PredictLeaf only
  // groups keys that resolve to the same leaf of the same tree.
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&keys](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  const SimTime now = ctx.fabric().simulator().now();
  size_t i = 0;
  while (i < order.size()) {
    const uint32_t server = partitioner_.ServerFor(keys[order[i]]);
    const rdma::RemotePtr predicted =
        engine_.PredictLeaf(ctx.client_id(), server, keys[order[i]], now);
    size_t j = i + 1;
    if (!predicted.is_null()) {
      while (j < order.size() &&
             partitioner_.ServerFor(keys[order[j]]) == server &&
             engine_.PredictLeaf(ctx.client_id(), server, keys[order[j]],
                                 now) == predicted) {
        j++;
      }
    }
    if (predicted.is_null() || j == i + 1) {
      results[order[i]] = co_await Lookup(ctx, keys[order[i]]);
      i = j;
      continue;
    }
    std::vector<Key> group(j - i);
    for (size_t k = i; k < j; ++k) group[k - i] = keys[order[k]];
    std::vector<LookupResult> group_results(group.size());
    // namtree-lint: status-ok(per-key statuses land in group_results)
    (void)co_await LeafLevel::SearchChainMulti(ops, predicted, group,
                                               group_results.data());
    for (size_t k = i; k < j; ++k) {
      results[order[k]] = group_results[k - i];
    }
    i = j;
  }
}

sim::Task<uint64_t> CoarseOneSidedIndex::Scan(nam::ClientContext& ctx, Key lo,
                                              Key hi, std::vector<KV>* out,
                                              Status* status) {
  metrics::OpSpan span(ctx.trace(), "scan");
  if (status != nullptr) *status = Status::OK();
  // Partition chains are per-server; visit every partition intersecting
  // the range (all of them under hash partitioning, Table 2).
  RemoteOps ops(ctx);
  uint64_t found = 0;
  std::vector<KV> merged;
  const bool hash = partitioner_.kind() == PartitionKind::kHash;
  for (uint32_t server : partitioner_.ServersFor(lo, hi)) {
    std::vector<KV>* sink = out == nullptr ? nullptr : (hash ? &merged : out);
    const rdma::RemotePtr leaf =
        co_await engine_.DescendToLeaf(ops, server, lo);
    if (leaf.is_null()) {  // dead client: report the partial count
      if (status != nullptr) *status = Status::Unavailable("client crashed");
      break;
    }
    // Later partitions may still be reachable after one chain degrades, so
    // keep going for the best-effort count but report the first failure
    // (kTimedOut vs kUnavailable matters to the YCSB FailureBreakdown).
    Status chain_status;
    found += co_await LeafLevel::ScanChain(ops, leaf, lo, hi, sink,
                                           &chain_status);
    if (!chain_status.ok() && status != nullptr && status->ok()) {
      *status = chain_status;
    }
  }
  if (out != nullptr && hash) {
    std::stable_sort(merged.begin(), merged.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
    out->insert(out->end(), merged.begin(), merged.end());
  }
  co_return found;
}

sim::Task<Status> CoarseOneSidedIndex::Insert(nam::ClientContext& ctx,
                                              Key key, Value value) {
  metrics::OpSpan span(ctx.trace(), "insert");
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf =
      co_await engine_.DescendToLeaf(ops, server, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  LeafLevel::SplitInfo split;
  const Status status = co_await LeafLevel::InsertAt(
      ops, leaf, key, value, &split, static_cast<int32_t>(server));
  if (!status.ok()) co_return status;
  if (split.split) {
    co_return co_await engine_.InstallSeparator(ops, server, 1,
                                                split.separator, leaf,
                                                split.right);
  }
  co_return Status::OK();
}

sim::Task<Status> CoarseOneSidedIndex::Update(nam::ClientContext& ctx,
                                              Key key, Value value) {
  metrics::OpSpan span(ctx.trace(), "update");
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf =
      co_await engine_.DescendToLeaf(ops, server, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::UpdateAt(ops, leaf, key, value);
}

sim::Task<uint64_t> CoarseOneSidedIndex::LookupAll(nam::ClientContext& ctx,
                                                   Key key,
                                                   std::vector<Value>* out) {
  metrics::OpSpan span(ctx.trace(), "lookup_all");
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf =
      co_await engine_.DescendToLeaf(ops, server, key);
  if (leaf.is_null()) co_return 0;
  co_return co_await LeafLevel::CollectAt(ops, leaf, key, out);
}

sim::Task<Status> CoarseOneSidedIndex::Delete(nam::ClientContext& ctx,
                                              Key key) {
  metrics::OpSpan span(ctx.trace(), "delete");
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf =
      co_await engine_.DescendToLeaf(ops, server, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::DeleteAt(ops, leaf, key);
}

sim::Task<uint64_t> CoarseOneSidedIndex::GarbageCollect(
    nam::ClientContext& ctx) {
  RemoteOps ops(ctx);
  uint64_t reclaimed = 0;
  for (uint32_t s = 0; s < cluster_.num_memory_servers(); ++s) {
    reclaimed += co_await LeafLevel::CompactChain(ops, first_leaves_[s]);
    if (config_.gc_merge_fill_percent > 0) {
      // Page merges/unlinks are counted separately from entry reclaims.
      (void)co_await LeafLevel::RebalanceChain(
          ops, first_leaves_[s], config_.gc_merge_fill_percent);
    }
    (void)co_await LeafLevel::RebuildHeadNodes(ops, first_leaves_[s],
                                               config_.head_node_interval);
  }
  co_return reclaimed;
}

}  // namespace namtree::index
