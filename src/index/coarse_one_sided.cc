#include "index/coarse_one_sided.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "btree/page.h"
#include "index/tree_build.h"
#include "rdma/memory_region.h"

namespace namtree::index {

using btree::Key;
using btree::KV;
using btree::kInfinityKey;
using btree::PageView;
using btree::Value;

CoarseOneSidedIndex::CoarseOneSidedIndex(nam::Cluster& cluster,
                                         IndexConfig config)
    : cluster_(cluster),
      config_(config),
      partitioner_(config.partition, cluster.num_memory_servers()),
      catalog_slot_(cluster.AllocateCatalogSlot()) {}

Status CoarseOneSidedIndex::BulkLoad(std::span<const KV> sorted) {
  partitioner_.FitBoundaries(sorted, config_.partition_weights);
  const uint32_t servers = cluster_.num_memory_servers();

  std::vector<std::vector<KV>> scattered;
  std::vector<std::span<const KV>> slices(servers);
  if (partitioner_.kind() == PartitionKind::kHash) {
    scattered.resize(servers);
    for (const KV& kv : sorted) {
      scattered[partitioner_.ServerFor(kv.key)].push_back(kv);
    }
    for (uint32_t s = 0; s < servers; ++s) slices[s] = scattered[s];
  } else {
    size_t begin = 0;
    for (uint32_t s = 0; s < servers; ++s) {
      const Key upper = partitioner_.UpperBoundOf(s);
      size_t end = begin;
      while (end < sorted.size() && sorted[end].key < upper) end++;
      slices[s] = sorted.subspan(begin, end - begin);
      begin = end;
    }
  }

  roots_.assign(servers, rdma::RemotePtr());
  root_levels_.assign(servers, 0);
  first_leaves_.assign(servers, rdma::RemotePtr());
  for (uint32_t s = 0; s < servers; ++s) {
    LeafLevel::BuildResult leaves;
    Status status = LeafLevel::Build(cluster_.fabric(), slices[s], config_,
                                     &leaves, static_cast<int32_t>(s));
    if (!status.ok()) return status;
    first_leaves_[s] = leaves.first;
    status = BuildUpperLevels(cluster_.fabric(),
                              std::move(leaves.leaf_refs), config_.page_size,
                              config_.leaf_fill_percent,
                              static_cast<int32_t>(s), &roots_[s],
                              &root_levels_[s]);
    if (!status.ok()) return status;
    // Publish each partition root in this index's catalog slot.
    cluster_.fabric().region(s)->WriteU64(
        rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_),
        roots_[s].raw());
  }
  return Status::OK();
}

sim::Task<rdma::RemotePtr> CoarseOneSidedIndex::DescendToLeafPtr(
    RemoteOps& ops, uint32_t server, Key key) {
  rdma::RemotePtr ptr = roots_[server];
  if (root_levels_[server] == 0) co_return ptr;
  uint8_t* buf = ops.ctx().page_a();
  // namtree-lint: bounded-loop(blink-descent: every step moves down a level or right along ascending fences; read failures exit)
  for (;;) {
    const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
    if (!read.ok()) co_return rdma::RemotePtr::Null();
    PageView view(buf, ops.page_size());
    if (view.level() == 0) co_return ptr;  // stale root metadata
    if (key > view.high_key() && view.right_sibling() != 0) {
      ptr = rdma::RemotePtr(view.right_sibling());
      continue;
    }
    const rdma::RemotePtr child(view.InnerChildFor(key));
    if (view.level() == 1) co_return child;
    ptr = child;
  }
}

sim::Task<LookupResult> CoarseOneSidedIndex::Lookup(nam::ClientContext& ctx,
                                                    Key key) {
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, server, key);
  if (leaf.is_null()) {
    co_return LookupResult{false, 0, Status::Unavailable("client crashed")};
  }
  co_return co_await LeafLevel::SearchChain(ops, leaf, key);
}

sim::Task<uint64_t> CoarseOneSidedIndex::Scan(nam::ClientContext& ctx, Key lo,
                                              Key hi, std::vector<KV>* out) {
  // Partition chains are per-server; visit every partition intersecting
  // the range (all of them under hash partitioning, Table 2).
  RemoteOps ops(ctx);
  uint64_t found = 0;
  std::vector<KV> merged;
  const bool hash = partitioner_.kind() == PartitionKind::kHash;
  for (uint32_t server : partitioner_.ServersFor(lo, hi)) {
    std::vector<KV>* sink = out == nullptr ? nullptr : (hash ? &merged : out);
    const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, server, lo);
    if (leaf.is_null()) break;  // dead client: report the partial count
    found += co_await LeafLevel::ScanChain(ops, leaf, lo, hi, sink);
  }
  if (out != nullptr && hash) {
    std::stable_sort(merged.begin(), merged.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
    out->insert(out->end(), merged.begin(), merged.end());
  }
  co_return found;
}

sim::Task<Status> CoarseOneSidedIndex::Insert(nam::ClientContext& ctx,
                                              Key key, Value value) {
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, server, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  LeafLevel::SplitInfo split;
  const Status status = co_await LeafLevel::InsertAt(
      ops, leaf, key, value, &split, static_cast<int32_t>(server));
  if (!status.ok()) co_return status;
  if (split.split) {
    co_return co_await InstallSeparator(ops, server, 1, split.separator,
                                        leaf, split.right);
  }
  co_return Status::OK();
}

sim::Task<Status> CoarseOneSidedIndex::Update(nam::ClientContext& ctx,
                                              Key key, Value value) {
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, server, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::UpdateAt(ops, leaf, key, value);
}

sim::Task<uint64_t> CoarseOneSidedIndex::LookupAll(nam::ClientContext& ctx,
                                                   Key key,
                                                   std::vector<Value>* out) {
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, server, key);
  if (leaf.is_null()) co_return 0;
  co_return co_await LeafLevel::CollectAt(ops, leaf, key, out);
}

sim::Task<Status> CoarseOneSidedIndex::Delete(nam::ClientContext& ctx,
                                              Key key) {
  RemoteOps ops(ctx);
  const uint32_t server = partitioner_.ServerFor(key);
  const rdma::RemotePtr leaf = co_await DescendToLeafPtr(ops, server, key);
  if (leaf.is_null()) co_return Status::Unavailable("client crashed");
  co_return co_await LeafLevel::DeleteAt(ops, leaf, key);
}

sim::Task<uint64_t> CoarseOneSidedIndex::GarbageCollect(
    nam::ClientContext& ctx) {
  RemoteOps ops(ctx);
  uint64_t reclaimed = 0;
  for (uint32_t s = 0; s < cluster_.num_memory_servers(); ++s) {
    reclaimed += co_await LeafLevel::CompactChain(ops, first_leaves_[s]);
    if (config_.gc_merge_fill_percent > 0) {
      // Page merges/unlinks are counted separately from entry reclaims.
      (void)co_await LeafLevel::RebalanceChain(
          ops, first_leaves_[s], config_.gc_merge_fill_percent);
    }
    (void)co_await LeafLevel::RebuildHeadNodes(ops, first_leaves_[s],
                                               config_.head_node_interval);
  }
  co_return reclaimed;
}

sim::Task<bool> CoarseOneSidedIndex::TryGrowRoot(RemoteOps& ops,
                                                 uint32_t server,
                                                 uint8_t new_level, Key sep,
                                                 rdma::RemotePtr left,
                                                 rdma::RemotePtr right) {
  const rdma::RemotePtr new_root = co_await ops.AllocPage(server);
  if (new_root.is_null()) co_return true;  // tree stays valid via chains
  std::vector<uint8_t> image(ops.page_size());
  PageView view(image.data(), ops.page_size());
  view.InitInner(new_level, kInfinityKey, 0);
  view.inner_keys()[0] = sep;
  view.inner_children()[0] = left.raw();
  view.inner_children()[1] = right.raw();
  view.header().count = 1;
  ops.ctx().round_trips++;
  co_await ops.fabric().Write(ops.ctx().client_id(), new_root, image.data(),
                              ops.page_size());
  // A dropped root-image write must not be published: give up, tree valid.
  if (!ops.alive()) co_return true;
  if (roots_[server] != left) co_return false;  // lost the catalog race
  roots_[server] = new_root;
  root_levels_[server] = new_level;
  ops.ctx().round_trips++;
  co_await ops.fabric().Write(
      ops.ctx().client_id(),
      rdma::RemotePtr::Make(
          server, rdma::MemoryRegion::CatalogSlotOffset(catalog_slot_)),
      &new_root, 8);
  co_return true;
}

sim::Task<Status> CoarseOneSidedIndex::InstallSeparator(RemoteOps& ops,
                                                        uint32_t server,
                                                        uint8_t level, Key sep,
                                                        rdma::RemotePtr left,
                                                        rdma::RemotePtr right) {
  uint8_t* buf = ops.ctx().page_a();
  // Bounded: every pass makes B-link progress or propagates a failure
  // status. namtree-lint: bounded-loop(blink-restart)
  for (;;) {
    if (root_levels_[server] < level) {
      if (co_await TryGrowRoot(ops, server, level, sep, left, right)) {
        co_return ops.alive() ? Status::OK()
                              : Status::Unavailable("client crashed");
      }
      continue;
    }
    rdma::RemotePtr ptr = roots_[server];
    bool restart = false;
    // namtree-lint: bounded-loop(blink-descent)
    for (;;) {
      const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
      if (!read.ok()) co_return read.status;
      PageView view(buf, ops.page_size());
      if (view.level() < level) {
        restart = true;
        break;
      }
      if (view.level() > level) {
        if (sep > view.high_key() && view.right_sibling() != 0) {
          ptr = rdma::RemotePtr(view.right_sibling());
          continue;
        }
        ptr = rdma::RemotePtr(view.InnerChildFor(sep));
        continue;
      }
      if (sep > view.high_key() && view.right_sibling() != 0) {
        ptr = rdma::RemotePtr(view.right_sibling());
        continue;
      }
      const Status lock = co_await ops.TryLockPage(ptr, read.version);
      if (!lock.ok()) {
        if (!lock.IsAborted()) co_return lock;
        ops.ctx().restarts++;
        continue;  // lost the CAS race: re-read this node
      }
      ops.StampLocked(buf, read.version);

      if (view.InnerInsert(sep, right.raw())) {
        co_return co_await ops.WriteUnlockPage(ptr, buf);
      }
      const rdma::RemotePtr new_right = co_await ops.AllocPage(server);
      if (new_right.is_null()) {
        if (!ops.alive()) co_return Status::Unavailable("client crashed");
        (void)co_await ops.UnlockPage(ptr);
        co_return Status::OK();  // separator uninstalled (B-link safe)
      }
      std::vector<uint8_t> rimage(ops.page_size());
      PageView rview(rimage.data(), ops.page_size());
      const Key promoted = view.SplitInnerInto(rview, new_right.raw());
      PageView target = sep < promoted ? view : rview;
      const bool ok = target.InnerInsert(sep, right.raw());
      assert(ok);
      (void)ok;
      // One chained {right WRITE, left WRITE, unlock} publication; a crash
      // drops the unexecuted tail, orphans the lock on `ptr` (lease-steal
      // reclaims it) and leaks the unpublished right node — both sound.
      const Status wu = co_await ops.WriteSiblingAndUnlockPage(
          new_right, rimage.data(), ptr, buf);
      if (!wu.ok()) co_return wu;
      co_return co_await InstallSeparator(ops, server,
                                          static_cast<uint8_t>(level + 1),
                                          promoted, ptr, new_right);
    }
    if (restart) continue;
  }
}

}  // namespace namtree::index
