#ifndef NAMTREE_INDEX_TRAVERSAL_H_
#define NAMTREE_INDEX_TRAVERSAL_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "btree/page.h"
#include "common/status.h"
#include "index/node_cache.h"
#include "index/remote_ops.h"
#include "nam/cluster.h"
#include "rdma/remote_ptr.h"
#include "sim/task.h"

namespace namtree::index {

/// Outcome of resolving a starting leaf for a key. OK carries a candidate
/// leaf pointer (leaf-chain chases are still the caller's job, via the
/// LeafLevel routines); any other status ended the resolution (kUnavailable
/// for a dead caller, kTimedOut once an RPC deadline is exhausted).
struct DescentResult {
  Status status;
  rdma::RemotePtr leaf;

  bool ok() const { return status.ok(); }
};

/// The shared one-sided B-link traversal engine: one implementation of the
/// descend -> chase -> validate -> lock -> retry state machine that the
/// paper's one-sided designs (FG, CG-one-sided) and the hybrid design's
/// leaf resolution are built on. A design is a *policy triple* over this
/// engine instead of its own copy of the protocol:
///
///   root policy  - which tree to start in and where its root lives. The
///                  engine owns a table of trees: FG registers one global
///                  tree (round-robin allocation, catalog slot on server
///                  0); CG-one-sided registers one tree per partition
///                  (fixed-server allocation, catalog slot on server s);
///                  hybrid registers none and resolves leaves through a
///                  LeafResolver RPC hook instead.
///   cache policy - CacheMode: no cache, per-client inner-node image cache
///                  (Appendix A.4; descents and separator installs consult
///                  and seed it, splits seed both halves), or a per-client
///                  leaf-route cache for RPC designs (key -> leaf pointer,
///                  seeded from resolver results).
///   lock policy  - the RemoteOps facade passed into every call: OLC
///                  version validation, CAS lock acquire with capped
///                  backoff and lease-based steal from dead holders, and
///                  doorbell-chained {page WRITE, unlock} /
///                  {sibling, page, unlock} publication.
///
/// Every fence decision goes through PageView::NeedsChase, which encodes
/// the inclusive-inner / exclusive-leaf fence contract in one place.
///
/// Crash faults surface as Status::Unavailable (descents return a null
/// leaf); the tree is valid at every step — B-link: a split is reachable
/// via the left sibling pointer before its separator is installed, and an
/// orphaned lock is lease-stolen.
class TraversalEngine {
 public:
  enum class CacheMode {
    kNone,
    /// Cache full inner-node images keyed by remote pointer (one-sided
    /// descents). Stale images only route too far left; the chase recovers.
    kInnerImages,
    /// Cache resolved leaf pointers keyed by the exact lookup key (RPC
    /// designs). Stale routes only point too far left in the leaf chain
    /// (leaf coverage moves right under splits and drain-merges, never
    /// left), so the chain chase recovers.
    kLeafRoutes,
  };

  struct Options {
    uint32_t page_size = 0;
    CacheMode cache_mode = CacheMode::kNone;
    size_t cache_pages = 0;
    SimTime cache_ttl = 0;
    /// One-RTT speculative descent (kInnerImages only; default off —
    /// bit-identical to the level-by-level loop). Before awaiting
    /// anything, DescendToLeaf walks the cached inner images locally —
    /// including TTL-expired ones and the sibling-chase hops their fences
    /// imply — to predict the full root→leaf path, issues a single
    /// doorbell-batched READ covering every predicted page that is missing
    /// or expired (plus the leaf itself when the caller passes a
    /// DescentPrefetch), and then validates top-down, falling back to the
    /// level-by-level loop from the first mispredicted hop. Staleness
    /// degrades exactly as in the plain loop: a stale image routes too far
    /// left and the chase recovers — speculation can waste batched reads,
    /// never correctness.
    bool speculative_descent = false;
  };

  /// Optional leaf handoff for speculative descents: when the predictor
  /// resolves a full path, the predicted leaf's image rides the same
  /// batch into `leaf_buf` (caller-owned, page-sized). On return,
  /// `leaf_image_valid` says the descent confirmed the predicted leaf and
  /// the image is consistent (unlocked, live server) — the caller may hand
  /// it to LeafLevel::SearchChain as its first-iteration preread and skip
  /// one more round trip.
  struct DescentPrefetch {
    uint8_t* leaf_buf = nullptr;
    bool leaf_image_valid = false;
  };

  /// Aggregate per-client cache statistics.
  struct CacheStats {
    // namtree-lint: metric-ok(aggregated copy of NodeCache's local counts, returned by value to callers; not a live counter)
    uint64_t hits = 0;
    // namtree-lint: metric-ok(see hits)
    uint64_t misses = 0;
    uint64_t expirations = 0;
  };

  /// Root-policy hook for RPC designs: resolves a starting leaf for `key`
  /// without a one-sided descent (hybrid: the find-leaf RPC to the
  /// partition owner).
  class LeafResolver {
   public:
    virtual ~LeafResolver() = default;
    virtual sim::Task<DescentResult> ResolveLeaf(nam::ClientContext& ctx,
                                                 btree::Key key) = 0;
  };

  explicit TraversalEngine(Options opts) : opts_(opts) {}

  // ---- Root policy: the tree table ----------------------------------------

  /// Registers a one-sided tree. `alloc_server` < 0 scatters split
  /// allocations round-robin (fine-grained placement); >= 0 pins them to
  /// one server (partitioned placement). `catalog_ptr` is where the root
  /// pointer is published for remote bootstrap (null = unpublished).
  /// Returns the tree id.
  uint32_t AddTree(int32_t alloc_server, rdma::RemotePtr catalog_ptr);

  /// Sets a tree's root after a bulk load (the catalog slot itself is
  /// written by the loader at setup time).
  void SetRoot(uint32_t tree, rdma::RemotePtr root, uint8_t root_level);

  rdma::RemotePtr root(uint32_t tree) const { return trees_[tree].root; }
  uint8_t root_level(uint32_t tree) const { return trees_[tree].root_level; }

  // ---- One-sided descent ---------------------------------------------------

  /// Descends tree `tree`'s inner levels one-sided (paper Listing 2) to a
  /// leaf candidate for `key`, consulting/seeding the inner-image cache.
  /// Null means this client died mid-descent. With
  /// Options::speculative_descent the descent is prefixed by the
  /// predict→batch→validate pass (see Options); `prefetch`, when non-null,
  /// additionally requests the predicted leaf's image in the same batch.
  sim::Task<rdma::RemotePtr> DescendToLeaf(RemoteOps& ops, uint32_t tree,
                                           btree::Key key,
                                           DescentPrefetch* prefetch = nullptr);

  /// Locally predicts the leaf for `key` from this client's cached inner
  /// images alone — Peek only: no verbs, no LRU touch, no stat skew.
  /// Null when the cache cannot resolve a complete path. Stale predictions
  /// are safe for grouping (MultiGet): they can only name a leaf too far
  /// left, and the chain chase recovers.
  rdma::RemotePtr PredictLeaf(uint32_t client_id, uint32_t tree,
                              btree::Key key, SimTime now) const;

  /// Installs separator `sep` / right child `right` at inner `level` of
  /// tree `tree` after a split of `left`, growing the root through the
  /// catalog when the tree is too short. Unavailable means this client
  /// died mid-install; the tree stays valid via the sibling chain.
  sim::Task<Status> InstallSeparator(RemoteOps& ops, uint32_t tree,
                                     uint8_t level, btree::Key sep,
                                     rdma::RemotePtr left,
                                     rdma::RemotePtr right);

  /// Re-reads tree `tree`'s root pointer from its catalog slot with an
  /// RDMA READ — how a freshly connected compute server bootstraps (§4.2)
  /// — and refreshes the root level from the page header.
  sim::Task<Status> BootstrapFromCatalog(RemoteOps& ops, uint32_t tree);

  // ---- RPC leaf resolution (hybrid root policy) ----------------------------

  /// Resolves a starting leaf for `key` through `resolver`, consulting and
  /// seeding the per-client leaf-route cache (CacheMode::kLeafRoutes).
  sim::Task<DescentResult> ResolveLeaf(nam::ClientContext& ctx,
                                       LeafResolver& resolver,
                                       btree::Key key);

  /// Seeds the route cache after a leaf split this client performed: keys
  /// at or above the separator now live in `right`.
  void SeedRoute(nam::ClientContext& ctx, btree::Key key,
                 rdma::RemotePtr leaf);

  // ---- Cache policy --------------------------------------------------------

  /// The client's cache (inner images or leaf routes, per CacheMode), or
  /// nullptr when caching is disabled. Created lazily per client id.
  NodeCache* CacheFor(uint32_t client_id);

  CacheStats GetCacheStats() const;

 private:
  struct Tree {
    rdma::RemotePtr root;
    uint8_t root_level = 0;
    int32_t alloc_server = -1;
    rdma::RemotePtr catalog_ptr;
  };

  /// RDMA_ALLOC following the tree's placement policy. Surfaces
  /// kOutOfMemory (stripe exhausted) and kUnavailable (dead client / no
  /// live server) through the AllocResult status.
  sim::Task<AllocResult> AllocFor(RemoteOps& ops, const Tree& tree);

  /// Publishes a grown root through the tree's catalog slot. True = done
  /// (or gave up soundly); false = lost the race, caller re-examines.
  sim::Task<bool> TryGrowRoot(RemoteOps& ops, uint32_t tree,
                              uint8_t new_level, btree::Key sep,
                              rdma::RemotePtr left, rdma::RemotePtr right);

  /// Seeds `cache` with a just-published image, patched from the locked
  /// word to the post-release version so later descents validate cleanly.
  void SeedPublishedImage(NodeCache* cache, rdma::RemotePtr ptr,
                          uint8_t* buf, SimTime now);

  /// Images fetched by one speculative batch, plus what was predicted.
  struct SpecState {
    /// Batch landing area (page-granular slots into `arena`), keyed by the
    /// page's primary pointer. Slots whose target died mid-batch or whose
    /// image arrived locked are dropped at validation time.
    std::unordered_map<uint64_t, uint8_t*> fresh;
    /// Every page pointer the local prediction walked through.
    std::unordered_map<uint64_t, bool> predicted;
    std::vector<uint8_t> arena;
    bool attempted = false;       ///< a prediction (with or w/o batch) ran
    bool complete = false;        ///< prediction reached a leaf pointer
    bool leaf_in_batch = false;   ///< predicted leaf rode the batch
    rdma::RemotePtr predicted_leaf;
  };

  /// The predict→batch half of a speculative descent: walks cached images
  /// locally (Peek — no cache mutation), then issues one doorbell-batched
  /// READ for the missing/expired prefix plus (optionally) the leaf.
  sim::Task<void> SpeculatePath(RemoteOps& ops, uint32_t tree,
                                btree::Key key, NodeCache* cache,
                                DescentPrefetch* prefetch, SpecState* spec);

  Options opts_;
  std::vector<Tree> trees_;
  std::unordered_map<uint32_t, std::unique_ptr<NodeCache>> caches_;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_TRAVERSAL_H_
