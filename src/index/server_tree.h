#ifndef NAMTREE_INDEX_SERVER_TREE_H_
#define NAMTREE_INDEX_SERVER_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "btree/page.h"
#include "btree/types.h"
#include "common/status.h"
#include "index/index.h"
#include "nam/memory_server.h"
#include "sim/task.h"

namespace namtree::index {

/// A B-link tree living inside one memory server's region, operated on by
/// that server's RPC handler coroutines in simulated time.
///
/// This is the server side of the coarse-grained design (§3): optimistic
/// lock coupling exactly as Listing 1/3 — handlers spin on the lock bit,
/// validate versions after searching a node, and escalate to the write lock
/// with a local CAS — with every node visit charged to the worker's CPU, so
/// lock waits and CPU saturation shape throughput the way they do on real
/// memory servers.
///
/// Two modes:
///   * local leaves  (CG): level 0 pages hold the data.
///   * remote leaf children (hybrid, §5): the lowest *local* level is 1;
///     its children are RemotePtrs to fine-grained leaves that live on any
///     memory server and are accessed one-sided by clients.
class ServerTree {
 public:
  /// A child reference used to build the hybrid upper levels.
  struct ChildRef {
    btree::Key low;    ///< smallest key reachable through the child
    uint64_t raw_ptr;  ///< RemotePtr::raw() of the child page
  };

  struct TreeStats {
    uint64_t pages = 0;
    uint64_t height = 0;
    uint64_t live_entries = 0;
    uint64_t tombstones = 0;
  };

  ServerTree(nam::MemoryServer& server, uint32_t page_size)
      : server_(server), page_size_(page_size) {}

  ServerTree(const ServerTree&) = delete;
  ServerTree& operator=(const ServerTree&) = delete;

  uint32_t page_size() const { return page_size_; }
  nam::MemoryServer& server() { return server_; }

  // ---- Setup-time construction (no virtual time) --------------------------

  /// CG mode: builds leaves + inner levels over `sorted` in this server's
  /// region.
  Status Build(std::span<const btree::KV> sorted, uint32_t fill_percent);

  /// Hybrid mode: builds inner levels over remote leaf children. The tree
  /// then ends at level 1; lookups return child pointers.
  Status BuildOverChildren(std::span<const ChildRef> children,
                           uint32_t fill_percent);

  // ---- Handler-side operations (coroutines in virtual time) ----------------

  sim::Task<LookupResult> Lookup(btree::Key key);

  /// Collects live entries in [lo, hi) into `out` (CG mode only). `limit`
  /// bounds the handler's work; kInfinity semantics when 0.
  sim::Task<uint64_t> Scan(btree::Key lo, btree::Key hi,
                           std::vector<btree::KV>* out);

  sim::Task<Status> Insert(btree::Key key, btree::Value value);
  sim::Task<Status> Update(btree::Key key, btree::Value value);
  sim::Task<uint64_t> LookupAll(btree::Key key,
                                std::vector<btree::Value>* out);
  sim::Task<Status> Delete(btree::Key key);

  /// Compacts tombstones out of all local leaves (CG epoch GC).
  sim::Task<uint64_t> Compact();

  /// Hybrid: raw RemotePtr of the leaf child whose range contains `key`.
  sim::Task<uint64_t> FindLeafChild(btree::Key key);

  /// Hybrid: installs a separator produced by a one-sided leaf split.
  sim::Task<Status> InstallChildSeparator(btree::Key sep, uint64_t child_raw);

  /// Host-side inspection (quiescent use).
  TreeStats GetStats() const;

  uint64_t root_raw() const { return root_raw_; }
  uint8_t root_level() const { return root_level_; }
  bool remote_leaves() const { return remote_leaves_; }

 private:
  /// Outcome of a root-growth attempt (see TryGrowRoot).
  enum class GrowResult { kDone, kLostRace, kExhausted };

  btree::PageView View(uint64_t raw) const;
  bool IsLocalPage(uint64_t raw) const;

  /// Allocates one page from this server's region. 0 = region exhausted
  /// (kResourceExhausted surfaces through the caller, never an assert).
  uint64_t AllocatePage();

  /// Charges handler CPU (scaled for the QPI penalty).
  sim::Task<void> Cpu(SimTime base);
  /// Awaits the node's lock bit, charging spin time. Returns the version.
  sim::Task<uint64_t> AwaitUnlocked(uint64_t raw);

  /// Descends to the lowest local level for `key` (level 0 in CG mode,
  /// level 1 in hybrid mode), charging CPU per node. Returns the node's raw
  /// pointer and its validated version in `*version`.
  sim::Task<uint64_t> DescendToBottom(btree::Key key, uint64_t* version);

  /// Descends to the node at `level`, locks it (chasing right as needed),
  /// returns it; 0 when the root is below `level`.
  sim::Task<uint64_t> DescendToLevelLocked(uint8_t level, btree::Key sep);

  /// Installs a separator at `level` after a split of (left, right).
  /// kResourceExhausted = the region ran out of pages mid-propagation; the
  /// tree stays valid via the sibling chain (B-link), the separator is
  /// simply not indexed yet.
  sim::Task<Status> InstallSeparator(uint8_t level, btree::Key sep,
                                     uint64_t left_raw, uint64_t right_raw);

  GrowResult TryGrowRoot(uint8_t new_level, btree::Key sep, uint64_t left_raw,
                         uint64_t right_raw);

  /// Generic bottom-up builder over one prepared bottom level.
  Status BuildUpper(std::vector<ChildRef> level_nodes, uint8_t bottom_level,
                    uint32_t fill_percent);

  nam::MemoryServer& server_;
  uint32_t page_size_;
  bool remote_leaves_ = false;
  uint8_t bottom_level_ = 0;  ///< lowest level stored locally
  uint64_t root_raw_ = 0;
  uint8_t root_level_ = 0;
};

}  // namespace namtree::index

#endif  // NAMTREE_INDEX_SERVER_TREE_H_
