#ifndef NAMTREE_RDMA_FABRIC_H_
#define NAMTREE_RDMA_FABRIC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "rdma/audit.h"
#include "rdma/fabric_config.h"
#include "rdma/memory_region.h"
#include "rdma/remote_ptr.h"
#include "rdma/rpc.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace namtree::rdma {

/// Outcome of a liveness-registry read (Fabric::ReadClientEpoch): OK with
/// the liveness snapshot, or kUnavailable when every server that could host
/// the target's epoch record is dead (the probe must not spin forever).
/// Default-constructible — coroutine Task payloads must be.
struct EpochReadResult {
  Status status;
  bool alive = true;
};

/// How a posted verb completed from the initiating client's point of view.
/// kOk = the completion arrived (the memory effect, if any, is visible).
/// kLost = no completion within the retransmission budget: either the verb
/// never executed (dropped before the NIC) or it executed and only the
/// acknowledgement was lost — the caller cannot tell which and must resolve
/// the ambiguity by protocol (docs/fault_model.md §8). Only a flaky-network
/// fault domain produces kLost; lossless runs always see kOk.
enum class VerbCompletion : uint8_t { kOk, kLost };

/// Completion + previous value of an RDMA atomic (CAS / FETCH_AND_ADD).
/// `value` is meaningful only when ok(): a lost atomic completion delivers
/// no pre-image, which is exactly the ambiguity the client must resolve by
/// reading the word back. Default-constructible for coroutine payloads.
struct AtomicResult {
  uint64_t value = 0;
  VerbCompletion completion = VerbCompletion::kOk;
  bool ok() const { return completion == VerbCompletion::kOk; }
};

/// Outcome of Fabric::CombinedRead: whether the request attached to an
/// in-flight READ, and how the underlying verb completed.
struct CombinedReadResult {
  bool combined = false;
  VerbCompletion completion = VerbCompletion::kOk;
  bool ok() const { return completion == VerbCompletion::kOk; }
};

/// The simulated RDMA network connecting compute clients to memory servers.
///
/// All verbs perform their *real* memory effect (copy / compare-and-swap /
/// fetch-and-add against the registered `MemoryRegion`) at the virtual time
/// at which the target NIC would execute them, so concurrent protocols
/// observe exactly the interleavings a real one-sided fabric produces
/// (verb-atomic granularity, serialized by the target NIC engine).
///
/// Resources modeled per memory server: a NIC processing engine (serializes
/// verb execution; occupancy depends on verb type, FabricConfig) and tx/rx
/// links at FDR-4x port bandwidth. Compute machines contribute tx/rx links
/// shared by their (default 40) clients. Co-located accesses (Appendix A.3)
/// bypass the wire and use the machine-local memory bus instead.
class Fabric {
 public:
  Fabric(sim::Simulator& simulator, const FabricConfig& config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  const FabricConfig& config() const { return config_; }

  // ---- Registration / topology ------------------------------------------

  /// Registers `region` as memory server `server_id`'s RDMA-visible memory.
  void RegisterRegion(uint32_t server_id, MemoryRegion* region);

  MemoryRegion* region(uint32_t server_id) {
    return memory_servers_[server_id].region;
  }
  Srq& srq(uint32_t server_id) { return *memory_servers_[server_id].srq; }

  uint32_t num_memory_servers() const { return config_.num_memory_servers; }

  /// Informs the fabric how many closed-loop clients exist (sizes the
  /// per-connection overhead term and the compute machine count).
  void SetNumClients(uint32_t n);
  uint32_t num_clients() const { return num_clients_; }

  /// Compute machine hosting `client`.
  uint32_t ClientMachine(uint32_t client) const {
    return client / config_.clients_per_compute_machine;
  }

  /// True when `client` and memory server `server` share a machine and the
  /// co-located fast path applies.
  bool IsLocal(uint32_t client, uint32_t server) const {
    return config_.colocate &&
           ClientMachine(client) == config_.MemoryServerMachine(server);
  }

  // ---- Crash-fault injection ---------------------------------------------

  /// Kills `client` at virtual time `at_time` (0 or past = immediately).
  /// From its death on, the client's in-flight verbs are dropped before
  /// their memory effect and every verb it posts returns without effect;
  /// callers observe this through `RemoteOps` as Status::Unavailable.
  /// Deterministic alternative: FabricConfig::crash_points kills a client
  /// after its Nth verb. Killing is idempotent; the earliest time wins.
  void KillClient(uint32_t client, SimTime at_time = 0);

  /// Client liveness at the current virtual time. This is the
  /// fabric-maintained registry that waiters consult (via ReadClientEpoch)
  /// before stealing an orphaned lock.
  bool ClientAlive(uint32_t client) const {
    auto it = death_time_.find(client);
    return it == death_time_.end() || simulator_.now() < it->second;
  }

  /// One-sided READ of `target`'s liveness record from the registry page
  /// hosted on memory server `target % num_memory_servers` (or, under
  /// replication, the first live server of that record's replica group).
  /// Charges the full 8-byte READ cost shape (post, wire, engine,
  /// response) to `reader` and returns the liveness snapshot taken at the
  /// verb's memory effect. A dead reader learns nothing and gets OK/true;
  /// a dead *registry host* (every replica gone) surfaces kUnavailable so
  /// waiters bound their probing instead of spinning forever.
  sim::Task<EpochReadResult> ReadClientEpoch(uint32_t reader,
                                             uint32_t target);

  // ---- Memory-server fault domain -----------------------------------------

  /// Kills memory server `server` at virtual time `at_time` (0 or past =
  /// immediately). From its death on, one-sided verbs targeting its region
  /// drop before their memory effect (per chain *member* — members bound
  /// for live servers still land), RPCs routed to it complete with
  /// kUnavailable, and its worker loop stops consuming the SRQ. Killing is
  /// idempotent; the earliest time wins. Deterministic alternative:
  /// FabricConfig::server_crash_points.
  void KillServer(uint32_t server, SimTime at_time = 0);

  /// Memory-server liveness at the current virtual time.
  bool ServerAlive(uint32_t server) const {
    return simulator_.now() < server_death_time_[server];
  }

  /// Verb effects executed against `server` so far (server crash points
  /// key off this count).
  uint64_t server_verbs_executed(uint32_t server) const {
    return server_verbs_executed_[server];
  }

  // ---- Network fault domain (flaky fabric) --------------------------------

  /// Severs the (client, server) link from `at_time` (0 or past =
  /// immediately) until HealLink: every verb the client posts at that
  /// server is dropped before its memory effect and its completion never
  /// arrives (kLost after the retransmission budget). Both endpoints stay
  /// alive — this is a partial partition, not a crash.
  void PartitionLink(uint32_t client, uint32_t server, SimTime at_time = 0);

  /// Severs several links at once (each pair is {client, server}).
  void PartitionLinks(
      const std::vector<std::pair<uint32_t, uint32_t>>& links,
      SimTime at_time = 0);

  /// Restores a severed link immediately.
  void HealLink(uint32_t client, uint32_t server);

  /// True when the (client, server) link is severed at the current virtual
  /// time.
  bool LinkPartitioned(uint32_t client, uint32_t server) const;

  /// True once any network-fault source can still fire: configured
  /// probabilities / fault points, or at least one severed link. Client
  /// protocols consult this to decide whether ambiguity bookkeeping (e.g.
  /// the allocation-cursor pre-read) is worth a round trip — knobs-off
  /// runs must stay verb-for-verb identical.
  bool NetFaultsLive() const {
    return net_faults_configured_ || !partitioned_links_.empty();
  }

  // ---- Replication ---------------------------------------------------------

  /// Effective replication degree: FabricConfig::replication_factor clamped
  /// to [1, num_memory_servers].
  uint32_t replication() const { return replication_; }
  bool replicated() const { return replication_ > 1; }

  /// Bytes of one rank stripe of `server`'s page area (capacity minus the
  /// header, divided by R). Rank 0 [kHeaderSize, kHeaderSize + stripe) is
  /// the server's own primary stripe; rank r >= 1 holds backups of server
  /// (s - r + N) % N's primaries.
  uint64_t ReplicaStripeBytes(uint32_t server) const {
    return (region_capacity(server) - MemoryRegion::kHeaderSize) /
           replication_;
  }

  /// Address of replica `rank` of the page at primary address `primary`:
  /// server (s + rank) % N, offset shifted up by rank stripes. Rank 0 is
  /// the identity. Pure formula — no directory.
  RemotePtr ReplicaPtr(RemotePtr primary, uint32_t rank) const {
    if (rank == 0) return primary;
    const uint32_t server =
        (primary.server_id() + rank) % config_.num_memory_servers;
    const uint64_t off = primary.offset() - MemoryRegion::kHeaderSize;
    return RemotePtr::Make(
        server, MemoryRegion::kHeaderSize +
                    rank * ReplicaStripeBytes(primary.server_id()) + off);
  }

  /// Primary-allocation cap of `server`'s region: its rank-0 stripe end
  /// under replication, full capacity otherwise.
  uint64_t AllocLimit(uint32_t server) const {
    return replicated()
               ? MemoryRegion::kHeaderSize + ReplicaStripeBytes(server)
               : region_capacity(server);
  }

  /// Copies every server's allocated primary pages into its backup ranks
  /// (setup-time catch-up after bulk load, outside simulated time). No-op
  /// at R=1. Region headers (alloc cursors, catalog slots) are not
  /// replicated.
  void SyncReplicasFromPrimaries();

  // ---- One-sided verbs ----------------------------------------------------

  /// RDMA READ: copies `len` bytes from remote memory into `dst`. Returns
  /// kLost when a network fault swallowed the verb or its completion (the
  /// buffer is then unspecified); always kOk on a lossless fabric.
  sim::Task<VerbCompletion> Read(uint32_t client, RemotePtr src, void* dst,
                                 uint32_t len);

  /// READ with in-flight combining (FabricConfig::read_combining): if this
  /// client already has an identical (src, len) READ outstanding, attach
  /// to it — no verb is posted; the caller resumes when the outstanding
  /// read's completion arrives and receives the bytes it delivered.
  /// Returns true when the request was combined, false when it posted the
  /// verb itself. With the knob off this is exactly Read (returns false).
  ///
  /// A combined waiter observes a snapshot taken at the primary verb's
  /// effect time, which may precede its own call by the in-flight window —
  /// indistinguishable from having issued the read slightly earlier, so
  /// the OLC staleness argument (validate version, chase right) covers it.
  /// Failure symmetry: if the verb was dropped (dead client or server) the
  /// waiter's buffer is as unspecified as the poster's, and both re-check
  /// liveness after resuming. A combined waiter inherits the primary
  /// verb's completion outcome.
  sim::Task<CombinedReadResult> CombinedRead(uint32_t client, RemotePtr src,
                                             void* dst, uint32_t len);

  struct ReadRequest {
    RemotePtr src;
    void* dst;
    uint32_t len;
  };

  /// One element of a doorbell-batched verb chain (PostChain).
  struct ChainOp {
    enum class Kind : uint8_t { kRead, kWrite, kCas };

    Kind kind = Kind::kRead;
    RemotePtr target;
    void* dst = nullptr;        ///< READ destination buffer
    const void* src = nullptr;  ///< WRITE source buffer
    uint32_t len = 0;
    uint64_t expected = 0;      ///< CAS compare value
    uint64_t desired = 0;       ///< CAS swap value
    uint64_t* result = nullptr; ///< CAS pre-image sink (optional)
    /// Fence: drop this member at effect time if the named server is dead
    /// by then (-1 = unfenced). Replicated unlock chains fence backup
    /// WRITEs on the lock-holding primary: once the primary dies, a
    /// reader may already have promoted a backup, so a late backup WRITE
    /// must not clobber it. Soundness: the member's effect is either
    /// before the primary's death (lands before any promotion could
    /// begin) or after it (dropped).
    int32_t fence_server = -1;

    static ChainOp Read(RemotePtr src, void* dst, uint32_t len) {
      ChainOp op;
      op.kind = Kind::kRead;
      op.target = src;
      op.dst = dst;
      op.len = len;
      return op;
    }
    static ChainOp Write(RemotePtr dst, const void* src, uint32_t len) {
      ChainOp op;
      op.kind = Kind::kWrite;
      op.target = dst;
      op.src = src;
      op.len = len;
      return op;
    }
    static ChainOp Cas(RemotePtr target, uint64_t expected, uint64_t desired,
                       uint64_t* result = nullptr) {
      ChainOp op;
      op.kind = Kind::kCas;
      op.target = target;
      op.len = 8;
      op.expected = expected;
      op.desired = desired;
      op.result = result;
      return op;
    }
  };

  /// Doorbell-batched chain of READ/WRITE/CAS verbs: all ops are posted
  /// back-to-back with one doorbell and only the tail signaled, so each
  /// member is charged the cheap unsignaled engine cost (atomics keep
  /// their lock-unit cost). The whole chain counts as *one* verb against
  /// the poster's crash point; a client that dies mid-chain loses the
  /// not-yet-executed tail atomically.
  ///
  /// Ordering: a READ-only chain executes its members independently (the
  /// selectively-signaled prefetch of §4.3). As soon as the chain contains
  /// a WRITE or CAS, members take effect strictly in posting order — the
  /// initiating NIC streams the WQEs sequentially — which is what makes
  /// the {page WRITE, unlock WRITE} and split chains safe to combine.
  /// Completes when the signaled tail's response has arrived. Under
  /// network faults a chain member can be dropped individually; the first
  /// dropped member also kills the not-yet-executed tail (the NIC stops
  /// streaming WQEs past a faulted one), and the chain completes kLost.
  sim::Task<VerbCompletion> PostChain(uint32_t client,
                                      std::vector<ChainOp> ops);

  /// Selectively-signaled batch of READs (head-node prefetch, §4.3): a
  /// READ-only PostChain. Completes when the last read has arrived.
  sim::Task<VerbCompletion> ReadBatch(uint32_t client,
                                      std::vector<ReadRequest> requests);

  /// RDMA WRITE: copies `len` bytes from `src` into remote memory. kLost
  /// when a network fault swallowed the verb or its completion; the bytes
  /// may or may not have landed (idempotent re-post is safe).
  sim::Task<VerbCompletion> Write(uint32_t client, RemotePtr dst,
                                  const void* src, uint32_t len);

  /// RDMA compare-and-swap on an 8-byte remote word. On kOk, `value` is
  /// the previous value (equal to `expected` iff the swap happened). On
  /// kLost the swap may or may not have executed — resolve by reading the
  /// word back (the holder stamp / version tells which).
  sim::Task<AtomicResult> CompareAndSwap(uint32_t client, RemotePtr target,
                                         uint64_t expected, uint64_t desired);

  /// RDMA fetch-and-add on an 8-byte remote word. On kOk, `value` is the
  /// previous value. On kLost the add may or may not have executed.
  sim::Task<AtomicResult> FetchAndAdd(uint32_t client, RemotePtr target,
                                      uint64_t add);

  // ---- Two-sided verbs (RPC) ----------------------------------------------

  /// Sends `request` to `server` via SEND/RECV and suspends until the reply
  /// SEND arrives. With FabricConfig::rpc_timeout_ns set, each attempt is
  /// abandoned after the deadline and resent up to rpc_max_retries times;
  /// exhaustion yields a response with status kTimedOut, and a dead caller
  /// gets kUnavailable.
  sim::Task<RpcResponse> Call(uint32_t client, uint32_t server,
                              RpcRequest request);

  /// Called by a memory-server handler to reply to `incoming`. The caller
  /// keeps running; the response is delivered in the background. A response
  /// whose caller has abandoned the call (timeout / death) still pays the
  /// send costs but is dropped.
  void Respond(uint32_t server, const IncomingRpc& incoming,
               RpcResponse response);

  /// Server-side exactly-once admission, called by a worker before invoking
  /// the handler for `rpc`. Returns true when the handler should execute.
  /// Returns false for a retransmission of a request that already executed
  /// (the cached response is resent without re-running the handler) or that
  /// is still executing (the duplicate is parked and answered when the
  /// original responds). Handlers mutate index state, so this layer — not
  /// handler idempotence — is what makes the Call resend discipline safe.
  /// No-op (always true) when network faults are off: rpc_id is 0 then.
  bool AdmitRpc(uint32_t server, const IncomingRpc& rpc);

  // ---- Verb-protocol audit ------------------------------------------------

  /// The protocol auditor watching this fabric's verbs, or nullptr when the
  /// build compiled it out (-DNAMTREE_AUDIT=OFF; plain Release default).
  VerbAuditor* auditor() { return auditor_.get(); }
  const VerbAuditor* auditor() const { return auditor_.get(); }

  /// OK when no protocol violations were recorded (or auditing is compiled
  /// out), otherwise Corruption describing the first violation.
  Status CheckAuditClean() const {
    return auditor_ ? auditor_->CheckClean() : Status::OK();
  }

  // ---- Statistics ----------------------------------------------------------

  /// The one registry of fabric-level (and, by registration, client- and
  /// audit-level) metric families. Every counter the fabric maintains is a
  /// registered family — read them via `metrics().Value("fabric.doorbells")`
  /// etc. or collect a Snapshot/Delta; there are no per-counter getters.
  /// Families:
  ///   fabric.signaled_verbs    verbs posted with a signaled completion
  ///                            since the last ResetStats (standalone verbs
  ///                            plus each chain's signaled tail)
  ///   fabric.unsignaled_verbs  chain members riding a doorbell without
  ///                            their own completion
  ///   fabric.doorbells         doorbell rings: one per standalone verb,
  ///                            one per chain
  ///   fabric.combined_reads    READs combined away by CombinedRead
  ///                            (verbs never posted)
  ///   fabric.dropped_verbs     verbs dropped because their client was dead
  ///                            at post or effect time (never reset)
  ///   fabric.dropped_responses RPC responses whose caller had abandoned
  ///                            the call (never reset)
  ///   fabric.rpc_timeouts      RPC attempts abandoned at the deadline
  ///                            (never reset)
  ///   fabric.net.dropped_verbs        verbs lost before the target NIC
  ///                                   (no memory effect; never reset)
  ///   fabric.net.dropped_completions  verbs whose effect applied but whose
  ///                                   acknowledgement was lost (never reset)
  ///   fabric.net.duplicates           verbs re-executed at the NIC (never
  ///                                   reset)
  ///   fabric.net.delayed_verbs        verbs stretched by delay jitter
  ///                                   (never reset)
  ///   fabric.net.partitioned_drops    verbs dropped on a severed link
  ///                                   (never reset)
  ///   retry.attempts{domain}   re-attempts after a failed try, by retry
  ///                            domain (rpc here; lock/verb/steal are
  ///                            registered by ClientContext; never reset)
  ///   retry.exhausted{domain}  retry budgets used up (never reset)
  ///   server.bytes{server}     per-server tx+rx bytes since last reset
  metrics::MetricRegistry& metrics() { return metrics_; }
  const metrics::MetricRegistry& metrics() const { return metrics_; }

  struct ServerStats {
    uint64_t tx_bytes = 0;
    uint64_t rx_bytes = 0;
    // namtree-lint: metric-ok(per-server effect-time accounting exposed to the registry via the server.bytes callback family)
    uint64_t verbs = 0;
    SimTime engine_busy = 0;
    // Per-verb breakdown (target-side).
    // namtree-lint: metric-ok(see verbs)
    uint64_t reads = 0;
    // namtree-lint: metric-ok(see verbs)
    uint64_t writes = 0;
    uint64_t atomics = 0;
    uint64_t sends = 0;
  };

  ServerStats server_stats(uint32_t server) const;

  /// Sum of tx+rx bytes over all memory servers since the last reset.
  uint64_t TotalMemoryServerBytes() const;

  /// Verbs issued by `client` so far (crash points key off this count).
  uint64_t client_verbs(uint32_t client) const {
    auto it = verbs_issued_.find(client);
    return it == verbs_issued_.end() ? 0 : it->second;
  }
  /// Per-RPC service-time surcharge from connection bookkeeping
  /// (`per_client_poll_ns` x connected clients).
  SimTime PerRequestConnectionOverhead() const {
    return static_cast<SimTime>(config_.per_client_poll_ns * num_clients_);
  }

  /// One wire traversal, with fault-injection jitter applied when enabled.
  SimTime WireLatency() {
    if (config_.latency_jitter <= 0) return config_.wire_latency_ns;
    const double factor = 1.0 + config_.latency_jitter * jitter_rng_.NextDouble();
    return static_cast<SimTime>(config_.wire_latency_ns * factor);
  }

  /// Straggler factor of memory server `s` (1.0 when none injected).
  double ServerSlowdown(uint32_t server) const {
    if (server < config_.server_slowdown.size()) {
      return config_.server_slowdown[server];
    }
    return 1.0;
  }

  /// NIC engine occupancy at `server`, scaled for injected stragglers.
  SimTime EngineCost(uint32_t server, SimTime base) const {
    return static_cast<SimTime>(base * ServerSlowdown(server));
  }

  /// Engine occupancy of a two-sided message of `wire_bytes` at `server`:
  /// one SEND for RC; ceil(bytes / MTU) cheaper datagrams for UD (§3.2 /
  /// FaSST-style transport).
  SimTime TwoSidedEngineCost(uint32_t server, uint32_t wire_bytes) const {
    if (config_.rpc_transport ==
        FabricConfig::RpcTransport::kUnreliableDatagram) {
      const uint32_t fragments =
          (wire_bytes + config_.ud_mtu - 1) / config_.ud_mtu;
      return EngineCost(server, fragments * config_.ud_engine_ns);
    }
    return EngineCost(server, config_.twosided_engine_ns);
  }

  void ResetStats();

 private:
  struct MemoryServerEndpoint {
    MemoryServerEndpoint(sim::Simulator& simulator, double bw)
        : tx(bw), rx(bw), engine(bw), srq(new Srq(simulator)) {}
    sim::Link tx;
    sim::Link rx;
    sim::Link engine;  // occupancy-only (ReserveOccupancy)
    std::unique_ptr<Srq> srq;
    MemoryRegion* region = nullptr;
    // namtree-lint: metric-ok(NIC-model working state folded into ServerStats at effect time; never read as a metric itself)
    uint64_t reads = 0;
    // namtree-lint: metric-ok(see reads)
    uint64_t writes = 0;
    uint64_t atomics = 0;
    uint64_t sends = 0;
  };

  struct ComputeEndpoint {
    explicit ComputeEndpoint(double bw) : tx(bw), rx(bw) {}
    sim::Link tx;
    sim::Link rx;
  };

  /// Ensures the compute machine endpoint for `client` exists; returns it.
  ComputeEndpoint& ComputeFor(uint32_t client);

  /// Machine-local bus for co-located transfers on memory machine `m`.
  sim::Link& LocalBus(uint32_t machine) { return *local_bus_[machine]; }

  /// Validates that [ptr, ptr+len) lies inside the registered region.
  uint8_t* TargetAddress(RemotePtr ptr, uint32_t len);

  /// Counts one verb against `client` and evaluates its crash point.
  /// Returns false when the client is (or just became) dead — the caller
  /// must drop the verb without a memory effect.
  bool CountVerbAndCheckAlive(uint32_t client);

  /// Effect-time gate of the server fault domain: counts one verb effect
  /// against `server` and evaluates its crash point. Returns false when
  /// the server is dead (or died on exactly this verb) — the caller must
  /// drop the effect. Cost reservations are never affected, so healthy
  /// runs stay bit-identical.
  bool ServerVerbExecutes(uint32_t server);

  /// What the network does to one verb on the (client, server) link.
  enum class NetFaultKind : uint8_t {
    kNone,
    kDropVerb,        ///< lost before the NIC: no effect, no completion
    kDropCompletion,  ///< effect applied, acknowledgement lost
    kDuplicate,       ///< executed twice at the NIC
  };
  struct NetFault {
    NetFaultKind kind = NetFaultKind::kNone;
    SimTime extra_delay = 0;    ///< additive delay-jitter draw
    bool partitioned = false;   ///< drop caused by a severed link
  };

  /// Decides the network's treatment of the verb `client` just posted at
  /// `server`. Called once per posted verb (chains: once per member), but
  /// only when `net_faults_live_` — knobs-off runs never reach the RNG.
  /// Exact verb_fault_points (matched against the post-order verb counter,
  /// consumed once) take precedence; a severed link forces kDropVerb; then
  /// the link's probabilistic knobs draw from `net_rng_`. Random dup draws
  /// skip atomics when `is_atomic` (RC NICs answer retransmitted atomics
  /// from the response cache — exactly-once); only an exact fault point
  /// can force an atomic duplicate.
  NetFault DrawNetFault(uint32_t client, uint32_t server, bool is_atomic);

  uint64_t region_capacity(uint32_t server) const {
    return memory_servers_[server].region->capacity();
  }

  /// Fails every pending RPC targeting `server` with kUnavailable (its
  /// workers will never respond) and tells the auditor the region is gone.
  void OnServerDeathNow(uint32_t server);

  sim::Simulator& simulator_;
  FabricConfig config_;
  /// Declared before every registered handle (and before auditor_, whose
  /// callbacks it holds) so handles unregister into a live registry.
  metrics::MetricRegistry metrics_;
  std::vector<MemoryServerEndpoint> memory_servers_;
  std::vector<std::unique_ptr<ComputeEndpoint>> compute_machines_;
  std::vector<std::unique_ptr<sim::Link>> local_bus_;
  uint32_t num_clients_ = 0;
  Rng jitter_rng_{0x9E3779B9};
  std::unique_ptr<VerbAuditor> auditor_;
  // Crash-fault state: death times, per-client crash points (earliest
  // after_verbs wins), verb counters, and the fabric-owned registry of
  // in-flight RPCs (callers that time out abandon their entry; a late
  // Respond then finds nothing instead of a dangling pointer).
  std::unordered_map<uint32_t, SimTime> death_time_;
  std::unordered_map<uint32_t, uint64_t> crash_after_;
  std::unordered_map<uint32_t, uint64_t> verbs_issued_;
  // Memory-server fault domain: death times (sentinel = immortal),
  // effect-time verb counters, and per-server crash points (earliest
  // after_verbs wins).
  std::vector<SimTime> server_death_time_;
  std::vector<uint64_t> server_verbs_executed_;
  std::unordered_map<uint32_t, uint64_t> server_crash_after_;
  uint32_t replication_ = 1;
  // Network fault domain: cached enablement, dedicated RNG (seeded from
  // net_fault_seed; drawn only when faults are live), per-link overrides,
  // severed links (value = partition start time), and one consumed flag
  // per configured exact fault point.
  bool net_faults_configured_ = false;
  Rng net_rng_{0x51ED270Bu};
  std::map<std::pair<uint32_t, uint32_t>, FabricConfig::LinkFault>
      link_fault_overrides_;
  std::map<std::pair<uint32_t, uint32_t>, SimTime> partitioned_links_;
  std::vector<bool> verb_fault_consumed_;
  std::unordered_map<uint64_t, std::unique_ptr<PendingCall>> pending_calls_;
  uint64_t next_call_id_ = 1;
  /// Exactly-once bookkeeping for two-sided calls under network faults. An
  /// entry is created when the first delivery of an rpc_id is admitted and
  /// holds the cached response once the handler replied; duplicates that
  /// arrive while the original is still executing park in `waiters` and are
  /// answered from the cache when it responds. Only populated while
  /// NetFaultsLive() (rpc_id stays 0 otherwise), so knobs-off runs never
  /// touch it.
  struct RpcDedupEntry {
    bool done = false;
    RpcResponse response;
    std::vector<IncomingRpc> waiters;
  };
  std::unordered_map<uint64_t, RpcDedupEntry> rpc_dedup_;
  uint64_t next_rpc_id_ = 1;
  /// Doorbell-chain ids handed to the auditor so a race report can name the
  /// chain both verbs rode in (0 = standalone verb).
  uint64_t next_chain_id_ = 1;
  /// In-flight combining state (FabricConfig::read_combining): one entry
  /// per outstanding combinable READ, keyed (client, target raw, len).
  /// Later same-key requesters park on `done` and copy out of `data`;
  /// shared ownership keeps the landing buffer alive for waiters that
  /// resume after the poster erased the table entry.
  struct PendingRead {
    explicit PendingRead(sim::Simulator& simulator) : done(simulator) {}
    std::vector<uint8_t> data;
    sim::SimEvent done;
    /// Completion outcome of the primary verb, inherited by every waiter.
    VerbCompletion completion = VerbCompletion::kOk;
  };
  std::map<std::tuple<uint32_t, uint64_t, uint32_t>,
           std::shared_ptr<PendingRead>>
      pending_reads_;
  // Registered in the constructor under the family names documented at
  // metrics(); ResetStats() zeroes the first four, the drop/timeout
  // counters run for the fabric's lifetime.
  metrics::Counter combined_reads_;
  metrics::Counter dropped_verbs_;
  metrics::Counter dropped_responses_;
  metrics::Counter rpc_timeouts_;
  metrics::Counter signaled_verbs_;
  metrics::Counter unsignaled_verbs_;
  metrics::Counter doorbells_;
  // Network-fault event families (never reset).
  metrics::Counter net_dropped_verbs_;
  metrics::Counter net_dropped_completions_;
  metrics::Counter net_duplicates_;
  metrics::Counter net_delayed_verbs_;
  metrics::Counter net_partitioned_drops_;
  metrics::Counter rpc_dedup_hits_;
  // RPC retry discipline (domain=rpc cells of the shared retry.* families;
  // ClientContext registers the lock/verb/steal cells).
  metrics::Counter rpc_retry_attempts_;
  metrics::Counter rpc_retry_exhausted_;
};

}  // namespace namtree::rdma

#endif  // NAMTREE_RDMA_FABRIC_H_
