#include "rdma/fabric.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace namtree::rdma {

namespace {

// Modeled wire sizes of verb envelopes (request headers, acks).
constexpr uint32_t kReadRequestBytes = 16;
constexpr uint32_t kWriteHeaderBytes = 16;
constexpr uint32_t kAtomicRequestBytes = 32;
constexpr uint32_t kAtomicResponseBytes = 16;
constexpr uint32_t kAckBytes = 8;

}  // namespace

Fabric::Fabric(sim::Simulator& simulator, const FabricConfig& config)
    : simulator_(simulator), config_(config), jitter_rng_(config.jitter_seed) {
#if NAMTREE_AUDIT
  auditor_ = std::make_unique<VerbAuditor>();
#endif
  memory_servers_.reserve(config_.num_memory_servers);
  for (uint32_t s = 0; s < config_.num_memory_servers; ++s) {
    memory_servers_.emplace_back(simulator_,
                                 config_.link_bandwidth_bytes_per_sec);
  }
  local_bus_.resize(config_.NumMemoryMachines());
  for (auto& bus : local_bus_) {
    bus = std::make_unique<sim::Link>(config_.local_bandwidth_bytes_per_sec);
  }
}

void Fabric::RegisterRegion(uint32_t server_id, MemoryRegion* region) {
  assert(server_id < memory_servers_.size());
  memory_servers_[server_id].region = region;
}

void Fabric::SetNumClients(uint32_t n) {
  num_clients_ = n;
  const uint32_t machines =
      (n + config_.clients_per_compute_machine - 1) /
      config_.clients_per_compute_machine;
  while (compute_machines_.size() < machines) {
    compute_machines_.push_back(std::make_unique<ComputeEndpoint>(
        config_.link_bandwidth_bytes_per_sec));
  }
}

Fabric::ComputeEndpoint& Fabric::ComputeFor(uint32_t client) {
  const uint32_t machine = ClientMachine(client);
  while (compute_machines_.size() <= machine) {
    compute_machines_.push_back(std::make_unique<ComputeEndpoint>(
        config_.link_bandwidth_bytes_per_sec));
  }
  return *compute_machines_[machine];
}

uint8_t* Fabric::TargetAddress(RemotePtr ptr, uint32_t len) {
  assert(!ptr.is_null());
  MemoryServerEndpoint& ep = memory_servers_[ptr.server_id()];
  assert(ep.region != nullptr && "verb against unregistered region");
  assert(ep.region->Contains(ptr.offset(), len));
  (void)len;
  return ep.region->at(ptr.offset());
}

sim::Task<void> Fabric::Read(uint32_t client, RemotePtr src, void* dst,
                             uint32_t len) {
  MemoryServerEndpoint& server = memory_servers_[src.server_id()];
  uint8_t* remote = TargetAddress(src, len);

  if (IsLocal(client, src.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(src.server_id()));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, len);
    co_await sim::DelayUntil(simulator_, done);
    if (auditor_) auditor_->OnReadEffect(client, src, len, simulator_.now());
    std::memcpy(dst, remote, len);
    co_return;
  }

  ComputeEndpoint& compute = ComputeFor(client);
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_req_out = compute.tx.ReserveTransfer(t_post,
                                                       kReadRequestBytes);
  const SimTime t_arrive = t_req_out + WireLatency();
  const SimTime t_effect =
      server.engine.ReserveOccupancy(
          t_arrive, EngineCost(src.server_id(), config_.onesided_engine_ns));
  server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);

  server.reads++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (auditor_) auditor_->OnReadEffect(client, src, len, simulator_.now());
  std::memcpy(dst, remote, len);

  const SimTime t_tx = server.tx.ReserveTransfer(t_effect, len);
  const SimTime first_byte_at_client =
      t_tx - server.tx.TransferDuration(len) + WireLatency();
  const SimTime done = compute.rx.ReserveArrival(first_byte_at_client, len);
  co_await sim::DelayUntil(simulator_, done);
}

sim::Task<void> Fabric::ReadBatch(uint32_t client,
                                  std::vector<ReadRequest> requests) {
  if (requests.empty()) co_return;

  struct Pending {
    SimTime effect;
    SimTime done;
    size_t index;
  };
  std::vector<Pending> pending;
  pending.reserve(requests.size());

  ComputeEndpoint& compute = ComputeFor(client);
  // One doorbell for the whole chain; only the final verb is signaled.
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  SimTime overall_done = t_post;

  for (size_t i = 0; i < requests.size(); ++i) {
    const ReadRequest& r = requests[i];
    if (IsLocal(client, r.src.server_id())) {
      sim::Link& bus = LocalBus(config_.MemoryServerMachine(r.src.server_id()));
      const SimTime done = bus.ReserveTransfer(
          simulator_.now() + config_.local_latency_ns, r.len);
      pending.push_back({done, done, i});
      overall_done = std::max(overall_done, done);
      continue;
    }
    MemoryServerEndpoint& server = memory_servers_[r.src.server_id()];
    const SimTime t_req_out =
        compute.tx.ReserveTransfer(t_post, kReadRequestBytes);
    const SimTime t_arrive = t_req_out + WireLatency();
    const SimTime t_effect = server.engine.ReserveOccupancy(
        t_arrive,
        EngineCost(r.src.server_id(), config_.unsignaled_engine_ns));
    server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);
    server.reads++;
    const SimTime t_tx = server.tx.ReserveTransfer(t_effect, r.len);
    const SimTime first_byte =
        t_tx - server.tx.TransferDuration(r.len) + WireLatency();
    const SimTime done = compute.rx.ReserveArrival(first_byte, r.len);
    pending.push_back({t_effect, done, i});
    overall_done = std::max(overall_done, done);
  }

  // Perform the memory effects in virtual-time order.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.effect < b.effect;
                   });
  for (const Pending& p : pending) {
    co_await sim::DelayUntil(simulator_, p.effect);
    const ReadRequest& r = requests[p.index];
    if (auditor_) {
      auditor_->OnReadEffect(client, r.src, r.len, simulator_.now());
    }
    std::memcpy(r.dst, TargetAddress(r.src, r.len), r.len);
  }
  co_await sim::DelayUntil(simulator_, overall_done);
}

sim::Task<void> Fabric::Write(uint32_t client, RemotePtr dst, const void* src,
                              uint32_t len) {
  MemoryServerEndpoint& server = memory_servers_[dst.server_id()];
  uint8_t* remote = TargetAddress(dst, len);
  const uint64_t audit_ticket =
      auditor_ ? auditor_->OnWritePosted(client, dst, len, simulator_.now())
               : 0;

  if (IsLocal(client, dst.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(dst.server_id()));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, len);
    co_await sim::DelayUntil(simulator_, done);
    if (auditor_) auditor_->OnWriteEffect(audit_ticket, src, simulator_.now());
    std::memcpy(remote, src, len);
    co_return;
  }

  ComputeEndpoint& compute = ComputeFor(client);
  const uint32_t wire_bytes = len + kWriteHeaderBytes;
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
  const SimTime first_byte_at_server =
      t_out - compute.tx.TransferDuration(wire_bytes) +
      WireLatency();
  const SimTime t_rx = server.rx.ReserveArrival(first_byte_at_server,
                                                wire_bytes);
  const SimTime t_effect =
      server.engine.ReserveOccupancy(
          t_rx, EngineCost(dst.server_id(), config_.onesided_engine_ns));

  server.writes++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (auditor_) auditor_->OnWriteEffect(audit_ticket, src, simulator_.now());
  std::memcpy(remote, src, len);

  server.tx.ReserveTransfer(t_effect, kAckBytes);
  const SimTime done = t_effect + WireLatency();
  co_await sim::DelayUntil(simulator_, done);
}

sim::Task<uint64_t> Fabric::CompareAndSwap(uint32_t client, RemotePtr target,
                                           uint64_t expected,
                                           uint64_t desired) {
  MemoryServerEndpoint& server = memory_servers_[target.server_id()];
  uint8_t* remote = TargetAddress(target, 8);

  SimTime t_effect;
  SimTime done;
  if (IsLocal(client, target.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(target.server_id()));
    // Atomics still serialize through the NIC even locally (loopback) so
    // that remote and local atomics remain mutually atomic; see §4.2.
    t_effect = server.engine.ReserveOccupancy(
        bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                            kAtomicRequestBytes),
        config_.atomic_engine_ns);
    done = t_effect + config_.local_latency_ns;
  } else {
    ComputeEndpoint& compute = ComputeFor(client);
    const SimTime t_post = simulator_.now() + config_.nic_post_ns;
    const SimTime t_out =
        compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
    const SimTime t_arrive = t_out + WireLatency();
    server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
    t_effect =
        server.engine.ReserveOccupancy(t_arrive, config_.atomic_engine_ns);
    server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
    done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                     kAtomicResponseBytes);
  }

  server.atomics++;
  co_await sim::DelayUntil(simulator_, t_effect);
  uint64_t current;
  std::memcpy(&current, remote, 8);
  if (current == expected) {
    std::memcpy(remote, &desired, 8);
  }
  if (auditor_) {
    auditor_->OnCasEffect(client, target, expected, desired, current,
                          simulator_.now());
  }
  co_await sim::DelayUntil(simulator_, done);
  co_return current;
}

sim::Task<uint64_t> Fabric::FetchAndAdd(uint32_t client, RemotePtr target,
                                        uint64_t add) {
  MemoryServerEndpoint& server = memory_servers_[target.server_id()];
  uint8_t* remote = TargetAddress(target, 8);

  SimTime t_effect;
  SimTime done;
  if (IsLocal(client, target.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(target.server_id()));
    t_effect = server.engine.ReserveOccupancy(
        bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                            kAtomicRequestBytes),
        config_.atomic_engine_ns);
    done = t_effect + config_.local_latency_ns;
  } else {
    ComputeEndpoint& compute = ComputeFor(client);
    const SimTime t_post = simulator_.now() + config_.nic_post_ns;
    const SimTime t_out =
        compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
    const SimTime t_arrive = t_out + WireLatency();
    server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
    t_effect =
        server.engine.ReserveOccupancy(t_arrive, config_.atomic_engine_ns);
    server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
    done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                     kAtomicResponseBytes);
  }

  server.atomics++;
  co_await sim::DelayUntil(simulator_, t_effect);
  uint64_t current;
  std::memcpy(&current, remote, 8);
  const uint64_t updated = current + add;
  std::memcpy(remote, &updated, 8);
  if (auditor_) {
    auditor_->OnFaaEffect(client, target, add, current, simulator_.now());
  }
  co_await sim::DelayUntil(simulator_, done);
  co_return current;
}

sim::Task<RpcResponse> Fabric::Call(uint32_t client, uint32_t server_id,
                                    RpcRequest request) {
  MemoryServerEndpoint& server = memory_servers_[server_id];
  PendingCall pending(simulator_);
  const uint32_t wire_bytes = request.WireBytes();

  SimTime t_deliver;
  if (IsLocal(client, server_id)) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
    t_deliver = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, wire_bytes);
  } else {
    ComputeEndpoint& compute = ComputeFor(client);
    const SimTime t_post = simulator_.now() + config_.nic_post_ns;
    const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
    const SimTime t_arrive = t_out + WireLatency();
    server.rx.ReserveArrival(t_arrive - 1, wire_bytes);
    t_deliver = server.engine.ReserveOccupancy(
        t_arrive, TwoSidedEngineCost(server_id, wire_bytes));
  }

  server.sends++;
  co_await sim::DelayUntil(simulator_, t_deliver);
  IncomingRpc incoming;
  incoming.client_id = client;
  incoming.request = std::move(request);
  incoming.pending = &pending;
  server.srq->Deliver(std::move(incoming));

  co_await pending.done;
  co_await sim::DelayUntil(simulator_, pending.deliver_at);
  co_return std::move(pending.response);
}

void Fabric::Respond(uint32_t server_id, const IncomingRpc& incoming,
                     RpcResponse response) {
  MemoryServerEndpoint& server = memory_servers_[server_id];
  const uint32_t wire_bytes = response.WireBytes();

  SimTime done;
  if (IsLocal(incoming.client_id, server_id)) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
    done = bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                               wire_bytes);
  } else {
    ComputeEndpoint& compute = ComputeFor(incoming.client_id);
    // UD responses fragment into MTU-sized datagrams, each costing engine
    // time on the sending NIC; RC sends the response as one message.
    SimTime t_send = simulator_.now();
    if (config_.rpc_transport ==
        FabricConfig::RpcTransport::kUnreliableDatagram) {
      t_send = server.engine.ReserveOccupancy(
          t_send, TwoSidedEngineCost(server_id, wire_bytes));
    }
    const SimTime t_out = server.tx.ReserveTransfer(t_send, wire_bytes);
    const SimTime first_byte = t_out - server.tx.TransferDuration(wire_bytes) +
                               WireLatency();
    done = compute.rx.ReserveArrival(first_byte, wire_bytes);
  }

  incoming.pending->response = std::move(response);
  incoming.pending->deliver_at = done;
  incoming.pending->done.Set();
}

Fabric::ServerStats Fabric::server_stats(uint32_t server) const {
  const MemoryServerEndpoint& ep = memory_servers_[server];
  ServerStats stats;
  stats.tx_bytes = ep.tx.total_bytes();
  stats.rx_bytes = ep.rx.total_bytes();
  stats.verbs = ep.engine.total_transfers();
  stats.engine_busy = ep.engine.busy_time();
  stats.reads = ep.reads;
  stats.writes = ep.writes;
  stats.atomics = ep.atomics;
  stats.sends = ep.sends;
  return stats;
}

uint64_t Fabric::TotalMemoryServerBytes() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < memory_servers_.size(); ++s) {
    const ServerStats stats = server_stats(s);
    total += stats.tx_bytes + stats.rx_bytes;
  }
  return total;
}

void Fabric::ResetStats() {
  for (auto& ep : memory_servers_) {
    ep.tx.ResetStats();
    ep.rx.ResetStats();
    ep.engine.ResetStats();
    ep.reads = 0;
    ep.writes = 0;
    ep.atomics = 0;
    ep.sends = 0;
  }
  for (auto& ep : compute_machines_) {
    ep->tx.ResetStats();
    ep->rx.ResetStats();
  }
  for (auto& bus : local_bus_) bus->ResetStats();
}

}  // namespace namtree::rdma
