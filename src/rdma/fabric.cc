#include "rdma/fabric.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace namtree::rdma {

namespace {

// Modeled wire sizes of verb envelopes (request headers, acks).
constexpr uint32_t kReadRequestBytes = 16;
constexpr uint32_t kWriteHeaderBytes = 16;
constexpr uint32_t kAtomicRequestBytes = 32;
constexpr uint32_t kAtomicResponseBytes = 16;
constexpr uint32_t kAckBytes = 8;

/// Suite-wide schedule-exploration override: NAMTREE_SCHEDULE_SEED replays
/// every fabric built by the process under the given schedule seed without
/// touching each construction site. An explicit FabricConfig::schedule_seed
/// wins over the environment. Driven by `scripts/check.sh --explore N` and
/// the CI schedule-exploration matrix.
uint64_t EnvScheduleSeed() {
  const char* value = std::getenv("NAMTREE_SCHEDULE_SEED");
  return value == nullptr ? 0 : std::strtoull(value, nullptr, 10);
}

}  // namespace

Fabric::Fabric(sim::Simulator& simulator, const FabricConfig& config)
    : simulator_(simulator), config_(config), jitter_rng_(config.jitter_seed) {
  if (config_.schedule_seed == 0) config_.schedule_seed = EnvScheduleSeed();
  if (config_.schedule_seed != 0 || config_.schedule_jitter_ns != 0) {
    simulator_.ConfigureSchedule(config_.schedule_seed,
                                 config_.schedule_jitter_ns);
  }
#if NAMTREE_AUDIT
  auditor_ = std::make_unique<VerbAuditor>();
  auditor_->SetLivenessProbe(
      [this](uint32_t client) { return ClientAlive(client); });
#endif
  for (const FabricConfig::CrashPoint& cp : config_.crash_points) {
    auto [it, inserted] = crash_after_.emplace(cp.client, cp.after_verbs);
    if (!inserted) it->second = std::min(it->second, cp.after_verbs);
  }
  for (const FabricConfig::ServerCrashPoint& cp :
       config_.server_crash_points) {
    auto [it, inserted] = server_crash_after_.emplace(cp.server,
                                                     cp.after_verbs);
    if (!inserted) it->second = std::min(it->second, cp.after_verbs);
  }
  server_death_time_.assign(config_.num_memory_servers,
                            std::numeric_limits<SimTime>::max());
  server_verbs_executed_.assign(config_.num_memory_servers, 0);
  net_faults_configured_ = config_.NetFaultsConfigured();
  net_rng_.Seed(config_.net_fault_seed);
  for (const FabricConfig::LinkFault& lf : config_.link_faults) {
    link_fault_overrides_[{lf.client, lf.server}] = lf;
  }
  verb_fault_consumed_.assign(config_.verb_fault_points.size(), false);
  replication_ = std::max<uint32_t>(
      1, std::min(config_.replication_factor, config_.num_memory_servers));
  memory_servers_.reserve(config_.num_memory_servers);
  for (uint32_t s = 0; s < config_.num_memory_servers; ++s) {
    memory_servers_.emplace_back(simulator_,
                                 config_.link_bandwidth_bytes_per_sec);
  }
  local_bus_.resize(config_.NumMemoryMachines());
  for (auto& bus : local_bus_) {
    bus = std::make_unique<sim::Link>(config_.local_bandwidth_bytes_per_sec);
  }

  metrics_.RegisterCounter(signaled_verbs_, "fabric.signaled_verbs", {},
                           "verbs posted with a signaled completion");
  metrics_.RegisterCounter(unsignaled_verbs_, "fabric.unsignaled_verbs", {},
                           "chain members riding a doorbell unsignaled");
  metrics_.RegisterCounter(doorbells_, "fabric.doorbells",
                           {}, "doorbell rings (one per verb or chain)");
  metrics_.RegisterCounter(combined_reads_, "fabric.combined_reads", {},
                           "READs combined away onto in-flight ones");
  metrics_.RegisterCounter(dropped_verbs_, "fabric.dropped_verbs", {},
                           "verbs dropped at post or effect time");
  metrics_.RegisterCounter(dropped_responses_, "fabric.dropped_responses",
                           {}, "RPC responses with no waiting caller");
  metrics_.RegisterCounter(rpc_timeouts_, "fabric.rpc_timeouts", {},
                           "RPC attempts abandoned at the deadline");
  metrics_.RegisterCounter(net_dropped_verbs_, "fabric.net.dropped_verbs", {},
                           "verbs lost before the target NIC (no effect)");
  metrics_.RegisterCounter(net_dropped_completions_,
                           "fabric.net.dropped_completions", {},
                           "verbs whose effect applied but whose ack was lost");
  metrics_.RegisterCounter(net_duplicates_, "fabric.net.duplicates", {},
                           "verbs re-executed at the target NIC");
  metrics_.RegisterCounter(net_delayed_verbs_, "fabric.net.delayed_verbs", {},
                           "verbs stretched by injected delay jitter");
  metrics_.RegisterCounter(net_partitioned_drops_,
                           "fabric.net.partitioned_drops", {},
                           "verbs dropped on a severed (client, server) link");
  metrics_.RegisterCounter(
      rpc_dedup_hits_, "fabric.net.rpc_dedup_hits", {},
      "retransmitted RPCs answered from the dedup cache (not re-executed)");
  metrics_.RegisterCounter(rpc_retry_attempts_, "retry.attempts",
                           {{"domain", "rpc"}},
                           "re-attempts after a failed try, by retry domain");
  metrics_.RegisterCounter(rpc_retry_exhausted_, "retry.exhausted",
                           {{"domain", "rpc"}},
                           "retry budgets used up, by retry domain");
  for (uint32_t s = 0; s < config_.num_memory_servers; ++s) {
    metrics_.RegisterCallback(
        "server.bytes",
        [this, s] {
          const ServerStats stats = server_stats(s);
          return stats.tx_bytes + stats.rx_bytes;
        },
        {{"server", std::to_string(s)}},
        "per-server tx+rx bytes since the last reset");
  }
#if NAMTREE_AUDIT
  auditor_->BindMetrics(&metrics_);
#endif
}

void Fabric::RegisterRegion(uint32_t server_id, MemoryRegion* region) {
  assert(server_id < memory_servers_.size());
  memory_servers_[server_id].region = region;
  if (replicated()) {
    // Primary allocations stay inside the region's rank-0 stripe; the
    // stripes above it hold backups of the R-1 preceding servers.
    region->set_alloc_limit(MemoryRegion::kHeaderSize +
                            ReplicaStripeBytes(server_id));
  }
}

void Fabric::SetNumClients(uint32_t n) {
  num_clients_ = n;
  const uint32_t machines =
      (n + config_.clients_per_compute_machine - 1) /
      config_.clients_per_compute_machine;
  while (compute_machines_.size() < machines) {
    compute_machines_.push_back(std::make_unique<ComputeEndpoint>(
        config_.link_bandwidth_bytes_per_sec));
  }
}

Fabric::ComputeEndpoint& Fabric::ComputeFor(uint32_t client) {
  const uint32_t machine = ClientMachine(client);
  while (compute_machines_.size() <= machine) {
    compute_machines_.push_back(std::make_unique<ComputeEndpoint>(
        config_.link_bandwidth_bytes_per_sec));
  }
  return *compute_machines_[machine];
}

void Fabric::KillClient(uint32_t client, SimTime at_time) {
  const SimTime t = std::max(at_time, simulator_.now());
  auto [it, inserted] = death_time_.emplace(client, t);
  if (!inserted) it->second = std::min(it->second, t);
}

void Fabric::KillServer(uint32_t server, SimTime at_time) {
  assert(server < server_death_time_.size());
  const SimTime t = std::max(at_time, simulator_.now());
  if (t < server_death_time_[server]) server_death_time_[server] = t;
  // An immediate kill settles its fallout now; a scheduled future kill is
  // settled lazily by the first drop site that observes the death (and
  // callers already waiting on its workers by the RPC timeout machinery).
  if (t <= simulator_.now()) OnServerDeathNow(server);
}

void Fabric::OnServerDeathNow(uint32_t server) {
  if (auditor_) auditor_->OnServerDeath(server);
  // Fail callers parked on this server's workers: no response will ever
  // come. Entries already responded (done set, reply SEND in flight) keep
  // their response — it left the NIC before the death.
  for (auto& [call_id, pending] : pending_calls_) {
    (void)call_id;
    if (pending->server_id != server || pending->done.is_set()) continue;
    pending->response = RpcResponse();
    pending->response.status =
        static_cast<uint16_t>(StatusCode::kUnavailable);
    pending->deliver_at = simulator_.now();
    pending->done.Set();
  }
}

bool Fabric::ServerVerbExecutes(uint32_t server) {
  if (!ServerAlive(server)) {
    // First drop site after a scheduled death settles the fallout.
    OnServerDeathNow(server);
    return false;
  }
  const uint64_t done = server_verbs_executed_[server]++;
  auto it = server_crash_after_.find(server);
  if (it != server_crash_after_.end() && done >= it->second) {
    // The crash point fires on this verb effect: the server dies with the
    // verb on its NIC, so the effect never reaches memory.
    KillServer(server, simulator_.now());
    return false;
  }
  return true;
}

void Fabric::SyncReplicasFromPrimaries() {
  if (!replicated()) return;
  for (uint32_t s = 0; s < config_.num_memory_servers; ++s) {
    MemoryRegion* region = memory_servers_[s].region;
    if (region == nullptr) continue;
    const uint64_t cursor = region->allocated();
    if (cursor <= MemoryRegion::kHeaderSize) continue;
    const uint64_t bytes = cursor - MemoryRegion::kHeaderSize;
    for (uint32_t r = 1; r < replication_; ++r) {
      const RemotePtr dst = ReplicaPtr(
          RemotePtr::Make(s, MemoryRegion::kHeaderSize), r);
      MemoryRegion* backup = memory_servers_[dst.server_id()].region;
      assert(backup != nullptr && backup->Contains(dst.offset(), bytes));
      std::memcpy(backup->at(dst.offset()),
                  region->at(MemoryRegion::kHeaderSize), bytes);
    }
  }
}

bool Fabric::CountVerbAndCheckAlive(uint32_t client) {
  if (!ClientAlive(client)) return false;
  const uint64_t issued = verbs_issued_[client]++;
  auto it = crash_after_.find(client);
  if (it != crash_after_.end() && issued >= it->second) {
    // The crash point fires on this verb: the client dies while posting
    // it, so the verb never leaves the local NIC.
    KillClient(client, simulator_.now());
    return false;
  }
  return true;
}

void Fabric::PartitionLink(uint32_t client, uint32_t server, SimTime at_time) {
  const SimTime t = std::max(at_time, simulator_.now());
  auto [it, inserted] = partitioned_links_.emplace(
      std::make_pair(client, server), t);
  if (!inserted) it->second = std::min(it->second, t);
}

void Fabric::PartitionLinks(
    const std::vector<std::pair<uint32_t, uint32_t>>& links, SimTime at_time) {
  for (const auto& [client, server] : links) {
    PartitionLink(client, server, at_time);
  }
}

void Fabric::HealLink(uint32_t client, uint32_t server) {
  partitioned_links_.erase(std::make_pair(client, server));
}

bool Fabric::LinkPartitioned(uint32_t client, uint32_t server) const {
  auto it = partitioned_links_.find(std::make_pair(client, server));
  return it != partitioned_links_.end() && simulator_.now() >= it->second;
}

Fabric::NetFault Fabric::DrawNetFault(uint32_t client, uint32_t server,
                                      bool is_atomic) {
  NetFault fault;
  // Exact fault points win: matched against the same post-order verb
  // counter that crash points use (CountVerbAndCheckAlive has already
  // ticked it for the current verb), consumed once each, no RNG draw.
  if (!config_.verb_fault_points.empty()) {
    const uint64_t index = verbs_issued_[client] - 1;
    for (size_t i = 0; i < config_.verb_fault_points.size(); ++i) {
      if (verb_fault_consumed_[i]) continue;
      const FabricConfig::VerbFaultPoint& fp = config_.verb_fault_points[i];
      if (fp.client != client || index < fp.after_verb) continue;
      verb_fault_consumed_[i] = true;
      switch (fp.kind) {
        case FabricConfig::VerbFaultPoint::Kind::kDropVerb:
          fault.kind = NetFaultKind::kDropVerb;
          break;
        case FabricConfig::VerbFaultPoint::Kind::kDropCompletion:
          fault.kind = NetFaultKind::kDropCompletion;
          break;
        case FabricConfig::VerbFaultPoint::Kind::kDuplicate:
          fault.kind = NetFaultKind::kDuplicate;
          break;
      }
      return fault;
    }
  }
  // A severed link eats every verb before the target NIC.
  if (LinkPartitioned(client, server)) {
    fault.kind = NetFaultKind::kDropVerb;
    fault.partitioned = true;
    return fault;
  }
  double drop = config_.drop_prob;
  double dup = config_.dup_prob;
  SimTime jitter = config_.delay_jitter_ns;
  if (!link_fault_overrides_.empty()) {
    auto it = link_fault_overrides_.find(std::make_pair(client, server));
    if (it != link_fault_overrides_.end()) {
      drop = it->second.drop_prob;
      dup = it->second.dup_prob;
      jitter = it->second.delay_jitter_ns;
    }
  }
  if (jitter > 0) {
    fault.extra_delay = static_cast<SimTime>(
        net_rng_.NextDouble() * static_cast<double>(jitter));
  }
  if (drop > 0 || dup > 0) {
    const double draw = net_rng_.NextDouble();
    if (draw < drop) {
      // A loss is equally likely to hit the request (no effect) or the
      // acknowledgement (effect applied, completion lost — the ambiguity).
      fault.kind = net_rng_.NextBool(0.5) ? NetFaultKind::kDropCompletion
                                          : NetFaultKind::kDropVerb;
    } else if (draw < drop + dup) {
      // RC NICs answer retransmitted atomics from the response cache
      // (exactly-once); random duplication therefore skips atomics, and
      // only an exact fault point can force one for auditor tests.
      if (!is_atomic) fault.kind = NetFaultKind::kDuplicate;
    }
  }
  return fault;
}

sim::Task<EpochReadResult> Fabric::ReadClientEpoch(uint32_t reader,
                                                   uint32_t target) {
  if (!CountVerbAndCheckAlive(reader)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    // A dead reader learns nothing; callers re-check alive.
    co_return EpochReadResult{Status::OK(), true};
  }
  constexpr uint32_t kEpochBytes = 8;
  // The registry record of `target` lives on server target % N; under
  // replication its replica group is consulted in rank order so the probe
  // survives the home server's death.
  const uint32_t home = target % config_.num_memory_servers;
  uint32_t server_id = home;
  bool host_found = false;
  for (uint32_t r = 0; r < replication_; ++r) {
    const uint32_t candidate = (home + r) % config_.num_memory_servers;
    if (ServerAlive(candidate)) {
      server_id = candidate;
      host_found = true;
      break;
    }
  }
  if (!host_found) {
    // Every host of the record is gone: the post errs out locally.
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return EpochReadResult{
        Status::Unavailable("liveness registry host dead"), true};
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[server_id];

  if (IsLocal(reader, server_id)) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, kEpochBytes);
    co_await sim::DelayUntil(simulator_, done);
    if (!ServerVerbExecutes(server_id)) {
      dropped_verbs_.Inc();
      co_return EpochReadResult{
          Status::Unavailable("liveness registry host dead"), true};
    }
    co_return EpochReadResult{Status::OK(), ClientAlive(target)};
  }

  ComputeEndpoint& compute = ComputeFor(reader);
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_req_out = compute.tx.ReserveTransfer(t_post,
                                                       kReadRequestBytes);
  const SimTime t_arrive = t_req_out + WireLatency();
  const SimTime t_effect = server.engine.ReserveOccupancy(
      t_arrive, EngineCost(server_id, config_.onesided_engine_ns));
  server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);

  server.reads++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ServerVerbExecutes(server_id)) {  // host died with the READ in flight
    dropped_verbs_.Inc();
    co_return EpochReadResult{
        Status::Unavailable("liveness registry host dead"), true};
  }
  const bool alive = ClientAlive(target);

  const SimTime t_tx = server.tx.ReserveTransfer(t_effect, kEpochBytes);
  const SimTime first_byte_at_client =
      t_tx - server.tx.TransferDuration(kEpochBytes) + WireLatency();
  const SimTime done = compute.rx.ReserveArrival(first_byte_at_client,
                                                 kEpochBytes);
  co_await sim::DelayUntil(simulator_, done);
  co_return EpochReadResult{Status::OK(), alive};
}

uint8_t* Fabric::TargetAddress(RemotePtr ptr, uint32_t len) {
  assert(!ptr.is_null());
  MemoryServerEndpoint& ep = memory_servers_[ptr.server_id()];
  assert(ep.region != nullptr && "verb against unregistered region");
  assert(ep.region->Contains(ptr.offset(), len));
  (void)len;
  return ep.region->at(ptr.offset());
}

sim::Task<VerbCompletion> Fabric::Read(uint32_t client, RemotePtr src,
                                       void* dst, uint32_t len) {
  if (!CountVerbAndCheckAlive(client)) {
    // Dead client: the verb never leaves the NIC. Charging the post cost
    // keeps virtual time moving for any coroutine still driving verbs.
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return VerbCompletion::kOk;  // a dead caller observes nothing anyway
  }
  NetFault net;
  if (NetFaultsLive()) net = DrawNetFault(client, src.server_id(), false);
  doorbells_.Inc();
  signaled_verbs_.Inc();
  if (net.kind == NetFaultKind::kDropVerb) {
    // Lost before the target NIC: no memory effect, no completion. The
    // caller's NIC gives up after the retransmission budget.
    (net.partitioned ? net_partitioned_drops_ : net_dropped_verbs_).Inc();
    co_await sim::Delay(simulator_,
                        config_.nic_post_ns + config_.net_verb_timeout_ns);
    co_return VerbCompletion::kLost;
  }
  if (net.extra_delay > 0) net_delayed_verbs_.Inc();
  // Standalone READ in-flight tracking (drops complete the posting too):
  // overlapping same-client duplicates are the combiner's waste metric.
  if (auditor_) auditor_->OnReadPosted(client, src, len);
  MemoryServerEndpoint& server = memory_servers_[src.server_id()];
  uint8_t* remote = TargetAddress(src, len);

  if (IsLocal(client, src.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(src.server_id()));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, len);
    co_await sim::DelayUntil(simulator_, done);
    if (auditor_) auditor_->OnReadCompleted(client, src, len);
    if (!ClientAlive(client)) {
      dropped_verbs_.Inc();
      co_return VerbCompletion::kOk;
    }
    if (!ServerVerbExecutes(src.server_id())) {  // target region is gone
      dropped_verbs_.Inc();
      co_return VerbCompletion::kOk;
    }
    if (auditor_) auditor_->OnReadEffect(client, src, len, simulator_.now());
    std::memcpy(dst, remote, len);
    if (net.kind == NetFaultKind::kDropCompletion) {
      net_dropped_completions_.Inc();
      co_await sim::Delay(simulator_, config_.net_verb_timeout_ns);
      co_return VerbCompletion::kLost;
    }
    co_return VerbCompletion::kOk;
  }

  ComputeEndpoint& compute = ComputeFor(client);
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_req_out = compute.tx.ReserveTransfer(t_post,
                                                       kReadRequestBytes);
  const SimTime t_arrive = t_req_out + WireLatency() + net.extra_delay;
  SimTime t_effect =
      server.engine.ReserveOccupancy(
          t_arrive, EngineCost(src.server_id(), config_.onesided_engine_ns));
  server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);

  server.reads++;
  if (net.kind == NetFaultKind::kDuplicate) {
    // Retransmission re-executes the READ at the NIC: a second engine
    // occupancy, harmless to memory. The client sees one response.
    net_duplicates_.Inc();
    server.reads++;
    t_effect = server.engine.ReserveOccupancy(
        t_effect, EngineCost(src.server_id(), config_.onesided_engine_ns));
  }
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // died with the verb in flight: drop it
    dropped_verbs_.Inc();
    if (auditor_) auditor_->OnReadCompleted(client, src, len);
    co_return VerbCompletion::kOk;
  }
  if (!ServerVerbExecutes(src.server_id())) {  // target region is gone
    dropped_verbs_.Inc();
    if (auditor_) auditor_->OnReadCompleted(client, src, len);
    co_return VerbCompletion::kOk;
  }
  if (auditor_) auditor_->OnReadEffect(client, src, len, simulator_.now());
  std::memcpy(dst, remote, len);

  if (net.kind == NetFaultKind::kDropCompletion) {
    // The response never reaches the client: the bytes are in flight but
    // unacknowledged, so the caller must treat the buffer as unspecified.
    net_dropped_completions_.Inc();
    if (auditor_) auditor_->OnReadCompleted(client, src, len);
    co_await sim::DelayUntil(simulator_,
                             t_effect + config_.net_verb_timeout_ns);
    co_return VerbCompletion::kLost;
  }

  const SimTime t_tx = server.tx.ReserveTransfer(t_effect, len);
  const SimTime first_byte_at_client =
      t_tx - server.tx.TransferDuration(len) + WireLatency();
  const SimTime done = compute.rx.ReserveArrival(first_byte_at_client, len);
  co_await sim::DelayUntil(simulator_, done);
  if (auditor_) auditor_->OnReadCompleted(client, src, len);
  co_return VerbCompletion::kOk;
}

sim::Task<CombinedReadResult> Fabric::CombinedRead(uint32_t client,
                                                   RemotePtr src, void* dst,
                                                   uint32_t len) {
  if (!config_.read_combining) {
    const VerbCompletion c = co_await Read(client, src, dst, len);
    co_return CombinedReadResult{false, c};
  }
  const auto key = std::make_tuple(client, src.raw(), len);
  auto it = pending_reads_.find(key);
  if (it != pending_reads_.end()) {
    // Attach to the outstanding verb: no doorbell, no duplicate. The
    // shared_ptr keeps the landing buffer alive past the poster's erase.
    std::shared_ptr<PendingRead> pending = it->second;
    combined_reads_.Inc();
    co_await pending->done;
    std::memcpy(dst, pending->data.data(), len);
    co_return CombinedReadResult{true, pending->completion};
  }
  auto pending = std::make_shared<PendingRead>(simulator_);
  pending->data.resize(len);
  pending_reads_.emplace(key, pending);
  pending->completion = co_await Read(client, src, pending->data.data(), len);
  // Dropped verbs (dead client/server) leave `data` zero-initialised —
  // as unspecified as any dropped READ's buffer; every caller re-checks
  // liveness after resuming, poster and waiters alike. A lost completion
  // propagates to every combined waiter (they share the missing ack).
  pending_reads_.erase(key);
  pending->done.Set();
  std::memcpy(dst, pending->data.data(), len);
  co_return CombinedReadResult{false, pending->completion};
}

sim::Task<VerbCompletion> Fabric::PostChain(uint32_t client,
                                            std::vector<ChainOp> ops) {
  if (ops.empty()) co_return VerbCompletion::kOk;
  // One doorbell, one crash-point tick for the whole chain.
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return VerbCompletion::kOk;
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();  // the tail carries the chain's only completion
  unsignaled_verbs_.Inc(ops.size() - 1);
  const uint64_t chain_id = next_chain_id_++;

  // A READ-only chain (head-node prefetch) has independent members; any
  // WRITE or CAS makes the chain ordered — each member's effect waits for
  // its predecessor, as the initiating NIC streams WQEs in posting order.
  bool ordered = false;
  for (const ChainOp& op : ops) {
    if (op.kind != ChainOp::Kind::kRead) ordered = true;
  }

  // Network faults hit chain members individually (one fault draw per
  // member; an exact fault point matching the chain's verb index lands on
  // its first member). The first member lost before the NIC also kills the
  // not-yet-posted tail of an ordered chain — the initiating NIC stops
  // streaming WQEs past a faulted one — and any loss (member or the
  // signaled tail's ack) surfaces as a kLost chain completion.
  std::vector<NetFault> member_faults;
  size_t net_drop_from = ops.size();
  bool completion_lost = false;
  if (NetFaultsLive()) {
    member_faults.resize(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      member_faults[i] = DrawNetFault(
          client, ops[i].target.server_id(),
          ops[i].kind == ChainOp::Kind::kCas);
      if (member_faults[i].kind == NetFaultKind::kDropVerb) {
        if (ordered) net_drop_from = std::min(net_drop_from, i);
        completion_lost = true;
      } else if (member_faults[i].kind == NetFaultKind::kDropCompletion) {
        completion_lost = true;
        net_dropped_completions_.Inc();
      }
      if (member_faults[i].extra_delay > 0) net_delayed_verbs_.Inc();
    }
  }

  struct Pending {
    SimTime effect;
    size_t index;
    uint64_t audit_ticket;
  };
  std::vector<Pending> pending;
  pending.reserve(ops.size());

  ComputeEndpoint& compute = ComputeFor(client);
  // One doorbell for the whole chain; only the final verb is signaled.
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  SimTime overall_done = t_post;
  SimTime prev_effect = 0;

  for (size_t i = 0; i < ops.size(); ++i) {
    const ChainOp& op = ops[i];
    const NetFault mf =
        member_faults.empty() ? NetFault{} : member_faults[i];
    const uint32_t sid = op.target.server_id();
    MemoryServerEndpoint& server = memory_servers_[sid];
    uint64_t ticket = 0;
    if (op.kind == ChainOp::Kind::kWrite && auditor_) {
      ticket = auditor_->OnWritePosted(client, op.target, op.len,
                                       simulator_.now(), chain_id);
    }

    SimTime t_effect = 0;
    SimTime done = 0;
    if (IsLocal(client, sid)) {
      sim::Link& bus = LocalBus(config_.MemoryServerMachine(sid));
      SimTime start = simulator_.now() + config_.local_latency_ns;
      if (ordered) start = std::max(start, prev_effect);
      if (op.kind == ChainOp::Kind::kCas) {
        // Atomics serialize through the NIC even locally (loopback) so
        // that remote and local atomics remain mutually atomic; see §4.2.
        t_effect = server.engine.ReserveOccupancy(
            bus.ReserveTransfer(start, kAtomicRequestBytes),
            config_.atomic_engine_ns);
        done = t_effect + config_.local_latency_ns;
      } else {
        t_effect = bus.ReserveTransfer(start, op.len);
        done = t_effect;
      }
    } else {
      switch (op.kind) {
        case ChainOp::Kind::kRead: {
          const SimTime t_req_out =
              compute.tx.ReserveTransfer(t_post, kReadRequestBytes);
          SimTime t_arrive = t_req_out + WireLatency() + mf.extra_delay;
          if (ordered) t_arrive = std::max(t_arrive, prev_effect);
          t_effect = server.engine.ReserveOccupancy(
              t_arrive, EngineCost(sid, config_.unsignaled_engine_ns));
          server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);
          const SimTime t_tx = server.tx.ReserveTransfer(t_effect, op.len);
          const SimTime first_byte =
              t_tx - server.tx.TransferDuration(op.len) + WireLatency();
          done = compute.rx.ReserveArrival(first_byte, op.len);
          break;
        }
        case ChainOp::Kind::kWrite: {
          const uint32_t wire_bytes = op.len + kWriteHeaderBytes;
          const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
          const SimTime first_byte_at_server =
              t_out - compute.tx.TransferDuration(wire_bytes) + WireLatency() +
              mf.extra_delay;
          SimTime t_rx =
              server.rx.ReserveArrival(first_byte_at_server, wire_bytes);
          if (ordered) t_rx = std::max(t_rx, prev_effect);
          t_effect = server.engine.ReserveOccupancy(
              t_rx, EngineCost(sid, config_.unsignaled_engine_ns));
          // Only the signaled tail acks back to the initiator; the acks of
          // the unsignaled members coalesce into it.
          if (i + 1 == ops.size()) {
            server.tx.ReserveTransfer(t_effect, kAckBytes);
          }
          done = t_effect + WireLatency();
          break;
        }
        case ChainOp::Kind::kCas: {
          const SimTime t_out =
              compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
          SimTime t_arrive = t_out + WireLatency() + mf.extra_delay;
          if (ordered) t_arrive = std::max(t_arrive, prev_effect);
          server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
          t_effect = server.engine.ReserveOccupancy(t_arrive,
                                                    config_.atomic_engine_ns);
          server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
          done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                           kAtomicResponseBytes);
          break;
        }
      }
    }
    if (mf.kind == NetFaultKind::kDuplicate) {
      // Retransmission re-executes this member at the NIC: a second
      // engine occupancy; the re-executed memory effect happens at the
      // (later) second slot in the effects loop below.
      net_duplicates_.Inc();
      t_effect = server.engine.ReserveOccupancy(
          t_effect, op.kind == ChainOp::Kind::kCas
                        ? config_.atomic_engine_ns
                        : EngineCost(sid, config_.unsignaled_engine_ns));
    }
    switch (op.kind) {
      case ChainOp::Kind::kRead: server.reads++; break;
      case ChainOp::Kind::kWrite: server.writes++; break;
      case ChainOp::Kind::kCas: server.atomics++; break;
    }
    if (mf.kind == NetFaultKind::kDuplicate) {
      switch (op.kind) {
        case ChainOp::Kind::kRead: server.reads++; break;
        case ChainOp::Kind::kWrite: server.writes++; break;
        case ChainOp::Kind::kCas: server.atomics++; break;
      }
    }
    prev_effect = t_effect;
    overall_done = std::max(overall_done, done);
    pending.push_back({t_effect, i, ticket});
  }

  // Perform the memory effects in virtual-time order (equals posting order
  // for ordered chains).
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.effect < b.effect;
                   });
  for (size_t pi = 0; pi < pending.size(); ++pi) {
    const Pending& p = pending[pi];
    co_await sim::DelayUntil(simulator_, p.effect);
    if (!ClientAlive(client)) {
      // Died mid-chain: the not-yet-executed tail drops atomically.
      if (auditor_) {
        for (size_t pj = pi; pj < pending.size(); ++pj) {
          if (ops[pending[pj].index].kind == ChainOp::Kind::kWrite) {
            auditor_->DropWrite(pending[pj].audit_ticket);
          }
        }
      }
      dropped_verbs_.Inc();
      co_return VerbCompletion::kOk;
    }
    const ChainOp& op = ops[p.index];
    // Network fault domain: a member lost before the NIC drops here, and
    // so does the unexecuted tail behind it (ordered chains stream WQEs in
    // posting order; net_drop_from marks where the NIC stopped).
    if (!member_faults.empty() &&
        (member_faults[p.index].kind == NetFaultKind::kDropVerb ||
         p.index >= net_drop_from)) {
      if (auditor_ && op.kind == ChainOp::Kind::kWrite) {
        auditor_->DropWrite(p.audit_ticket);
      }
      (member_faults[p.index].partitioned ? net_partitioned_drops_
                                          : net_dropped_verbs_)
          .Inc();
      continue;
    }
    // Server fault domain: a member whose target server is dead (or dies
    // on exactly this effect), or whose fence server has died, drops
    // individually — members bound for live servers still land, so an
    // unlock aimed at a live primary is not lost to a dead backup.
    const bool fenced_out =
        op.fence_server >= 0 &&
        !ServerAlive(static_cast<uint32_t>(op.fence_server));
    if (fenced_out || !ServerVerbExecutes(op.target.server_id())) {
      if (auditor_ && op.kind == ChainOp::Kind::kWrite) {
        auditor_->DropWrite(p.audit_ticket);
      }
      dropped_verbs_.Inc();
      continue;
    }
    switch (op.kind) {
      case ChainOp::Kind::kRead: {
        if (auditor_) {
          auditor_->OnReadEffect(client, op.target, op.len, simulator_.now(),
                                 chain_id);
        }
        std::memcpy(op.dst, TargetAddress(op.target, op.len), op.len);
        break;
      }
      case ChainOp::Kind::kWrite: {
        if (auditor_) {
          auditor_->OnWriteEffect(p.audit_ticket, op.src, simulator_.now());
        }
        std::memcpy(TargetAddress(op.target, op.len), op.src, op.len);
        break;
      }
      case ChainOp::Kind::kCas: {
        uint8_t* remote = TargetAddress(op.target, 8);
        uint64_t current;
        std::memcpy(&current, remote, 8);
        if (current == op.expected) {
          std::memcpy(remote, &op.desired, 8);
        }
        if (auditor_) {
          auditor_->OnCasEffect(client, op.target, op.expected, op.desired,
                                current, simulator_.now(), chain_id);
        }
        if (op.result != nullptr) *op.result = current;
        if (!member_faults.empty() &&
            member_faults[p.index].kind == NetFaultKind::kDuplicate) {
          // Forced atomic duplicate (exact fault point): the retransmitted
          // CAS compares again. After a successful first execution the
          // word no longer matches `expected`, so the re-execution is a
          // no-op — CAS duplication is self-neutralising, unlike FAA.
          uint64_t again;
          std::memcpy(&again, remote, 8);
          if (again == op.expected) std::memcpy(remote, &op.desired, 8);
        }
        break;
      }
    }
  }
  if (completion_lost) {
    // The signaled tail's acknowledgement never arrives: whatever subset
    // of effects landed stays, but the poster learns nothing and gives up
    // after the retransmission budget.
    co_await sim::DelayUntil(simulator_,
                             overall_done + config_.net_verb_timeout_ns);
    co_return VerbCompletion::kLost;
  }
  co_await sim::DelayUntil(simulator_, overall_done);
  co_return VerbCompletion::kOk;
}

sim::Task<VerbCompletion> Fabric::ReadBatch(uint32_t client,
                                            std::vector<ReadRequest> requests) {
  std::vector<ChainOp> ops;
  ops.reserve(requests.size());
  for (const ReadRequest& r : requests) {
    ops.push_back(ChainOp::Read(r.src, r.dst, r.len));
  }
  co_return co_await PostChain(client, std::move(ops));
}

sim::Task<VerbCompletion> Fabric::Write(uint32_t client, RemotePtr dst,
                                        const void* src, uint32_t len) {
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return VerbCompletion::kOk;
  }
  NetFault net;
  if (NetFaultsLive()) net = DrawNetFault(client, dst.server_id(), false);
  doorbells_.Inc();
  signaled_verbs_.Inc();
  if (net.kind == NetFaultKind::kDropVerb) {
    // Lost before the target NIC: the bytes never land, the ack never
    // comes. Re-posting is safe (byte-idempotent payload).
    (net.partitioned ? net_partitioned_drops_ : net_dropped_verbs_).Inc();
    co_await sim::Delay(simulator_,
                        config_.nic_post_ns + config_.net_verb_timeout_ns);
    co_return VerbCompletion::kLost;
  }
  if (net.extra_delay > 0) net_delayed_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[dst.server_id()];
  uint8_t* remote = TargetAddress(dst, len);
  const uint64_t audit_ticket =
      auditor_ ? auditor_->OnWritePosted(client, dst, len, simulator_.now())
               : 0;

  if (IsLocal(client, dst.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(dst.server_id()));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, len);
    co_await sim::DelayUntil(simulator_, done);
    if (!ClientAlive(client)) {
      if (auditor_) auditor_->DropWrite(audit_ticket);
      dropped_verbs_.Inc();
      co_return VerbCompletion::kOk;
    }
    if (!ServerVerbExecutes(dst.server_id())) {  // target region is gone
      if (auditor_) auditor_->DropWrite(audit_ticket);
      dropped_verbs_.Inc();
      co_return VerbCompletion::kOk;
    }
    if (auditor_) auditor_->OnWriteEffect(audit_ticket, src, simulator_.now());
    std::memcpy(remote, src, len);
    if (net.kind == NetFaultKind::kDropCompletion) {
      net_dropped_completions_.Inc();
      co_await sim::Delay(simulator_, config_.net_verb_timeout_ns);
      co_return VerbCompletion::kLost;
    }
    co_return VerbCompletion::kOk;
  }

  ComputeEndpoint& compute = ComputeFor(client);
  const uint32_t wire_bytes = len + kWriteHeaderBytes;
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
  const SimTime first_byte_at_server =
      t_out - compute.tx.TransferDuration(wire_bytes) +
      WireLatency() + net.extra_delay;
  const SimTime t_rx = server.rx.ReserveArrival(first_byte_at_server,
                                                wire_bytes);
  SimTime t_effect =
      server.engine.ReserveOccupancy(
          t_rx, EngineCost(dst.server_id(), config_.onesided_engine_ns));

  server.writes++;
  if (net.kind == NetFaultKind::kDuplicate) {
    // Retransmission re-executes the WRITE at the NIC: a second engine
    // occupancy landing the same bytes — byte-idempotent, so no second
    // auditor effect (the sanctioned duplicate).
    net_duplicates_.Inc();
    server.writes++;
    t_effect = server.engine.ReserveOccupancy(
        t_effect, EngineCost(dst.server_id(), config_.onesided_engine_ns));
  }
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // verb-atomic drop: nothing lands
    if (auditor_) auditor_->DropWrite(audit_ticket);
    dropped_verbs_.Inc();
    co_return VerbCompletion::kOk;
  }
  if (!ServerVerbExecutes(dst.server_id())) {  // target region is gone
    if (auditor_) auditor_->DropWrite(audit_ticket);
    dropped_verbs_.Inc();
    co_return VerbCompletion::kOk;
  }
  if (auditor_) auditor_->OnWriteEffect(audit_ticket, src, simulator_.now());
  std::memcpy(remote, src, len);

  if (net.kind == NetFaultKind::kDropCompletion) {
    // The bytes landed; the ack did not. The caller resolves by reading
    // the published word back (docs/fault_model.md §8).
    net_dropped_completions_.Inc();
    co_await sim::DelayUntil(simulator_,
                             t_effect + config_.net_verb_timeout_ns);
    co_return VerbCompletion::kLost;
  }

  server.tx.ReserveTransfer(t_effect, kAckBytes);
  const SimTime done = t_effect + WireLatency();
  co_await sim::DelayUntil(simulator_, done);
  co_return VerbCompletion::kOk;
}

sim::Task<AtomicResult> Fabric::CompareAndSwap(uint32_t client,
                                               RemotePtr target,
                                               uint64_t expected,
                                               uint64_t desired) {
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    // Meaningless to a dead caller; RemoteOps checks alive().
    co_return AtomicResult{};
  }
  NetFault net;
  if (NetFaultsLive()) net = DrawNetFault(client, target.server_id(), true);
  doorbells_.Inc();
  signaled_verbs_.Inc();
  if (net.kind == NetFaultKind::kDropVerb) {
    // Lost before the NIC: no swap happened. Indistinguishable (to the
    // caller) from a lost ack after a successful swap — resolved by
    // reading the word back.
    (net.partitioned ? net_partitioned_drops_ : net_dropped_verbs_).Inc();
    co_await sim::Delay(simulator_,
                        config_.nic_post_ns + config_.net_verb_timeout_ns);
    co_return AtomicResult{0, VerbCompletion::kLost};
  }
  if (net.extra_delay > 0) net_delayed_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[target.server_id()];
  uint8_t* remote = TargetAddress(target, 8);

  SimTime t_effect;
  SimTime done;
  if (IsLocal(client, target.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(target.server_id()));
    // Atomics still serialize through the NIC even locally (loopback) so
    // that remote and local atomics remain mutually atomic; see §4.2.
    t_effect = server.engine.ReserveOccupancy(
        bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                            kAtomicRequestBytes),
        config_.atomic_engine_ns);
    done = t_effect + config_.local_latency_ns;
  } else {
    ComputeEndpoint& compute = ComputeFor(client);
    const SimTime t_post = simulator_.now() + config_.nic_post_ns;
    const SimTime t_out =
        compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
    const SimTime t_arrive = t_out + WireLatency() + net.extra_delay;
    server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
    t_effect =
        server.engine.ReserveOccupancy(t_arrive, config_.atomic_engine_ns);
    server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
    done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                     kAtomicResponseBytes);
  }

  server.atomics++;
  if (net.kind == NetFaultKind::kDuplicate) {
    // Forced atomic duplicate (exact fault point only): the NIC executes
    // the CAS twice. A successful first swap makes the second a no-op, so
    // only the engine pays; see FetchAndAdd for the non-neutral case.
    net_duplicates_.Inc();
    server.atomics++;
    t_effect =
        server.engine.ReserveOccupancy(t_effect, config_.atomic_engine_ns);
  }
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // verb-atomic drop: no swap
    dropped_verbs_.Inc();
    co_return AtomicResult{};
  }
  if (!ServerVerbExecutes(target.server_id())) {  // target region is gone
    dropped_verbs_.Inc();
    co_return AtomicResult{};  // callers disambiguate via ServerAlive
  }
  uint64_t current;
  std::memcpy(&current, remote, 8);
  if (current == expected) {
    std::memcpy(remote, &desired, 8);
  }
  if (auditor_) {
    auditor_->OnCasEffect(client, target, expected, desired, current,
                          simulator_.now());
  }
  if (net.kind == NetFaultKind::kDuplicate) {
    uint64_t again;
    std::memcpy(&again, remote, 8);
    if (again == expected) std::memcpy(remote, &desired, 8);
  }
  if (net.kind == NetFaultKind::kDropCompletion) {
    // The swap (or its failure) happened; the response was lost. The
    // pre-image never reaches the caller — stamp read-back resolves it.
    net_dropped_completions_.Inc();
    co_await sim::DelayUntil(simulator_,
                             t_effect + config_.net_verb_timeout_ns);
    co_return AtomicResult{0, VerbCompletion::kLost};
  }
  co_await sim::DelayUntil(simulator_, done);
  co_return AtomicResult{current, VerbCompletion::kOk};
}

sim::Task<AtomicResult> Fabric::FetchAndAdd(uint32_t client, RemotePtr target,
                                            uint64_t add) {
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return AtomicResult{};
  }
  NetFault net;
  if (NetFaultsLive()) net = DrawNetFault(client, target.server_id(), true);
  doorbells_.Inc();
  signaled_verbs_.Inc();
  if (net.kind == NetFaultKind::kDropVerb) {
    (net.partitioned ? net_partitioned_drops_ : net_dropped_verbs_).Inc();
    co_await sim::Delay(simulator_,
                        config_.nic_post_ns + config_.net_verb_timeout_ns);
    co_return AtomicResult{0, VerbCompletion::kLost};
  }
  if (net.extra_delay > 0) net_delayed_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[target.server_id()];
  uint8_t* remote = TargetAddress(target, 8);

  SimTime t_effect;
  SimTime done;
  if (IsLocal(client, target.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(target.server_id()));
    t_effect = server.engine.ReserveOccupancy(
        bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                            kAtomicRequestBytes),
        config_.atomic_engine_ns);
    done = t_effect + config_.local_latency_ns;
  } else {
    ComputeEndpoint& compute = ComputeFor(client);
    const SimTime t_post = simulator_.now() + config_.nic_post_ns;
    const SimTime t_out =
        compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
    const SimTime t_arrive = t_out + WireLatency() + net.extra_delay;
    server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
    t_effect =
        server.engine.ReserveOccupancy(t_arrive, config_.atomic_engine_ns);
    server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
    done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                     kAtomicResponseBytes);
  }

  server.atomics++;
  if (net.kind == NetFaultKind::kDuplicate) {
    // Forced atomic duplicate (exact fault point only): FAA is NOT
    // idempotent — the re-execution adds again, and the second effect is
    // reported to the auditor as its own event so unsanctioned dups are
    // caught (a duplicated release FAA trips kUnlockWithoutLock).
    net_duplicates_.Inc();
    server.atomics++;
    t_effect =
        server.engine.ReserveOccupancy(t_effect, config_.atomic_engine_ns);
  }
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // verb-atomic drop: no add
    dropped_verbs_.Inc();
    co_return AtomicResult{};
  }
  if (!ServerVerbExecutes(target.server_id())) {  // target region is gone
    dropped_verbs_.Inc();
    co_return AtomicResult{};  // callers disambiguate via ServerAlive
  }
  uint64_t current;
  std::memcpy(&current, remote, 8);
  const uint64_t updated = current + add;
  std::memcpy(remote, &updated, 8);
  if (auditor_) {
    auditor_->OnFaaEffect(client, target, add, current, simulator_.now());
  }
  if (net.kind == NetFaultKind::kDuplicate) {
    uint64_t again;
    std::memcpy(&again, remote, 8);
    const uint64_t twice = again + add;
    std::memcpy(remote, &twice, 8);
    if (auditor_) {
      auditor_->OnFaaEffect(client, target, add, again, simulator_.now());
    }
  }
  if (net.kind == NetFaultKind::kDropCompletion) {
    // The add happened; the pre-image never came back.
    net_dropped_completions_.Inc();
    co_await sim::DelayUntil(simulator_,
                             t_effect + config_.net_verb_timeout_ns);
    co_return AtomicResult{0, VerbCompletion::kLost};
  }
  co_await sim::DelayUntil(simulator_, done);
  co_return AtomicResult{current, VerbCompletion::kOk};
}

sim::Task<RpcResponse> Fabric::Call(uint32_t client, uint32_t server_id,
                                    RpcRequest request) {
  // The one RPC resend discipline (satellite of docs/fault_model.md §8):
  // bounded attempts with a per-attempt deadline. With rpc_timeout_ns unset
  // but network faults live, the retransmission budget stands in as the
  // deadline so a lost SEND cannot hang the caller forever. That synthetic
  // deadline only bounds attempts where a loss was actually drawn — a
  // delivered request with an intact reply path waits for its response,
  // however slow the handler (a long scan legitimately exceeds the verb
  // timeout, and abandoning it would just re-execute it).
  RetryPolicy policy = RetryPolicy::ForRpc(config_);
  bool synthetic_deadline = false;
  if (NetFaultsLive() && policy.timeout_ns == 0) {
    policy.max_attempts = config_.rpc_max_retries + 1;
    policy.timeout_ns = config_.net_verb_timeout_ns;
    synthetic_deadline = true;
  }
  // Every retransmission of this logical call carries the same rpc_id; the
  // server-side dedup layer (AdmitRpc) keys on it so a handler whose reply
  // was lost is answered from cache instead of re-executed. 0 when network
  // faults are off (no resends happen, no dedup state accrues).
  const uint64_t rpc_id = NetFaultsLive() ? next_rpc_id_++ : 0;
  for (uint32_t attempt = 0; !policy.Exhausted(attempt); ++attempt) {
    if (attempt > 0) rpc_retry_attempts_.Inc();
    if (!CountVerbAndCheckAlive(client)) {
      dropped_verbs_.Inc();
      co_await sim::Delay(simulator_, config_.nic_post_ns);
      RpcResponse dead;
      dead.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return dead;
    }
    doorbells_.Inc();
    signaled_verbs_.Inc();
    NetFault net;
    if (NetFaultsLive()) net = DrawNetFault(client, server_id, false);
    if (net.kind == NetFaultKind::kDropVerb) {
      // The request SEND is lost: the handler never sees it, the caller
      // burns this attempt waiting out the deadline.
      (net.partitioned ? net_partitioned_drops_ : net_dropped_verbs_).Inc();
      co_await sim::Delay(simulator_,
                          config_.nic_post_ns + policy.timeout_ns);
      continue;
    }
    if (net.extra_delay > 0) net_delayed_verbs_.Inc();
    if (!ServerAlive(server_id)) {
      // The connection to a dead server errs out at the posting NIC;
      // retrying cannot help, so fail fast with kUnavailable (also needed
      // with rpc_timeout_ns=0, where a lost delivery would hang forever).
      OnServerDeathNow(server_id);
      co_await sim::Delay(simulator_, config_.nic_post_ns);
      RpcResponse down;
      down.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return down;
    }
    MemoryServerEndpoint& server = memory_servers_[server_id];
    const uint32_t wire_bytes = request.WireBytes();

    SimTime t_deliver;
    if (IsLocal(client, server_id)) {
      sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
      t_deliver = bus.ReserveTransfer(
          simulator_.now() + config_.local_latency_ns, wire_bytes);
    } else {
      ComputeEndpoint& compute = ComputeFor(client);
      const SimTime t_post = simulator_.now() + config_.nic_post_ns;
      const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
      const SimTime t_arrive = t_out + WireLatency() + net.extra_delay;
      server.rx.ReserveArrival(t_arrive - 1, wire_bytes);
      t_deliver = server.engine.ReserveOccupancy(
          t_arrive, TwoSidedEngineCost(server_id, wire_bytes));
    }

    server.sends++;
    if (net.kind == NetFaultKind::kDuplicate) {
      // A retransmitted SEND costs the NIC twice but the SRQ's completion
      // bookkeeping delivers the request to a handler once.
      net_duplicates_.Inc();
      server.sends++;
      t_deliver = server.engine.ReserveOccupancy(
          t_deliver, TwoSidedEngineCost(server_id, wire_bytes));
    }
    co_await sim::DelayUntil(simulator_, t_deliver);
    if (!ClientAlive(client)) {  // SEND dropped in flight
      dropped_verbs_.Inc();
      RpcResponse dead;
      dead.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return dead;
    }
    if (!ServerVerbExecutes(server_id)) {
      // The server died with the SEND in flight: the request is lost and
      // no worker will ever see it.
      dropped_verbs_.Inc();
      RpcResponse down;
      down.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return down;
    }

    const uint64_t call_id = next_call_id_++;
    PendingCall* pending =
        pending_calls_
            .emplace(call_id, std::make_unique<PendingCall>(simulator_))
            .first->second.get();
    pending->server_id = server_id;
    IncomingRpc incoming;
    incoming.client_id = client;
    incoming.request = request;  // copied: a timeout resends it
    incoming.call_id = call_id;
    incoming.rpc_id = rpc_id;
    server.srq->Deliver(std::move(incoming));
    // The delivered request orders everything the caller did so far before
    // the handler's work (two-sided HB edge).
    if (auditor_) auditor_->OnRpcRequest(client, server_id);

    const SimTime deadline = policy.timeout_ns > 0
                                 ? simulator_.now() + policy.timeout_ns
                                 : 0;
    if (net.kind == NetFaultKind::kDropCompletion) {
      // The handler runs and responds, but the reply SEND is lost on the
      // wire: the caller waits out the full deadline, abandons the call,
      // and resends. The resend carries the same rpc_id, so AdmitRpc on
      // the server answers it from the dedup cache — the handler's effects
      // apply exactly once even though its reply was ambiguous.
      net_dropped_completions_.Inc();
      co_await sim::DelayUntil(simulator_, deadline);
      pending_calls_.erase(call_id);
      rpc_timeouts_.Inc();
      continue;
    }
    const bool completed = co_await pending->done.AwaitUntil(
        synthetic_deadline ? 0 : deadline);
    if (!completed) {
      // Abandon the call: the registry entry dies here, so a handler that
      // responds later finds nothing (never a dangling caller frame).
      pending_calls_.erase(call_id);
      rpc_timeouts_.Inc();
      continue;
    }
    co_await sim::DelayUntil(simulator_, pending->deliver_at);
    RpcResponse response = std::move(pending->response);
    pending_calls_.erase(call_id);
    if (!ClientAlive(client)) {
      response = RpcResponse();
      response.status = static_cast<uint16_t>(StatusCode::kUnavailable);
    } else if (auditor_) {
      // The consumed reply closes the RPC pair: the handler's effects are
      // now ordered before everything the caller does next.
      auditor_->OnRpcReply(client, server_id);
    }
    co_return response;
  }
  rpc_retry_exhausted_.Inc();
  RpcResponse timed_out;
  timed_out.status = static_cast<uint16_t>(StatusCode::kTimedOut);
  co_return timed_out;
}

bool Fabric::AdmitRpc(uint32_t server_id, const IncomingRpc& rpc) {
  if (rpc.rpc_id == 0) return true;  // network faults off: no resends exist
  auto [it, inserted] = rpc_dedup_.try_emplace(rpc.rpc_id);
  if (inserted) return true;  // first delivery: run the handler
  RpcDedupEntry& entry = it->second;
  rpc_dedup_hits_.Inc();
  if (entry.done) {
    // Already executed, reply was lost: retransmit the cached response
    // (paying the reply send costs again) without re-running the handler.
    Respond(server_id, rpc, entry.response);
  } else {
    // The original delivery is still in a handler. Park this duplicate;
    // Respond answers it from the cache the moment the original replies.
    entry.waiters.push_back(rpc);
  }
  return false;
}

void Fabric::Respond(uint32_t server_id, const IncomingRpc& incoming,
                     RpcResponse response) {
  if (incoming.rpc_id != 0) {
    auto it = rpc_dedup_.find(incoming.rpc_id);
    if (it != rpc_dedup_.end() && !it->second.done) {
      // First reply for this rpc_id: cache it for retransmissions, then
      // answer every duplicate that arrived while the handler ran. The
      // recursive Respond calls see done == true and skip this block.
      it->second.done = true;
      it->second.response = response;
      std::vector<IncomingRpc> waiters = std::move(it->second.waiters);
      it->second.waiters.clear();
      for (const IncomingRpc& w : waiters) {
        Respond(server_id, w, it->second.response);
      }
    }
  }
  if (!ServerAlive(server_id)) {
    // A handler racing its own server's death: the dead NIC sends
    // nothing. The caller was (or will be) failed by the death fallout.
    dropped_responses_.Inc();
    return;
  }
  MemoryServerEndpoint& server = memory_servers_[server_id];
  const uint32_t wire_bytes = response.WireBytes();

  // The reply SEND always pays its costs — the responding NIC cannot know
  // the caller abandoned the call.
  SimTime done;
  if (IsLocal(incoming.client_id, server_id)) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
    done = bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                               wire_bytes);
  } else {
    ComputeEndpoint& compute = ComputeFor(incoming.client_id);
    // UD responses fragment into MTU-sized datagrams, each costing engine
    // time on the sending NIC; RC sends the response as one message.
    SimTime t_send = simulator_.now();
    if (config_.rpc_transport ==
        FabricConfig::RpcTransport::kUnreliableDatagram) {
      t_send = server.engine.ReserveOccupancy(
          t_send, TwoSidedEngineCost(server_id, wire_bytes));
    }
    const SimTime t_out = server.tx.ReserveTransfer(t_send, wire_bytes);
    const SimTime first_byte = t_out - server.tx.TransferDuration(wire_bytes) +
                               WireLatency();
    done = compute.rx.ReserveArrival(first_byte, wire_bytes);
  }

  auto it = pending_calls_.find(incoming.call_id);
  if (it == pending_calls_.end()) {
    dropped_responses_.Inc();  // caller timed out or died; reply goes nowhere
    return;
  }
  PendingCall& pending = *it->second;
  pending.response = std::move(response);
  pending.deliver_at = done;
  pending.done.Set();
}

Fabric::ServerStats Fabric::server_stats(uint32_t server) const {
  const MemoryServerEndpoint& ep = memory_servers_[server];
  ServerStats stats;
  stats.tx_bytes = ep.tx.total_bytes();
  stats.rx_bytes = ep.rx.total_bytes();
  stats.verbs = ep.engine.total_transfers();
  stats.engine_busy = ep.engine.busy_time();
  stats.reads = ep.reads;
  stats.writes = ep.writes;
  stats.atomics = ep.atomics;
  stats.sends = ep.sends;
  return stats;
}

uint64_t Fabric::TotalMemoryServerBytes() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < memory_servers_.size(); ++s) {
    const ServerStats stats = server_stats(s);
    total += stats.tx_bytes + stats.rx_bytes;
  }
  return total;
}

void Fabric::ResetStats() {
  for (auto& ep : memory_servers_) {
    ep.tx.ResetStats();
    ep.rx.ResetStats();
    ep.engine.ResetStats();
    ep.reads = 0;
    ep.writes = 0;
    ep.atomics = 0;
    ep.sends = 0;
  }
  for (auto& ep : compute_machines_) {
    ep->tx.ResetStats();
    ep->rx.ResetStats();
  }
  for (auto& bus : local_bus_) bus->ResetStats();
  signaled_verbs_.Reset();
  unsignaled_verbs_.Reset();
  doorbells_.Reset();
  combined_reads_.Reset();
}

}  // namespace namtree::rdma
