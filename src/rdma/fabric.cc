#include "rdma/fabric.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace namtree::rdma {

namespace {

// Modeled wire sizes of verb envelopes (request headers, acks).
constexpr uint32_t kReadRequestBytes = 16;
constexpr uint32_t kWriteHeaderBytes = 16;
constexpr uint32_t kAtomicRequestBytes = 32;
constexpr uint32_t kAtomicResponseBytes = 16;
constexpr uint32_t kAckBytes = 8;

/// Suite-wide schedule-exploration override: NAMTREE_SCHEDULE_SEED replays
/// every fabric built by the process under the given schedule seed without
/// touching each construction site. An explicit FabricConfig::schedule_seed
/// wins over the environment. Driven by `scripts/check.sh --explore N` and
/// the CI schedule-exploration matrix.
uint64_t EnvScheduleSeed() {
  const char* value = std::getenv("NAMTREE_SCHEDULE_SEED");
  return value == nullptr ? 0 : std::strtoull(value, nullptr, 10);
}

}  // namespace

Fabric::Fabric(sim::Simulator& simulator, const FabricConfig& config)
    : simulator_(simulator), config_(config), jitter_rng_(config.jitter_seed) {
  if (config_.schedule_seed == 0) config_.schedule_seed = EnvScheduleSeed();
  if (config_.schedule_seed != 0 || config_.schedule_jitter_ns != 0) {
    simulator_.ConfigureSchedule(config_.schedule_seed,
                                 config_.schedule_jitter_ns);
  }
#if NAMTREE_AUDIT
  auditor_ = std::make_unique<VerbAuditor>();
  auditor_->SetLivenessProbe(
      [this](uint32_t client) { return ClientAlive(client); });
#endif
  for (const FabricConfig::CrashPoint& cp : config_.crash_points) {
    auto [it, inserted] = crash_after_.emplace(cp.client, cp.after_verbs);
    if (!inserted) it->second = std::min(it->second, cp.after_verbs);
  }
  for (const FabricConfig::ServerCrashPoint& cp :
       config_.server_crash_points) {
    auto [it, inserted] = server_crash_after_.emplace(cp.server,
                                                     cp.after_verbs);
    if (!inserted) it->second = std::min(it->second, cp.after_verbs);
  }
  server_death_time_.assign(config_.num_memory_servers,
                            std::numeric_limits<SimTime>::max());
  server_verbs_executed_.assign(config_.num_memory_servers, 0);
  replication_ = std::max<uint32_t>(
      1, std::min(config_.replication_factor, config_.num_memory_servers));
  memory_servers_.reserve(config_.num_memory_servers);
  for (uint32_t s = 0; s < config_.num_memory_servers; ++s) {
    memory_servers_.emplace_back(simulator_,
                                 config_.link_bandwidth_bytes_per_sec);
  }
  local_bus_.resize(config_.NumMemoryMachines());
  for (auto& bus : local_bus_) {
    bus = std::make_unique<sim::Link>(config_.local_bandwidth_bytes_per_sec);
  }

  metrics_.RegisterCounter(signaled_verbs_, "fabric.signaled_verbs", {},
                           "verbs posted with a signaled completion");
  metrics_.RegisterCounter(unsignaled_verbs_, "fabric.unsignaled_verbs", {},
                           "chain members riding a doorbell unsignaled");
  metrics_.RegisterCounter(doorbells_, "fabric.doorbells",
                           {}, "doorbell rings (one per verb or chain)");
  metrics_.RegisterCounter(combined_reads_, "fabric.combined_reads", {},
                           "READs combined away onto in-flight ones");
  metrics_.RegisterCounter(dropped_verbs_, "fabric.dropped_verbs", {},
                           "verbs dropped at post or effect time");
  metrics_.RegisterCounter(dropped_responses_, "fabric.dropped_responses",
                           {}, "RPC responses with no waiting caller");
  metrics_.RegisterCounter(rpc_timeouts_, "fabric.rpc_timeouts", {},
                           "RPC attempts abandoned at the deadline");
  for (uint32_t s = 0; s < config_.num_memory_servers; ++s) {
    metrics_.RegisterCallback(
        "server.bytes",
        [this, s] {
          const ServerStats stats = server_stats(s);
          return stats.tx_bytes + stats.rx_bytes;
        },
        {{"server", std::to_string(s)}},
        "per-server tx+rx bytes since the last reset");
  }
#if NAMTREE_AUDIT
  auditor_->BindMetrics(&metrics_);
#endif
}

void Fabric::RegisterRegion(uint32_t server_id, MemoryRegion* region) {
  assert(server_id < memory_servers_.size());
  memory_servers_[server_id].region = region;
  if (replicated()) {
    // Primary allocations stay inside the region's rank-0 stripe; the
    // stripes above it hold backups of the R-1 preceding servers.
    region->set_alloc_limit(MemoryRegion::kHeaderSize +
                            ReplicaStripeBytes(server_id));
  }
}

void Fabric::SetNumClients(uint32_t n) {
  num_clients_ = n;
  const uint32_t machines =
      (n + config_.clients_per_compute_machine - 1) /
      config_.clients_per_compute_machine;
  while (compute_machines_.size() < machines) {
    compute_machines_.push_back(std::make_unique<ComputeEndpoint>(
        config_.link_bandwidth_bytes_per_sec));
  }
}

Fabric::ComputeEndpoint& Fabric::ComputeFor(uint32_t client) {
  const uint32_t machine = ClientMachine(client);
  while (compute_machines_.size() <= machine) {
    compute_machines_.push_back(std::make_unique<ComputeEndpoint>(
        config_.link_bandwidth_bytes_per_sec));
  }
  return *compute_machines_[machine];
}

void Fabric::KillClient(uint32_t client, SimTime at_time) {
  const SimTime t = std::max(at_time, simulator_.now());
  auto [it, inserted] = death_time_.emplace(client, t);
  if (!inserted) it->second = std::min(it->second, t);
}

void Fabric::KillServer(uint32_t server, SimTime at_time) {
  assert(server < server_death_time_.size());
  const SimTime t = std::max(at_time, simulator_.now());
  if (t < server_death_time_[server]) server_death_time_[server] = t;
  // An immediate kill settles its fallout now; a scheduled future kill is
  // settled lazily by the first drop site that observes the death (and
  // callers already waiting on its workers by the RPC timeout machinery).
  if (t <= simulator_.now()) OnServerDeathNow(server);
}

void Fabric::OnServerDeathNow(uint32_t server) {
  if (auditor_) auditor_->OnServerDeath(server);
  // Fail callers parked on this server's workers: no response will ever
  // come. Entries already responded (done set, reply SEND in flight) keep
  // their response — it left the NIC before the death.
  for (auto& [call_id, pending] : pending_calls_) {
    (void)call_id;
    if (pending->server_id != server || pending->done.is_set()) continue;
    pending->response = RpcResponse();
    pending->response.status =
        static_cast<uint16_t>(StatusCode::kUnavailable);
    pending->deliver_at = simulator_.now();
    pending->done.Set();
  }
}

bool Fabric::ServerVerbExecutes(uint32_t server) {
  if (!ServerAlive(server)) {
    // First drop site after a scheduled death settles the fallout.
    OnServerDeathNow(server);
    return false;
  }
  const uint64_t done = server_verbs_executed_[server]++;
  auto it = server_crash_after_.find(server);
  if (it != server_crash_after_.end() && done >= it->second) {
    // The crash point fires on this verb effect: the server dies with the
    // verb on its NIC, so the effect never reaches memory.
    KillServer(server, simulator_.now());
    return false;
  }
  return true;
}

void Fabric::SyncReplicasFromPrimaries() {
  if (!replicated()) return;
  for (uint32_t s = 0; s < config_.num_memory_servers; ++s) {
    MemoryRegion* region = memory_servers_[s].region;
    if (region == nullptr) continue;
    const uint64_t cursor = region->allocated();
    if (cursor <= MemoryRegion::kHeaderSize) continue;
    const uint64_t bytes = cursor - MemoryRegion::kHeaderSize;
    for (uint32_t r = 1; r < replication_; ++r) {
      const RemotePtr dst = ReplicaPtr(
          RemotePtr::Make(s, MemoryRegion::kHeaderSize), r);
      MemoryRegion* backup = memory_servers_[dst.server_id()].region;
      assert(backup != nullptr && backup->Contains(dst.offset(), bytes));
      std::memcpy(backup->at(dst.offset()),
                  region->at(MemoryRegion::kHeaderSize), bytes);
    }
  }
}

bool Fabric::CountVerbAndCheckAlive(uint32_t client) {
  if (!ClientAlive(client)) return false;
  const uint64_t issued = verbs_issued_[client]++;
  auto it = crash_after_.find(client);
  if (it != crash_after_.end() && issued >= it->second) {
    // The crash point fires on this verb: the client dies while posting
    // it, so the verb never leaves the local NIC.
    KillClient(client, simulator_.now());
    return false;
  }
  return true;
}

sim::Task<EpochReadResult> Fabric::ReadClientEpoch(uint32_t reader,
                                                   uint32_t target) {
  if (!CountVerbAndCheckAlive(reader)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    // A dead reader learns nothing; callers re-check alive.
    co_return EpochReadResult{Status::OK(), true};
  }
  constexpr uint32_t kEpochBytes = 8;
  // The registry record of `target` lives on server target % N; under
  // replication its replica group is consulted in rank order so the probe
  // survives the home server's death.
  const uint32_t home = target % config_.num_memory_servers;
  uint32_t server_id = home;
  bool host_found = false;
  for (uint32_t r = 0; r < replication_; ++r) {
    const uint32_t candidate = (home + r) % config_.num_memory_servers;
    if (ServerAlive(candidate)) {
      server_id = candidate;
      host_found = true;
      break;
    }
  }
  if (!host_found) {
    // Every host of the record is gone: the post errs out locally.
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return EpochReadResult{
        Status::Unavailable("liveness registry host dead"), true};
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[server_id];

  if (IsLocal(reader, server_id)) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, kEpochBytes);
    co_await sim::DelayUntil(simulator_, done);
    if (!ServerVerbExecutes(server_id)) {
      dropped_verbs_.Inc();
      co_return EpochReadResult{
          Status::Unavailable("liveness registry host dead"), true};
    }
    co_return EpochReadResult{Status::OK(), ClientAlive(target)};
  }

  ComputeEndpoint& compute = ComputeFor(reader);
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_req_out = compute.tx.ReserveTransfer(t_post,
                                                       kReadRequestBytes);
  const SimTime t_arrive = t_req_out + WireLatency();
  const SimTime t_effect = server.engine.ReserveOccupancy(
      t_arrive, EngineCost(server_id, config_.onesided_engine_ns));
  server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);

  server.reads++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ServerVerbExecutes(server_id)) {  // host died with the READ in flight
    dropped_verbs_.Inc();
    co_return EpochReadResult{
        Status::Unavailable("liveness registry host dead"), true};
  }
  const bool alive = ClientAlive(target);

  const SimTime t_tx = server.tx.ReserveTransfer(t_effect, kEpochBytes);
  const SimTime first_byte_at_client =
      t_tx - server.tx.TransferDuration(kEpochBytes) + WireLatency();
  const SimTime done = compute.rx.ReserveArrival(first_byte_at_client,
                                                 kEpochBytes);
  co_await sim::DelayUntil(simulator_, done);
  co_return EpochReadResult{Status::OK(), alive};
}

uint8_t* Fabric::TargetAddress(RemotePtr ptr, uint32_t len) {
  assert(!ptr.is_null());
  MemoryServerEndpoint& ep = memory_servers_[ptr.server_id()];
  assert(ep.region != nullptr && "verb against unregistered region");
  assert(ep.region->Contains(ptr.offset(), len));
  (void)len;
  return ep.region->at(ptr.offset());
}

sim::Task<void> Fabric::Read(uint32_t client, RemotePtr src, void* dst,
                             uint32_t len) {
  if (!CountVerbAndCheckAlive(client)) {
    // Dead client: the verb never leaves the NIC. Charging the post cost
    // keeps virtual time moving for any coroutine still driving verbs.
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return;
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();
  // Standalone READ in-flight tracking (drops complete the posting too):
  // overlapping same-client duplicates are the combiner's waste metric.
  if (auditor_) auditor_->OnReadPosted(client, src, len);
  MemoryServerEndpoint& server = memory_servers_[src.server_id()];
  uint8_t* remote = TargetAddress(src, len);

  if (IsLocal(client, src.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(src.server_id()));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, len);
    co_await sim::DelayUntil(simulator_, done);
    if (auditor_) auditor_->OnReadCompleted(client, src, len);
    if (!ClientAlive(client)) {
      dropped_verbs_.Inc();
      co_return;
    }
    if (!ServerVerbExecutes(src.server_id())) {  // target region is gone
      dropped_verbs_.Inc();
      co_return;
    }
    if (auditor_) auditor_->OnReadEffect(client, src, len, simulator_.now());
    std::memcpy(dst, remote, len);
    co_return;
  }

  ComputeEndpoint& compute = ComputeFor(client);
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_req_out = compute.tx.ReserveTransfer(t_post,
                                                       kReadRequestBytes);
  const SimTime t_arrive = t_req_out + WireLatency();
  const SimTime t_effect =
      server.engine.ReserveOccupancy(
          t_arrive, EngineCost(src.server_id(), config_.onesided_engine_ns));
  server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);

  server.reads++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // died with the verb in flight: drop it
    dropped_verbs_.Inc();
    if (auditor_) auditor_->OnReadCompleted(client, src, len);
    co_return;
  }
  if (!ServerVerbExecutes(src.server_id())) {  // target region is gone
    dropped_verbs_.Inc();
    if (auditor_) auditor_->OnReadCompleted(client, src, len);
    co_return;
  }
  if (auditor_) auditor_->OnReadEffect(client, src, len, simulator_.now());
  std::memcpy(dst, remote, len);

  const SimTime t_tx = server.tx.ReserveTransfer(t_effect, len);
  const SimTime first_byte_at_client =
      t_tx - server.tx.TransferDuration(len) + WireLatency();
  const SimTime done = compute.rx.ReserveArrival(first_byte_at_client, len);
  co_await sim::DelayUntil(simulator_, done);
  if (auditor_) auditor_->OnReadCompleted(client, src, len);
}

sim::Task<bool> Fabric::CombinedRead(uint32_t client, RemotePtr src,
                                     void* dst, uint32_t len) {
  if (!config_.read_combining) {
    co_await Read(client, src, dst, len);
    co_return false;
  }
  const auto key = std::make_tuple(client, src.raw(), len);
  auto it = pending_reads_.find(key);
  if (it != pending_reads_.end()) {
    // Attach to the outstanding verb: no doorbell, no duplicate. The
    // shared_ptr keeps the landing buffer alive past the poster's erase.
    std::shared_ptr<PendingRead> pending = it->second;
    combined_reads_.Inc();
    co_await pending->done;
    std::memcpy(dst, pending->data.data(), len);
    co_return true;
  }
  auto pending = std::make_shared<PendingRead>(simulator_);
  pending->data.resize(len);
  pending_reads_.emplace(key, pending);
  co_await Read(client, src, pending->data.data(), len);
  // Dropped verbs (dead client/server) leave `data` zero-initialised —
  // as unspecified as any dropped READ's buffer; every caller re-checks
  // liveness after resuming, poster and waiters alike.
  pending_reads_.erase(key);
  pending->done.Set();
  std::memcpy(dst, pending->data.data(), len);
  co_return false;
}

sim::Task<void> Fabric::PostChain(uint32_t client, std::vector<ChainOp> ops) {
  if (ops.empty()) co_return;
  // One doorbell, one crash-point tick for the whole chain.
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return;
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();  // the tail carries the chain's only completion
  unsignaled_verbs_.Inc(ops.size() - 1);
  const uint64_t chain_id = next_chain_id_++;

  // A READ-only chain (head-node prefetch) has independent members; any
  // WRITE or CAS makes the chain ordered — each member's effect waits for
  // its predecessor, as the initiating NIC streams WQEs in posting order.
  bool ordered = false;
  for (const ChainOp& op : ops) {
    if (op.kind != ChainOp::Kind::kRead) ordered = true;
  }

  struct Pending {
    SimTime effect;
    size_t index;
    uint64_t audit_ticket;
  };
  std::vector<Pending> pending;
  pending.reserve(ops.size());

  ComputeEndpoint& compute = ComputeFor(client);
  // One doorbell for the whole chain; only the final verb is signaled.
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  SimTime overall_done = t_post;
  SimTime prev_effect = 0;

  for (size_t i = 0; i < ops.size(); ++i) {
    const ChainOp& op = ops[i];
    const uint32_t sid = op.target.server_id();
    MemoryServerEndpoint& server = memory_servers_[sid];
    uint64_t ticket = 0;
    if (op.kind == ChainOp::Kind::kWrite && auditor_) {
      ticket = auditor_->OnWritePosted(client, op.target, op.len,
                                       simulator_.now(), chain_id);
    }

    SimTime t_effect = 0;
    SimTime done = 0;
    if (IsLocal(client, sid)) {
      sim::Link& bus = LocalBus(config_.MemoryServerMachine(sid));
      SimTime start = simulator_.now() + config_.local_latency_ns;
      if (ordered) start = std::max(start, prev_effect);
      if (op.kind == ChainOp::Kind::kCas) {
        // Atomics serialize through the NIC even locally (loopback) so
        // that remote and local atomics remain mutually atomic; see §4.2.
        t_effect = server.engine.ReserveOccupancy(
            bus.ReserveTransfer(start, kAtomicRequestBytes),
            config_.atomic_engine_ns);
        done = t_effect + config_.local_latency_ns;
      } else {
        t_effect = bus.ReserveTransfer(start, op.len);
        done = t_effect;
      }
    } else {
      switch (op.kind) {
        case ChainOp::Kind::kRead: {
          const SimTime t_req_out =
              compute.tx.ReserveTransfer(t_post, kReadRequestBytes);
          SimTime t_arrive = t_req_out + WireLatency();
          if (ordered) t_arrive = std::max(t_arrive, prev_effect);
          t_effect = server.engine.ReserveOccupancy(
              t_arrive, EngineCost(sid, config_.unsignaled_engine_ns));
          server.rx.ReserveArrival(t_arrive - 1, kReadRequestBytes);
          const SimTime t_tx = server.tx.ReserveTransfer(t_effect, op.len);
          const SimTime first_byte =
              t_tx - server.tx.TransferDuration(op.len) + WireLatency();
          done = compute.rx.ReserveArrival(first_byte, op.len);
          break;
        }
        case ChainOp::Kind::kWrite: {
          const uint32_t wire_bytes = op.len + kWriteHeaderBytes;
          const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
          const SimTime first_byte_at_server =
              t_out - compute.tx.TransferDuration(wire_bytes) + WireLatency();
          SimTime t_rx =
              server.rx.ReserveArrival(first_byte_at_server, wire_bytes);
          if (ordered) t_rx = std::max(t_rx, prev_effect);
          t_effect = server.engine.ReserveOccupancy(
              t_rx, EngineCost(sid, config_.unsignaled_engine_ns));
          // Only the signaled tail acks back to the initiator; the acks of
          // the unsignaled members coalesce into it.
          if (i + 1 == ops.size()) {
            server.tx.ReserveTransfer(t_effect, kAckBytes);
          }
          done = t_effect + WireLatency();
          break;
        }
        case ChainOp::Kind::kCas: {
          const SimTime t_out =
              compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
          SimTime t_arrive = t_out + WireLatency();
          if (ordered) t_arrive = std::max(t_arrive, prev_effect);
          server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
          t_effect = server.engine.ReserveOccupancy(t_arrive,
                                                    config_.atomic_engine_ns);
          server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
          done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                           kAtomicResponseBytes);
          break;
        }
      }
    }
    switch (op.kind) {
      case ChainOp::Kind::kRead: server.reads++; break;
      case ChainOp::Kind::kWrite: server.writes++; break;
      case ChainOp::Kind::kCas: server.atomics++; break;
    }
    prev_effect = t_effect;
    overall_done = std::max(overall_done, done);
    pending.push_back({t_effect, i, ticket});
  }

  // Perform the memory effects in virtual-time order (equals posting order
  // for ordered chains).
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.effect < b.effect;
                   });
  for (size_t pi = 0; pi < pending.size(); ++pi) {
    const Pending& p = pending[pi];
    co_await sim::DelayUntil(simulator_, p.effect);
    if (!ClientAlive(client)) {
      // Died mid-chain: the not-yet-executed tail drops atomically.
      if (auditor_) {
        for (size_t pj = pi; pj < pending.size(); ++pj) {
          if (ops[pending[pj].index].kind == ChainOp::Kind::kWrite) {
            auditor_->DropWrite(pending[pj].audit_ticket);
          }
        }
      }
      dropped_verbs_.Inc();
      co_return;
    }
    const ChainOp& op = ops[p.index];
    // Server fault domain: a member whose target server is dead (or dies
    // on exactly this effect), or whose fence server has died, drops
    // individually — members bound for live servers still land, so an
    // unlock aimed at a live primary is not lost to a dead backup.
    const bool fenced_out =
        op.fence_server >= 0 &&
        !ServerAlive(static_cast<uint32_t>(op.fence_server));
    if (fenced_out || !ServerVerbExecutes(op.target.server_id())) {
      if (auditor_ && op.kind == ChainOp::Kind::kWrite) {
        auditor_->DropWrite(p.audit_ticket);
      }
      dropped_verbs_.Inc();
      continue;
    }
    switch (op.kind) {
      case ChainOp::Kind::kRead: {
        if (auditor_) {
          auditor_->OnReadEffect(client, op.target, op.len, simulator_.now(),
                                 chain_id);
        }
        std::memcpy(op.dst, TargetAddress(op.target, op.len), op.len);
        break;
      }
      case ChainOp::Kind::kWrite: {
        if (auditor_) {
          auditor_->OnWriteEffect(p.audit_ticket, op.src, simulator_.now());
        }
        std::memcpy(TargetAddress(op.target, op.len), op.src, op.len);
        break;
      }
      case ChainOp::Kind::kCas: {
        uint8_t* remote = TargetAddress(op.target, 8);
        uint64_t current;
        std::memcpy(&current, remote, 8);
        if (current == op.expected) {
          std::memcpy(remote, &op.desired, 8);
        }
        if (auditor_) {
          auditor_->OnCasEffect(client, op.target, op.expected, op.desired,
                                current, simulator_.now(), chain_id);
        }
        if (op.result != nullptr) *op.result = current;
        break;
      }
    }
  }
  co_await sim::DelayUntil(simulator_, overall_done);
}

sim::Task<void> Fabric::ReadBatch(uint32_t client,
                                  std::vector<ReadRequest> requests) {
  std::vector<ChainOp> ops;
  ops.reserve(requests.size());
  for (const ReadRequest& r : requests) {
    ops.push_back(ChainOp::Read(r.src, r.dst, r.len));
  }
  co_await PostChain(client, std::move(ops));
}

sim::Task<void> Fabric::Write(uint32_t client, RemotePtr dst, const void* src,
                              uint32_t len) {
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return;
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[dst.server_id()];
  uint8_t* remote = TargetAddress(dst, len);
  const uint64_t audit_ticket =
      auditor_ ? auditor_->OnWritePosted(client, dst, len, simulator_.now())
               : 0;

  if (IsLocal(client, dst.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(dst.server_id()));
    const SimTime done = bus.ReserveTransfer(
        simulator_.now() + config_.local_latency_ns, len);
    co_await sim::DelayUntil(simulator_, done);
    if (!ClientAlive(client)) {
      if (auditor_) auditor_->DropWrite(audit_ticket);
      dropped_verbs_.Inc();
      co_return;
    }
    if (!ServerVerbExecutes(dst.server_id())) {  // target region is gone
      if (auditor_) auditor_->DropWrite(audit_ticket);
      dropped_verbs_.Inc();
      co_return;
    }
    if (auditor_) auditor_->OnWriteEffect(audit_ticket, src, simulator_.now());
    std::memcpy(remote, src, len);
    co_return;
  }

  ComputeEndpoint& compute = ComputeFor(client);
  const uint32_t wire_bytes = len + kWriteHeaderBytes;
  const SimTime t_post = simulator_.now() + config_.nic_post_ns;
  const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
  const SimTime first_byte_at_server =
      t_out - compute.tx.TransferDuration(wire_bytes) +
      WireLatency();
  const SimTime t_rx = server.rx.ReserveArrival(first_byte_at_server,
                                                wire_bytes);
  const SimTime t_effect =
      server.engine.ReserveOccupancy(
          t_rx, EngineCost(dst.server_id(), config_.onesided_engine_ns));

  server.writes++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // verb-atomic drop: nothing lands
    if (auditor_) auditor_->DropWrite(audit_ticket);
    dropped_verbs_.Inc();
    co_return;
  }
  if (!ServerVerbExecutes(dst.server_id())) {  // target region is gone
    if (auditor_) auditor_->DropWrite(audit_ticket);
    dropped_verbs_.Inc();
    co_return;
  }
  if (auditor_) auditor_->OnWriteEffect(audit_ticket, src, simulator_.now());
  std::memcpy(remote, src, len);

  server.tx.ReserveTransfer(t_effect, kAckBytes);
  const SimTime done = t_effect + WireLatency();
  co_await sim::DelayUntil(simulator_, done);
}

sim::Task<uint64_t> Fabric::CompareAndSwap(uint32_t client, RemotePtr target,
                                           uint64_t expected,
                                           uint64_t desired) {
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return 0;  // meaningless to a dead caller; RemoteOps checks alive()
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[target.server_id()];
  uint8_t* remote = TargetAddress(target, 8);

  SimTime t_effect;
  SimTime done;
  if (IsLocal(client, target.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(target.server_id()));
    // Atomics still serialize through the NIC even locally (loopback) so
    // that remote and local atomics remain mutually atomic; see §4.2.
    t_effect = server.engine.ReserveOccupancy(
        bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                            kAtomicRequestBytes),
        config_.atomic_engine_ns);
    done = t_effect + config_.local_latency_ns;
  } else {
    ComputeEndpoint& compute = ComputeFor(client);
    const SimTime t_post = simulator_.now() + config_.nic_post_ns;
    const SimTime t_out =
        compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
    const SimTime t_arrive = t_out + WireLatency();
    server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
    t_effect =
        server.engine.ReserveOccupancy(t_arrive, config_.atomic_engine_ns);
    server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
    done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                     kAtomicResponseBytes);
  }

  server.atomics++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // verb-atomic drop: no swap
    dropped_verbs_.Inc();
    co_return 0;
  }
  if (!ServerVerbExecutes(target.server_id())) {  // target region is gone
    dropped_verbs_.Inc();
    co_return 0;  // callers disambiguate via ServerAlive
  }
  uint64_t current;
  std::memcpy(&current, remote, 8);
  if (current == expected) {
    std::memcpy(remote, &desired, 8);
  }
  if (auditor_) {
    auditor_->OnCasEffect(client, target, expected, desired, current,
                          simulator_.now());
  }
  co_await sim::DelayUntil(simulator_, done);
  co_return current;
}

sim::Task<uint64_t> Fabric::FetchAndAdd(uint32_t client, RemotePtr target,
                                        uint64_t add) {
  if (!CountVerbAndCheckAlive(client)) {
    dropped_verbs_.Inc();
    co_await sim::Delay(simulator_, config_.nic_post_ns);
    co_return 0;
  }
  doorbells_.Inc();
  signaled_verbs_.Inc();
  MemoryServerEndpoint& server = memory_servers_[target.server_id()];
  uint8_t* remote = TargetAddress(target, 8);

  SimTime t_effect;
  SimTime done;
  if (IsLocal(client, target.server_id())) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(target.server_id()));
    t_effect = server.engine.ReserveOccupancy(
        bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                            kAtomicRequestBytes),
        config_.atomic_engine_ns);
    done = t_effect + config_.local_latency_ns;
  } else {
    ComputeEndpoint& compute = ComputeFor(client);
    const SimTime t_post = simulator_.now() + config_.nic_post_ns;
    const SimTime t_out =
        compute.tx.ReserveTransfer(t_post, kAtomicRequestBytes);
    const SimTime t_arrive = t_out + WireLatency();
    server.rx.ReserveArrival(t_arrive - 1, kAtomicRequestBytes);
    t_effect =
        server.engine.ReserveOccupancy(t_arrive, config_.atomic_engine_ns);
    server.tx.ReserveTransfer(t_effect, kAtomicResponseBytes);
    done = compute.rx.ReserveArrival(t_effect + WireLatency(),
                                     kAtomicResponseBytes);
  }

  server.atomics++;
  co_await sim::DelayUntil(simulator_, t_effect);
  if (!ClientAlive(client)) {  // verb-atomic drop: no add
    dropped_verbs_.Inc();
    co_return 0;
  }
  if (!ServerVerbExecutes(target.server_id())) {  // target region is gone
    dropped_verbs_.Inc();
    co_return 0;  // callers disambiguate via ServerAlive
  }
  uint64_t current;
  std::memcpy(&current, remote, 8);
  const uint64_t updated = current + add;
  std::memcpy(remote, &updated, 8);
  if (auditor_) {
    auditor_->OnFaaEffect(client, target, add, current, simulator_.now());
  }
  co_await sim::DelayUntil(simulator_, done);
  co_return current;
}

sim::Task<RpcResponse> Fabric::Call(uint32_t client, uint32_t server_id,
                                    RpcRequest request) {
  const uint32_t attempts =
      config_.rpc_timeout_ns > 0 ? config_.rpc_max_retries + 1 : 1;
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (!CountVerbAndCheckAlive(client)) {
      dropped_verbs_.Inc();
      co_await sim::Delay(simulator_, config_.nic_post_ns);
      RpcResponse dead;
      dead.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return dead;
    }
    doorbells_.Inc();
    signaled_verbs_.Inc();
    if (!ServerAlive(server_id)) {
      // The connection to a dead server errs out at the posting NIC;
      // retrying cannot help, so fail fast with kUnavailable (also needed
      // with rpc_timeout_ns=0, where a lost delivery would hang forever).
      OnServerDeathNow(server_id);
      co_await sim::Delay(simulator_, config_.nic_post_ns);
      RpcResponse down;
      down.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return down;
    }
    MemoryServerEndpoint& server = memory_servers_[server_id];
    const uint32_t wire_bytes = request.WireBytes();

    SimTime t_deliver;
    if (IsLocal(client, server_id)) {
      sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
      t_deliver = bus.ReserveTransfer(
          simulator_.now() + config_.local_latency_ns, wire_bytes);
    } else {
      ComputeEndpoint& compute = ComputeFor(client);
      const SimTime t_post = simulator_.now() + config_.nic_post_ns;
      const SimTime t_out = compute.tx.ReserveTransfer(t_post, wire_bytes);
      const SimTime t_arrive = t_out + WireLatency();
      server.rx.ReserveArrival(t_arrive - 1, wire_bytes);
      t_deliver = server.engine.ReserveOccupancy(
          t_arrive, TwoSidedEngineCost(server_id, wire_bytes));
    }

    server.sends++;
    co_await sim::DelayUntil(simulator_, t_deliver);
    if (!ClientAlive(client)) {  // SEND dropped in flight
      dropped_verbs_.Inc();
      RpcResponse dead;
      dead.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return dead;
    }
    if (!ServerVerbExecutes(server_id)) {
      // The server died with the SEND in flight: the request is lost and
      // no worker will ever see it.
      dropped_verbs_.Inc();
      RpcResponse down;
      down.status = static_cast<uint16_t>(StatusCode::kUnavailable);
      co_return down;
    }

    const uint64_t call_id = next_call_id_++;
    PendingCall* pending =
        pending_calls_
            .emplace(call_id, std::make_unique<PendingCall>(simulator_))
            .first->second.get();
    pending->server_id = server_id;
    IncomingRpc incoming;
    incoming.client_id = client;
    incoming.request = request;  // copied: a timeout resends it
    incoming.call_id = call_id;
    server.srq->Deliver(std::move(incoming));
    // The delivered request orders everything the caller did so far before
    // the handler's work (two-sided HB edge).
    if (auditor_) auditor_->OnRpcRequest(client, server_id);

    const SimTime deadline = config_.rpc_timeout_ns > 0
                                 ? simulator_.now() + config_.rpc_timeout_ns
                                 : 0;
    const bool completed = co_await pending->done.AwaitUntil(deadline);
    if (!completed) {
      // Abandon the call: the registry entry dies here, so a handler that
      // responds later finds nothing (never a dangling caller frame).
      pending_calls_.erase(call_id);
      rpc_timeouts_.Inc();
      continue;
    }
    co_await sim::DelayUntil(simulator_, pending->deliver_at);
    RpcResponse response = std::move(pending->response);
    pending_calls_.erase(call_id);
    if (!ClientAlive(client)) {
      response = RpcResponse();
      response.status = static_cast<uint16_t>(StatusCode::kUnavailable);
    } else if (auditor_) {
      // The consumed reply closes the RPC pair: the handler's effects are
      // now ordered before everything the caller does next.
      auditor_->OnRpcReply(client, server_id);
    }
    co_return response;
  }
  RpcResponse timed_out;
  timed_out.status = static_cast<uint16_t>(StatusCode::kTimedOut);
  co_return timed_out;
}

void Fabric::Respond(uint32_t server_id, const IncomingRpc& incoming,
                     RpcResponse response) {
  if (!ServerAlive(server_id)) {
    // A handler racing its own server's death: the dead NIC sends
    // nothing. The caller was (or will be) failed by the death fallout.
    dropped_responses_.Inc();
    return;
  }
  MemoryServerEndpoint& server = memory_servers_[server_id];
  const uint32_t wire_bytes = response.WireBytes();

  // The reply SEND always pays its costs — the responding NIC cannot know
  // the caller abandoned the call.
  SimTime done;
  if (IsLocal(incoming.client_id, server_id)) {
    sim::Link& bus = LocalBus(config_.MemoryServerMachine(server_id));
    done = bus.ReserveTransfer(simulator_.now() + config_.local_latency_ns,
                               wire_bytes);
  } else {
    ComputeEndpoint& compute = ComputeFor(incoming.client_id);
    // UD responses fragment into MTU-sized datagrams, each costing engine
    // time on the sending NIC; RC sends the response as one message.
    SimTime t_send = simulator_.now();
    if (config_.rpc_transport ==
        FabricConfig::RpcTransport::kUnreliableDatagram) {
      t_send = server.engine.ReserveOccupancy(
          t_send, TwoSidedEngineCost(server_id, wire_bytes));
    }
    const SimTime t_out = server.tx.ReserveTransfer(t_send, wire_bytes);
    const SimTime first_byte = t_out - server.tx.TransferDuration(wire_bytes) +
                               WireLatency();
    done = compute.rx.ReserveArrival(first_byte, wire_bytes);
  }

  auto it = pending_calls_.find(incoming.call_id);
  if (it == pending_calls_.end()) {
    dropped_responses_.Inc();  // caller timed out or died; reply goes nowhere
    return;
  }
  PendingCall& pending = *it->second;
  pending.response = std::move(response);
  pending.deliver_at = done;
  pending.done.Set();
}

Fabric::ServerStats Fabric::server_stats(uint32_t server) const {
  const MemoryServerEndpoint& ep = memory_servers_[server];
  ServerStats stats;
  stats.tx_bytes = ep.tx.total_bytes();
  stats.rx_bytes = ep.rx.total_bytes();
  stats.verbs = ep.engine.total_transfers();
  stats.engine_busy = ep.engine.busy_time();
  stats.reads = ep.reads;
  stats.writes = ep.writes;
  stats.atomics = ep.atomics;
  stats.sends = ep.sends;
  return stats;
}

uint64_t Fabric::TotalMemoryServerBytes() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < memory_servers_.size(); ++s) {
    const ServerStats stats = server_stats(s);
    total += stats.tx_bytes + stats.rx_bytes;
  }
  return total;
}

void Fabric::ResetStats() {
  for (auto& ep : memory_servers_) {
    ep.tx.ResetStats();
    ep.rx.ResetStats();
    ep.engine.ResetStats();
    ep.reads = 0;
    ep.writes = 0;
    ep.atomics = 0;
    ep.sends = 0;
  }
  for (auto& ep : compute_machines_) {
    ep->tx.ResetStats();
    ep->rx.ResetStats();
  }
  for (auto& bus : local_bus_) bus->ResetStats();
  signaled_verbs_.Reset();
  unsignaled_verbs_.Reset();
  doorbells_.Reset();
  combined_reads_.Reset();
}

}  // namespace namtree::rdma
