#ifndef NAMTREE_RDMA_FABRIC_CONFIG_H_
#define NAMTREE_RDMA_FABRIC_CONFIG_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace namtree::rdma {

/// Cost model and topology of the simulated RDMA fabric.
///
/// Defaults are calibrated against the paper's testbed (Section 6 setup):
/// 8 machines, dual-port Mellanox Connect-IB on InfiniBand FDR 4x, two Intel
/// Xeon E5-2660v2 (10 cores each) per machine, 4 memory servers on 2
/// physical machines (one NIC port per memory server), up to 6 compute
/// machines with 40 closed-loop clients each. See DESIGN.md §2 for the
/// substitution argument and EXPERIMENTS.md for the calibration targets.
struct FabricConfig {
  // ---- Topology ---------------------------------------------------------
  uint32_t num_memory_servers = 4;
  /// Memory servers per physical machine; the second server on a machine
  /// pays the QPI penalty because the NIC hangs off socket 0 (paper §6.1).
  uint32_t memory_servers_per_machine = 2;
  /// Closed-loop client threads per compute machine (paper: 40).
  uint32_t clients_per_compute_machine = 40;
  /// Co-locate compute machine i with memory machine i (Appendix A.3).
  bool colocate = false;

  // ---- Network ----------------------------------------------------------
  /// Per-port capacity. FDR 4x effective payload bandwidth ~6.8 GB/s.
  double link_bandwidth_bytes_per_sec = 6.8e9;
  /// One-way wire + switch latency.
  SimTime wire_latency_ns = 1300;
  /// Initiator-side cost of posting a signaled verb (WQE + doorbell + CQ
  /// poll amortisation).
  SimTime nic_post_ns = 300;

  // ---- Target-NIC verb engine (one-sided) -------------------------------
  /// Occupancy of the target NIC's processing engine per *signaled*
  /// one-sided READ/WRITE (WQE fetch, QP state, PCIe DMA setup). This is
  /// what caps fine-grained point-query throughput per server.
  SimTime onesided_engine_ns = 1000;
  /// Occupancy per *unsignaled* batched READ/WRITE inside a doorbell
  /// chain (Fabric::PostChain; selectively-signaled prefetch via head
  /// nodes, §4.3, and the write+unlock / split chains): doorbell batching
  /// amortises most of the per-verb cost, so every chain member — the
  /// signaled tail included — is charged this instead of
  /// `onesided_engine_ns`. Chained atomics still pay `atomic_engine_ns`
  /// (the NIC-internal lock unit serialises them regardless of signaling).
  SimTime unsignaled_engine_ns = 120;
  /// Occupancy per RDMA atomic (CAS / FETCH_AND_ADD): a serialized
  /// read-modify-write through the NIC-internal lock unit.
  SimTime atomic_engine_ns = 1400;
  /// Occupancy per incoming two-sided SEND (RC to a posted SRQ receive).
  SimTime twosided_engine_ns = 400;

  // ---- Memory-server CPU (two-sided RPC handling) -----------------------
  /// RPC handler threads per memory server polling the SRQ.
  uint32_t workers_per_server = 4;
  /// Fixed handler cost per RPC: completion poll, dispatch, response post.
  SimTime rpc_fixed_ns = 2500;
  /// Handler cost to search one inner node (cache-cold binary search).
  SimTime cpu_inner_node_ns = 1100;
  /// Handler cost to search/scan one leaf node.
  SimTime cpu_leaf_node_ns = 3000;
  /// Extra handler cost for an insert (entry shift, lock handling).
  SimTime cpu_insert_extra_ns = 2000;
  /// Connection-state overhead added to each handled request per connected
  /// client (QP/SRQ bookkeeping grows with fan-in). Produces the gentle
  /// post-saturation decline of CG under very high load (Fig. 7a).
  double per_client_poll_ns = 8.0;
  /// Service-time multiplier for memory servers whose handler cores sit on
  /// the far socket (NIC attached to socket 0; paper §6.1 discussion).
  double qpi_penalty = 1.30;

  // ---- Local (co-located) access path ------------------------------------
  /// Base latency of a same-machine access that bypasses the wire.
  SimTime local_latency_ns = 250;
  /// Same-machine copy bandwidth (local memory bus).
  double local_bandwidth_bytes_per_sec = 25e9;

  // ---- Two-sided transport (paper §3.2 design decision) -------------------
  /// The paper uses reliable connections (RC) with SRQs, in contrast to
  /// FaSST's unreliable datagrams (UD). UD halves the per-message NIC cost
  /// but is limited to one MTU per SEND, so large responses (range-query
  /// results) fragment into multiple messages.
  enum class RpcTransport { kReliableConnection, kUnreliableDatagram };
  RpcTransport rpc_transport = RpcTransport::kReliableConnection;
  /// UD datagram payload limit (fragmentation unit).
  uint32_t ud_mtu = 4096;
  /// Per-message engine occupancy when using UD.
  SimTime ud_engine_ns = 200;

  // ---- Fault injection -----------------------------------------------------
  /// Multiplies every wire traversal by a random factor in
  /// [1, 1 + latency_jitter] (deterministic per seed; 0 disables). Used to
  /// stress protocol interleavings under pathological timing.
  double latency_jitter = 0;
  uint64_t jitter_seed = 0x9E3779B9;
  /// Per-server slowdown multipliers applied to NIC engine occupancy and
  /// handler CPU (straggler injection); empty = no slowdown.
  std::vector<double> server_slowdown;

  /// Schedule-exploration seed (sim::Simulator::ConfigureSchedule): 0 keeps
  /// the legacy FIFO tie-break among equal-timestamp simulator events —
  /// bit-identical to pre-exploration runs — while any other value
  /// deterministically permutes it, selecting an alternate but equally
  /// legal interleaving of the same workload. Driven by the
  /// ScheduleExplorer / `scripts/check.sh --explore N`.
  uint64_t schedule_seed = 0;
  /// Bounded delay injection: every scheduled simulator event is delayed
  /// by a seed-deterministic extra amount in [0, schedule_jitter_ns].
  /// 0 disables. Unlike latency_jitter (which only stretches wire hops),
  /// this perturbs *all* coroutine resumptions, including local ones.
  SimTime schedule_jitter_ns = 0;

  /// Deterministic crash-point: kill `client` once it has issued
  /// `after_verbs` verbs — the next verb (and everything after it) is
  /// dropped in flight and returns without a memory effect, exactly as if
  /// the compute process died between two verb postings. The verb counter
  /// includes one-sided verbs, RPC send attempts, and liveness-registry
  /// reads; a PostChain (and therefore a ReadBatch) counts as one verb —
  /// one doorbell. A client that dies while a chain is in flight loses the
  /// not-yet-executed tail of the chain atomically: verbs whose effect
  /// time has passed stay applied, everything after the death vanishes.
  struct CrashPoint {
    uint32_t client = 0;
    // namtree-lint: metric-ok(a configured threshold, not an event count)
    uint64_t after_verbs = 0;
  };
  /// Crash schedule evaluated by the fabric (empty = no crash injection).
  /// Multiple entries for one client take the earliest point.
  std::vector<CrashPoint> crash_points;

  /// Deterministic memory-server crash-point: kill server `server` once
  /// `after_verbs` verb effects have executed against it. Unlike client
  /// crash points (post-time), server crash points are evaluated at
  /// *effect* time per target server, so a threshold can land between two
  /// members of one doorbell chain — the member that trips it (and every
  /// later member aimed at the dead server) is dropped while members bound
  /// for live servers still land. RPC deliveries count as one effect.
  struct ServerCrashPoint {
    uint32_t server = 0;
    // namtree-lint: metric-ok(a configured threshold, not an event count)
    uint64_t after_verbs = 0;
  };
  /// Server crash schedule (empty = immortal storage, today's behavior).
  /// Multiple entries for one server take the earliest point.
  std::vector<ServerCrashPoint> server_crash_points;

  /// Page replication degree R (paper §3.1 / "The End of Slow Networks":
  /// the NAM separation exists so dumb memory servers can be replicated).
  /// 1 (default) = single copy, bit-identical to the unreplicated fabric.
  /// R > 1 splits each region's page area into R equal rank stripes;
  /// replica r of page (s, off) lives on server (s + r) % N at
  /// off + r * stripe — a pure address formula, no directory. Disciplined
  /// writers publish primary + backups in one doorbell chain; readers that
  /// find the primary's server dead promote the next live replica.
  uint32_t replication_factor = 1;

  // ---- Network fault injection (flaky fabric, docs/fault_model.md §8) -----
  /// Fleet-wide per-verb fault probabilities, applied to every
  /// (client, server) link that has no explicit `link_faults` override.
  /// A *dropped verb* never reaches the target NIC: no memory effect, the
  /// caller observes a lost completion. A *dropped completion* executes the
  /// memory effect but loses the acknowledgement — the ambiguity case the
  /// client must resolve by reading back protocol state. Duplication
  /// re-executes the verb at the NIC (retransmission after a lost ACK):
  /// harmless for READ and byte-idempotent WRITE, observable for atomics.
  /// All zero (default) = lossless fabric, bit-identical to pre-fault runs.
  double drop_prob = 0;
  double dup_prob = 0;
  /// Extra seed-deterministic delay in [0, delay_jitter_ns] added to a
  /// verb's wire traversal (delay spikes; distinct from `latency_jitter`,
  /// which stretches multiplicatively and draws from `jitter_seed`).
  SimTime delay_jitter_ns = 0;
  /// Seed of the dedicated network-fault RNG. Drawn only when fault
  /// injection is live, so knobs-off runs consume no randomness.
  uint64_t net_fault_seed = 0x51ED270Bu;
  /// How long a client waits on a verb whose completion never arrives
  /// before treating it as lost (RC retransmission budget). Only consulted
  /// when network faults are enabled.
  SimTime net_verb_timeout_ns = 50 * kMicrosecond;

  /// Per-(client, server) link override of the fleet-wide probabilities.
  struct LinkFault {
    uint32_t client = 0;
    uint32_t server = 0;
    double drop_prob = 0;
    double dup_prob = 0;
    SimTime delay_jitter_ns = 0;
  };
  std::vector<LinkFault> link_faults;

  /// Exact deterministic fault point: fault the verb that `client` posts
  /// once it has issued `after_verb` verbs (same post-order counter as
  /// CrashPoint::after_verbs). Exact points fire regardless of the
  /// probabilistic knobs and are consumed once each.
  struct VerbFaultPoint {
    enum class Kind : uint8_t {
      kDropVerb,        ///< verb lost before the NIC: no memory effect
      kDropCompletion,  ///< effect applied, acknowledgement lost
      kDuplicate,       ///< verb executed twice at the target NIC
    };
    uint32_t client = 0;
    // namtree-lint: metric-ok(a configured threshold, not an event count)
    uint64_t after_verb = 0;
    Kind kind = Kind::kDropVerb;
  };
  std::vector<VerbFaultPoint> verb_fault_points;

  /// True once any network-fault source is configured; gates every fault
  /// branch and RNG draw so knobs-off runs stay bit-identical.
  bool NetFaultsConfigured() const {
    if (drop_prob > 0 || dup_prob > 0 || delay_jitter_ns > 0) return true;
    if (!verb_fault_points.empty()) return true;
    for (const LinkFault& lf : link_faults) {
      if (lf.drop_prob > 0 || lf.dup_prob > 0 || lf.delay_jitter_ns > 0)
        return true;
    }
    return false;
  }

  // ---- Client-side protocol knobs ----------------------------------------
  /// Doorbell-batched verb chains (Fabric::PostChain) on the hot write
  /// paths: WriteUnlockPage collapses {page WRITE, unlock WRITE} into one
  /// chain, and B-link splits chain {new-sibling WRITE, page WRITE,
  /// unlock WRITE}. Disabling falls back to individually signaled verbs
  /// (WRITE + FAA unlock), bit-identical to the pre-chain protocol.
  /// READ-only chains (head-node prefetch) are unaffected by this knob.
  bool verb_chaining = true;
  /// In-flight read combining: when several coroutines of one client
  /// (RunConfig::pipeline_depth lanes) await the same (server, offset,
  /// len) READ concurrently, later requesters attach to the one
  /// outstanding verb instead of posting duplicates — they resume when its
  /// completion arrives and copy out of the shared landing buffer. Pure
  /// client-side NIC-queue discipline: no memory-server cooperation, no
  /// protocol change (the combined read observes the same bytes the verb
  /// delivered). Off by default — bit-identical to independent READs;
  /// VerbAuditor::duplicate_inflight_reads counts what stays on the table.
  bool read_combining = false;
  /// Initial backoff before re-polling a locked remote node (remote
  /// spinlock). Consecutive re-polls back off exponentially (with jitter)
  /// up to `lock_backoff_max_ns`.
  SimTime lock_retry_ns = 1000;
  /// Cap of the exponential lock backoff.
  SimTime lock_backoff_max_ns = 8000;
  /// Lock lease: once a waiter has watched the *same* locked word for this
  /// long, it reads the holder's liveness from the fabric registry and, if
  /// the holder is dead, CAS-steals the lock (docs/fault_model.md). 0
  /// disables leases entirely — waiters then spin forever on an orphaned
  /// lock, which preserves the exact pre-crash-layer behavior for healthy
  /// runs. Crash-fault runs should set a lease.
  SimTime lock_lease_ns = 0;
  /// RPC deadline for Fabric::Call. 0 = wait forever (legacy behavior);
  /// > 0 = each attempt is abandoned after this long, resent up to
  /// `rpc_max_retries` times, and finally surfaced as kTimedOut.
  SimTime rpc_timeout_ns = 0;
  /// Resend attempts after the first RPC timeout (only with a timeout set).
  uint32_t rpc_max_retries = 2;

  // Derived helpers.
  uint32_t NumMemoryMachines() const {
    return (num_memory_servers + memory_servers_per_machine - 1) /
           memory_servers_per_machine;
  }
  /// Physical machine hosting memory server `s`.
  uint32_t MemoryServerMachine(uint32_t s) const {
    return s / memory_servers_per_machine;
  }
  /// True if memory server `s` pays the QPI crossing penalty.
  bool CrossesQpi(uint32_t s) const {
    return memory_servers_per_machine > 1 &&
           (s % memory_servers_per_machine) != 0;
  }
};

/// One bounded-retry discipline for every client-side loop that re-attempts
/// remote work: lock re-polls, RPC resends, dead-holder steal probes, and
/// lost-verb retries under network faults. Attempt rounds are numbered from
/// 0; BackoffFor(round, rng) reproduces the capped exponential backoff with
/// jitter that the lock spin loop has always used (same RNG draw shape, so
/// adopting the policy is bit-identical for existing paths).
struct RetryPolicy {
  /// Total attempts including the first (>= 1). Exhaustion surfaces as
  /// kTimedOut through the caller's status path.
  uint32_t max_attempts = 1;
  /// Backoff before attempt `round + 1`: base << round, jittered into
  /// [base/2, base), capped at max(base_backoff_ns, max_backoff_ns).
  /// 0 = retry immediately (the RPC resend discipline).
  SimTime base_backoff_ns = 0;
  SimTime max_backoff_ns = 0;
  /// Per-attempt deadline (0 = wait forever on each attempt).
  SimTime timeout_ns = 0;

  /// True once `attempts` completed attempts have used up the budget
  /// (max_attempts == 0 never exhausts).
  bool Exhausted(uint32_t attempts) const {
    return max_attempts != 0 && attempts >= max_attempts;
  }

  /// Capped exponential backoff with jitter for retry round `round`
  /// (0-based). `rng` needs NextDouble() in [0, 1). Always consumes exactly
  /// one draw — the historical spin loop did, and adopting the policy must
  /// not shift any client's RNG stream.
  template <typename Rng>
  SimTime BackoffFor(uint32_t round, Rng& rng) const {
    const uint64_t cap =
        std::max<uint64_t>(base_backoff_ns, max_backoff_ns);
    uint64_t base = static_cast<uint64_t>(base_backoff_ns)
                    << std::min<uint32_t>(round, 16);
    base = std::min(std::max<uint64_t>(base, 1), cap);
    const uint64_t half = base / 2;
    return static_cast<SimTime>(
        half + static_cast<uint64_t>(rng.NextDouble() *
                                     static_cast<double>(base - half)));
  }

  /// The remote-spinlock discipline: unbounded historically; bounded here
  /// by a generous attempt budget so a flaky link cannot wedge a descent.
  static RetryPolicy ForLocks(const FabricConfig& cfg) {
    RetryPolicy p;
    p.max_attempts = 0;  // 0 = unbounded spin (legacy lock behavior)
    p.base_backoff_ns = cfg.lock_retry_ns;
    p.max_backoff_ns = cfg.lock_backoff_max_ns;
    return p;
  }
  /// The RPC resend discipline: rpc_max_retries resends after the first
  /// attempt, no inter-attempt sleep, per-attempt deadline rpc_timeout_ns.
  static RetryPolicy ForRpc(const FabricConfig& cfg) {
    RetryPolicy p;
    p.max_attempts = cfg.rpc_timeout_ns > 0 ? cfg.rpc_max_retries + 1 : 1;
    p.timeout_ns = cfg.rpc_timeout_ns;
    return p;
  }
  /// The dead-holder steal-probe discipline: the liveness registry may be
  /// temporarily unreachable, so probes are bounded by the RPC retry knob
  /// (the historical `failed_probes > rpc_max_retries` bound), independent
  /// of the RPC deadline knob.
  static RetryPolicy ForSteal(const FabricConfig& cfg) {
    RetryPolicy p;
    p.max_attempts = cfg.rpc_max_retries + 1;
    return p;
  }
  /// Lost-verb attempt budget under network faults (ForVerbs, and
  /// RemoteOps::VerbPolicy when only runtime fault state — severed links —
  /// makes the fabric lossy).
  static constexpr uint32_t kNetVerbAttempts = 8;

  /// Lost one-sided verbs under network faults: bounded re-post with the
  /// lock backoff curve (shares the knobs; faults and locks contend on the
  /// same links).
  static RetryPolicy ForVerbs(const FabricConfig& cfg) {
    RetryPolicy p;
    p.max_attempts = cfg.NetFaultsConfigured() ? kNetVerbAttempts : 1;
    p.base_backoff_ns = cfg.lock_retry_ns;
    p.max_backoff_ns = cfg.lock_backoff_max_ns;
    p.timeout_ns = cfg.net_verb_timeout_ns;
    return p;
  }
};

}  // namespace namtree::rdma

#endif  // NAMTREE_RDMA_FABRIC_CONFIG_H_
