#include "rdma/audit.h"

#include <algorithm>
#include <cstring>

namespace namtree::rdma {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kWriteWithoutLock:
      return "WriteWithoutLock";
    case ViolationKind::kUnlockWithoutLock:
      return "UnlockWithoutLock";
    case ViolationKind::kUnlockByNonHolder:
      return "UnlockByNonHolder";
    case ViolationKind::kVersionRegression:
      return "VersionRegression";
    case ViolationKind::kTornRead:
      return "TornRead";
    case ViolationKind::kLockStealFromLiveHolder:
      return "LockStealFromLiveHolder";
    case ViolationKind::kRemoteRace:
      return "RemoteRace";
    case ViolationKind::kUnresolvedAmbiguousRetry:
      return "UnresolvedAmbiguousRetry";
  }
  return "Unknown";
}

std::string Violation::Describe() const {
  std::string s(ViolationKindName(kind));
  s += " client=" + std::to_string(client);
  s += " target=" + target.ToString();
  s += " observed=" + std::to_string(observed);
  s += " attempted=" + std::to_string(attempted);
  s += " t=" + std::to_string(time);
  if (occurrences > 1) s += " x" + std::to_string(occurrences);
  if (!detail.empty()) s += " [" + detail + "]";
  return s;
}

std::string VerbAuditor::Access::Describe() const {
  std::string s(op);
  s += " client=" + std::to_string(client);
  if (chain != 0) s += " chain=" + std::to_string(chain);
  s += " at=" + at.ToString();
  s += " len=" + std::to_string(len);
  s += disciplined ? " (protocol)" : " (unordered)";
  s += " t=" + std::to_string(time);
  return s;
}

std::string VerbAuditor::VerbRecord::Describe() const {
  std::string s = "t=" + std::to_string(time);
  s += " client=" + std::to_string(client);
  s += " op=";
  s += op;
  s += " target=" + target.ToString();
  s += " len=" + std::to_string(len);
  if (chain != 0) s += " chain=" + std::to_string(chain);
  return s;
}

VerbAuditor::WordState* VerbAuditor::FindWord(RemotePtr target) {
  auto server_it = words_.find(target.server_id());
  if (server_it == words_.end()) return nullptr;
  auto word_it = server_it->second.find(target.offset());
  if (word_it == server_it->second.end()) return nullptr;
  return &word_it->second;
}

uint64_t VerbAuditor::Tick(uint32_t client) {
  VectorClock& vc = client_vc_[client];
  vc.Tick(client);
  return vc.Of(client);
}

bool VerbAuditor::HappensBefore(const Access& earlier, uint32_t later_client) {
  return client_vc_[later_client].Of(earlier.client) >= earlier.clock;
}

VerbAuditor::Access VerbAuditor::MakeAccess(uint32_t client, const char* op,
                                            RemotePtr at, uint32_t len,
                                            uint64_t chain, SimTime now) {
  Access a;
  a.client = client;
  a.clock = client_vc_[client].Of(client);
  a.chain = chain;
  a.at = at;
  a.len = len;
  a.time = now;
  a.op = op;
  return a;
}

template <typename Fn>
void VerbAuditor::ForEachCoveredWord(uint32_t server, uint64_t lo,
                                     uint64_t hi, Fn&& fn) {
  auto server_it = words_.find(server);
  if (server_it == words_.end()) return;
  ServerWords& words = server_it->second;
  auto it = words.upper_bound(lo);
  if (it != words.begin()) {
    auto prev = std::prev(it);
    // The nearest word at or before `lo` covers the range iff its learned
    // page span reaches past `lo`.
    if (prev->first + prev->second.extent > lo) fn(prev->first, prev->second);
  }
  for (; it != words.end() && it->first < hi; ++it) fn(it->first, it->second);
}

void VerbAuditor::BindMetrics(metrics::MetricRegistry* registry) {
  if (registry == nullptr) return;
  registry->RegisterCounter(lock_steals_, "audit.lock_steals", {},
                            "sanctioned CAS-clears of dead holders' locks");
  registry->RegisterCounter(duplicate_inflight_reads_,
                            "audit.duplicate_inflight_reads", {},
                            "same-client duplicate READs posted in flight");
  registry->RegisterCounter(total_occurrences_, "audit.violations_total",
                            {}, "protocol-violation occurrences, all kinds");
  registry->RegisterCounter(suppressed_violations_,
                            "audit.suppressed_violations", {},
                            "occurrences dropped at the storage cap");
  for (int k = 0;
       k <= static_cast<int>(ViolationKind::kUnresolvedAmbiguousRetry); ++k) {
    const auto kind = static_cast<ViolationKind>(k);
    registry->RegisterCallback(
        "audit.violations",
        [this, kind] { return static_cast<uint64_t>(CountOfKind(kind)); },
        {{"kind", ViolationKindName(kind)}},
        "deduplicated violation occurrences by kind");
  }
  registry->RegisterCallback(
      "audit.tracked_words",
      [this] { return static_cast<uint64_t>(tracked_words()); }, {},
      "version words currently under protocol tracking");
}

void VerbAuditor::Record(Violation v) {
  total_occurrences_.Inc();
  const auto key = std::make_pair(static_cast<int>(v.kind), v.target.raw());
  auto it = violation_index_.find(key);
  if (it != violation_index_.end()) {
    violations_[it->second].occurrences++;
    return;
  }
  if (violations_.size() >= kMaxStoredViolations) {
    suppressed_violations_.Inc();
    return;
  }
  violation_index_.emplace(key, violations_.size());
  violations_.push_back(std::move(v));
}

void VerbAuditor::Report(ViolationKind kind, uint32_t client,
                         RemotePtr target, uint64_t observed,
                         uint64_t attempted, SimTime now) {
  Violation v;
  v.kind = kind;
  v.client = client;
  v.target = target;
  v.observed = observed;
  v.attempted = attempted;
  v.time = now;
  Record(std::move(v));
}

void VerbAuditor::ReportRace(const Access& earlier, const Access& later,
                             RemotePtr word, SimTime now) {
  Violation v;
  v.kind = ViolationKind::kRemoteRace;
  v.client = later.client;
  v.target = word;
  v.observed = earlier.client;
  v.attempted = later.client;
  v.time = now;
  v.detail = earlier.Describe() + "  vs  " + later.Describe();
  Record(std::move(v));
}

void VerbAuditor::RecordTrace(uint32_t client, const char* op,
                              RemotePtr target, uint32_t len, uint64_t chain,
                              SimTime now) {
  if (trace_capacity_ == 0) return;
  if (trace_.size() >= trace_capacity_) trace_.pop_front();
  VerbRecord r;
  r.client = client;
  r.op = op;
  r.target = target;
  r.len = len;
  r.chain = chain;
  r.time = now;
  trace_.push_back(r);
}

void VerbAuditor::CheckWriteRaces(WordState& state, RemotePtr word_ptr,
                                  const Access& write_in, SimTime now) {
  Access write = write_in;
  write.disciplined = state.locked && state.holder == write.client;
  // Write vs write: two lock-disciplined writes are always HB-ordered via
  // the release->acquire hand-off, so any unordered pair involves at least
  // one undisciplined writer.
  if (state.has_last_write && !HappensBefore(state.last_write, write.client)) {
    ReportRace(state.last_write, write, word_ptr, now);
  }
  // Write vs validated read: the version protocol arbitrates this pair
  // when the writer holds the lock (the reader re-validates and retries),
  // so only an undisciplined writer can race a validated read.
  if (!write.disciplined) {
    for (const auto& [reader, read] : state.validated_reads) {
      if (!HappensBefore(read, write.client)) {
        ReportRace(read, write, word_ptr, now);
      }
    }
  }
  // Write vs lock-elided read: nothing arbitrates — the reader skipped the
  // version word, so even a lock-disciplined write races it.
  for (const auto& [reader, read] : state.elided_reads) {
    if (!HappensBefore(read, write.client)) {
      ReportRace(read, write, word_ptr, now);
    }
  }
  state.last_write = write;
  state.has_last_write = true;
  // Reads ordered before this write can never race anything later than the
  // write itself (transitivity through last_write); retire them.
  for (auto it = state.validated_reads.begin();
       it != state.validated_reads.end();) {
    it = HappensBefore(it->second, write.client)
             ? state.validated_reads.erase(it)
             : std::next(it);
  }
  for (auto it = state.elided_reads.begin();
       it != state.elided_reads.end();) {
    it = HappensBefore(it->second, write.client)
             ? state.elided_reads.erase(it)
             : std::next(it);
  }
}

uint64_t VerbAuditor::OnWritePosted(uint32_t client, RemotePtr dst,
                                    uint32_t len, SimTime now,
                                    uint64_t chain) {
  (void)now;
  if (!enabled_) return 0;
  InflightWrite w;
  w.client = client;
  w.dst = dst;
  w.len = len;
  w.chain = chain;
  // Decide at post time whether the write is lock-protected: the protocol
  // CASes the lock bit *before* posting the write-back, so any tracked word
  // in range must already be locked by this client.
  auto server_it = words_.find(dst.server_id());
  if (server_it != words_.end()) {
    const uint64_t lo = dst.offset();
    const uint64_t hi = lo + len;
    for (auto it = server_it->second.lower_bound(lo > 7 ? lo - 7 : 0);
         it != server_it->second.end() && it->first < hi; ++it) {
      if (it->first + 8 <= lo) continue;  // word ends before the range
      if (!it->second.locked || it->second.holder != client) {
        w.unprotected = true;
        break;
      }
    }
  }
  const uint64_t ticket = next_ticket_++;
  inflight_.emplace(ticket, w);
  return ticket;
}

void VerbAuditor::OnWriteEffect(uint64_t ticket, const void* payload,
                                SimTime now) {
  if (ticket == 0) return;
  auto it = inflight_.find(ticket);
  if (it == inflight_.end()) return;
  const InflightWrite w = it->second;
  inflight_.erase(it);
  if (!enabled_) return;

  Tick(w.client);
  RecordTrace(w.client, "WRITE", w.dst, w.len, w.chain, now);
  const Access access = MakeAccess(w.client, "WRITE", w.dst, w.len, w.chain,
                                   now);
  const uint64_t lo = w.dst.offset();
  const uint64_t hi = lo + w.len;
  ForEachCoveredWord(
      w.dst.server_id(), lo, hi, [&](uint64_t off, WordState& state) {
        const RemotePtr word_ptr = RemotePtr::Make(w.dst.server_id(), off);
        const bool covers_word = lo <= off && off + 8 <= hi;
        if (!covers_word) {
          // The write lands inside the word's learned page span without
          // touching the word itself: a pure data access.
          CheckWriteRaces(state, word_ptr, access, now);
          return;
        }
        uint64_t new_word;
        std::memcpy(&new_word,
                    static_cast<const uint8_t*>(payload) + (off - lo), 8);
        // An exactly-word-sized WRITE that clears the lock bit is a
        // WRITE-based lock release — the tail of a doorbell-batched {page
        // WRITE, unlock WRITE} chain. Judge it by the unlock rules (so the
        // sanctioned combined shape passes and a rogue release gets the
        // precise verdict) instead of flagging it as a generic
        // write-without-lock.
        const bool word_sized = w.len == 8 && off == lo;
        const bool unlock_shape = word_sized && !LockedWord(new_word);
        if (unlock_shape) {
          if (!state.locked) {
            Report(ViolationKind::kUnlockWithoutLock, w.client, word_ptr,
                   state.last_word, new_word, now);
          } else if (state.holder != w.client) {
            Report(ViolationKind::kUnlockByNonHolder, w.client, word_ptr,
                   state.last_word, new_word, now);
          }
        } else if (!state.locked || state.holder != w.client) {
          Report(ViolationKind::kWriteWithoutLock, w.client, word_ptr,
                 state.last_word, new_word, now);
        }
        if (VersionPart(new_word) < VersionPart(state.last_word)) {
          Report(ViolationKind::kVersionRegression, w.client, word_ptr,
                 state.last_word, new_word, now);
        }
        // Happens-before pass, on the pre-mirror lock state. A word-sized
        // write at the word is a synchronization access (release or rogue
        // release, judged above), never a data-race participant.
        if (!word_sized) CheckWriteRaces(state, word_ptr, access, now);
        state.extent = std::max(state.extent, hi - off);
        // Mirror what the memcpy is about to install.
        const bool was_locked = state.locked;
        state.last_word = new_word;
        state.locked = LockedWord(new_word);
        if (state.locked && !was_locked) state.holder = w.client;
        // Any transition to unlocked publishes the writer's clock: the
        // next acquirer physically observes this value, so the order is
        // real even when the release itself was rogue.
        if (was_locked && !state.locked) {
          state.release_vc = client_vc_[w.client];
        }
      });
}

void VerbAuditor::OnReadEffect(uint32_t client, RemotePtr src, uint32_t len,
                               SimTime now, uint64_t chain) {
  if (!enabled_) return;
  Tick(client);
  RecordTrace(client, "READ", src, len, chain, now);
  const uint64_t lo = src.offset();
  const uint64_t hi = lo + len;
  for (const auto& [ticket, w] : inflight_) {
    (void)ticket;
    if (!w.unprotected) continue;
    if (w.dst.server_id() != src.server_id()) continue;
    const uint64_t wlo = w.dst.offset();
    const uint64_t whi = wlo + w.len;
    if (wlo < hi && lo < whi) {
      Report(ViolationKind::kTornRead, client, src, w.client, len, now);
      break;  // one torn-read finding per read is enough
    }
  }

  ForEachCoveredWord(
      src.server_id(), lo, hi, [&](uint64_t off, WordState& state) {
        const RemotePtr word_ptr = RemotePtr::Make(src.server_id(), off);
        const bool covers_word = lo <= off && off + 8 <= hi;
        if (covers_word) {
          // Observing the version word orders this read after the release
          // that produced the observed value.
          client_vc_[client].Join(state.release_vc);
          state.extent = std::max(state.extent, hi - off);
          // An exactly-word-sized read is a version probe: a pure
          // synchronization access.
          if (len == 8 && off == lo) return;
          Access read = MakeAccess(client, "READ", src, len, chain, now);
          read.disciplined = true;
          // A validated read races only undisciplined writes: against a
          // lock-holding writer the version protocol makes the reader
          // discard and retry.
          if (state.has_last_write && !state.last_write.disciplined &&
              !HappensBefore(state.last_write, client)) {
            ReportRace(state.last_write, read, word_ptr, now);
          }
          state.validated_reads[client] = read;
        } else {
          // Lock-elided read: the range lies inside the page span but
          // skips the version word, so no validation can save it — any
          // unordered write is a race.
          Access read = MakeAccess(client, "READ", src, len, chain, now);
          if (state.has_last_write &&
              !HappensBefore(state.last_write, client)) {
            ReportRace(state.last_write, read, word_ptr, now);
          }
          state.elided_reads[client] = read;
        }
      });
}

void VerbAuditor::OnReadPosted(uint32_t client, RemotePtr src,
                               uint32_t len) {
  if (!enabled_) return;
  uint32_t& outstanding = inflight_reads_[{client, src.raw(), len}];
  if (outstanding > 0) duplicate_inflight_reads_.Inc();
  outstanding++;
}

void VerbAuditor::OnReadCompleted(uint32_t client, RemotePtr src,
                                  uint32_t len) {
  if (!enabled_) return;
  auto it = inflight_reads_.find({client, src.raw(), len});
  if (it == inflight_reads_.end()) return;  // posted while disabled
  if (--it->second == 0) inflight_reads_.erase(it);
}

void VerbAuditor::OnCasEffect(uint32_t client, RemotePtr target,
                              uint64_t expected, uint64_t desired,
                              uint64_t observed, SimTime now,
                              uint64_t chain) {
  if (!enabled_) return;
  Tick(client);
  const bool swapped = observed == expected;
  RecordTrace(client, swapped ? "CAS" : "CAS-fail", target, 8, chain, now);
  // Acquire shape: an unlocked word becomes locked with the version
  // unchanged. Covers both the raw `CAS(v -> v|1)` form and the
  // holder-stamping `CAS(v -> MakeLockedWord(v, client))` form (the holder
  // bits differ; VersionPart masks them out).
  const bool lock_acquire_shape = !LockedWord(expected) &&
                                  LockedWord(desired) &&
                                  VersionPart(desired) == VersionPart(expected);
  WordState* state = FindWord(target);

  if (state == nullptr) {
    // Begin tracking on the first successful lock acquire; anything else on
    // untracked memory (catalog installs, application CASes) is not ours.
    if (swapped && lock_acquire_shape) {
      WordState fresh;
      fresh.locked = true;
      fresh.holder = client;
      fresh.last_word = desired;
      words_[target.server_id()].emplace(target.offset(), fresh);
    }
    return;
  }
  if (!swapped) {
    // A failed acquire CAS against a word the CASer *already holds* is a
    // blind retry of an ambiguous (lost-completion) CAS whose first
    // execution landed: the sanctioned recovery reads the holder-stamped
    // word back instead of re-CASing (docs/fault_model.md §8). The spin
    // loop against someone else's lock never matches (holder differs).
    if (lock_acquire_shape && state->locked && state->holder == client &&
        LockedWord(observed)) {
      Report(ViolationKind::kUnresolvedAmbiguousRetry, client, target,
             observed, desired, now);
    }
    return;  // failed CAS has no memory effect
  }

  if (lock_acquire_shape && !state->locked) {
    // Release -> acquire: the new holder inherits everything ordered
    // before the last release.
    client_vc_[client].Join(state->release_vc);
    state->locked = true;
    state->holder = client;
    state->last_word = desired;
    return;
  }
  // Steal shape: a non-holder CASes a *locked* word back to unlocked. The
  // crash-recovery protocol (docs/fault_model.md) sanctions this only when
  // the holder is dead; against a live holder it races the holder's
  // write-back and is flagged.
  if (state->locked && LockedWord(expected) && !LockedWord(desired) &&
      client != state->holder) {
    const bool holder_dead =
        liveness_probe_ && !liveness_probe_(state->holder);
    if (holder_dead) {
      lock_steals_.Inc();
      // The sanctioned steal is the recovery-time hand-off: the stealer
      // adopts the dead holder's history so the holder's landed writes
      // are ordered before everything after the steal.
      client_vc_[client].Join(client_vc_[state->holder]);
    } else {
      Report(ViolationKind::kLockStealFromLiveHolder, client, target,
             observed, desired, now);
    }
    if (VersionPart(desired) < VersionPart(observed)) {
      Report(ViolationKind::kVersionRegression, client, target, observed,
             desired, now);
    }
    state->last_word = desired;
    state->locked = false;
    state->release_vc = client_vc_[client];
    return;
  }
  // Any other successful CAS mutates a version word out of protocol; the
  // one invariant we can still check is version monotonicity. Atomics
  // serialize through the target NIC, so they are synchronization
  // accesses, never data-race participants.
  if (VersionPart(desired) < VersionPart(observed)) {
    Report(ViolationKind::kVersionRegression, client, target, observed,
           desired, now);
  }
  const bool was_locked = state->locked;
  state->last_word = desired;
  state->locked = LockedWord(desired);
  if (state->locked && !was_locked) {
    state->holder = client;
    client_vc_[client].Join(state->release_vc);
  } else if (!state->locked && was_locked) {
    state->release_vc = client_vc_[client];
  }
}

void VerbAuditor::OnFaaEffect(uint32_t client, RemotePtr target, uint64_t add,
                              uint64_t prev, SimTime now) {
  if (!enabled_) return;
  Tick(client);
  RecordTrace(client, "FAA", target, 8, 0, now);
  WordState* state = FindWord(target);
  if (state == nullptr) return;  // allocation cursors etc.

  const uint64_t updated = prev + add;
  if (!LockedWord(prev)) {
    Report(ViolationKind::kUnlockWithoutLock, client, target, prev, add, now);
  } else if (state->holder != client) {
    Report(ViolationKind::kUnlockByNonHolder, client, target, prev, add, now);
  }
  if (VersionPart(updated) < VersionPart(prev)) {
    Report(ViolationKind::kVersionRegression, client, target, prev, updated,
           now);
  }
  const bool was_locked = state->locked;
  state->last_word = updated;
  state->locked = LockedWord(updated);
  if (was_locked && !state->locked) {
    state->release_vc = client_vc_[client];
  }
}

void VerbAuditor::DropWrite(uint64_t ticket) {
  if (ticket == 0) return;
  inflight_.erase(ticket);
}

void VerbAuditor::OnRpcRequest(uint32_t client, uint32_t server) {
  if (!enabled_) return;
  Tick(client);
  RecordTrace(client, "RPC-REQ", RemotePtr::Make(server, 0), 0, 0, 0);
  // The service point sequences delivered requests: everything the caller
  // did so far is ordered before the handler's work. This deliberately
  // over-approximates (concurrent handlers are modeled as one serialized
  // service clock), which can only hide races, never invent them.
  server_vc_[server].Join(client_vc_[client]);
}

void VerbAuditor::OnServerDeath(uint32_t server) {
  if (!enabled_) return;
  words_.erase(server);
  // In-flight writes aimed at the dead region never land; drop their
  // tickets so later reads do not flag them as torn-read suspects.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    it = it->second.dst.server_id() == server ? inflight_.erase(it)
                                              : std::next(it);
  }
}

void VerbAuditor::OnRpcReply(uint32_t client, uint32_t server) {
  if (!enabled_) return;
  RecordTrace(client, "RPC-REP", RemotePtr::Make(server, 0), 0, 0, 0);
  client_vc_[client].Join(server_vc_[server]);
}

std::vector<VerbAuditor::LockedWordInfo> VerbAuditor::LockedWords() const {
  std::vector<LockedWordInfo> out;
  for (const auto& [server, words] : words_) {
    for (const auto& [offset, state] : words) {
      if (!state.locked) continue;
      out.push_back(LockedWordInfo{RemotePtr::Make(server, offset),
                                   state.holder});
    }
  }
  return out;
}

size_t VerbAuditor::CountOfKind(ViolationKind kind) const {
  size_t n = 0;
  for (const Violation& v : violations_) {
    if (v.kind == kind) n += v.occurrences;
  }
  return n;
}

size_t VerbAuditor::tracked_words() const {
  size_t n = 0;
  for (const auto& [server, words] : words_) {
    (void)server;
    n += words.size();
  }
  return n;
}

Status VerbAuditor::CheckClean() const {
  if (violations_.empty()) return Status::OK();
  return Status::Corruption(
      std::to_string(violations_.size()) + " protocol violation(s) (" +
      std::to_string(total_occurrences_) +
      " occurrence(s)); first: " + violations_.front().Describe());
}

void VerbAuditor::ClearViolations() {
  violations_.clear();
  violation_index_.clear();
  total_occurrences_.Reset();
  suppressed_violations_.Reset();
}

void VerbAuditor::Reset() {
  ClearViolations();
  words_.clear();
  inflight_.clear();
  inflight_reads_.clear();
  duplicate_inflight_reads_.Reset();
  client_vc_.clear();
  server_vc_.clear();
  trace_.clear();
}

void VerbAuditor::set_trace_capacity(size_t n) {
  trace_capacity_ = n;
  while (trace_.size() > trace_capacity_) trace_.pop_front();
}

std::string VerbAuditor::DumpTrace() const {
  std::string out;
  for (const VerbRecord& r : trace_) {
    out += r.Describe();
    out += '\n';
  }
  return out;
}

}  // namespace namtree::rdma
