#include "rdma/audit.h"

#include <cstring>

namespace namtree::rdma {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kWriteWithoutLock:
      return "WriteWithoutLock";
    case ViolationKind::kUnlockWithoutLock:
      return "UnlockWithoutLock";
    case ViolationKind::kUnlockByNonHolder:
      return "UnlockByNonHolder";
    case ViolationKind::kVersionRegression:
      return "VersionRegression";
    case ViolationKind::kTornRead:
      return "TornRead";
    case ViolationKind::kLockStealFromLiveHolder:
      return "LockStealFromLiveHolder";
  }
  return "Unknown";
}

std::string Violation::Describe() const {
  std::string s(ViolationKindName(kind));
  s += " client=" + std::to_string(client);
  s += " target=" + target.ToString();
  s += " observed=" + std::to_string(observed);
  s += " attempted=" + std::to_string(attempted);
  s += " t=" + std::to_string(time);
  return s;
}

VerbAuditor::WordState* VerbAuditor::FindWord(RemotePtr target) {
  auto server_it = words_.find(target.server_id());
  if (server_it == words_.end()) return nullptr;
  auto word_it = server_it->second.find(target.offset());
  if (word_it == server_it->second.end()) return nullptr;
  return &word_it->second;
}

void VerbAuditor::Report(ViolationKind kind, uint32_t client,
                         RemotePtr target, uint64_t observed,
                         uint64_t attempted, SimTime now) {
  Violation v;
  v.kind = kind;
  v.client = client;
  v.target = target;
  v.observed = observed;
  v.attempted = attempted;
  v.time = now;
  violations_.push_back(std::move(v));
}

uint64_t VerbAuditor::OnWritePosted(uint32_t client, RemotePtr dst,
                                    uint32_t len, SimTime now) {
  (void)now;
  if (!enabled_) return 0;
  InflightWrite w;
  w.client = client;
  w.dst = dst;
  w.len = len;
  // Decide at post time whether the write is lock-protected: the protocol
  // CASes the lock bit *before* posting the write-back, so any tracked word
  // in range must already be locked by this client.
  auto server_it = words_.find(dst.server_id());
  if (server_it != words_.end()) {
    const uint64_t lo = dst.offset();
    const uint64_t hi = lo + len;
    for (auto it = server_it->second.lower_bound(lo > 7 ? lo - 7 : 0);
         it != server_it->second.end() && it->first < hi; ++it) {
      if (it->first + 8 <= lo) continue;  // word ends before the range
      if (!it->second.locked || it->second.holder != client) {
        w.unprotected = true;
        break;
      }
    }
  }
  const uint64_t ticket = next_ticket_++;
  inflight_.emplace(ticket, w);
  return ticket;
}

void VerbAuditor::OnWriteEffect(uint64_t ticket, const void* payload,
                                SimTime now) {
  if (ticket == 0) return;
  auto it = inflight_.find(ticket);
  if (it == inflight_.end()) return;
  const InflightWrite w = it->second;
  inflight_.erase(it);
  if (!enabled_) return;

  auto server_it = words_.find(w.dst.server_id());
  if (server_it == words_.end()) return;
  const uint64_t lo = w.dst.offset();
  const uint64_t hi = lo + w.len;
  for (auto word_it = server_it->second.lower_bound(lo);
       word_it != server_it->second.end() && word_it->first + 8 <= hi;
       ++word_it) {
    WordState& state = word_it->second;
    const RemotePtr word_ptr = RemotePtr::Make(w.dst.server_id(),
                                               word_it->first);
    uint64_t new_word;
    std::memcpy(&new_word, static_cast<const uint8_t*>(payload) +
                               (word_it->first - lo),
                8);
    // An exactly-word-sized WRITE that clears the lock bit is a WRITE-based
    // lock release — the tail of a doorbell-batched {page WRITE, unlock
    // WRITE} chain. Judge it by the unlock rules (so the sanctioned
    // combined shape passes and a rogue release gets the precise verdict)
    // instead of flagging it as a generic write-without-lock.
    const bool unlock_shape =
        w.len == 8 && word_it->first == lo && !LockedWord(new_word);
    if (unlock_shape) {
      if (!state.locked) {
        Report(ViolationKind::kUnlockWithoutLock, w.client, word_ptr,
               state.last_word, new_word, now);
      } else if (state.holder != w.client) {
        Report(ViolationKind::kUnlockByNonHolder, w.client, word_ptr,
               state.last_word, new_word, now);
      }
    } else if (!state.locked || state.holder != w.client) {
      Report(ViolationKind::kWriteWithoutLock, w.client, word_ptr,
             state.last_word, new_word, now);
    }
    if (VersionPart(new_word) < VersionPart(state.last_word)) {
      Report(ViolationKind::kVersionRegression, w.client, word_ptr,
             state.last_word, new_word, now);
    }
    // Mirror what the memcpy is about to install.
    const bool was_locked = state.locked;
    state.last_word = new_word;
    state.locked = LockedWord(new_word);
    if (state.locked && !was_locked) state.holder = w.client;
  }
}

void VerbAuditor::OnReadEffect(uint32_t client, RemotePtr src, uint32_t len,
                               SimTime now) {
  if (!enabled_ || inflight_.empty()) return;
  const uint64_t lo = src.offset();
  const uint64_t hi = lo + len;
  for (const auto& [ticket, w] : inflight_) {
    (void)ticket;
    if (!w.unprotected) continue;
    if (w.dst.server_id() != src.server_id()) continue;
    const uint64_t wlo = w.dst.offset();
    const uint64_t whi = wlo + w.len;
    if (wlo < hi && lo < whi) {
      Report(ViolationKind::kTornRead, client, src, w.client, len, now);
      return;  // one finding per read is enough
    }
  }
}

void VerbAuditor::OnCasEffect(uint32_t client, RemotePtr target,
                              uint64_t expected, uint64_t desired,
                              uint64_t observed, SimTime now) {
  if (!enabled_) return;
  const bool swapped = observed == expected;
  // Acquire shape: an unlocked word becomes locked with the version
  // unchanged. Covers both the raw `CAS(v -> v|1)` form and the
  // holder-stamping `CAS(v -> MakeLockedWord(v, client))` form (the holder
  // bits differ; VersionPart masks them out).
  const bool lock_acquire_shape = !LockedWord(expected) &&
                                  LockedWord(desired) &&
                                  VersionPart(desired) == VersionPart(expected);
  WordState* state = FindWord(target);

  if (state == nullptr) {
    // Begin tracking on the first successful lock acquire; anything else on
    // untracked memory (catalog installs, application CASes) is not ours.
    if (swapped && lock_acquire_shape) {
      WordState fresh;
      fresh.locked = true;
      fresh.holder = client;
      fresh.last_word = desired;
      words_[target.server_id()].emplace(target.offset(), fresh);
    }
    return;
  }
  if (!swapped) return;  // failed CAS has no memory effect

  if (lock_acquire_shape && !state->locked) {
    state->locked = true;
    state->holder = client;
    state->last_word = desired;
    return;
  }
  // Steal shape: a non-holder CASes a *locked* word back to unlocked. The
  // crash-recovery protocol (docs/fault_model.md) sanctions this only when
  // the holder is dead; against a live holder it races the holder's
  // write-back and is flagged.
  if (state->locked && LockedWord(expected) && !LockedWord(desired) &&
      client != state->holder) {
    const bool holder_dead =
        liveness_probe_ && !liveness_probe_(state->holder);
    if (holder_dead) {
      lock_steals_++;
    } else {
      Report(ViolationKind::kLockStealFromLiveHolder, client, target,
             observed, desired, now);
    }
    if (VersionPart(desired) < VersionPart(observed)) {
      Report(ViolationKind::kVersionRegression, client, target, observed,
             desired, now);
    }
    state->last_word = desired;
    state->locked = false;
    return;
  }
  // Any other successful CAS mutates a version word out of protocol; the
  // one invariant we can still check is version monotonicity.
  if (VersionPart(desired) < VersionPart(observed)) {
    Report(ViolationKind::kVersionRegression, client, target, observed,
           desired, now);
  }
  const bool was_locked = state->locked;
  state->last_word = desired;
  state->locked = LockedWord(desired);
  if (state->locked && !was_locked) state->holder = client;
}

void VerbAuditor::OnFaaEffect(uint32_t client, RemotePtr target, uint64_t add,
                              uint64_t prev, SimTime now) {
  if (!enabled_) return;
  WordState* state = FindWord(target);
  if (state == nullptr) return;  // allocation cursors etc.

  const uint64_t updated = prev + add;
  if (!LockedWord(prev)) {
    Report(ViolationKind::kUnlockWithoutLock, client, target, prev, add, now);
  } else if (state->holder != client) {
    Report(ViolationKind::kUnlockByNonHolder, client, target, prev, add, now);
  }
  if (VersionPart(updated) < VersionPart(prev)) {
    Report(ViolationKind::kVersionRegression, client, target, prev, updated,
           now);
  }
  state->last_word = updated;
  state->locked = LockedWord(updated);
}

void VerbAuditor::DropWrite(uint64_t ticket) {
  if (ticket == 0) return;
  inflight_.erase(ticket);
}

std::vector<VerbAuditor::LockedWordInfo> VerbAuditor::LockedWords() const {
  std::vector<LockedWordInfo> out;
  for (const auto& [server, words] : words_) {
    for (const auto& [offset, state] : words) {
      if (!state.locked) continue;
      out.push_back(LockedWordInfo{RemotePtr::Make(server, offset),
                                   state.holder});
    }
  }
  return out;
}

size_t VerbAuditor::CountOfKind(ViolationKind kind) const {
  size_t n = 0;
  for (const Violation& v : violations_) {
    if (v.kind == kind) n++;
  }
  return n;
}

size_t VerbAuditor::tracked_words() const {
  size_t n = 0;
  for (const auto& [server, words] : words_) {
    (void)server;
    n += words.size();
  }
  return n;
}

Status VerbAuditor::CheckClean() const {
  if (violations_.empty()) return Status::OK();
  return Status::Corruption(
      std::to_string(violations_.size()) +
      " protocol violation(s); first: " + violations_.front().Describe());
}

void VerbAuditor::Reset() {
  violations_.clear();
  words_.clear();
  inflight_.clear();
}

}  // namespace namtree::rdma
