#ifndef NAMTREE_RDMA_RPC_H_
#define NAMTREE_RDMA_RPC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"

namespace namtree::rdma {

/// A small RPC request shipped with a two-sided SEND. Index designs define
/// their own opcodes; three scalar arguments cover the common cases (key,
/// range bounds, pointers) and `payload` carries bulk arguments.
struct RpcRequest {
  /// Which registered handler serves this request (memory servers can host
  /// several indexes / services at once).
  uint16_t service = 0;
  uint16_t op = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
  std::vector<uint64_t> payload;

  /// Modeled wire size: header + scalar args + payload.
  uint32_t WireBytes() const {
    return 32 + static_cast<uint32_t>(payload.size()) * 8;
  }
};

/// RPC response carried by the reply SEND.
struct RpcResponse {
  uint16_t status = 0;  ///< StatusCode cast to int by convention.
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  std::vector<uint64_t> payload;

  uint32_t WireBytes() const {
    return 24 + static_cast<uint32_t>(payload.size()) * 8;
  }
};

/// Client-side bookkeeping for an in-flight RPC, owned by the *fabric* (a
/// call-id registry) rather than the caller's frame: a caller that times
/// out abandons the call, and a handler that responds later must find
/// either the registered entry or nothing — never a dangling pointer. The
/// fabric fulfils it when the handler responds: `done` fires immediately
/// and `deliver_at` is the virtual time the reply SEND lands at the
/// caller's NIC (the caller delays itself until then).
struct PendingCall {
  explicit PendingCall(sim::Simulator& simulator) : done(simulator) {}
  RpcResponse response;
  SimTime deliver_at = 0;
  /// Memory server the request was delivered to. An immediate KillServer
  /// fails every pending call targeting the dead server with kUnavailable
  /// (its workers will never respond).
  uint32_t server_id = 0;
  sim::DeadlineEvent done;
};

/// An RPC delivered to a memory server's receive queue. `call_id` keys the
/// fabric's pending-call registry; a response for an id no longer
/// registered (the caller timed out) is charged and dropped.
struct IncomingRpc {
  uint32_t client_id = 0;
  RpcRequest request;
  uint64_t call_id = 0;
  /// Resend-stable id: every retransmission of one logical Call carries the
  /// same rpc_id (unlike call_id, which is per-attempt). The server-side
  /// dedup layer keys on it so a handler whose reply was lost is not
  /// re-executed by the resend (handlers are NOT idempotent). 0 = no dedup
  /// (network faults off). Envelope-only: not part of WireBytes.
  uint64_t rpc_id = 0;
};

/// Shared receive queue (SRQ): the single request queue all clients of a
/// memory server feed into (paper §3.2 uses SRQs so the number of receive
/// queues does not grow with the number of clients). Worker coroutines
/// block on `Recv()`; messages are handed to waiting workers FIFO.
class Srq {
 public:
  explicit Srq(sim::Simulator& simulator) : simulator_(simulator) {}

  Srq(const Srq&) = delete;
  Srq& operator=(const Srq&) = delete;

  /// Enqueues a message. If a worker is blocked in Recv(), the message is
  /// handed to it directly (no steal window) and the worker is scheduled
  /// at the current virtual time.
  void Deliver(IncomingRpc msg) {
    total_delivered_++;
    if (!consumers_.empty()) {
      auto [handle, slot] = consumers_.front();
      consumers_.pop_front();
      *slot = std::move(msg);
      simulator_.ScheduleAt(simulator_.now(), handle);
      return;
    }
    messages_.push_back(std::move(msg));
  }

  /// Awaitable receive; resumes with the oldest queued message. Fair: a
  /// worker that suspended earlier gets the next message.
  auto Recv() {
    struct Awaiter {
      Srq& srq;
      IncomingRpc slot;

      bool await_ready() {
        // Only take a queued message directly if no worker is ahead of us.
        if (!srq.messages_.empty() && srq.consumers_.empty()) {
          slot = std::move(srq.messages_.front());
          srq.messages_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        srq.consumers_.emplace_back(h, &slot);
      }
      IncomingRpc await_resume() { return std::move(slot); }
    };
    return Awaiter{*this, {}};
  }

  size_t depth() const { return messages_.size(); }
  size_t idle_consumers() const { return consumers_.size(); }

  /// Cumulative messages delivered (for load accounting).
  uint64_t total_delivered() const { return total_delivered_; }

 private:
  sim::Simulator& simulator_;
  std::deque<IncomingRpc> messages_;
  std::deque<std::pair<std::coroutine_handle<>, IncomingRpc*>> consumers_;
  uint64_t total_delivered_ = 0;
};

}  // namespace namtree::rdma

#endif  // NAMTREE_RDMA_RPC_H_
