#ifndef NAMTREE_RDMA_REMOTE_PTR_H_
#define NAMTREE_RDMA_REMOTE_PTR_H_

#include <cassert>
#include <cstdint>
#include <string>

namespace namtree::rdma {

/// A global pointer into the NAM memory pool, packed into 8 bytes exactly as
/// described in §4.1 of the paper:
///
///   bit 63      : valid bit (the paper's "nullbit", inverted: raw value 0
///                 is the NULL pointer, which makes zero-initialised pages
///                 safe)
///   bits 56..62 : memory-server id (7 bits, up to 128 servers)
///   bits 0..55  : byte offset into that server's registered region
///
/// RemotePtr is trivially copyable so it can be stored verbatim inside index
/// pages and shipped over the (simulated) wire.
class RemotePtr {
 public:
  static constexpr uint64_t kValidBit = 1ull << 63;
  static constexpr uint64_t kOffsetMask = (1ull << 56) - 1;
  static constexpr uint32_t kMaxServers = 128;

  constexpr RemotePtr() : raw_(0) {}
  constexpr explicit RemotePtr(uint64_t raw) : raw_(raw) {}

  static RemotePtr Make(uint32_t server_id, uint64_t offset) {
    assert(server_id < kMaxServers);
    assert(offset <= kOffsetMask);
    return RemotePtr(kValidBit | (static_cast<uint64_t>(server_id) << 56) |
                     offset);
  }

  static constexpr RemotePtr Null() { return RemotePtr(); }

  bool is_null() const { return (raw_ & kValidBit) == 0; }
  explicit operator bool() const { return !is_null(); }

  uint32_t server_id() const {
    assert(!is_null());
    return static_cast<uint32_t>((raw_ >> 56) & 0x7F);
  }
  uint64_t offset() const {
    assert(!is_null());
    return raw_ & kOffsetMask;
  }

  /// Pointer displaced by `delta` bytes within the same server region.
  RemotePtr Plus(uint64_t delta) const {
    return Make(server_id(), offset() + delta);
  }

  uint64_t raw() const { return raw_; }

  friend bool operator==(RemotePtr a, RemotePtr b) { return a.raw_ == b.raw_; }
  friend bool operator!=(RemotePtr a, RemotePtr b) { return a.raw_ != b.raw_; }

  std::string ToString() const {
    if (is_null()) return "null";
    return "s" + std::to_string(server_id()) + "+" + std::to_string(offset());
  }

 private:
  uint64_t raw_;
};

static_assert(sizeof(RemotePtr) == 8, "RemotePtr must pack into 8 bytes");

}  // namespace namtree::rdma

#endif  // NAMTREE_RDMA_REMOTE_PTR_H_
