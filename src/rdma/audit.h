#ifndef NAMTREE_RDMA_AUDIT_H_
#define NAMTREE_RDMA_AUDIT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "rdma/remote_ptr.h"

namespace namtree::rdma {

/// Protocol violations the auditor can flag. The one-sided page protocol
/// (paper Listing 4) puts *all* correctness responsibility on the clients:
/// nothing on the memory-server side stops a buggy client from publishing a
/// torn page or releasing a lock it never took. The auditor polices exactly
/// that discipline from inside the fabric, where every verb's memory effect
/// is visible.
enum class ViolationKind {
  /// A WRITE covered a tracked version word whose lock the writer does not
  /// hold. On real hardware this publishes a potentially torn page.
  kWriteWithoutLock,
  /// A lock release (FETCH_AND_ADD, or the word-sized unlock WRITE at the
  /// tail of a verb chain) on a version word whose lock bit is clear
  /// (double unlock, or unlock of a never-locked page).
  kUnlockWithoutLock,
  /// A lock release (FAA or chained unlock WRITE) of a lock held by a
  /// *different* client.
  kUnlockByNonHolder,
  /// A verb moved a version word's version component backwards. Readers
  /// using version validation would wrongly conclude nothing changed.
  kVersionRegression,
  /// A READ overlapped an in-flight unprotected WRITE to the same bytes.
  /// With the lock discipline intact this cannot happen (the lock bit makes
  /// readers discard and retry); it is the reader-side symptom of a
  /// write-without-lock.
  kTornRead,
  /// A CAS cleared a locked word held by a *live* client other than the
  /// CASer. Stealing is sanctioned only against a crashed holder (the
  /// lease/steal recovery of docs/fault_model.md); stealing from a live
  /// holder races its write-back and can publish a torn page.
  kLockStealFromLiveHolder,
};

/// Human-readable name for `kind` ("WriteWithoutLock", ...).
const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  /// Offending client (for kTornRead: the reader).
  uint32_t client = 0;
  /// The version word involved (for kTornRead: the read's target).
  RemotePtr target;
  /// Kind-specific: the word value observed before the verb.
  uint64_t observed = 0;
  /// Kind-specific: the value the verb tried to install (or the FAA delta).
  uint64_t attempted = 0;
  /// Virtual time of the offending memory effect.
  SimTime time = 0;

  std::string Describe() const;
};

/// Records per-page protocol state and flags clients that break the
/// one-sided lock/version discipline.
///
/// Tracking is behavioral: a remote 8-byte word becomes a *tracked version
/// word* the first time a client lock-acquires it with the protocol's CAS
/// shape (`CAS(word: v -> v|1)` with the lock bit clear in `v`). Until
/// then, writes to that memory are unchecked — which is exactly right for
/// bootstrap and fresh-page initialization, where pages are private to the
/// allocating client and written without locks by design.
///
/// The fabric calls the `On*` hooks at verb post / memory-effect time; all
/// checks run at the same virtual instant as the effect they police, so the
/// verdicts are deterministic for a given seed.
class VerbAuditor {
 public:
  VerbAuditor() = default;

  VerbAuditor(const VerbAuditor&) = delete;
  VerbAuditor& operator=(const VerbAuditor&) = delete;

  /// Runtime kill-switch (the compile-time switch is NAMTREE_AUDIT). While
  /// disabled, hooks neither check nor update state.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Installs the client-liveness oracle used to adjudicate lock steals
  /// (the fabric wires in its own crash registry). Without a probe every
  /// steal is flagged as kLockStealFromLiveHolder — the conservative
  /// default for hand-built test rigs.
  void SetLivenessProbe(std::function<bool(uint32_t)> probe) {
    liveness_probe_ = std::move(probe);
  }

  // ---- Hooks, called by the fabric ---------------------------------------

  /// A WRITE was posted at virtual time `now`; its memory effect lands
  /// later. Returns a ticket to pass to OnWriteEffect.
  uint64_t OnWritePosted(uint32_t client, RemotePtr dst, uint32_t len,
                         SimTime now);

  /// The WRITE's payload is about to be installed (called *before* the
  /// memcpy so pre-image values are still observable). Consumes the ticket.
  void OnWriteEffect(uint64_t ticket, const void* payload, SimTime now);

  /// A READ's memory effect (the copy-out) is happening now.
  void OnReadEffect(uint32_t client, RemotePtr src, uint32_t len,
                    SimTime now);

  /// A CAS executed: `observed` is the pre-image (swap happened iff
  /// observed == expected).
  void OnCasEffect(uint32_t client, RemotePtr target, uint64_t expected,
                   uint64_t desired, uint64_t observed, SimTime now);

  /// A FETCH_AND_ADD executed: `prev` is the pre-image.
  void OnFaaEffect(uint32_t client, RemotePtr target, uint64_t add,
                   uint64_t prev, SimTime now);

  /// A posted WRITE was dropped in flight (its client crashed before the
  /// memory effect). Consumes the ticket without applying any checks.
  void DropWrite(uint64_t ticket);

  // ---- Queries ------------------------------------------------------------

  /// A tracked version word that is currently locked, with its holder.
  struct LockedWordInfo {
    RemotePtr target;
    uint32_t holder = 0;
  };

  /// All tracked words whose lock bit is currently set. Crash tests use
  /// this to enumerate orphaned locks for recovery before inspecting the
  /// tree at quiescence.
  std::vector<LockedWordInfo> LockedWords() const;

  /// Number of sanctioned lock steals (CAS-clear of a dead holder's lock).
  uint64_t lock_steals() const { return lock_steals_; }

  const std::vector<Violation>& violations() const { return violations_; }
  size_t violation_count() const { return violations_.size(); }
  size_t CountOfKind(ViolationKind kind) const;

  /// Number of version words currently under protocol tracking.
  size_t tracked_words() const;

  /// OK when the log is empty, otherwise Corruption with a summary of the
  /// first violation and the total count.
  Status CheckClean() const;

  /// Forgets all recorded violations (tracking state is kept).
  void ClearViolations() { violations_.clear(); }

  /// Drops all state: violations, tracked words, in-flight writes.
  void Reset();

 private:
  struct WordState {
    bool locked = false;
    uint32_t holder = 0;    // valid while locked
    uint64_t last_word = 0; // last value the auditor saw installed
  };

  struct InflightWrite {
    uint32_t client = 0;
    RemotePtr dst;
    uint32_t len = 0;
    /// True when the write covered >= 1 tracked word the writer did not
    /// hold at post time — overlapping reads are torn-read suspects.
    bool unprotected = false;
  };

  /// Tracked version words of one server, keyed by region offset (ordered,
  /// so writes can range-query the words they cover).
  using ServerWords = std::map<uint64_t, WordState>;

  // Lock-word layout constants, duplicated from btree/types.h (the rdma
  // layer deliberately does not depend on btree): bit 0 = lock bit, bits
  // 48..63 = holder client id (stale garbage while unlocked), the rest is
  // the version. Version comparisons must mask the holder bits.
  static bool LockedWord(uint64_t word) { return (word & 1ull) != 0; }
  static uint64_t VersionPart(uint64_t word) {
    return word & ~(1ull | (0xFFFFull << 48));
  }

  WordState* FindWord(RemotePtr target);
  void Report(ViolationKind kind, uint32_t client, RemotePtr target,
              uint64_t observed, uint64_t attempted, SimTime now);

  bool enabled_ = true;
  std::function<bool(uint32_t)> liveness_probe_;
  std::unordered_map<uint32_t, ServerWords> words_;
  std::unordered_map<uint64_t, InflightWrite> inflight_;
  uint64_t next_ticket_ = 1;
  uint64_t lock_steals_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace namtree::rdma

#endif  // NAMTREE_RDMA_AUDIT_H_
