#ifndef NAMTREE_RDMA_AUDIT_H_
#define NAMTREE_RDMA_AUDIT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "rdma/remote_ptr.h"

namespace namtree::rdma {

/// Protocol violations the auditor can flag. The one-sided page protocol
/// (paper Listing 4) puts *all* correctness responsibility on the clients:
/// nothing on the memory-server side stops a buggy client from publishing a
/// torn page or releasing a lock it never took. The auditor polices exactly
/// that discipline from inside the fabric, where every verb's memory effect
/// is visible.
enum class ViolationKind {
  /// A WRITE covered a tracked version word whose lock the writer does not
  /// hold. On real hardware this publishes a potentially torn page.
  kWriteWithoutLock,
  /// A lock release (FETCH_AND_ADD, or the word-sized unlock WRITE at the
  /// tail of a verb chain) on a version word whose lock bit is clear
  /// (double unlock, or unlock of a never-locked page).
  kUnlockWithoutLock,
  /// A lock release (FAA or chained unlock WRITE) of a lock held by a
  /// *different* client.
  kUnlockByNonHolder,
  /// A verb moved a version word's version component backwards. Readers
  /// using version validation would wrongly conclude nothing changed.
  kVersionRegression,
  /// A READ overlapped an in-flight unprotected WRITE to the same bytes.
  /// With the lock discipline intact this cannot happen (the lock bit makes
  /// readers discard and retry); it is the reader-side symptom of a
  /// write-without-lock.
  kTornRead,
  /// A CAS cleared a locked word held by a *live* client other than the
  /// CASer. Stealing is sanctioned only against a crashed holder (the
  /// lease/steal recovery of docs/fault_model.md); stealing from a live
  /// holder races its write-back and can publish a torn page.
  kLockStealFromLiveHolder,
  /// Two verbs touched overlapping bytes of a tracked page with neither
  /// ordered before the other by happens-before (lock hand-offs, version
  /// validation, chain order, RPC pairs, program order) nor arbitrated by
  /// the version protocol itself. The finding's `detail` carries both
  /// verbs' records (client, op, chain id, page, time). See
  /// docs/static_analysis.md §Race detection.
  kRemoteRace,
  /// A client re-issued a lock-acquire CAS while it already held the lock
  /// on that word: the signature of a raw, un-resolved retry of a
  /// non-idempotent verb after an ambiguous (lost) completion. The
  /// sanctioned recovery is a read-back of the holder-stamped word
  /// (docs/fault_model.md §8) — blind re-CAS either deadlocks on its own
  /// lock or, after an intervening release, double-acquires.
  kUnresolvedAmbiguousRetry,
};

/// Human-readable name for `kind` ("WriteWithoutLock", ...).
const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  /// Offending client (for kTornRead: the reader; for kRemoteRace: the
  /// later of the two racing verbs).
  uint32_t client = 0;
  /// The version word involved (for kTornRead: the read's target).
  RemotePtr target;
  /// Kind-specific: the word value observed before the verb.
  uint64_t observed = 0;
  /// Kind-specific: the value the verb tried to install (or the FAA delta).
  uint64_t attempted = 0;
  /// Virtual time of the offending memory effect.
  SimTime time = 0;
  /// Kind-specific free-form context (for kRemoteRace: both verb records).
  std::string detail;
  /// Occurrence count: repeats of the same (kind, target) fold into the
  /// first recorded instance instead of growing the log.
  uint64_t occurrences = 1;

  std::string Describe() const;
};

/// Records per-page protocol state and flags clients that break the
/// one-sided lock/version discipline.
///
/// Tracking is behavioral: a remote 8-byte word becomes a *tracked version
/// word* the first time a client lock-acquires it with the protocol's CAS
/// shape (`CAS(word: v -> v|1)` with the lock bit clear in `v`). Until
/// then, writes to that memory are unchecked — which is exactly right for
/// bootstrap and fresh-page initialization, where pages are private to the
/// allocating client and written without locks by design.
///
/// On top of the per-verb shape checks, the auditor maintains a
/// happens-before order over verbs (sparse vector clocks per client, per
/// memory-server RPC service point, and per tracked word) and reports any
/// two overlapping accesses to a tracked page that are neither HB-ordered
/// nor arbitrated by the version protocol as kRemoteRace. HB edges:
///   - program order within one client (chained verbs included);
///   - lock hand-off: a release (FAA, unlock WRITE, lock-clearing CAS)
///     publishes the releaser's clock on the word; a successful
///     lock-acquire CAS joins it;
///   - version validation: a READ covering the version word joins the
///     word's last release (observing the word implies that release
///     completed);
///   - sanctioned lock steal: the stealer joins the dead holder's clock;
///   - RPC: a request delivery joins the caller's clock into the server's
///     service clock, a consumed reply joins the service clock back.
///
/// The fabric calls the `On*` hooks at verb post / memory-effect time; all
/// checks run at the same virtual instant as the effect they police, so the
/// verdicts are deterministic for a given (workload seed, schedule seed).
class VerbAuditor {
 public:
  VerbAuditor() = default;

  VerbAuditor(const VerbAuditor&) = delete;
  VerbAuditor& operator=(const VerbAuditor&) = delete;

  /// Runtime kill-switch (the compile-time switch is NAMTREE_AUDIT). While
  /// disabled, hooks neither check nor update state.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Installs the client-liveness oracle used to adjudicate lock steals
  /// (the fabric wires in its own crash registry). Without a probe every
  /// steal is flagged as kLockStealFromLiveHolder — the conservative
  /// default for hand-built test rigs.
  void SetLivenessProbe(std::function<bool(uint32_t)> probe) {
    liveness_probe_ = std::move(probe);
  }

  /// Registers the auditor's tallies as metric families (the fabric wires
  /// in its registry right after construction):
  ///   audit.lock_steals               sanctioned CAS-clears of dead locks
  ///   audit.duplicate_inflight_reads  same-client duplicate READs posted
  ///   audit.violations{kind}          occurrences per ViolationKind
  ///   audit.suppressed_violations     occurrences dropped at the cap
  ///   audit.tracked_words             words under tracking (gauge-like)
  /// Optional: a standalone auditor (no registry) keeps counting locally.
  /// The registry must outlive the auditor.
  void BindMetrics(metrics::MetricRegistry* registry);

  // ---- Hooks, called by the fabric ---------------------------------------

  /// A WRITE was posted at virtual time `now`; its memory effect lands
  /// later. Returns a ticket to pass to OnWriteEffect. `chain` is the
  /// doorbell-chain id for batched members (0 = standalone verb).
  uint64_t OnWritePosted(uint32_t client, RemotePtr dst, uint32_t len,
                         SimTime now, uint64_t chain = 0);

  /// The WRITE's payload is about to be installed (called *before* the
  /// memcpy so pre-image values are still observable). Consumes the ticket.
  void OnWriteEffect(uint64_t ticket, const void* payload, SimTime now);

  /// A READ's memory effect (the copy-out) is happening now.
  void OnReadEffect(uint32_t client, RemotePtr src, uint32_t len,
                    SimTime now, uint64_t chain = 0);

  /// A standalone READ verb left `client`'s NIC / its completion was
  /// delivered (or the verb was dropped in flight — drops complete the
  /// posting for tracking purposes). Tracks same-client overlapping
  /// concurrent READs of one (target, len): posting a second while the
  /// first is still outstanding bumps `duplicate_inflight_reads` — exactly
  /// the wasted verbs the in-flight read combiner
  /// (FabricConfig::read_combining) exists to eliminate. Doorbell-chain
  /// members are not tracked: a chain's composition is deduplicated by its
  /// builder, and its members share one doorbell anyway.
  void OnReadPosted(uint32_t client, RemotePtr src, uint32_t len);
  void OnReadCompleted(uint32_t client, RemotePtr src, uint32_t len);

  /// A CAS executed: `observed` is the pre-image (swap happened iff
  /// observed == expected).
  void OnCasEffect(uint32_t client, RemotePtr target, uint64_t expected,
                   uint64_t desired, uint64_t observed, SimTime now,
                   uint64_t chain = 0);

  /// A FETCH_AND_ADD executed: `prev` is the pre-image.
  void OnFaaEffect(uint32_t client, RemotePtr target, uint64_t add,
                   uint64_t prev, SimTime now);

  /// A posted WRITE was dropped in flight (its client crashed before the
  /// memory effect). Consumes the ticket without applying any checks.
  void DropWrite(uint64_t ticket);

  /// An RPC request from `client` was delivered to `server`'s receive
  /// queue: the server's service clock joins the caller's.
  void OnRpcRequest(uint32_t client, uint32_t server);

  /// `client` consumed a reply from `server`: the caller's clock joins the
  /// server's service clock.
  void OnRpcReply(uint32_t client, uint32_t server);

  /// Memory server `server` died: its region's contents are gone, so every
  /// tracked word it hosted is forgotten — a dead *server* (like a dead
  /// holder) sanctions recovery, and LockedWords() must not report locks
  /// that no longer exist anywhere. Idempotent; promoted replicas on live
  /// servers start tracking fresh at their first protocol-shaped acquire
  /// CAS, so failover needs no explicit HB edges.
  void OnServerDeath(uint32_t server);

  // ---- Queries ------------------------------------------------------------

  /// A tracked version word that is currently locked, with its holder.
  struct LockedWordInfo {
    RemotePtr target;
    uint32_t holder = 0;
  };

  /// All tracked words whose lock bit is currently set. Crash tests use
  /// this to enumerate orphaned locks for recovery before inspecting the
  /// tree at quiescence.
  std::vector<LockedWordInfo> LockedWords() const;

  /// Number of sanctioned lock steals (CAS-clear of a dead holder's lock).
  uint64_t lock_steals() const { return lock_steals_; }

  /// Same-client standalone READs posted while an identical (target, len)
  /// READ from that client was still in flight. Not a protocol violation —
  /// a waste metric: 0 under FabricConfig::read_combining.
  uint64_t duplicate_inflight_reads() const {
    return duplicate_inflight_reads_;
  }

  /// Distinct recorded violations (one per (kind, target), capped at
  /// kMaxStoredViolations; repeats bump Violation::occurrences).
  const std::vector<Violation>& violations() const { return violations_; }
  size_t violation_count() const { return violations_.size(); }
  /// Occurrences of `kind`, summed across its deduplicated records.
  size_t CountOfKind(ViolationKind kind) const;
  /// Total occurrences across all records, including ones folded into an
  /// existing record and ones dropped at the storage cap.
  uint64_t total_violation_occurrences() const { return total_occurrences_; }
  /// Occurrences dropped because kMaxStoredViolations distinct records
  /// already existed (their (kind, target) was new, so nothing to fold
  /// into).
  uint64_t suppressed_violations() const { return suppressed_violations_; }

  /// Cap on *distinct* stored violations: multi-seed exploration runs over
  /// broken protocols must not grow memory without bound.
  static constexpr size_t kMaxStoredViolations = 256;

  /// Number of version words currently under protocol tracking.
  size_t tracked_words() const;

  /// OK when the log is empty, otherwise Corruption with a summary of the
  /// first violation and the total count.
  Status CheckClean() const;

  /// Forgets all recorded violations (tracking state is kept).
  void ClearViolations();

  /// Drops all state: violations, tracked words, in-flight writes, clocks.
  void Reset();

  // ---- Verb trace ---------------------------------------------------------

  /// One verb memory effect, as retained in the replay trace ring.
  struct VerbRecord {
    uint32_t client = 0;
    const char* op = "";
    RemotePtr target;
    uint32_t len = 0;
    uint64_t chain = 0;
    SimTime time = 0;

    std::string Describe() const;
  };

  /// Ring buffer of the most recent verb effects (newest last). CI's
  /// schedule-exploration job dumps this next to the failing seed so a
  /// race report can be replayed and read without rerunning locally first.
  const std::deque<VerbRecord>& trace() const { return trace_; }
  /// Resizes the ring (0 disables tracing).
  void set_trace_capacity(size_t n);
  /// The trace, one record per line.
  std::string DumpTrace() const;

 private:
  /// Sparse vector clock over client ids. Entries default to 0.
  class VectorClock {
   public:
    uint64_t Of(uint32_t client) const {
      auto it = counts_.find(client);
      return it == counts_.end() ? 0 : it->second;
    }
    void Tick(uint32_t client) { counts_[client]++; }
    void Join(const VectorClock& other) {
      for (const auto& [client, count] : other.counts_) {
        uint64_t& mine = counts_[client];
        if (count > mine) mine = count;
      }
    }
    void Clear() { counts_.clear(); }

   private:
    std::unordered_map<uint32_t, uint64_t> counts_;
  };

  /// One remembered data access to a tracked page, with the issuer's
  /// scalar clock at effect time — enough to evaluate happens-before
  /// against any later access and to print a stack-of-record.
  struct Access {
    uint32_t client = 0;
    uint64_t clock = 0;
    uint64_t chain = 0;
    RemotePtr at;
    uint32_t len = 0;
    SimTime time = 0;
    const char* op = "";
    /// Write: issued while holding the page lock. Read: covered the
    /// version word (version-validated).
    bool disciplined = false;

    std::string Describe() const;
  };

  struct WordState {
    bool locked = false;
    uint32_t holder = 0;     // valid while locked
    uint64_t last_word = 0;  // last value the auditor saw installed
    // ---- happens-before state ----
    /// Clock of the last lock release; joined by acquirers and by
    /// version-validated readers.
    VectorClock release_vc;
    /// Learned page span [word, word + extent): grown by accesses that
    /// start at the word, so lock-elided accesses into the page body can
    /// be associated with it.
    uint64_t extent = 8;
    bool has_last_write = false;
    Access last_write;
    /// Latest read per client, split by validation class. Bounded by the
    /// client count; superseded in place.
    std::unordered_map<uint32_t, Access> validated_reads;
    std::unordered_map<uint32_t, Access> elided_reads;
  };

  struct InflightWrite {
    uint32_t client = 0;
    RemotePtr dst;
    uint32_t len = 0;
    uint64_t chain = 0;
    /// True when the write covered >= 1 tracked word the writer did not
    /// hold at post time — overlapping reads are torn-read suspects.
    bool unprotected = false;
  };

  /// Tracked version words of one server, keyed by region offset (ordered,
  /// so writes can range-query the words they cover).
  using ServerWords = std::map<uint64_t, WordState>;

  // Lock-word layout constants, duplicated from btree/types.h (the rdma
  // layer deliberately does not depend on btree): bit 0 = lock bit, bits
  // 48..63 = holder client id (stale garbage while unlocked), the rest is
  // the version. Version comparisons must mask the holder bits.
  static bool LockedWord(uint64_t word) { return (word & 1ull) != 0; }
  static uint64_t VersionPart(uint64_t word) {
    return word & ~(1ull | (0xFFFFull << 48));
  }

  WordState* FindWord(RemotePtr target);

  /// Advances `client`'s clock by one verb effect and returns the new
  /// scalar value (the clock stamp of that effect).
  uint64_t Tick(uint32_t client);
  /// True when the remembered access is HB-ordered before `later_client`'s
  /// current point (program order falls out: a client always covers its
  /// own past stamps).
  bool HappensBefore(const Access& earlier, uint32_t later_client);
  /// Builds the access record for the verb effect happening now.
  Access MakeAccess(uint32_t client, const char* op, RemotePtr at,
                    uint32_t len, uint64_t chain, SimTime now);
  /// Invokes fn(word_offset, state) for every tracked word of `server`
  /// whose learned page span overlaps [lo, hi).
  template <typename Fn>
  void ForEachCoveredWord(uint32_t server, uint64_t lo, uint64_t hi,
                          Fn&& fn);
  /// HB race pass of a write effect against one covered word (called with
  /// pre-mirror state). Stamps the write's discipline, reports unordered
  /// overlaps, installs it as the word's last write, and retires reads
  /// the write is ordered after.
  void CheckWriteRaces(WordState& state, RemotePtr word_ptr,
                       const Access& write, SimTime now);

  void Report(ViolationKind kind, uint32_t client, RemotePtr target,
              uint64_t observed, uint64_t attempted, SimTime now);
  void ReportRace(const Access& earlier, const Access& later,
                  RemotePtr word, SimTime now);
  /// Deduplicating sink behind both Report flavors.
  void Record(Violation v);
  void RecordTrace(uint32_t client, const char* op, RemotePtr target,
                   uint32_t len, uint64_t chain, SimTime now);

  bool enabled_ = true;
  std::function<bool(uint32_t)> liveness_probe_;
  std::unordered_map<uint32_t, ServerWords> words_;
  std::unordered_map<uint64_t, InflightWrite> inflight_;
  uint64_t next_ticket_ = 1;
  metrics::Counter lock_steals_;
  /// Outstanding standalone READ count per (client, target raw, len);
  /// entries are erased when they drain to zero.
  std::map<std::tuple<uint32_t, uint64_t, uint32_t>, uint32_t>
      inflight_reads_;
  metrics::Counter duplicate_inflight_reads_;
  std::vector<Violation> violations_;
  /// (kind, target raw) -> index into violations_, for deduplication.
  std::map<std::pair<int, uint64_t>, size_t> violation_index_;
  metrics::Counter total_occurrences_;
  metrics::Counter suppressed_violations_;
  std::unordered_map<uint32_t, VectorClock> client_vc_;
  std::unordered_map<uint32_t, VectorClock> server_vc_;
  std::deque<VerbRecord> trace_;
  size_t trace_capacity_ = 2048;
};

}  // namespace namtree::rdma

#endif  // NAMTREE_RDMA_AUDIT_H_
