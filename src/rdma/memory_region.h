#ifndef NAMTREE_RDMA_MEMORY_REGION_H_
#define NAMTREE_RDMA_MEMORY_REGION_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "rdma/remote_ptr.h"

namespace namtree::rdma {

/// An RDMA-registered memory region owned by one memory server.
///
/// Layout:
///   [0, kHeaderSize)   region header — currently one 8-byte allocation
///                      cursor at offset 0, so that *remote* allocation can
///                      be implemented with a single RDMA FETCH_AND_ADD on a
///                      well-known address (the paper's RDMA_ALLOC,
///                      Listing 4), plus catalog slots (root pointers) that
///                      clients read/CAS directly.
///   [kHeaderSize, ...) bump-allocated pages.
class MemoryRegion {
 public:
  static constexpr uint64_t kAllocCursorOffset = 0;
  static constexpr uint64_t kCatalogOffset = 8;
  static constexpr uint32_t kCatalogSlots = 31;
  static constexpr uint64_t kHeaderSize = 8 + 8 * kCatalogSlots;  // 256

  explicit MemoryRegion(uint32_t server_id, uint64_t capacity_bytes)
      : server_id_(server_id), buffer_(capacity_bytes, 0) {
    WriteU64(kAllocCursorOffset, kHeaderSize);
  }

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  uint32_t server_id() const { return server_id_; }
  uint64_t capacity() const { return buffer_.size(); }

  /// Bytes handed out so far (reads the allocation cursor).
  uint64_t allocated() const { return ReadU64(kAllocCursorOffset); }

  uint8_t* at(uint64_t offset) { return buffer_.data() + offset; }
  const uint8_t* at(uint64_t offset) const { return buffer_.data() + offset; }

  bool Contains(uint64_t offset, uint64_t len) const {
    return offset + len <= buffer_.size() && offset + len >= offset;
  }

  /// Upper bound for allocations (0 = full capacity). Under replication
  /// the fabric caps each region's primary allocations to its own rank-0
  /// stripe so the backup stripes above it stay reserved for replicas.
  void set_alloc_limit(uint64_t limit) { alloc_limit_ = limit; }
  uint64_t alloc_limit() const {
    return alloc_limit_ == 0 ? buffer_.size() : alloc_limit_;
  }

  /// Server-local (bootstrap/bulk-load time) allocation. Returns a null
  /// pointer when the region is exhausted. Remote allocation at runtime
  /// goes through RDMA FETCH_AND_ADD on the cursor instead.
  RemotePtr AllocateLocal(uint64_t bytes) {
    const uint64_t cursor = ReadU64(kAllocCursorOffset);
    if (cursor + bytes > alloc_limit()) return RemotePtr::Null();
    WriteU64(kAllocCursorOffset, cursor + bytes);
    return RemotePtr::Make(server_id_, cursor);
  }

  uint64_t ReadU64(uint64_t offset) const {
    uint64_t v;
    std::memcpy(&v, buffer_.data() + offset, sizeof(v));
    return v;
  }

  void WriteU64(uint64_t offset, uint64_t v) {
    std::memcpy(buffer_.data() + offset, &v, sizeof(v));
  }

  /// Offset of catalog slot `i` (root pointers and similar metadata).
  static uint64_t CatalogSlotOffset(uint32_t i) {
    return kCatalogOffset + 8ull * i;
  }

 private:
  uint32_t server_id_;
  std::vector<uint8_t> buffer_;
  uint64_t alloc_limit_ = 0;  // 0 = capacity()
};

}  // namespace namtree::rdma

#endif  // NAMTREE_RDMA_MEMORY_REGION_H_
