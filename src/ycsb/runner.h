#ifndef NAMTREE_YCSB_RUNNER_H_
#define NAMTREE_YCSB_RUNNER_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/units.h"
#include "index/index.h"
#include "nam/cluster.h"
#include "ycsb/workload.h"

namespace namtree::ycsb {

/// Outcome of one client operation as observed by the runner's closed loop.
struct OpResult {
  OpType type = OpType::kPoint;
  Status status;
  SimTime latency = 0;
};

/// Configuration of one closed-loop benchmark run (paper §6.1: every client
/// waits for its operation to finish before issuing the next one).
struct RunConfig {
  uint32_t num_clients = 40;
  /// Virtual warmup time before measurement starts.
  SimTime warmup = 2 * kMillisecond;
  /// Virtual measurement window.
  SimTime duration = 50 * kMillisecond;
  WorkloadMix mix = WorkloadA();
  RequestDistribution dist = RequestDistribution::kUniform;
  double zipf_theta = 0.99;
  uint64_t seed = 42;
  /// Issue one GarbageCollect pass from client 0 every `gc_interval`
  /// virtual ns (0 = no GC during the run).
  SimTime gc_interval = 0;
  /// Outstanding operations per client coroutine. 1 (the default) is the
  /// paper's closed loop: each client waits for its operation before
  /// issuing the next. Depth d > 1 overlaps d independent ops per client:
  /// designs that support batched point ops (RPC-based) gather up to d ops
  /// and ship them as coalesced multi-op frames (one SEND per server per
  /// batch); one-sided designs run d independent lanes per client so
  /// lookups overlap on the wire.
  uint32_t pipeline_depth = 1;
  /// Gather up to this many consecutive point lookups per client into one
  /// Index::MultiGet call (0/1 = issue singly). Non-lookup operations and
  /// scans flush the gathered batch first, preserving per-client order.
  uint32_t multiget_batch = 1;
};

/// Aggregated measurement of one run.
struct RunResult {
  uint64_t ops = 0;            ///< operations completed in the window
  uint64_t failed_ops = 0;     ///< NotFound inserts/deletes etc.
  double seconds = 0;          ///< window length in virtual seconds
  double ops_per_sec = 0;
  Histogram latency;           ///< per-op latency (ns), completed in window
  uint64_t server_bytes = 0;   ///< memory-server tx+rx bytes in window
  double gb_per_sec = 0;       ///< server_bytes / window (decimal GB)
  std::vector<uint64_t> per_server_bytes;
  uint64_t round_trips = 0;
  uint64_t restarts = 0;
  uint64_t lock_waits = 0;
  uint64_t backoff_rounds = 0;  ///< exponential-backoff sleeps while spinning
  uint64_t lock_steals = 0;     ///< orphaned locks reclaimed from dead holders
  uint64_t dead_clients = 0;    ///< clients crash-injected away during the run
  uint64_t combined_reads = 0;     ///< READs served by attaching to in-flight ones
  uint64_t speculative_hits = 0;   ///< descents fully served by the one-RTT batch
  uint64_t mispredicts = 0;        ///< speculative descents that fell back

  /// Failed operations bucketed by status class; `failed_ops == total()`.
  struct FailureBreakdown {
    uint64_t not_found = 0;
    uint64_t unavailable = 0;
    uint64_t timed_out = 0;
    uint64_t out_of_memory = 0;
    uint64_t aborted = 0;
    uint64_t other = 0;

    void Count(StatusCode code) {
      switch (code) {
        case StatusCode::kNotFound: not_found++; break;
        case StatusCode::kUnavailable: unavailable++; break;
        case StatusCode::kTimedOut: timed_out++; break;
        case StatusCode::kOutOfMemory: out_of_memory++; break;
        case StatusCode::kAborted: aborted++; break;
        default: other++; break;
      }
    }
    uint64_t total() const {
      return not_found + unavailable + timed_out + out_of_memory + aborted +
             other;
    }
  };
  FailureBreakdown failures;

  /// Per-operation-type breakdown (indexed by OpType).
  struct PerType {
    uint64_t count = 0;
    Histogram latency;
  };
  std::vector<PerType> per_type = std::vector<PerType>(kNumOpTypes);
};

/// Runs `config.mix` against `index` with `config.num_clients` closed-loop
/// client coroutines in virtual time and returns the measured aggregate.
/// `num_keys` must match the bulk-loaded dataset (GenerateDataset).
RunResult RunWorkload(nam::Cluster& cluster, index::DistributedIndex& index,
                      uint64_t num_keys, const RunConfig& config);

}  // namespace namtree::ycsb

#endif  // NAMTREE_YCSB_RUNNER_H_
