#ifndef NAMTREE_YCSB_RUNNER_H_
#define NAMTREE_YCSB_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "index/index.h"
#include "nam/cluster.h"
#include "ycsb/workload.h"

namespace namtree::ycsb {

/// Outcome of one client operation as observed by the runner's closed loop.
struct OpResult {
  OpType type = OpType::kPoint;
  Status status;
  SimTime latency = 0;
};

/// Configuration of one closed-loop benchmark run (paper §6.1: every client
/// waits for its operation to finish before issuing the next one).
struct RunConfig {
  uint32_t num_clients = 40;
  /// Virtual warmup time before measurement starts.
  SimTime warmup = 2 * kMillisecond;
  /// Virtual measurement window.
  SimTime duration = 50 * kMillisecond;
  WorkloadMix mix = WorkloadA();
  RequestDistribution dist = RequestDistribution::kUniform;
  double zipf_theta = 0.99;
  uint64_t seed = 42;
  /// Issue one GarbageCollect pass from client 0 every `gc_interval`
  /// virtual ns (0 = no GC during the run).
  SimTime gc_interval = 0;
  /// Outstanding operations per client coroutine. 1 (the default) is the
  /// paper's closed loop: each client waits for its operation before
  /// issuing the next. Depth d > 1 overlaps d independent ops per client:
  /// designs that support batched point ops (RPC-based) gather up to d ops
  /// and ship them as coalesced multi-op frames (one SEND per server per
  /// batch); one-sided designs run d independent lanes per client so
  /// lookups overlap on the wire.
  uint32_t pipeline_depth = 1;
  /// Gather up to this many consecutive point lookups per client into one
  /// Index::MultiGet call (0/1 = issue singly). Non-lookup operations and
  /// scans flush the gathered batch first, preserving per-client order.
  uint32_t multiget_batch = 1;
  /// Per-op verb tracing (docs/observability.md): enable every client's
  /// OpTrace and run each closed-loop operation under an OpSpan, recording
  /// the verbs it issued (kind, target server, chain id, virtual-time
  /// window). Off (default) = no tracing work beyond one branch per verb,
  /// so virtual time and every counter stay bit-identical.
  bool trace_ops = false;
  /// Completed-span ring capacity per client (newest spans win).
  size_t trace_ring = metrics::OpTrace::kDefaultRingCapacity;
  /// Slowest spans retained per op label per client — the top-K stand-in
  /// for the slowest percentile; dumped into RunResult::trace_outliers.
  size_t trace_outliers = metrics::OpTrace::kDefaultOutliersPerOp;
};

/// Aggregated measurement of one run. Counter-valued results live in
/// `counters`, the registry window of the run (metrics families `client.*`,
/// `fabric.*`, `ycsb.*` — see docs/observability.md); the historical field
/// names are kept as accessor views over that window. Derived rates,
/// latency histograms, and byte totals are materialized as before.
struct RunResult {
  double seconds = 0;          ///< window length in virtual seconds
  double ops_per_sec = 0;
  Histogram latency;           ///< per-op latency (ns), completed in window
  uint64_t server_bytes = 0;   ///< memory-server tx+rx bytes in window
  double gb_per_sec = 0;       ///< server_bytes / window (decimal GB)
  std::vector<uint64_t> per_server_bytes;

  /// The registry window of this run: Delta between the registry at run
  /// start and at run end. Every counter the run moved — per-client
  /// protocol counters, fabric verb counters, per-{op, status class} op
  /// counts — reads from here, and bench --json emits it generically.
  metrics::Delta counters;

  /// Verb-by-verb dump of the slowest spans per op type, one block per
  /// client (empty unless RunConfig::trace_ops).
  std::string trace_outliers;

  // ---- Counter views over `counters` --------------------------------------
  uint64_t ops() const { return counters.Value("ycsb.ops"); }
  uint64_t failed_ops() const {
    return ops() - counters.Value("ycsb.ops", "class",
                                  StatusClassName(StatusClass::kOk));
  }
  uint64_t round_trips() const { return counters.Value("client.round_trips"); }
  uint64_t restarts() const { return counters.Value("client.restarts"); }
  uint64_t lock_waits() const { return counters.Value("client.lock_waits"); }
  /// Exponential-backoff sleeps while spinning on a remote lock.
  uint64_t backoff_rounds() const {
    return counters.Value("client.backoff_rounds");
  }
  /// Orphaned locks reclaimed from dead holders.
  uint64_t lock_steals() const { return counters.Value("client.lock_steals"); }
  /// Clients crash-injected away during the run.
  uint64_t dead_clients() const { return counters.Value("ycsb.dead_clients"); }
  /// READs served by attaching to in-flight ones.
  uint64_t combined_reads() const {
    return counters.Value("client.combined_reads");
  }
  /// Speculative descents fully served by the one-RTT batch.
  uint64_t speculative_hits() const {
    return counters.Value("client.speculative_hits");
  }
  /// Speculative descents that fell back to the level-by-level loop.
  uint64_t mispredicts() const { return counters.Value("client.mispredicts"); }

  /// Failed operations bucketed by status class (the one status -> class
  /// mapping is common/status.h StatusClassOf); `failed_ops() == total()`.
  struct FailureBreakdown {
    uint64_t not_found = 0;
    uint64_t unavailable = 0;
    uint64_t timed_out = 0;
    uint64_t out_of_memory = 0;
    uint64_t aborted = 0;
    uint64_t other = 0;

    uint64_t total() const {
      return not_found + unavailable + timed_out + out_of_memory + aborted +
             other;
    }
  };
  /// View over the `ycsb.ops` family's non-ok status classes.
  FailureBreakdown failures() const;

  /// Per-operation-type breakdown (indexed by OpType).
  struct PerType {
    // namtree-lint: metric-ok(materialized windowed copy of ycsb.ops{op}; the live counter is the registry cell)
    uint64_t count = 0;
    Histogram latency;
  };
  std::vector<PerType> per_type = std::vector<PerType>(kNumOpTypes);
};

/// Runs `config.mix` against `index` with `config.num_clients` closed-loop
/// client coroutines in virtual time and returns the measured aggregate.
/// `num_keys` must match the bulk-loaded dataset (GenerateDataset).
RunResult RunWorkload(nam::Cluster& cluster, index::DistributedIndex& index,
                      uint64_t num_keys, const RunConfig& config);

}  // namespace namtree::ycsb

#endif  // NAMTREE_YCSB_RUNNER_H_
