#include "ycsb/workload.h"

#include <algorithm>

namespace namtree::ycsb {

WorkloadMix WorkloadA() {
  WorkloadMix mix;
  mix.point = 1.0;
  mix.name = "A";
  return mix;
}

WorkloadMix WorkloadB(double sel) {
  WorkloadMix mix;
  mix.range = 1.0;
  mix.range_selectivity = sel;
  mix.name = "B";
  return mix;
}

WorkloadMix WorkloadC() {
  WorkloadMix mix;
  mix.point = 0.95;
  mix.insert = 0.05;
  mix.name = "C";
  return mix;
}

WorkloadMix WorkloadD() {
  WorkloadMix mix;
  mix.point = 0.50;
  mix.insert = 0.50;
  mix.name = "D";
  return mix;
}

WorkloadMix OriginalYcsbA() {
  WorkloadMix mix;
  mix.point = 0.50;
  mix.update = 0.50;
  mix.name = "ycsb-a";
  return mix;
}

WorkloadMix OriginalYcsbB() {
  WorkloadMix mix;
  mix.point = 0.95;
  mix.update = 0.05;
  mix.name = "ycsb-b";
  return mix;
}

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kPoint:
      return "point";
    case OpType::kRange:
      return "range";
    case OpType::kInsert:
      return "insert";
    case OpType::kUpdate:
      return "update";
    case OpType::kDelete:
      return "delete";
  }
  return "?";
}

std::vector<btree::KV> GenerateDataset(uint64_t num_keys) {
  std::vector<btree::KV> data;
  data.reserve(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    data.push_back(btree::KV{i * kKeyStride, i});
  }
  return data;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadMix& mix,
                                     uint64_t num_keys,
                                     RequestDistribution dist,
                                     double zipf_theta)
    : mix_(mix),
      num_keys_(num_keys),
      dist_(dist),
      zipf_(std::max<uint64_t>(1, num_keys), zipf_theta) {}

btree::Key WorkloadGenerator::DrawKeyIndex(Rng& rng) {
  switch (dist_) {
    case RequestDistribution::kUniform:
      return rng.NextBelow(num_keys_);
    case RequestDistribution::kZipfian:
      // Scatter Zipf ranks over the key space so the hot keys are not all
      // clustered at the low end (YCSB's "scrambled zipfian").
      return FnvScramble(zipf_.Next(rng), num_keys_);
    case RequestDistribution::kZipfianClustered:
      return zipf_.Next(rng);
  }
  return 0;
}

Operation WorkloadGenerator::Next(Rng& rng) {
  Operation op;
  const double draw = rng.NextDouble();
  const uint64_t idx = DrawKeyIndex(rng);
  op.key = idx * kKeyStride;

  if (draw < mix_.point) {
    op.type = OpType::kPoint;
  } else if (draw < mix_.point + mix_.range) {
    op.type = OpType::kRange;
    const btree::Key span = std::max<btree::Key>(
        kKeyStride,
        static_cast<btree::Key>(mix_.range_selectivity *
                                static_cast<double>(domain())));
    // Clamp so every range query touches the same number of keys.
    if (op.key + span > domain()) {
      op.key = domain() - span;
    }
    op.hi = op.key + span;
  } else if (draw < mix_.point + mix_.range + mix_.insert) {
    op.type = OpType::kInsert;
    // New keys land in the gaps between dataset keys (monotonic data with
    // stride leaves kKeyStride - 1 free slots per key).
    op.key = idx * kKeyStride + 1 + rng.NextBelow(kKeyStride - 1);
    op.value = rng.Next();
  } else if (draw <
             mix_.point + mix_.range + mix_.insert + mix_.update) {
    op.type = OpType::kUpdate;
    op.value = rng.Next();
  } else {
    op.type = OpType::kDelete;
  }
  return op;
}

}  // namespace namtree::ycsb
