#ifndef NAMTREE_YCSB_TRACE_H_
#define NAMTREE_YCSB_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::ycsb {

/// One operation of a recorded workload trace, tagged with the client that
/// issued it so replays preserve per-client ordering (cross-client order is
/// re-decided by the simulator, as in any real re-execution).
struct TraceOp {
  uint32_t client = 0;
  Operation op;
};

/// A replayable workload trace. Traces make experiments shippable: record
/// once, attach the file to a bug report or paper artefact, replay bit-for-
/// bit on any machine (the simulator is deterministic).
class Trace {
 public:
  Trace() = default;

  void Add(uint32_t client, const Operation& op) {
    ops_.push_back({client, op});
  }

  const std::vector<TraceOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  uint32_t num_clients() const;

  /// Serialises to a line-oriented text format:
  ///   `<client> P <key>` | `<client> R <lo> <hi>` |
  ///   `<client> I <key> <value>` | `<client> U <key> <value>` |
  ///   `<client> D <key>` | `<client> G`  (# starts a comment)
  void Write(std::ostream& out) const;
  Status Save(const std::string& path) const;

  static Result<Trace> Read(std::istream& in);
  static Result<Trace> Load(const std::string& path);

  /// Generates a trace by drawing `ops_per_client` operations per client
  /// from a workload mix (a seeded, shareable stand-in for a live run).
  static Trace Generate(const WorkloadMix& mix, uint64_t num_keys,
                        uint32_t clients, uint32_t ops_per_client,
                        uint64_t seed,
                        RequestDistribution dist = RequestDistribution::kUniform);

 private:
  std::vector<TraceOp> ops_;
};

/// Replays a trace against an index: each client coroutine issues its
/// slice in order; the run measures the same aggregates as RunWorkload.
/// Deterministic: the same trace and cluster state reproduce the same
/// virtual-time execution exactly.
RunResult ReplayTrace(nam::Cluster& cluster, index::DistributedIndex& index,
                      const Trace& trace);

}  // namespace namtree::ycsb

#endif  // NAMTREE_YCSB_TRACE_H_
