#include "ycsb/runner.h"

#include <memory>

#include "sim/task.h"

namespace namtree::ycsb {

namespace {

using index::DistributedIndex;
using nam::ClientContext;

struct SharedState {
  SimTime warmup_end = 0;
  SimTime deadline = 0;
  RunResult result;
};

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> ClientLoop(nam::Cluster& cluster, DistributedIndex& index,
                       WorkloadGenerator& gen, ClientContext& ctx,
                       SharedState& state) {
  sim::Simulator& simulator = cluster.simulator();
  while (simulator.now() < state.deadline) {
    // A crash-injected client issues no further operations; its in-flight
    // verbs were dropped by the fabric.
    if (!cluster.fabric().ClientAlive(ctx.client_id())) {
      state.result.dead_clients++;
      break;
    }
    const Operation op = gen.Next(ctx.rng());
    const SimTime start = simulator.now();
    OpResult op_result;
    op_result.type = op.type;
    switch (op.type) {
      case OpType::kPoint: {
        // A clean miss carries an OK status; only degraded-mode failures
        // (kUnavailable/kTimedOut) count as failed operations.
        op_result.status = (co_await index.Lookup(ctx, op.key)).status;
        break;
      }
      case OpType::kRange: {
        (void)co_await index.Scan(ctx, op.key, op.hi, nullptr);
        break;
      }
      case OpType::kInsert: {
        op_result.status = co_await index.Insert(ctx, op.key, op.value);
        break;
      }
      case OpType::kUpdate: {
        op_result.status = co_await index.Update(ctx, op.key, op.value);
        break;
      }
      case OpType::kDelete: {
        op_result.status = co_await index.Delete(ctx, op.key);
        break;
      }
    }
    const SimTime end = simulator.now();
    op_result.latency = end - start;
    if (start >= state.warmup_end && end <= state.deadline) {
      state.result.ops++;
      state.result.latency.Add(static_cast<uint64_t>(op_result.latency));
      auto& per_type = state.result.per_type[static_cast<int>(op.type)];
      per_type.count++;
      per_type.latency.Add(static_cast<uint64_t>(op_result.latency));
      if (!op_result.status.ok()) {
        state.result.failed_ops++;
        state.result.failures.Count(op_result.status.code());
      }
    }
  }
}

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> GcLoop(nam::Cluster& cluster, DistributedIndex& index,
                   ClientContext& ctx, SharedState& state,
                   SimTime interval) {
  sim::Simulator& simulator = cluster.simulator();
  while (simulator.now() + interval < state.deadline) {
    co_await sim::Delay(simulator, interval);
    (void)co_await index.GarbageCollect(ctx);
  }
}

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> WarmupMarker(nam::Cluster& cluster, SharedState& state) {
  co_await sim::DelayUntil(cluster.simulator(), state.warmup_end);
  cluster.fabric().ResetStats();
}

}  // namespace

RunResult RunWorkload(nam::Cluster& cluster, DistributedIndex& index,
                      uint64_t num_keys, const RunConfig& config) {
  sim::Simulator& simulator = cluster.simulator();
  cluster.fabric().SetNumClients(config.num_clients);

  SharedState state;
  state.warmup_end = simulator.now() + config.warmup;
  state.deadline = state.warmup_end + config.duration;

  WorkloadGenerator gen(config.mix, num_keys, config.dist, config.zipf_theta);

  std::vector<std::unique_ptr<ClientContext>> contexts;
  contexts.reserve(config.num_clients);
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    contexts.push_back(std::make_unique<ClientContext>(
        c, cluster.fabric(), index.page_size(), config.seed));
  }

  sim::Spawn(simulator, WarmupMarker(cluster, state));
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    sim::Spawn(simulator,
               ClientLoop(cluster, index, gen, *contexts[c], state));
  }
  if (config.gc_interval > 0) {
    // The paper runs epoch GC in the background; model it from client 0's
    // machine with a dedicated context.
    contexts.push_back(std::make_unique<ClientContext>(
        0, cluster.fabric(), index.page_size(), config.seed ^ 0x6C6CULL));
    sim::Spawn(simulator, GcLoop(cluster, index, *contexts.back(), state,
                                 config.gc_interval));
  }

  simulator.Run();

  RunResult& result = state.result;
  result.seconds = static_cast<double>(config.duration) / kSecond;
  result.ops_per_sec =
      result.seconds > 0 ? static_cast<double>(result.ops) / result.seconds
                         : 0;
  for (uint32_t s = 0; s < cluster.num_memory_servers(); ++s) {
    const auto stats = cluster.fabric().server_stats(s);
    result.per_server_bytes.push_back(stats.tx_bytes + stats.rx_bytes);
    result.server_bytes += stats.tx_bytes + stats.rx_bytes;
  }
  result.gb_per_sec =
      static_cast<double>(result.server_bytes) / result.seconds / 1e9;
  for (const auto& ctx : contexts) {
    result.round_trips += ctx->round_trips;
    result.restarts += ctx->restarts;
    result.lock_waits += ctx->lock_waits;
    result.backoff_rounds += ctx->backoff_rounds;
    result.lock_steals += ctx->lock_steals;
  }
  return result;
}

}  // namespace namtree::ycsb
