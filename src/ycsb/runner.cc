#include "ycsb/runner.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/task.h"
#include "ycsb/op_stats.h"

namespace namtree::ycsb {

namespace {

using index::DistributedIndex;
using nam::ClientContext;

struct SharedState {
  SimTime warmup_end = 0;
  SimTime deadline = 0;
  RunResult result;
  /// Registry cells for the op accounting ("ycsb.ops"{op, class} and
  /// "ycsb.op_latency"{op}), created on first use.
  internal::OpStats stats;
  /// Clients crash-injected away during the run ("ycsb.dead_clients").
  metrics::Counter dead_clients;
};

/// Records one completed operation if it fell inside the measurement
/// window (both loop shapes share these window semantics). Counts land in
/// the registry — one "ycsb.ops" bump per {op type, status class}, with
/// StatusClassOf as the single status -> class mapping — so RunResult's
/// ops()/failed_ops()/failures() views and the bench --json emitter all
/// read the same cells.
void Account(SharedState& state, OpType type, const Status& status,
             SimTime start, SimTime end) {
  if (start < state.warmup_end || end > state.deadline) return;
  const uint64_t latency = static_cast<uint64_t>(end - start);
  state.result.latency.Add(latency);
  auto& per_type = state.result.per_type[static_cast<int>(type)];
  per_type.count++;
  per_type.latency.Add(latency);
  state.stats.OpCell(type, StatusClassOf(status.code())).Inc();
  state.stats.LatencyCell(type).Observe(latency);
}

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> ClientLoop(nam::Cluster& cluster, DistributedIndex& index,
                       WorkloadGenerator& gen, ClientContext& ctx,
                       SharedState& state, bool primary_lane) {
  sim::Simulator& simulator = cluster.simulator();
  while (simulator.now() < state.deadline) {
    // A crash-injected client issues no further operations; its in-flight
    // verbs were dropped by the fabric. Only the first lane of a pipelined
    // client reports the death, so `dead_clients` counts clients.
    if (!cluster.fabric().ClientAlive(ctx.client_id())) {
      if (primary_lane) state.dead_clients.Inc();
      break;
    }
    const Operation op = gen.Next(ctx.rng());
    const SimTime start = simulator.now();
    OpResult op_result;
    op_result.type = op.type;
    // The runner's span is the outermost one: the index entry points' own
    // spans go inert under it, so each closed-loop op traces exactly once,
    // labeled by its workload op type.
    metrics::OpSpan span(ctx.trace(), OpTypeName(op.type));
    switch (op.type) {
      case OpType::kPoint: {
        // A clean miss carries an OK status; only degraded-mode failures
        // (kUnavailable/kTimedOut) count as failed operations.
        op_result.status = (co_await index.Lookup(ctx, op.key)).status;
        break;
      }
      case OpType::kRange: {
        // A truncated scan reports how it degraded (kUnavailable vs
        // kTimedOut) so the FailureBreakdown attributes it correctly.
        (void)co_await index.Scan(ctx, op.key, op.hi, nullptr,
                                  &op_result.status);
        break;
      }
      case OpType::kInsert: {
        op_result.status = co_await index.Insert(ctx, op.key, op.value);
        break;
      }
      case OpType::kUpdate: {
        op_result.status = co_await index.Update(ctx, op.key, op.value);
        break;
      }
      case OpType::kDelete: {
        op_result.status = co_await index.Delete(ctx, op.key);
        break;
      }
    }
    const SimTime end = simulator.now();
    op_result.latency = end - start;
    Account(state, op.type, op_result.status, start, end);
  }
}

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> BatchedClientLoop(nam::Cluster& cluster, DistributedIndex& index,
                              WorkloadGenerator& gen, ClientContext& ctx,
                              SharedState& state, uint32_t depth) {
  sim::Simulator& simulator = cluster.simulator();
  std::vector<index::PointOp> ops;
  std::vector<OpType> types;
  std::vector<index::PointOpResult> results;
  while (simulator.now() < state.deadline) {
    if (!cluster.fabric().ClientAlive(ctx.client_id())) {
      state.dead_clients.Inc();
      break;
    }
    // Gather up to `depth` coalescable point ops. A range op flushes the
    // gathered batch first and then runs by itself (scans carry variable-
    // size results and do not ride in multi-op frames).
    ops.clear();
    types.clear();
    Operation range_op;
    bool have_range = false;
    while (ops.size() < depth) {
      const Operation op = gen.Next(ctx.rng());
      if (op.type == OpType::kRange) {
        range_op = op;
        have_range = true;
        break;
      }
      index::PointOp p;
      switch (op.type) {
        case OpType::kPoint: p.kind = index::PointOpKind::kLookup; break;
        case OpType::kInsert: p.kind = index::PointOpKind::kInsert; break;
        case OpType::kUpdate: p.kind = index::PointOpKind::kUpdate; break;
        case OpType::kDelete: p.kind = index::PointOpKind::kDelete; break;
        case OpType::kRange: break;  // unreachable
      }
      p.key = op.key;
      p.value = op.value;
      ops.push_back(p);
      types.push_back(op.type);
    }
    if (!ops.empty()) {
      const SimTime start = simulator.now();
      results.assign(ops.size(), index::PointOpResult{});
      co_await index.RunBatch(ctx, ops, results.data());
      const SimTime end = simulator.now();
      // Closed-loop semantics per batch: every op in it observes the
      // batch's end-to-end latency.
      for (size_t i = 0; i < ops.size(); ++i) {
        Account(state, types[i], results[i].status, start, end);
      }
    }
    if (have_range) {
      const SimTime start = simulator.now();
      Status scan_status;
      (void)co_await index.Scan(ctx, range_op.key, range_op.hi, nullptr,
                                &scan_status);
      const SimTime end = simulator.now();
      Account(state, OpType::kRange, scan_status, start, end);
    }
  }
}

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> MultiGetClientLoop(nam::Cluster& cluster, DistributedIndex& index,
                               WorkloadGenerator& gen, ClientContext& ctx,
                               SharedState& state, uint32_t batch,
                               bool primary_lane) {
  sim::Simulator& simulator = cluster.simulator();
  std::vector<btree::Key> keys;
  std::vector<index::LookupResult> results;
  while (simulator.now() < state.deadline) {
    if (!cluster.fabric().ClientAlive(ctx.client_id())) {
      if (primary_lane) state.dead_clients.Inc();
      break;
    }
    // Gather up to `batch` consecutive point lookups into one MultiGet; any
    // other operation flushes the gathered batch first and then runs by
    // itself, preserving this client's issue order.
    keys.clear();
    Operation other_op;
    bool have_other = false;
    while (keys.size() < batch) {
      const Operation op = gen.Next(ctx.rng());
      if (op.type != OpType::kPoint) {
        other_op = op;
        have_other = true;
        break;
      }
      keys.push_back(op.key);
    }
    if (!keys.empty()) {
      const SimTime start = simulator.now();
      results.assign(keys.size(), index::LookupResult{});
      co_await index.MultiGet(ctx, keys, results.data());
      const SimTime end = simulator.now();
      // Closed-loop semantics per batch: every lookup in it observes the
      // batch's end-to-end latency.
      for (size_t i = 0; i < keys.size(); ++i) {
        Account(state, OpType::kPoint, results[i].status, start, end);
      }
    }
    if (have_other) {
      const SimTime start = simulator.now();
      Status status;
      switch (other_op.type) {
        case OpType::kRange:
          (void)co_await index.Scan(ctx, other_op.key, other_op.hi, nullptr,
                                    &status);
          break;
        case OpType::kInsert:
          status = co_await index.Insert(ctx, other_op.key, other_op.value);
          break;
        case OpType::kUpdate:
          status = co_await index.Update(ctx, other_op.key, other_op.value);
          break;
        case OpType::kDelete:
          status = co_await index.Delete(ctx, other_op.key);
          break;
        case OpType::kPoint:
          break;  // unreachable
      }
      const SimTime end = simulator.now();
      Account(state, other_op.type, status, start, end);
    }
  }
}

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> GcLoop(nam::Cluster& cluster, DistributedIndex& index,
                   ClientContext& ctx, SharedState& state,
                   SimTime interval) {
  sim::Simulator& simulator = cluster.simulator();
  while (simulator.now() + interval < state.deadline) {
    co_await sim::Delay(simulator, interval);
    (void)co_await index.GarbageCollect(ctx);
  }
}

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> WarmupMarker(nam::Cluster& cluster, SharedState& state) {
  co_await sim::DelayUntil(cluster.simulator(), state.warmup_end);
  cluster.fabric().ResetStats();
}

}  // namespace

RunResult RunWorkload(nam::Cluster& cluster, DistributedIndex& index,
                      uint64_t num_keys, const RunConfig& config) {
  sim::Simulator& simulator = cluster.simulator();
  cluster.fabric().SetNumClients(config.num_clients);
  metrics::MetricRegistry& registry = cluster.fabric().metrics();

  SharedState state;
  state.warmup_end = simulator.now() + config.warmup;
  state.deadline = state.warmup_end + config.duration;
  state.stats.registry = &registry;
  registry.RegisterCounter(state.dead_clients, "ycsb.dead_clients", {},
                           "clients crash-injected away during the run");

  // The run's measurement window over the (fabric-lifetime) registry:
  // everything this run's contexts do — warmup included, matching the
  // historical per-context sums — reads as end minus begin. Cells created
  // below (per-client counters, op cells) count from zero; residue of
  // earlier runs on the same fabric is in `begin` and subtracts out.
  const metrics::Snapshot begin = registry.Collect();

  WorkloadGenerator gen(config.mix, num_keys, config.dist, config.zipf_theta);

  std::vector<std::unique_ptr<ClientContext>> contexts;
  contexts.reserve(config.num_clients);
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    contexts.push_back(std::make_unique<ClientContext>(
        c, cluster.fabric(), index.page_size(), config.seed));
  }

  sim::Spawn(simulator, WarmupMarker(cluster, state));
  const uint32_t depth = std::max<uint32_t>(1, config.pipeline_depth);
  const bool batched = depth > 1 && index.SupportsBatchedPointOps();
  const uint32_t multiget = std::max<uint32_t>(1, config.multiget_batch);
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    if (batched) {
      // RPC-based design: one loop per client that coalesces up to `depth`
      // point ops into multi-op frames.
      sim::Spawn(simulator, BatchedClientLoop(cluster, index, gen,
                                              *contexts[c], state, depth));
      continue;
    }
    if (multiget > 1) {
      sim::Spawn(simulator,
                 MultiGetClientLoop(cluster, index, gen, *contexts[c], state,
                                    multiget, /*primary_lane=*/true));
    } else {
      sim::Spawn(simulator,
                 ClientLoop(cluster, index, gen, *contexts[c], state,
                            /*primary_lane=*/true));
    }
    // One-sided design with depth > 1: extra lanes share the client id
    // (and therefore its fabric poller and lock-holder identity) but carry
    // their own scratch buffers and rng stream, so `depth` independent
    // operations overlap per client machine.
    for (uint32_t lane = 1; lane < depth; ++lane) {
      contexts.push_back(std::make_unique<ClientContext>(
          c, cluster.fabric(), index.page_size(),
          config.seed ^ (0x9E3779B97F4A7C15ull * lane)));
      if (multiget > 1) {
        sim::Spawn(simulator, MultiGetClientLoop(cluster, index, gen,
                                                 *contexts.back(), state,
                                                 multiget,
                                                 /*primary_lane=*/false));
      } else {
        sim::Spawn(simulator,
                   ClientLoop(cluster, index, gen, *contexts.back(), state,
                              /*primary_lane=*/false));
      }
    }
  }
  if (config.gc_interval > 0) {
    // The paper runs epoch GC in the background; model it from client 0's
    // machine with a dedicated context.
    contexts.push_back(std::make_unique<ClientContext>(
        0, cluster.fabric(), index.page_size(), config.seed ^ 0x6C6CULL));
    sim::Spawn(simulator, GcLoop(cluster, index, *contexts.back(), state,
                                 config.gc_interval));
  }
  if (config.trace_ops) {
    for (const auto& ctx : contexts) {
      ctx->trace().Enable(config.trace_ring, config.trace_outliers);
    }
  }

  simulator.Run();

  RunResult& result = state.result;
  result.counters = metrics::Delta::Between(begin, registry.Collect());
  result.seconds = static_cast<double>(config.duration) / kSecond;
  result.ops_per_sec =
      result.seconds > 0 ? static_cast<double>(result.ops()) / result.seconds
                         : 0;
  // Server byte totals stay materialized from the fabric's per-server
  // stats (not viewed through the window Delta): the reading is "bytes
  // since the last ResetStats" — the warmup marker's reset — exactly as
  // before the registry existed.
  for (uint32_t s = 0; s < cluster.num_memory_servers(); ++s) {
    const auto stats = cluster.fabric().server_stats(s);
    result.per_server_bytes.push_back(stats.tx_bytes + stats.rx_bytes);
    result.server_bytes += stats.tx_bytes + stats.rx_bytes;
  }
  result.gb_per_sec =
      static_cast<double>(result.server_bytes) / result.seconds / 1e9;
  if (config.trace_ops) {
    for (const auto& ctx : contexts) {
      const std::string dump = ctx->trace().DumpOutliers();
      if (dump.empty()) continue;
      result.trace_outliers += "client " +
                               std::to_string(ctx->client_id()) + ":\n" +
                               dump;
    }
  }
  return result;
}

RunResult::FailureBreakdown RunResult::failures() const {
  const auto of = [this](StatusClass cls) {
    return counters.Value("ycsb.ops", "class", StatusClassName(cls));
  };
  FailureBreakdown b;
  b.not_found = of(StatusClass::kNotFound);
  b.unavailable = of(StatusClass::kUnavailable);
  b.timed_out = of(StatusClass::kTimedOut);
  b.out_of_memory = of(StatusClass::kOutOfMemory);
  b.aborted = of(StatusClass::kAborted);
  b.other = of(StatusClass::kOther);
  return b;
}

}  // namespace namtree::ycsb
