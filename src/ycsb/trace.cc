#include "ycsb/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/task.h"
#include "ycsb/op_stats.h"

namespace namtree::ycsb {

uint32_t Trace::num_clients() const {
  uint32_t max_client = 0;
  for (const TraceOp& top : ops_) {
    max_client = std::max(max_client, top.client);
  }
  return ops_.empty() ? 0 : max_client + 1;
}

void Trace::Write(std::ostream& out) const {
  out << "# namtree workload trace v1: <client> <op> <args...>\n";
  for (const TraceOp& top : ops_) {
    out << top.client << ' ';
    switch (top.op.type) {
      case OpType::kPoint:
        out << "P " << top.op.key;
        break;
      case OpType::kRange:
        out << "R " << top.op.key << ' ' << top.op.hi;
        break;
      case OpType::kInsert:
        out << "I " << top.op.key << ' ' << top.op.value;
        break;
      case OpType::kUpdate:
        out << "U " << top.op.key << ' ' << top.op.value;
        break;
      case OpType::kDelete:
        out << "D " << top.op.key;
        break;
    }
    out << '\n';
  }
}

Status Trace::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  Write(out);
  return out ? Status::OK() : Status::Corruption("short write to " + path);
}

Result<Trace> Trace::Read(std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    line_no++;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint32_t client = 0;
    char kind = 0;
    if (!(ls >> client >> kind)) {
      return Status::Corruption("trace parse error at line " +
                                std::to_string(line_no));
    }
    Operation op;
    bool ok = true;
    switch (kind) {
      case 'P':
        op.type = OpType::kPoint;
        ok = static_cast<bool>(ls >> op.key);
        break;
      case 'R':
        op.type = OpType::kRange;
        ok = static_cast<bool>(ls >> op.key >> op.hi);
        break;
      case 'I':
        op.type = OpType::kInsert;
        ok = static_cast<bool>(ls >> op.key >> op.value);
        break;
      case 'U':
        op.type = OpType::kUpdate;
        ok = static_cast<bool>(ls >> op.key >> op.value);
        break;
      case 'D':
        op.type = OpType::kDelete;
        ok = static_cast<bool>(ls >> op.key);
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) {
      return Status::Corruption("trace parse error at line " +
                                std::to_string(line_no));
    }
    trace.Add(client, op);
  }
  return trace;
}

Result<Trace> Trace::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return Read(in);
}

Trace Trace::Generate(const WorkloadMix& mix, uint64_t num_keys,
                      uint32_t clients, uint32_t ops_per_client,
                      uint64_t seed, RequestDistribution dist) {
  Trace trace;
  WorkloadGenerator gen(mix, num_keys, dist);
  for (uint32_t c = 0; c < clients; ++c) {
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (c + 1)));
    for (uint32_t i = 0; i < ops_per_client; ++i) {
      trace.Add(c, gen.Next(rng));
    }
  }
  return trace;
}

namespace {

struct ReplayState {
  RunResult result;
  /// Registry cells for the op accounting (see ycsb/op_stats.h).
  internal::OpStats stats;
};

// namtree-lint: safe-coro-ref(every referent lives in the caller's frame, which blocks on simulator.Run() until all spawned tasks finish)
sim::Task<> ReplayClient(nam::Cluster& cluster,
                         index::DistributedIndex& index,
                         nam::ClientContext& ctx,
                         const std::vector<Operation>& ops,
                         ReplayState& state) {
  sim::Simulator& simulator = cluster.simulator();
  for (const Operation& op : ops) {
    const SimTime start = simulator.now();
    Status status;
    switch (op.type) {
      case OpType::kPoint:
        (void)co_await index.Lookup(ctx, op.key);
        break;
      case OpType::kRange:
        (void)co_await index.Scan(ctx, op.key, op.hi, nullptr);
        break;
      case OpType::kInsert:
        status = co_await index.Insert(ctx, op.key, op.value);
        break;
      case OpType::kUpdate:
        status = co_await index.Update(ctx, op.key, op.value);
        break;
      case OpType::kDelete:
        status = co_await index.Delete(ctx, op.key);
        break;
    }
    const SimTime end = simulator.now();
    const uint64_t latency = static_cast<uint64_t>(end - start);
    state.result.latency.Add(latency);
    auto& per_type = state.result.per_type[static_cast<int>(op.type)];
    per_type.count++;
    per_type.latency.Add(latency);
    // Replay keeps its historical failure semantics: point and range ops
    // never count as failures (their status is discarded above), mutations
    // count by status class (the legacy `ok` test becomes class != ok).
    state.stats.OpCell(op.type, StatusClassOf(status.code())).Inc();
    state.stats.LatencyCell(op.type).Observe(latency);
  }
}

}  // namespace

RunResult ReplayTrace(nam::Cluster& cluster, index::DistributedIndex& index,
                      const Trace& trace) {
  sim::Simulator& simulator = cluster.simulator();
  const uint32_t clients = trace.num_clients();
  cluster.fabric().SetNumClients(clients);
  cluster.fabric().ResetStats();

  std::vector<std::vector<Operation>> per_client(clients);
  for (const TraceOp& top : trace.ops()) {
    per_client[top.client].push_back(top.op);
  }

  metrics::MetricRegistry& registry = cluster.fabric().metrics();
  ReplayState state;
  state.stats.registry = &registry;
  const metrics::Snapshot begin = registry.Collect();
  std::vector<std::unique_ptr<nam::ClientContext>> ctxs;
  const SimTime start_time = simulator.now();
  for (uint32_t c = 0; c < clients; ++c) {
    ctxs.push_back(std::make_unique<nam::ClientContext>(
        c, cluster.fabric(), index.page_size(), c));
    sim::Spawn(simulator,
               ReplayClient(cluster, index, *ctxs[c], per_client[c], state));
  }
  simulator.Run();

  RunResult& result = state.result;
  result.counters = metrics::Delta::Between(begin, registry.Collect());
  result.seconds =
      static_cast<double>(simulator.now() - start_time) / kSecond;
  result.ops_per_sec =
      result.seconds > 0 ? static_cast<double>(result.ops()) / result.seconds
                         : 0;
  for (uint32_t s = 0; s < cluster.num_memory_servers(); ++s) {
    const auto stats = cluster.fabric().server_stats(s);
    result.per_server_bytes.push_back(stats.tx_bytes + stats.rx_bytes);
    result.server_bytes += stats.tx_bytes + stats.rx_bytes;
  }
  result.gb_per_sec = result.seconds > 0
                          ? static_cast<double>(result.server_bytes) /
                                result.seconds / 1e9
                          : 0;
  return result;
}

}  // namespace namtree::ycsb
