#ifndef NAMTREE_YCSB_OP_STATS_H_
#define NAMTREE_YCSB_OP_STATS_H_

#include <map>
#include <utility>

#include "common/metrics.h"
#include "common/status.h"
#include "ycsb/workload.h"

namespace namtree::ycsb::internal {

/// On-demand registry cells for the per-run YCSB op accounting, shared by
/// the closed-loop runner and the trace replayer:
///
///   ycsb.ops{op, class}   completed ops by type and status class
///   ycsb.op_latency{op}   per-op latency distribution (ns)
///
/// Cells materialize on first use (a run that never deletes creates no
/// delete cells) and live in node-stable maps — the registry keeps pointers
/// to the handles, so they must never relocate. Destroying this struct at
/// end of run folds the final values into the registry's retired residue;
/// the run's window Delta still reads them exactly.
struct OpStats {
  metrics::MetricRegistry* registry = nullptr;
  std::map<std::pair<int, int>, metrics::Counter> op_cells;
  std::map<int, metrics::Histogram> latency_cells;

  metrics::Counter& OpCell(OpType type, StatusClass cls) {
    const auto key = std::make_pair(static_cast<int>(type),
                                    static_cast<int>(cls));
    auto [it, inserted] = op_cells.try_emplace(key);
    if (inserted) {
      registry->RegisterCounter(
          it->second, "ycsb.ops",
          {{"op", OpTypeName(type)}, {"class", StatusClassName(cls)}},
          "completed ops by type and status class");
    }
    return it->second;
  }

  metrics::Histogram& LatencyCell(OpType type) {
    auto [it, inserted] = latency_cells.try_emplace(static_cast<int>(type));
    if (inserted) {
      registry->RegisterHistogram(it->second, "ycsb.op_latency",
                                  {{"op", OpTypeName(type)}},
                                  "per-op latency (ns)");
    }
    return it->second;
  }
};

}  // namespace namtree::ycsb::internal

#endif  // NAMTREE_YCSB_OP_STATS_H_
