#ifndef NAMTREE_YCSB_WORKLOAD_H_
#define NAMTREE_YCSB_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/types.h"
#include "common/random.h"

namespace namtree::ycsb {

/// Index operation kinds issued by the modified YCSB workloads (Table 3)
/// plus the original YCSB update.
enum class OpType {
  kPoint = 0,
  kRange,
  kInsert,
  kUpdate,
  kDelete,
};

constexpr int kNumOpTypes = 5;

const char* OpTypeName(OpType type);

/// An operation mix. Fractions must sum to 1.
struct WorkloadMix {
  double point = 0;
  double range = 0;
  double insert = 0;
  double update = 0;
  double remove = 0;
  /// Selectivity of range queries as a fraction of the key domain
  /// (paper: 0.001 / 0.01 / 0.1).
  double range_selectivity = 0.001;

  std::string name = "custom";
};

/// Workload A (Table 3): 100% point queries.
WorkloadMix WorkloadA();
/// Workload B: 100% range queries with selectivity `sel`.
WorkloadMix WorkloadB(double sel);
/// Workload C: 95% point queries, 5% inserts.
WorkloadMix WorkloadC();
/// Workload D: 50% point queries, 50% inserts.
WorkloadMix WorkloadD();
/// The *original* YCSB-A (50% reads, 50% in-place updates) — the paper
/// replaced updates with inserts; both are supported.
WorkloadMix OriginalYcsbA();
/// The original YCSB-B (95% reads, 5% updates).
WorkloadMix OriginalYcsbB();

/// How clients pick requested keys (paper §6: "spreads lookups uniformly at
/// random over the complete key space"; the original YCSB additionally
/// supports Zipfian request skew, which we keep for the access-skew
/// dimension).
enum class RequestDistribution {
  kUniform,
  /// YCSB's scrambled Zipfian: hot keys scattered over the key space.
  kZipfian,
  /// Unscrambled Zipfian: rank r maps to the r-th smallest key, so the hot
  /// set is *contiguous* — under range partitioning it lands on one server
  /// (an access-skew analogue of the paper's attribute-value skew).
  kZipfianClustered,
};

/// Spacing between consecutive dataset keys; gaps leave room for inserted
/// keys without forcing duplicates.
constexpr btree::Key kKeyStride = 8;

/// The paper's data sets: monotonically increasing integer keys with
/// key = i * kKeyStride and value = i (§6, "monotonically increasing
/// integer keys and values").
std::vector<btree::KV> GenerateDataset(uint64_t num_keys);

/// One concrete operation.
struct Operation {
  OpType type = OpType::kPoint;
  btree::Key key = 0;
  btree::Key hi = 0;        // exclusive upper bound for ranges
  btree::Value value = 0;   // payload for inserts
};

/// Draws operations according to a mix and a request distribution over a
/// dataset of `num_keys` (as produced by GenerateDataset).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadMix& mix, uint64_t num_keys,
                    RequestDistribution dist = RequestDistribution::kUniform,
                    double zipf_theta = 0.99);

  Operation Next(Rng& rng);

  const WorkloadMix& mix() const { return mix_; }
  uint64_t num_keys() const { return num_keys_; }

  /// Domain size in key units (num_keys * kKeyStride).
  btree::Key domain() const { return num_keys_ * kKeyStride; }

 private:
  btree::Key DrawKeyIndex(Rng& rng);

  WorkloadMix mix_;
  uint64_t num_keys_;
  RequestDistribution dist_;
  ZipfGenerator zipf_;
};

}  // namespace namtree::ycsb

#endif  // NAMTREE_YCSB_WORKLOAD_H_
