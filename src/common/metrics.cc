#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace namtree::metrics {

namespace {

/// Finds the entry for `label_values` in a per-label vector, or nullptr.
template <typename V>
const V* FindLabeled(
    const std::vector<std::pair<std::vector<std::string>, V>>& entries,
    const std::vector<std::string>& label_values) {
  for (const auto& [values, v] : entries) {
    if (values == label_values) return &v;
  }
  return nullptr;
}

template <typename V>
V& FindOrAddLabeled(
    std::vector<std::pair<std::vector<std::string>, V>>& entries,
    const std::vector<std::string>& label_values) {
  for (auto& [values, v] : entries) {
    if (values == label_values) return v;
  }
  entries.emplace_back(label_values, V{});
  return entries.back().second;
}

const FamilySample* FindFamily(const std::vector<FamilySample>& families,
                               std::string_view name) {
  for (const auto& f : families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

uint64_t SumFamily(const FamilySample* f) {
  if (f == nullptr) return 0;
  uint64_t total = 0;
  for (const auto& [values, v] : f->values) total += v;
  return total;
}

uint64_t SumFamilyWhere(const FamilySample* f, std::string_view key,
                        std::string_view value) {
  if (f == nullptr) return 0;
  const auto it =
      std::find(f->label_keys.begin(), f->label_keys.end(), key);
  if (it == f->label_keys.end()) return 0;
  const size_t pos = static_cast<size_t>(it - f->label_keys.begin());
  uint64_t total = 0;
  for (const auto& [values, v] : f->values) {
    if (values[pos] == value) total += v;
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

Counter::~Counter() {
  if (registry_ != nullptr) {
    registry_->Unregister(family_, cell_, value_, nullptr);
  }
}

Gauge::~Gauge() {
  if (registry_ != nullptr) {
    registry_->Unregister(family_, cell_, value_, nullptr);
  }
}

Histogram::~Histogram() {
  if (registry_ != nullptr) {
    registry_->Unregister(family_, cell_, hist_.count(), &hist_);
  }
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry::Family& MetricRegistry::FamilyFor(std::string_view name,
                                                  MetricKind kind,
                                                  const LabelSet& labels,
                                                  std::string_view help) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    Family family;
    family.name = std::string(name);
    family.help = std::string(help);
    family.kind = kind;
    for (const auto& [key, value] : labels) family.label_keys.push_back(key);
    families_.push_back(std::move(family));
    it = index_.emplace(std::string(name),
                        static_cast<uint32_t>(families_.size() - 1))
             .first;
  }
  Family& family = families_[it->second];
  assert(family.kind == kind && "family re-registered with another kind");
  assert(family.label_keys.size() == labels.size() &&
         "family re-registered with different label keys");
  return family;
}

uint32_t MetricRegistry::AddCell(Family& family, const LabelSet& labels) {
  Cell cell;
  for (const auto& [key, value] : labels) {
    cell.label_values.push_back(value);
  }
  cell.live = true;
  // Reuse a dead slot so long sweeps (many short-lived contexts) stay flat.
  for (size_t i = 0; i < family.cells.size(); ++i) {
    if (!family.cells[i].live) {
      family.cells[i] = std::move(cell);
      return static_cast<uint32_t>(i);
    }
  }
  family.cells.push_back(std::move(cell));
  return static_cast<uint32_t>(family.cells.size() - 1);
}

void MetricRegistry::RegisterCounter(Counter& c, std::string_view name,
                                     LabelSet labels,
                                     std::string_view help) {
  assert(c.registry_ == nullptr && "counter already registered");
  Family& family = FamilyFor(name, MetricKind::kCounter, labels, help);
  const uint32_t cell = AddCell(family, labels);
  family.cells[cell].counter = &c;
  c.registry_ = this;
  c.family_ = index_.find(name)->second;
  c.cell_ = cell;
}

void MetricRegistry::RegisterGauge(Gauge& g, std::string_view name,
                                   LabelSet labels, std::string_view help) {
  assert(g.registry_ == nullptr && "gauge already registered");
  Family& family = FamilyFor(name, MetricKind::kGauge, labels, help);
  const uint32_t cell = AddCell(family, labels);
  family.cells[cell].gauge = &g;
  g.registry_ = this;
  g.family_ = index_.find(name)->second;
  g.cell_ = cell;
}

void MetricRegistry::RegisterHistogram(Histogram& h, std::string_view name,
                                       LabelSet labels,
                                       std::string_view help) {
  assert(h.registry_ == nullptr && "histogram already registered");
  Family& family = FamilyFor(name, MetricKind::kHistogram, labels, help);
  const uint32_t cell = AddCell(family, labels);
  family.cells[cell].histogram = &h;
  h.registry_ = this;
  h.family_ = index_.find(name)->second;
  h.cell_ = cell;
}

void MetricRegistry::RegisterCallback(std::string_view name,
                                      std::function<uint64_t()> fn,
                                      LabelSet labels,
                                      std::string_view help) {
  Family& family = FamilyFor(name, MetricKind::kCallback, labels, help);
  const uint32_t cell = AddCell(family, labels);
  family.cells[cell].callback = std::move(fn);
}

void MetricRegistry::Unregister(uint32_t family_index, uint32_t cell_index,
                                uint64_t final_value,
                                const ::namtree::Histogram* final_hist) {
  Family& family = families_[family_index];
  Cell& cell = family.cells[cell_index];
  // Fold the handle's final value into the per-label residue so family
  // totals never step backwards when a handle dies.
  family.retired[cell.label_values] += final_value;
  if (final_hist != nullptr) {
    family.retired_hists[cell.label_values].Merge(*final_hist);
  }
  cell = Cell{};  // live = false; slot reusable
}

Snapshot MetricRegistry::Collect() const {
  Snapshot snapshot;
  snapshot.families_.reserve(families_.size());
  for (const Family& family : families_) {
    FamilySample sample;
    sample.name = family.name;
    sample.kind = family.kind;
    sample.label_keys = family.label_keys;
    for (const auto& [label_values, retired] : family.retired) {
      FindOrAddLabeled(sample.values, label_values) += retired;
    }
    for (const auto& [label_values, hist] : family.retired_hists) {
      FindOrAddLabeled(sample.hists, label_values).Merge(hist);
    }
    for (const Cell& cell : family.cells) {
      if (!cell.live) continue;
      uint64_t v = 0;
      if (cell.counter != nullptr) {
        v = cell.counter->value();
      } else if (cell.gauge != nullptr) {
        v = cell.gauge->value();
      } else if (cell.histogram != nullptr) {
        v = cell.histogram->data().count();
        FindOrAddLabeled(sample.hists, cell.label_values)
            .Merge(cell.histogram->data());
      } else if (cell.callback) {
        v = cell.callback();
      }
      FindOrAddLabeled(sample.values, cell.label_values) += v;
    }
    snapshot.families_.push_back(std::move(sample));
  }
  return snapshot;
}

uint64_t MetricRegistry::Value(std::string_view family) const {
  const auto it = index_.find(family);
  if (it == index_.end()) return 0;
  const Family& f = families_[it->second];
  uint64_t total = 0;
  for (const auto& [label_values, retired] : f.retired) total += retired;
  for (const Cell& cell : f.cells) {
    if (!cell.live) continue;
    if (cell.counter != nullptr) {
      total += cell.counter->value();
    } else if (cell.gauge != nullptr) {
      total += cell.gauge->value();
    } else if (cell.histogram != nullptr) {
      total += cell.histogram->data().count();
    } else if (cell.callback) {
      total += cell.callback();
    }
  }
  return total;
}

uint64_t MetricRegistry::Value(std::string_view family, std::string_view key,
                               std::string_view value) const {
  const auto it = index_.find(family);
  if (it == index_.end()) return 0;
  const Family& f = families_[it->second];
  const auto key_it =
      std::find(f.label_keys.begin(), f.label_keys.end(), key);
  if (key_it == f.label_keys.end()) return 0;
  const size_t pos = static_cast<size_t>(key_it - f.label_keys.begin());
  uint64_t total = 0;
  for (const auto& [label_values, retired] : f.retired) {
    if (label_values[pos] == value) total += retired;
  }
  for (const Cell& cell : f.cells) {
    if (!cell.live || cell.label_values[pos] != value) continue;
    if (cell.counter != nullptr) {
      total += cell.counter->value();
    } else if (cell.gauge != nullptr) {
      total += cell.gauge->value();
    } else if (cell.histogram != nullptr) {
      total += cell.histogram->data().count();
    } else if (cell.callback) {
      total += cell.callback();
    }
  }
  return total;
}

std::string_view MetricRegistry::Help(std::string_view family) const {
  const auto it = index_.find(family);
  if (it == index_.end()) return {};
  return families_[it->second].help;
}

// ---------------------------------------------------------------------------
// Snapshot / Delta
// ---------------------------------------------------------------------------

uint64_t Snapshot::Value(std::string_view family) const {
  return SumFamily(FindFamily(families_, family));
}

uint64_t Snapshot::Value(std::string_view family, std::string_view key,
                         std::string_view value) const {
  return SumFamilyWhere(FindFamily(families_, family), key, value);
}

bool Snapshot::Has(std::string_view family) const {
  return FindFamily(families_, family) != nullptr;
}

Delta Delta::Between(const Snapshot& begin, const Snapshot& end) {
  Delta delta;
  delta.families_.reserve(end.families_.size());
  for (const FamilySample& after : end.families_) {
    const FamilySample* before = FindFamily(begin.families_, after.name);
    FamilySample windowed;
    windowed.name = after.name;
    windowed.kind = after.kind;
    windowed.label_keys = after.label_keys;
    windowed.hists = after.hists;  // cumulative end-of-window distributions
    for (const auto& [label_values, end_value] : after.values) {
      uint64_t value = end_value;
      if (windowed.kind != MetricKind::kGauge && before != nullptr) {
        const uint64_t* begin_value =
            FindLabeled(before->values, label_values);
        if (begin_value != nullptr && *begin_value <= end_value) {
          value = end_value - *begin_value;  // else: reset mid-window
        }
      }
      windowed.values.emplace_back(label_values, value);
    }
    delta.families_.push_back(std::move(windowed));
  }
  return delta;
}

uint64_t Delta::Value(std::string_view family) const {
  return SumFamily(FindFamily(families_, family));
}

uint64_t Delta::Value(std::string_view family, std::string_view key,
                      std::string_view value) const {
  return SumFamilyWhere(FindFamily(families_, family), key, value);
}

bool Delta::Has(std::string_view family) const {
  return FindFamily(families_, family) != nullptr;
}

// ---------------------------------------------------------------------------
// Op tracing
// ---------------------------------------------------------------------------

const char* TraceVerbName(TraceVerb verb) {
  switch (verb) {
    case TraceVerb::kRead:
      return "READ";
    case TraceVerb::kWrite:
      return "WRITE";
    case TraceVerb::kCas:
      return "CAS";
    case TraceVerb::kFaa:
      return "FAA";
    case TraceVerb::kRpc:
      return "RPC";
    case TraceVerb::kReadBatch:
      return "READ_BATCH";
  }
  return "?";
}

std::string SpanRecord::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s #%" PRIu64 " [%" PRId64 "..%" PRId64 "ns, %" PRId64
                "ns] %zu verbs%s:",
                op.c_str(), id, start, finish, duration(), events.size(),
                truncated > 0 ? " (truncated)" : "");
  std::string out = buf;
  for (const TraceEvent& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "\n  %-10s server=%u chain=%" PRIu64 " [%" PRId64
                  "..%" PRId64 "ns, %" PRId64 "ns]",
                  TraceVerbName(e.verb), e.server, e.chain, e.start,
                  e.finish, e.finish - e.start);
    out += buf;
  }
  return out;
}

void OpTrace::Enable(size_t ring_capacity, size_t outliers_per_op) {
  assert(now_ && "OpTrace needs a clock (SetClock) before Enable");
  enabled_ = true;
  ring_capacity_ = ring_capacity;
  outliers_per_op_ = outliers_per_op;
}

bool OpTrace::BeginSpan(const char* op) {
  if (!enabled_ || open_) return false;
  open_ = true;
  current_ = SpanRecord{};
  current_.op = op;
  current_.id = ++next_span_id_;
  current_.start = now_();
  return true;
}

void OpTrace::EndSpan() {
  if (!open_) return;
  open_ = false;
  current_.finish = now_();

  // Retain among the slowest K for this op label (slowest first).
  auto& slowest = outliers_[current_.op];
  const bool retain =
      slowest.size() < outliers_per_op_ ||
      current_.duration() > slowest.back().duration();
  if (retain && outliers_per_op_ > 0) {
    const auto pos = std::find_if(
        slowest.begin(), slowest.end(), [&](const SpanRecord& r) {
          return current_.duration() > r.duration();
        });
    slowest.insert(pos, current_);
    if (slowest.size() > outliers_per_op_) slowest.pop_back();
    if (outlier_hook_) outlier_hook_(current_);
  }

  ring_.push_back(std::move(current_));
  while (ring_.size() > ring_capacity_) ring_.pop_front();
}

void OpTrace::Event(TraceVerb verb, uint32_t server, uint64_t chain,
                    SimTime start) {
  if (!enabled_ || !open_) return;
  if (current_.events.size() >= kMaxEventsPerSpan) {
    current_.truncated++;
    return;
  }
  TraceEvent event;
  event.verb = verb;
  event.server = server;
  event.chain = chain;
  event.start = start;
  event.finish = now_();
  current_.events.push_back(event);
}

std::vector<const SpanRecord*> OpTrace::SlowestFor(
    std::string_view op) const {
  std::vector<const SpanRecord*> out;
  const auto it = outliers_.find(op);
  if (it == outliers_.end()) return out;
  out.reserve(it->second.size());
  for (const SpanRecord& r : it->second) out.push_back(&r);
  return out;
}

std::string OpTrace::DumpOutliers() const {
  std::string out;
  for (const auto& [op, spans] : outliers_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "client %u, op %s: %zu slowest spans\n",
                  client_id_, op.c_str(), spans.size());
    out += buf;
    for (const SpanRecord& span : spans) {
      out += span.ToString();
      out += '\n';
    }
  }
  return out;
}

}  // namespace namtree::metrics
