#include "common/arg_parser.h"

#include <cstdlib>

#include <algorithm>
#include <cctype>

namespace namtree {

ArgParser::ArgParser(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // `--key value`: the next token is the value unless it is itself a
      // flag. Bare `--flag` (last token or followed by another flag) stays
      // a boolean.
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string ArgParser::Raw(const std::string& key, bool* found) const {
  auto it = values_.find(key);
  if (it != values_.end()) {
    *found = true;
    return it->second;
  }
  std::string env_key = "NAMTREE_";
  for (char c : key) {
    env_key += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  }
  if (const char* env = std::getenv(env_key.c_str())) {
    *found = true;
    return env;
  }
  *found = false;
  return "";
}

bool ArgParser::Has(const std::string& key) const {
  bool found = false;
  (void)Raw(key, &found);
  return found;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& fallback) const {
  bool found = false;
  std::string v = Raw(key, &found);
  return found ? v : fallback;
}

int64_t ArgParser::GetInt(const std::string& key, int64_t fallback) const {
  bool found = false;
  std::string v = Raw(key, &found);
  if (!found) return fallback;
  return std::strtoll(v.c_str(), nullptr, 10);
}

double ArgParser::GetDouble(const std::string& key, double fallback) const {
  bool found = false;
  std::string v = Raw(key, &found);
  if (!found) return fallback;
  return std::strtod(v.c_str(), nullptr);
}

bool ArgParser::GetBool(const std::string& key, bool fallback) const {
  bool found = false;
  std::string v = Raw(key, &found);
  if (!found) return fallback;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  return v == "1" || v == "true" || v == "yes" || v == "on" || v.empty();
}

}  // namespace namtree
