#include "common/status.h"

namespace namtree {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

StatusClass StatusClassOf(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return StatusClass::kOk;
    case StatusCode::kNotFound:
      return StatusClass::kNotFound;
    case StatusCode::kUnavailable:
      return StatusClass::kUnavailable;
    case StatusCode::kTimedOut:
      return StatusClass::kTimedOut;
    case StatusCode::kOutOfMemory:
      return StatusClass::kOutOfMemory;
    case StatusCode::kAborted:
      return StatusClass::kAborted;
    default:
      return StatusClass::kOther;
  }
}

const char* StatusClassName(StatusClass cls) {
  switch (cls) {
    case StatusClass::kOk:
      return "ok";
    case StatusClass::kNotFound:
      return "not_found";
    case StatusClass::kUnavailable:
      return "unavailable";
    case StatusClass::kTimedOut:
      return "timed_out";
    case StatusClass::kOutOfMemory:
      return "out_of_memory";
    case StatusClass::kAborted:
      return "aborted";
    case StatusClass::kOther:
      return "other";
  }
  return "other";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace namtree
