#include "common/status.h"

namespace namtree {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace namtree
