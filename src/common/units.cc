#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace namtree {

std::string FormatCount(double value) {
  char buf[64];
  const double a = std::fabs(value);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fB", value / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

std::string FormatDuration(SimTime ns) {
  char buf[64];
  if (ns >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / kSecond);
  } else if (ns >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms",
                  static_cast<double>(ns) / kMillisecond);
  } else if (ns >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.2fus",
                  static_cast<double>(ns) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::string FormatBandwidth(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.2f GB/s", bytes_per_second / kGB);
  } else if (bytes_per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB/s", bytes_per_second / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B/s", bytes_per_second);
  }
  return buf;
}

}  // namespace namtree
