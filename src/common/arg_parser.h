#ifndef NAMTREE_COMMON_ARG_PARSER_H_
#define NAMTREE_COMMON_ARG_PARSER_H_

#include <cstdint>
#include <map>
#include <string>

namespace namtree {

/// Minimal `--key=value` / `--key value` / `--flag` command-line parser
/// used by the bench
/// and example binaries. Unknown keys are kept and can be enumerated so
/// callers may reject typos. Values also fall back to environment variables
/// named `NAMTREE_<UPPERCASE_KEY>` so whole bench sweeps can be re-scaled
/// without editing scripts (see DESIGN.md §4).
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  /// True if `--key` or `--key=...` was passed.
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Name of the program (argv[0]).
  const std::string& program() const { return program_; }

 private:
  /// Returns the raw string for `key` from argv or the environment, or
  /// empty optional semantics via `found`.
  std::string Raw(const std::string& key, bool* found) const;

  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace namtree

#endif  // NAMTREE_COMMON_ARG_PARSER_H_
