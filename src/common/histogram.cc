#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace namtree {

Histogram::Histogram() : buckets_(kMaxBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value <= 1) return 0;
  const double b = std::log10(static_cast<double>(value)) * kBucketsPerDecade;
  const int idx = static_cast<int>(b);
  return std::min(idx, kMaxBuckets - 1);
}

double Histogram::BucketLower(int bucket) {
  return std::pow(10.0, static_cast<double>(bucket) / kBucketsPerDecade);
}

double Histogram::BucketUpper(int bucket) {
  return std::pow(10.0, static_cast<double>(bucket + 1) / kBucketsPerDecade);
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kMaxBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      // Linear interpolation within the bucket.
      const double frac =
          buckets_[i] == 0 ? 0.0 : (target - cumulative) / buckets_[i];
      double lo = BucketLower(i);
      double hi = BucketUpper(i);
      lo = std::max(lo, static_cast<double>(min()));
      hi = std::min(hi, static_cast<double>(max_));
      if (hi < lo) hi = lo;
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                Quantile(0.5), Quantile(0.95), Quantile(0.99),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace namtree
