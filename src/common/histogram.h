#ifndef NAMTREE_COMMON_HISTOGRAM_H_
#define NAMTREE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace namtree {

/// Log-bucketed histogram for latency measurements (nanoseconds, but any
/// non-negative 64-bit metric works). Buckets grow geometrically so the
/// relative quantile error is bounded by the per-decade resolution.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Returns the value at quantile `q` in [0, 1] (e.g. 0.5 = median,
  /// 0.99 = p99) by interpolating within the containing bucket.
  double Quantile(double q) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

 private:
  static constexpr int kBucketsPerDecade = 20;
  static constexpr int kMaxBuckets = 400;  // covers ~1ns .. 10^20ns

  static int BucketFor(uint64_t value);
  static double BucketLower(int bucket);
  static double BucketUpper(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace namtree

#endif  // NAMTREE_COMMON_HISTOGRAM_H_
