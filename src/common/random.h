#ifndef NAMTREE_COMMON_RANDOM_H_
#define NAMTREE_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace namtree {

/// Deterministic, fast 64-bit PRNG (xoshiro256**). Every stochastic
/// component of the library (workload generators, simulators, tests) draws
/// from an explicitly seeded instance so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 state expansion.
  void Seed(uint64_t seed);

  /// Uniform over the full 64-bit range.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0. Uses Lemire's method to
  /// avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in the closed interval [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed generator over {0, ..., n-1} with exponent `theta`
/// (YCSB uses theta = 0.99). Implements the Gray et al. rejection-free
/// algorithm used by YCSB's ScrambledZipfianGenerator, without scrambling:
/// rank 0 is the most popular item.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Draws the next rank in [0, n).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

/// Produces a deterministic pseudo-random permutation index: maps
/// `i in [0, n)` to another element of [0, n) bijectively. Used to scatter
/// Zipf ranks over the key space (YCSB "scrambled zipfian").
uint64_t FnvScramble(uint64_t i, uint64_t n);

}  // namespace namtree

#endif  // NAMTREE_COMMON_RANDOM_H_
