#include "common/random.h"

namespace namtree {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n_ > 0);
  assert(theta_ > 0.0 && theta_ < 1.0);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t FnvScramble(uint64_t i, uint64_t n) {
  // FNV-1a style avalanche, folded into [0, n). Not a strict bijection for
  // arbitrary n, but a uniform scatter is all YCSB needs.
  uint64_t h = 0xCBF29CE484222325ull;
  for (int b = 0; b < 8; ++b) {
    h ^= (i >> (b * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  h ^= h >> 33;
  return h % n;
}

}  // namespace namtree
