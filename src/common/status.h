#ifndef NAMTREE_COMMON_STATUS_H_
#define NAMTREE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace namtree {

/// Error categories used across the library. Modelled after the
/// RocksDB/Arrow convention of returning a `Status` instead of throwing.
enum class StatusCode {
  kOk = 0,
  kNotFound,        ///< Key (or resource) does not exist.
  kAlreadyExists,   ///< Unique-key violation or duplicate resource.
  kInvalidArgument, ///< Caller error: bad parameter.
  kOutOfMemory,     ///< A memory-server region is exhausted.
  kCorruption,      ///< An invariant of an on-"disk" (region) page is broken.
  kAborted,         ///< Operation lost an optimistic race and gave up.
  kUnavailable,     ///< Target server/queue pair is not reachable.
  kTimedOut,        ///< Simulated deadline exceeded.
  kUnsupported,     ///< Operation not supported by this index design.
  // Appended after kUnsupported so wire-encoded codes (RpcResponse::status)
  // stay stable across versions.
  kResourceExhausted, ///< A bounded resource (replica stripe, quota) ran out.
};

/// Returns a human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Coarse status classes used wherever outcomes are bucketed — the YCSB
/// runner's failure breakdown and the metric registry's `class` label share
/// this one mapping, so the two can never drift apart.
enum class StatusClass {
  kOk = 0,
  kNotFound,
  kUnavailable,
  kTimedOut,
  kOutOfMemory,
  kAborted,
  kOther,  ///< any code without a dedicated bucket
};

inline constexpr int kNumStatusClasses =
    static_cast<int>(StatusClass::kOther) + 1;

StatusClass StatusClassOf(StatusCode code);

/// Stable lower_snake name used as the `class` metric label and in JSON
/// artifacts: "ok", "not_found", "unavailable", ...
const char* StatusClassName(StatusClass cls);

/// A cheap, copyable success/error value. OK status carries no allocation.
/// [[nodiscard]]: silently dropping a Status hides protocol failures
/// (kUnavailable after a crash, kTimedOut after retry exhaustion); cast to
/// void and annotate with '// namtree-lint: status-ok(<why>)' when a drop
/// is deliberate.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg = "") {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unsupported(std::string msg = "") {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Rebuilds a Status from a wire-encoded code (RPC responses carry the
  /// StatusCode as an integer; see rdma::RpcResponse::status).
  static Status FromCode(StatusCode code, std::string msg = "") {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, used where a function produces a value that may
/// legitimately fail (e.g., a lookup that can miss).
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace namtree

#endif  // NAMTREE_COMMON_STATUS_H_
