#ifndef NAMTREE_COMMON_METRICS_H_
#define NAMTREE_COMMON_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"

namespace namtree::metrics {

class MetricRegistry;

/// Ordered label key/value pairs attached to one metric handle, e.g.
/// {{"client", "3"}}. Every handle of a family must carry the same keys in
/// the same order; values distinguish the cells.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : uint8_t {
  kCounter,    ///< monotone within a window; Delta subtracts, reset-aware
  kGauge,      ///< point-in-time level; Delta reports the end value
  kHistogram,  ///< value distribution; Snapshot merges cells per label set
  kCallback,   ///< counter read through a function at Collect() time
};

/// A registered monotone counter. The handle owns the storage: the hot-path
/// increment is a plain `uint64_t` bump with no indirection, so migrating a
/// bare field to a Counter cannot perturb simulated behavior. `Inc()` is
/// the one sanctioned mutation path (lint rule 8 `raw-counter-field` keeps
/// bare fields from growing back); reads convert implicitly.
class Counter {
 public:
  Counter() = default;
  ~Counter();
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) { value_ += n; }
  /// Zeroes the cell (measurement-interval reset, e.g. Fabric::ResetStats).
  /// Delta windows spanning a Reset report the post-reset value.
  void Reset() { value_ = 0; }

  uint64_t value() const { return value_; }
  /* implicit */ operator uint64_t() const { return value_; }

 private:
  friend class MetricRegistry;
  uint64_t value_ = 0;
  MetricRegistry* registry_ = nullptr;
  uint32_t family_ = 0;
  uint32_t cell_ = 0;
};

/// A registered level (e.g. configured client count). Delta reports the end
/// value instead of a difference.
class Gauge {
 public:
  Gauge() = default;
  ~Gauge();
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(uint64_t v) { value_ = v; }
  void Add(uint64_t n = 1) { value_ += n; }
  void Sub(uint64_t n = 1) { value_ -= n; }
  uint64_t value() const { return value_; }
  /* implicit */ operator uint64_t() const { return value_; }

 private:
  friend class MetricRegistry;
  uint64_t value_ = 0;
  MetricRegistry* registry_ = nullptr;
  uint32_t family_ = 0;
  uint32_t cell_ = 0;
};

/// A registered distribution (log-bucketed, see common/histogram.h).
/// Snapshot merges all cells that share label values into one histogram.
class Histogram {
 public:
  Histogram() = default;
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t v) { hist_.Add(v); }
  const ::namtree::Histogram& data() const { return hist_; }

 private:
  friend class MetricRegistry;
  ::namtree::Histogram hist_;
  MetricRegistry* registry_ = nullptr;
  uint32_t family_ = 0;
  uint32_t cell_ = 0;
};

/// One family's aggregated samples at Collect() time: per distinct label
/// values (first-seen order), live cells + retired residue summed.
struct FamilySample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::vector<std::string> label_keys;
  /// label values -> summed value. For histogram families this is the
  /// observation count; the merged distribution is in `hists`.
  std::vector<std::pair<std::vector<std::string>, uint64_t>> values;
  std::vector<std::pair<std::vector<std::string>, ::namtree::Histogram>>
      hists;
};

/// A point-in-time copy of every family (registration order). Cheap: one
/// uint64 (plus one histogram copy per histogram cell) per label set.
class Snapshot {
 public:
  /// Sum of all cells of `family` (0 when absent).
  uint64_t Value(std::string_view family) const;
  /// Sum of the cells whose label `key` equals `value`.
  uint64_t Value(std::string_view family, std::string_view key,
                 std::string_view value) const;
  bool Has(std::string_view family) const;
  const std::vector<FamilySample>& families() const { return families_; }

 private:
  friend class MetricRegistry;
  friend class Delta;
  std::vector<FamilySample> families_;
};

/// The window between two snapshots: per label set, counters/callbacks are
/// end-minus-begin with Prometheus-style reset detection (`end < begin`
/// reports `end`, so a window spanning Fabric::ResetStats reproduces the
/// legacy "since last reset" reading); gauges report the end level;
/// histogram families report the windowed observation count in `values`
/// and the cumulative end-of-window distribution in `hists`. Cells created
/// mid-window count from zero. Default-constructed Delta is empty (every
/// lookup returns 0) — ycsb::RunResult relies on that.
class Delta {
 public:
  Delta() = default;
  static Delta Between(const Snapshot& begin, const Snapshot& end);

  uint64_t Value(std::string_view family) const;
  uint64_t Value(std::string_view family, std::string_view key,
                 std::string_view value) const;
  bool Has(std::string_view family) const;
  const std::vector<FamilySample>& families() const { return families_; }

 private:
  std::vector<FamilySample> families_;
};

/// One registry of named metric families, each fanned out over label
/// values. Handles (Counter/Gauge/Histogram) own their storage and register
/// by address; destroying a handle folds its final value into a per-label
/// "retired" residue so family totals stay monotone across handle churn
/// (e.g. per-run ClientContexts on a long-lived fabric). Single-threaded by
/// design, like the simulator it instruments.
///
/// Adding a metric is one line at the owning struct plus one Register call:
///   metrics::Counter frobs;                      // member
///   registry.RegisterCounter(frobs, "x.frobs");  // ctor
/// It then appears in every Snapshot/Delta and every bench --json artifact
/// with no serializer edits.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  void RegisterCounter(Counter& c, std::string_view name,
                       LabelSet labels = {}, std::string_view help = {});
  void RegisterGauge(Gauge& g, std::string_view name, LabelSet labels = {},
                     std::string_view help = {});
  void RegisterHistogram(Histogram& h, std::string_view name,
                         LabelSet labels = {}, std::string_view help = {});
  /// Registers a counter whose value is produced by `fn` at Collect()/
  /// Value() time — for totals maintained elsewhere (link byte counts,
  /// auditor tallies). The callback must outlive the registry or be
  /// removed with the owning object (callbacks are never unregistered;
  /// register them only from owners that live as long as the registry).
  void RegisterCallback(std::string_view name,
                        std::function<uint64_t()> fn, LabelSet labels = {},
                        std::string_view help = {});

  Snapshot Collect() const;

  /// Live aggregated reads without building a full Snapshot.
  uint64_t Value(std::string_view family) const;
  uint64_t Value(std::string_view family, std::string_view key,
                 std::string_view value) const;
  /// Help string of `family` ("" when absent).
  std::string_view Help(std::string_view family) const;
  size_t family_count() const { return families_.size(); }

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Cell {
    std::vector<std::string> label_values;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::function<uint64_t()> callback;
    bool live = false;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<std::string> label_keys;
    std::vector<Cell> cells;
    /// Final values of destroyed handles, keyed by label values; keeps
    /// per-label totals monotone across handle churn.
    std::map<std::vector<std::string>, uint64_t> retired;
    std::map<std::vector<std::string>, ::namtree::Histogram> retired_hists;
  };

  Family& FamilyFor(std::string_view name, MetricKind kind,
                    const LabelSet& labels, std::string_view help);
  uint32_t AddCell(Family& family, const LabelSet& labels);
  void Unregister(uint32_t family, uint32_t cell, uint64_t final_value,
                  const ::namtree::Histogram* final_hist);

  std::vector<Family> families_;
  std::map<std::string, uint32_t, std::less<>> index_;
};

// ---------------------------------------------------------------------------
// Per-operation tracing
// ---------------------------------------------------------------------------

/// Verb kinds recorded in a span (the one-sided verbs plus two-sided RPC).
enum class TraceVerb : uint8_t {
  kRead,
  kWrite,
  kCas,
  kFaa,
  kRpc,
  kReadBatch,  ///< doorbell-batched multi-page READ (speculative descent)
};

const char* TraceVerbName(TraceVerb verb);

/// One verb-level event inside an op span, in virtual time.
struct TraceEvent {
  TraceVerb verb = TraceVerb::kRead;
  uint32_t server = 0;  ///< target memory server
  /// Per-client doorbell chain id this verb rode in (0 = standalone verb).
  uint64_t chain = 0;
  SimTime start = 0;
  SimTime finish = 0;
};

/// One traced index operation: op label, window, and the verbs it issued.
struct SpanRecord {
  std::string op;  ///< op label ("point", "insert", "scan", ...)
  uint64_t id = 0;  ///< per-client span sequence number
  SimTime start = 0;
  SimTime finish = 0;
  std::vector<TraceEvent> events;
  /// Events dropped after kMaxEventsPerSpan (giant scans stay bounded).
  uint32_t truncated = 0;

  SimTime duration() const { return finish - start; }
  /// "point #12 [17..42us] 3 verbs:" plus one indented line per verb.
  std::string ToString() const;
};

/// Bounded per-client trace of op spans. Off by default — `Event()` and
/// span begin/end are no-ops until `Enable()`, so knobs-off runs do no
/// tracing work beyond one branch. Owned by nam::ClientContext; verb events
/// are recorded by the counted-verb helpers (index::RemoteOps, ClientContext
/// ::Call), spans are opened by the YCSB runner and index entry points.
/// Completed spans land in a ring of the newest `ring_capacity` records;
/// the slowest `outliers_per_op` spans per op label are retained separately
/// (the top-K stand-in for the slowest percentile) and can be dumped
/// verb-by-verb via DumpOutliers().
class OpTrace {
 public:
  static constexpr size_t kDefaultRingCapacity = 256;
  static constexpr size_t kDefaultOutliersPerOp = 4;
  static constexpr size_t kMaxEventsPerSpan = 512;

  explicit OpTrace(uint32_t client_id = 0) : client_id_(client_id) {}

  /// Installs the virtual-time source (the owning context wires this to
  /// its simulator). Required before Enable().
  void SetClock(std::function<SimTime()> now) { now_ = std::move(now); }

  void Enable(size_t ring_capacity = kDefaultRingCapacity,
              size_t outliers_per_op = kDefaultOutliersPerOp);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  bool in_span() const { return open_; }
  uint32_t client_id() const { return client_id_; }

  /// Opens a span; returns false (and records nothing) when tracing is off
  /// or a span is already open — nested index-entry spans stay inert under
  /// the runner's outer span. Use the RAII OpSpan instead of calling this
  /// directly.
  bool BeginSpan(const char* op);
  void EndSpan();

  /// Records one verb event into the open span (dropped when no span is
  /// open). `start` is the virtual time captured before the verb was
  /// issued; finish is now().
  void Event(TraceVerb verb, uint32_t server, uint64_t chain, SimTime start);

  /// Hands out per-client chain ids for doorbell-batched verb chains.
  uint64_t NextChainId() { return ++next_chain_id_; }

  /// Completed spans, oldest first, at most `ring_capacity` of them.
  const std::deque<SpanRecord>& ring() const { return ring_; }
  /// The retained slowest spans for `op`, slowest first.
  std::vector<const SpanRecord*> SlowestFor(std::string_view op) const;
  /// Called whenever a completed span enters the slowest-K set for its op.
  void SetOutlierHook(std::function<void(const SpanRecord&)> hook) {
    outlier_hook_ = std::move(hook);
  }
  /// Verb-by-verb dump of the slowest spans per op label.
  std::string DumpOutliers() const;

 private:
  uint32_t client_id_ = 0;
  bool enabled_ = false;
  bool open_ = false;
  size_t ring_capacity_ = kDefaultRingCapacity;
  size_t outliers_per_op_ = kDefaultOutliersPerOp;
  uint64_t next_span_id_ = 0;
  uint64_t next_chain_id_ = 0;
  std::function<SimTime()> now_;
  SpanRecord current_;
  std::deque<SpanRecord> ring_;
  /// op label -> retained spans, kept sorted slowest-first.
  std::map<std::string, std::vector<SpanRecord>, std::less<>> outliers_;
  std::function<void(const SpanRecord&)> outlier_hook_;
};

/// RAII op span: opens on construction (inert when tracing is off or an
/// outer span is already open), closes on destruction.
class OpSpan {
 public:
  OpSpan(OpTrace& trace, const char* op)
      : trace_(&trace), owns_(trace.BeginSpan(op)) {}
  ~OpSpan() {
    if (owns_) trace_->EndSpan();
  }
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

  /// True when this span actually records (outermost span, tracing on).
  bool active() const { return owns_; }

 private:
  OpTrace* trace_;
  bool owns_;
};

}  // namespace namtree::metrics

#endif  // NAMTREE_COMMON_METRICS_H_
