#ifndef NAMTREE_COMMON_UNITS_H_
#define NAMTREE_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace namtree {

// The simulator's unit of virtual time.
using SimTime = int64_t;  // nanoseconds

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr uint64_t kKiB = 1024ull;
constexpr uint64_t kMiB = 1024ull * kKiB;
constexpr uint64_t kGiB = 1024ull * kMiB;
constexpr double kGB = 1e9;  // decimal GB, used for link bandwidth

/// Formats a count with engineering suffixes: 1234567 -> "1.2M".
std::string FormatCount(double value);

/// Formats nanoseconds with an adaptive unit: 2500 -> "2.5us".
std::string FormatDuration(SimTime ns);

/// Formats a rate in bytes/s as "12.3 GB/s" (decimal GB).
std::string FormatBandwidth(double bytes_per_second);

}  // namespace namtree

#endif  // NAMTREE_COMMON_UNITS_H_
