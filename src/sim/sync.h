#ifndef NAMTREE_SIM_SYNC_H_
#define NAMTREE_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/simulator.h"
#include "sim/task.h"

namespace namtree::sim {

/// Counting semaphore for coroutines in virtual time. FIFO wakeups.
///
///   co_await sem.Acquire();
///   ...
///   sem.Release();
class Semaphore {
 public:
  Semaphore(Simulator& simulator, uint64_t initial)
      : simulator_(simulator), count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  uint64_t available() const { return count_; }
  size_t waiters() const { return waiters_.size(); }

  auto Acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() {
        if (sem.count_ > 0) {
          sem.count_--;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() {}
    };
    return Awaiter{*this};
  }

  /// Non-blocking acquire; true when a unit was taken.
  bool TryAcquire() {
    if (count_ == 0) return false;
    count_--;
    return true;
  }

  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // The released unit transfers directly to the waiter.
      simulator_.ScheduleAt(simulator_.now(), h);
      return;
    }
    count_++;
  }

 private:
  Simulator& simulator_;
  uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier: the `parties`-th arriving coroutine releases everyone
/// and the barrier resets for the next round (generation-counted).
class Barrier {
 public:
  Barrier(Simulator& simulator, uint32_t parties)
      : simulator_(simulator), parties_(parties) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  uint32_t parties() const { return parties_; }
  uint64_t generation() const { return generation_; }

  auto Arrive() {
    struct Awaiter {
      Barrier& barrier;
      bool await_ready() {
        if (barrier.arrived_ + 1 == barrier.parties_) {
          // Last arriver: trip the barrier.
          barrier.arrived_ = 0;
          barrier.generation_++;
          for (auto h : barrier.waiters_) {
            barrier.simulator_.ScheduleAt(barrier.simulator_.now(), h);
          }
          barrier.waiters_.clear();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        barrier.arrived_++;
        barrier.waiters_.push_back(h);
      }
      void await_resume() {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& simulator_;
  uint32_t parties_;
  uint32_t arrived_ = 0;
  uint64_t generation_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Level-triggered gate: closed blocks awaiting coroutines, open passes
/// them through (and releases current waiters). Unlike SimEvent it can be
/// re-closed.
class Gate {
 public:
  explicit Gate(Simulator& simulator, bool open = false)
      : simulator_(simulator), open_(open) {}

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const { return open_; }

  void Open() {
    open_ = true;
    for (auto h : waiters_) simulator_.ScheduleAt(simulator_.now(), h);
    waiters_.clear();
  }

  void Close() { open_ = false; }

  auto Wait() {
    struct Awaiter {
      Gate& gate;
      bool await_ready() const { return gate.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        gate.waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& simulator_;
  bool open_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace namtree::sim

#endif  // NAMTREE_SIM_SYNC_H_
