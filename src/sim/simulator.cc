#include "sim/simulator.h"

#include <algorithm>

namespace namtree::sim {

void Simulator::ScheduleAt(SimTime t, std::coroutine_handle<> h) {
  queue_.push(Event{std::max(t, now_), next_seq_++, h});
}

Simulator::CancelToken Simulator::ScheduleCancellableAt(
    SimTime t, std::coroutine_handle<> h) {
  CancelToken token = next_seq_;
  queue_.push(Event{std::max(t, now_), next_seq_++, h});
  return token;
}

void Simulator::Cancel(CancelToken token) { cancelled_.insert(token); }

SimTime Simulator::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // A cancelled event is discarded without touching the clock: a disarmed
    // far-future timer must not stretch the run's final virtual time.
    if (cancelled_.erase(ev.seq) != 0) continue;
    now_ = ev.time;
    events_processed_++;
    ev.handle.resume();
  }
  return now_;
}

bool Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.seq) != 0) continue;
    now_ = ev.time;
    events_processed_++;
    ev.handle.resume();
  }
  now_ = std::max(now_, std::min(deadline, now_));
  if (queue_.empty()) return false;
  now_ = deadline;
  return true;
}

}  // namespace namtree::sim
