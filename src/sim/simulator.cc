#include "sim/simulator.h"

#include <algorithm>

namespace namtree::sim {

namespace {

/// splitmix64: a cheap, high-quality 64-bit mixer. Used to derive the
/// per-event permutation keys and jitter amounts from (seed, seq) so every
/// schedule is a pure function of the seed — portable across hosts and
/// standard libraries.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void Simulator::ConfigureSchedule(uint64_t seed, SimTime max_jitter_ns) {
  schedule_seed_ = seed;
  schedule_jitter_ns_ = max_jitter_ns;
}

uint64_t Simulator::TieBreak(uint64_t seq) const {
  if (schedule_seed_ == 0) return seq;
  return Mix64(seq ^ Mix64(schedule_seed_));
}

SimTime Simulator::JitterFor(uint64_t seq) const {
  if (schedule_jitter_ns_ <= 0) return 0;
  const uint64_t h = Mix64(seq * 0x632BE59BD9B4E019ull + schedule_seed_);
  return static_cast<SimTime>(
      h % static_cast<uint64_t>(schedule_jitter_ns_ + 1));
}

void Simulator::ScheduleAt(SimTime t, std::coroutine_handle<> h) {
  const uint64_t seq = next_seq_++;
  queue_.push(Event{std::max(t, now_) + JitterFor(seq), TieBreak(seq), seq,
                    h});
}

Simulator::CancelToken Simulator::ScheduleCancellableAt(
    SimTime t, std::coroutine_handle<> h) {
  const uint64_t seq = next_seq_++;
  queue_.push(Event{std::max(t, now_) + JitterFor(seq), TieBreak(seq), seq,
                    h});
  return seq;
}

void Simulator::Cancel(CancelToken token) { cancelled_.insert(token); }

SimTime Simulator::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // A cancelled event is discarded without touching the clock: a disarmed
    // far-future timer must not stretch the run's final virtual time.
    if (cancelled_.erase(ev.seq) != 0) continue;
    now_ = ev.time;
    events_processed_++;
    ev.handle.resume();
  }
  return now_;
}

bool Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.seq) != 0) continue;
    now_ = ev.time;
    events_processed_++;
    ev.handle.resume();
  }
  now_ = std::max(now_, std::min(deadline, now_));
  if (queue_.empty()) return false;
  now_ = deadline;
  return true;
}

std::string ScheduleExplorer::Report::ToString() const {
  std::string s = "explored " + std::to_string(seeds_run) + " seed(s): ";
  if (clean()) return s + "all clean";
  s += std::to_string(failing_seeds.size()) + " failing, first seed " +
       std::to_string(first_failing_seed) + " (" + first_failure.ToString() +
       "), replay " +
       (replay_deterministic ? "deterministic" : "NOT deterministic");
  return s;
}

ScheduleExplorer::Report ScheduleExplorer::Explore(const Options& options,
                                                   const Body& body) {
  Report report;
  for (uint32_t i = 0; i < options.num_seeds; ++i) {
    const uint64_t seed = options.base_seed + i;
    const Status status = body(seed);
    report.seeds_run++;
    if (status.ok()) continue;
    report.failing_seeds.push_back(seed);
    if (report.failing_seeds.size() == 1) {
      report.first_failing_seed = seed;
      report.first_failure = status;
    }
    if (options.stop_at_first_failure) break;
  }
  if (!report.clean() && options.confirm_replay) {
    // Ascending exploration already makes the reported seed minimal; the
    // replay run proves the seed alone reproduces the failure.
    const Status replay = body(report.first_failing_seed);
    report.replay_deterministic =
        !replay.ok() && replay.code() == report.first_failure.code();
  }
  return report;
}

}  // namespace namtree::sim
