#include "sim/simulator.h"

#include <algorithm>

namespace namtree::sim {

void Simulator::ScheduleAt(SimTime t, std::coroutine_handle<> h) {
  queue_.push(Event{std::max(t, now_), next_seq_++, h});
}

SimTime Simulator::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    events_processed_++;
    ev.handle.resume();
  }
  return now_;
}

bool Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    events_processed_++;
    ev.handle.resume();
  }
  now_ = std::max(now_, std::min(deadline, now_));
  if (queue_.empty()) return false;
  now_ = deadline;
  return true;
}

}  // namespace namtree::sim
