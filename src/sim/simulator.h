#ifndef NAMTREE_SIM_SIMULATOR_H_
#define NAMTREE_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace namtree::sim {

/// Deterministic discrete-event scheduler with a virtual nanosecond clock.
///
/// All concurrency in the simulated NAM cluster (client threads, memory
/// server workers, NIC transfers) is expressed as C++20 coroutines that
/// suspend on awaitables which schedule their resumption here. Events with
/// equal timestamps fire in schedule order (a monotonically increasing
/// sequence number breaks ties), so a given seed always yields the same
/// execution — independent of host core count.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in nanoseconds.
  SimTime now() const { return now_; }

  /// Schedules `h` to resume at absolute virtual time `t` (clamped to now).
  void ScheduleAt(SimTime t, std::coroutine_handle<> h);

  /// Schedules `h` to resume `delta` nanoseconds from now.
  void ScheduleAfter(SimTime delta, std::coroutine_handle<> h) {
    ScheduleAt(now_ + delta, h);
  }

  /// Token identifying a cancellable scheduled resumption.
  using CancelToken = uint64_t;

  /// Like ScheduleAt, but returns a token that `Cancel` accepts. Used for
  /// timers that may be disarmed before they fire (RPC deadlines).
  CancelToken ScheduleCancellableAt(SimTime t, std::coroutine_handle<> h);

  /// Disarms a pending cancellable resumption. The queued event is skipped
  /// at pop time without advancing the clock or resuming the handle. Must
  /// not be called for an event that has already fired (the token would
  /// linger in the cancelled set forever).
  void Cancel(CancelToken token);

  /// Runs until the event queue is empty. Returns the final virtual time.
  SimTime Run();

  /// Runs events with timestamp <= `deadline`; afterwards `now() ==
  /// min(deadline, drain time)`. Returns true if events remain queued.
  bool RunUntil(SimTime deadline);

  /// Total number of events processed so far (cheap progress/debug metric).
  uint64_t events_processed() const { return events_processed_; }

  /// Number of events currently queued.
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_set<uint64_t> cancelled_;  // seq numbers of disarmed events
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace namtree::sim

#endif  // NAMTREE_SIM_SIMULATOR_H_
