#ifndef NAMTREE_SIM_SIMULATOR_H_
#define NAMTREE_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace namtree::sim {

/// Deterministic discrete-event scheduler with a virtual nanosecond clock.
///
/// All concurrency in the simulated NAM cluster (client threads, memory
/// server workers, NIC transfers) is expressed as C++20 coroutines that
/// suspend on awaitables which schedule their resumption here. Events with
/// equal timestamps fire in schedule order (a monotonically increasing
/// sequence number breaks ties), so a given seed always yields the same
/// execution — independent of host core count.
///
/// The tie-break among equal-timestamp events is itself a degree of freedom
/// of the modeled hardware: a real fabric gives no ordering guarantee
/// between verbs that complete "at the same time" on different queue pairs.
/// `ConfigureSchedule` re-permutes that tie-break (and can inject bounded
/// extra delays), turning one test body into a family of equally legal
/// schedules — the search space of the ScheduleExplorer below.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in nanoseconds.
  SimTime now() const { return now_; }

  /// Schedules `h` to resume at absolute virtual time `t` (clamped to now).
  void ScheduleAt(SimTime t, std::coroutine_handle<> h);

  /// Schedules `h` to resume `delta` nanoseconds from now.
  void ScheduleAfter(SimTime delta, std::coroutine_handle<> h) {
    ScheduleAt(now_ + delta, h);
  }

  /// Token identifying a cancellable scheduled resumption.
  using CancelToken = uint64_t;

  /// Like ScheduleAt, but returns a token that `Cancel` accepts. Used for
  /// timers that may be disarmed before they fire (RPC deadlines).
  CancelToken ScheduleCancellableAt(SimTime t, std::coroutine_handle<> h);

  /// Disarms a pending cancellable resumption. The queued event is skipped
  /// at pop time without advancing the clock or resuming the handle. Must
  /// not be called for an event that has already fired (the token would
  /// linger in the cancelled set forever).
  void Cancel(CancelToken token);

  /// Runs until the event queue is empty. Returns the final virtual time.
  SimTime Run();

  /// Runs events with timestamp <= `deadline`; afterwards `now() ==
  /// min(deadline, drain time)`. Returns true if events remain queued.
  bool RunUntil(SimTime deadline);

  /// Selects the schedule of this run. `seed == 0` restores the legacy
  /// FIFO tie-break (bit-identical to runs predating schedule exploration);
  /// any other seed deterministically permutes the firing order of
  /// equal-timestamp events. `max_jitter_ns > 0` additionally delays every
  /// scheduled event by a seed-deterministic amount in [0, max_jitter_ns]
  /// (bounded delay injection). Call before (or between) runs, not while
  /// events that must stay ordered are queued.
  void ConfigureSchedule(uint64_t seed, SimTime max_jitter_ns = 0);

  uint64_t schedule_seed() const { return schedule_seed_; }

  /// Total number of events processed so far (cheap progress/debug metric).
  uint64_t events_processed() const { return events_processed_; }

  /// Number of events currently queued.
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t tie;  // schedule-seed permutation key among equal timestamps
    uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      if (tie != other.tie) return tie > other.tie;
      return seq > other.seq;
    }
  };

  /// Permutation key for event `seq`: the seq itself under the legacy
  /// schedule, a seed-keyed hash otherwise.
  uint64_t TieBreak(uint64_t seq) const;

  /// Deterministic extra delay for event `seq` (0 without jitter).
  SimTime JitterFor(uint64_t seq) const;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_set<uint64_t> cancelled_;  // seq numbers of disarmed events
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  // namtree-lint: metric-ok(engine-internal diagnostic beneath the layer that owns the registry; read via accessor, never plumbed into results)
  uint64_t events_processed_ = 0;
  uint64_t schedule_seed_ = 0;
  SimTime schedule_jitter_ns_ = 0;
};

/// Replays a deterministic test body across a range of schedule seeds and
/// shrinks to the smallest failing seed.
///
/// The body builds its *own* simulator/fabric/cluster for every invocation
/// (passing the seed through FabricConfig::schedule_seed or directly to
/// Simulator::ConfigureSchedule) and returns OK when the run was clean —
/// typically Fabric::CheckAuditClean() plus any test-specific invariants.
/// Seeds are explored in ascending order, so the first failure reported is
/// already the minimal seed of the explored range; the explorer then
/// re-runs that seed once to confirm the failure replays deterministically
/// (the property CI relies on for one-command reproduction).
class ScheduleExplorer {
 public:
  struct Options {
    /// First seed explored. Include 0 to also cover the legacy FIFO order.
    uint64_t base_seed = 1;
    /// Number of consecutive seeds [base_seed, base_seed + num_seeds).
    uint32_t num_seeds = 8;
    /// Stop at the first failing seed (it is minimal by construction).
    bool stop_at_first_failure = true;
    /// Re-run the first failing seed to verify deterministic replay.
    bool confirm_replay = true;
  };

  /// One full build-run-check cycle under the given schedule seed.
  using Body = std::function<Status(uint64_t schedule_seed)>;

  struct Report {
    uint32_t seeds_run = 0;
    std::vector<uint64_t> failing_seeds;
    uint64_t first_failing_seed = 0;  ///< valid when !clean()
    Status first_failure;             ///< OK when clean()
    /// True when the confirming re-run of the first failing seed failed
    /// the same way (or no confirmation was requested/needed).
    bool replay_deterministic = true;

    bool clean() const { return failing_seeds.empty(); }
    std::string ToString() const;
  };

  static Report Explore(const Options& options, const Body& body);
};

}  // namespace namtree::sim

#endif  // NAMTREE_SIM_SIMULATOR_H_
