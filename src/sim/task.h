#ifndef NAMTREE_SIM_TASK_H_
#define NAMTREE_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

#include "sim/simulator.h"

namespace namtree::sim {

namespace internal {

/// Shared promise behaviour for Task<T> and Task<void>: lazy start, resume
/// of the awaiting parent on completion (symmetric transfer), and
/// self-destruction for detached (Spawn-ed) root coroutines.
struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.detached) h.destroy();
      return std::noop_coroutine();
    }

    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }

  // The library is exception-free by design (Status returns); any escaping
  // exception is a bug.
  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace internal

/// A lazily-started coroutine usable in simulated time.
///
/// `co_await`-ing a Task starts it immediately and resumes the awaiter when
/// it finishes (possibly at a later virtual time). Root tasks are handed to
/// `Spawn()`, which detaches them onto the simulator's event queue.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    T value{};

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  /// Relinquishes ownership of the coroutine frame (used by Spawn).
  Handle Release() { return std::exchange(handle_, {}); }

  // --- awaiter interface -------------------------------------------------
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // start the child now
  }
  T await_resume() { return std::move(handle_.promise().value); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  Handle Release() { return std::exchange(handle_, {}); }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {}

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

/// Detaches `task` as a root coroutine: it starts at the current virtual
/// time and frees its own frame when it completes.
inline void Spawn(Simulator& simulator, Task<> task) {
  auto h = task.Release();
  assert(h && "cannot spawn an empty task");
  h.promise().detached = true;
  simulator.ScheduleAt(simulator.now(), h);
}

/// Awaitable that suspends the coroutine for `delta` virtual nanoseconds.
/// A zero delay is still a yield point (other ready events run first).
class Delay {
 public:
  Delay(Simulator& simulator, SimTime delta)
      : simulator_(simulator), delta_(delta) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    simulator_.ScheduleAfter(delta_, h);
  }
  void await_resume() const noexcept {}

 private:
  Simulator& simulator_;
  SimTime delta_;
};

/// Awaitable that suspends until an absolute virtual time.
inline Delay DelayUntil(Simulator& simulator, SimTime t) {
  SimTime delta = t - simulator.now();
  return Delay(simulator, delta > 0 ? delta : 0);
}

/// One-shot completion event: any number of coroutines may await it; all are
/// resumed (in await order) when `Set()` fires. Awaiting after `Set()`
/// completes immediately. Not resettable.
class SimEvent {
 public:
  explicit SimEvent(Simulator& simulator) : simulator_(simulator) {}

  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  bool is_set() const { return set_; }

  void Set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) simulator_.ScheduleAt(simulator_.now(), h);
    waiters_.clear();
  }

  bool await_ready() const noexcept { return set_; }
  void await_suspend(std::coroutine_handle<> h) { waiters_.push_back(h); }
  void await_resume() const noexcept {}

 private:
  Simulator& simulator_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot completion event with an optional deadline, for a single
/// waiter. `AwaitUntil(deadline)` suspends until either `Set()` fires
/// (resumes with true) or the absolute virtual deadline passes (resumes
/// with false); a deadline of 0 waits forever. The timed-out waiter's
/// frame may then be destroyed safely: a later `Set()` finds no waiter and
/// only records the flag. Backs the RPC-timeout path (rdma::PendingCall).
class DeadlineEvent {
 public:
  explicit DeadlineEvent(Simulator& simulator) : simulator_(simulator) {}

  DeadlineEvent(const DeadlineEvent&) = delete;
  DeadlineEvent& operator=(const DeadlineEvent&) = delete;

  bool is_set() const { return set_; }

  void Set() {
    if (set_) return;
    set_ = true;
    if (waiter_) {
      // The waiter is parked on its deadline timer; disarm it and resume
      // the waiter now instead. Cancelling here (not in await_resume) keeps
      // every armed timer matched by exactly one Cancel or one firing.
      if (timer_armed_) {
        simulator_.Cancel(timer_token_);
        timer_armed_ = false;
      }
      simulator_.ScheduleAt(simulator_.now(), std::exchange(waiter_, {}));
    }
  }

  /// Awaitable: true = Set() fired, false = deadline expired first.
  auto AwaitUntil(SimTime deadline) {
    struct Awaiter {
      DeadlineEvent& ev;
      SimTime deadline;

      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!ev.waiter_ && "DeadlineEvent supports a single waiter");
        ev.waiter_ = h;
        if (deadline > 0) {
          ev.timer_token_ = ev.simulator_.ScheduleCancellableAt(deadline, h);
          ev.timer_armed_ = true;
        }
      }
      bool await_resume() const noexcept {
        // Reached via Set() (timer already disarmed there) or via the
        // timer firing (the event was consumed by the pop — no Cancel).
        ev.waiter_ = {};
        ev.timer_armed_ = false;
        return ev.set_;
      }
    };
    return Awaiter{*this, deadline};
  }

 private:
  Simulator& simulator_;
  bool set_ = false;
  bool timer_armed_ = false;
  Simulator::CancelToken timer_token_ = 0;
  std::coroutine_handle<> waiter_;
};

}  // namespace namtree::sim

#endif  // NAMTREE_SIM_TASK_H_
