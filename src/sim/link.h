#ifndef NAMTREE_SIM_LINK_H_
#define NAMTREE_SIM_LINK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/units.h"

namespace namtree::sim {

/// A serialized transmission channel (one direction of a NIC port).
///
/// Transfers are granted in request order: a transfer requested at virtual
/// time `t` starts when the channel becomes free and occupies it for
/// `bytes / bandwidth`. This models head-of-line queueing at a saturated
/// port, which is exactly the bottleneck the paper's coarse-grained designs
/// hit under skew.
class Link {
 public:
  /// `bytes_per_second`: channel capacity, e.g. 6.8e9 for InfiniBand FDR 4x.
  explicit Link(double bytes_per_second)
      : bytes_per_ns_(bytes_per_second / 1e9) {}

  /// Reserves the channel for a `bytes`-sized transfer requested at `now`.
  /// Returns the virtual time at which the last byte has left the channel.
  SimTime ReserveTransfer(SimTime now, uint64_t bytes) {
    const SimTime start = std::max(now, next_free_);
    const SimTime duration = TransferDuration(bytes);
    next_free_ = start + duration;
    total_bytes_ += bytes;
    total_transfers_++;
    busy_time_ += duration;
    return next_free_;
  }

  /// Reserves the channel for a transfer whose first byte arrives at
  /// `ideal_start` (e.g. a transfer already serialized upstream): if the
  /// channel is free it finishes at `ideal_start + duration`, otherwise it
  /// queues behind earlier traffic. Used for the receive side of a
  /// pipelined transfer so an uncontended path is not double-charged.
  SimTime ReserveArrival(SimTime ideal_start, uint64_t bytes) {
    const SimTime start = std::max(ideal_start, next_free_);
    const SimTime duration = TransferDuration(bytes);
    next_free_ = start + duration;
    total_bytes_ += bytes;
    total_transfers_++;
    busy_time_ += duration;
    return next_free_;
  }

  /// Reserves the channel for a fixed occupancy (no byte accounting): used
  /// to model a NIC processing engine serializing verb execution.
  SimTime ReserveOccupancy(SimTime now, SimTime duration) {
    const SimTime start = std::max(now, next_free_);
    next_free_ = start + duration;
    total_transfers_++;
    busy_time_ += duration;
    return next_free_;
  }

  /// Pure cost of `bytes` on an idle channel.
  SimTime TransferDuration(uint64_t bytes) const {
    return static_cast<SimTime>(
        std::ceil(static_cast<double>(bytes) / bytes_per_ns_));
  }

  /// First instant a new transfer could begin.
  SimTime next_free() const { return next_free_; }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_transfers() const { return total_transfers_; }
  SimTime busy_time() const { return busy_time_; }

  double bytes_per_second() const { return bytes_per_ns_ * 1e9; }

  void ResetStats() {
    total_bytes_ = 0;
    total_transfers_ = 0;
    busy_time_ = 0;
  }

 private:
  double bytes_per_ns_;
  SimTime next_free_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t total_transfers_ = 0;
  SimTime busy_time_ = 0;
};

}  // namespace namtree::sim

#endif  // NAMTREE_SIM_LINK_H_
