#ifndef NAMTREE_SIM_RESOURCE_H_
#define NAMTREE_SIM_RESOURCE_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/simulator.h"

namespace namtree::sim {

/// A counting resource with a FIFO wait queue, used to model the worker
/// threads of a memory server (two-sided RPC handling): at most `capacity`
/// holders at a time; further acquirers queue in arrival order.
///
/// Usage inside a coroutine:
///
///   co_await pool.Acquire();
///   ... occupy a worker across any number of awaits ...
///   pool.Release();
class WorkerPool {
 public:
  WorkerPool(Simulator& simulator, uint32_t capacity)
      : simulator_(simulator), free_(capacity), capacity_(capacity) {}

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  uint32_t capacity() const { return capacity_; }
  uint32_t in_use() const { return capacity_ - free_; }
  size_t queue_depth() const { return waiters_.size(); }

  /// Cumulative number of grants (requests admitted to a worker).
  uint64_t total_grants() const { return total_grants_; }

  /// Awaitable worker acquisition. Resumes immediately when a worker is
  /// free; otherwise queues FIFO.
  auto Acquire() {
    struct Awaiter {
      WorkerPool& pool;

      bool await_ready() {
        if (pool.free_ > 0) {
          pool.free_--;
          pool.total_grants_++;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        pool.waiters_.push_back(h);
      }
      void await_resume() {}
    };
    return Awaiter{*this};
  }

  /// Returns a worker. If a coroutine is queued it inherits the worker and
  /// is resumed at the current virtual time.
  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      total_grants_++;
      simulator_.ScheduleAt(simulator_.now(), h);
      return;
    }
    assert(free_ < capacity_);
    free_++;
  }

 private:
  Simulator& simulator_;
  uint32_t free_;
  uint32_t capacity_;
  uint64_t total_grants_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII helper releasing a WorkerPool unit on scope exit. The unit must
/// already be held by the current coroutine.
class WorkerGuard {
 public:
  explicit WorkerGuard(WorkerPool& pool) : pool_(&pool) {}
  WorkerGuard(const WorkerGuard&) = delete;
  WorkerGuard& operator=(const WorkerGuard&) = delete;
  ~WorkerGuard() {
    if (pool_ != nullptr) pool_->Release();
  }

 private:
  WorkerPool* pool_;
};

}  // namespace namtree::sim

#endif  // NAMTREE_SIM_RESOURCE_H_
