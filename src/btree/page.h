#ifndef NAMTREE_BTREE_PAGE_H_
#define NAMTREE_BTREE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "btree/types.h"

namespace namtree::btree {

/// On-page header, 32 bytes, shared by every node kind and every index
/// design (the version+lock word at offset 0 is what RDMA CAS/FAA target in
/// the one-sided protocol — see Listing 4 in the paper).
struct PageHeader {
  uint64_t version_lock;   ///< bit 0 = lock bit, bits 1..63 = version
  Key high_key;            ///< exclusive upper fence; kInfinityKey at right edge
  uint64_t right_sibling;  ///< RemotePtr::raw() of the right sibling (0 = none)
  uint16_t count;          ///< live entry/key count
  uint8_t level;           ///< 0 = leaf, >0 = inner
  uint8_t flags;           ///< PageFlags
  uint32_t padding;
};

static_assert(sizeof(PageHeader) == 32, "header layout is part of the format");

enum PageFlags : uint8_t {
  /// A head node (paper §4.3): lives in the leaf sibling chain and stores
  /// remote pointers to the following real leaves, enabling prefetch.
  kHeadNodeFlag = 1,
  /// A leaf drained by epoch rebalancing: its entries moved into the right
  /// sibling and its high fence was set to 0 so every search chases right.
  /// Stays in the chain (and reachable from stale parents) until a later
  /// epoch unlinks it; never reused.
  kDrainedFlag = 2,
};

/// Byte offset of the version/lock word within a page (RDMA atomics target
/// `page_ptr + kVersionOffset`).
constexpr uint64_t kVersionOffset = 0;

/// A typed, non-owning view over one raw index page of `page_size` bytes.
///
/// Layouts (after the 32-byte header):
///   leaf : tombstone bitmap (kTombstoneBytes) | KV entries, sorted by key
///   inner: keys[capacity] | children[capacity + 1] raw pointers
///   head : raw remote pointers to the next `count` leaves
///
/// Inner-node semantics: child[i] covers keys in [keys[i-1], keys[i]);
/// child[count] covers [keys[count-1], high_key). Duplicate keys are
/// allowed (secondary, non-unique index).
class PageView {
 public:
  static constexpr uint32_t kHeaderBytes = sizeof(PageHeader);
  static constexpr uint32_t kTombstoneBytes = 64;  // up to 512 leaf slots
  static constexpr uint32_t kMinPageSize = 256;

  PageView(uint8_t* data, uint32_t page_size)
      : data_(data), page_size_(page_size) {}

  uint8_t* data() const { return data_; }
  uint32_t page_size() const { return page_size_; }

  PageHeader& header() const {
    return *reinterpret_cast<PageHeader*>(data_);
  }

  bool is_leaf() const { return header().level == 0 && !is_head(); }
  bool is_head() const { return (header().flags & kHeadNodeFlag) != 0; }
  bool is_drained() const { return (header().flags & kDrainedFlag) != 0; }
  uint8_t level() const { return header().level; }
  uint16_t count() const { return header().count; }
  Key high_key() const { return header().high_key; }
  uint64_t right_sibling() const { return header().right_sibling; }
  uint64_t version_word() const { return header().version_lock; }

  // ---- Fence predicates ----------------------------------------------------
  //
  // The B-link fence contract is intentionally asymmetric:
  //
  //   inner: covers [low, high_key] INCLUSIVE. A key equal to a promoted
  //          separator must descend into the LEFT subtree, because
  //          straddling duplicates of the separator may live there
  //          (InnerChildFor is a lower-bound descent; SplitLeafInto keeps
  //          left-page duplicates equal to the fence). Chase only when
  //          key > high_key.
  //   leaf : covers [low, high_key) EXCLUSIVE *for termination*. Readers
  //          first inspect this leaf's content (the left half of a split
  //          may retain duplicates equal to its fence), then chase when
  //          key >= high_key.
  //   head : high_key == 0 and never covers a key; searches pass through
  //          along the sibling chain. Drained leaves likewise have
  //          high_key == 0 so every key chases right.
  //
  // A right-edge page (rightmost in its chain) has right_sibling == 0 and
  // covers everything upward; NeedsChase is false there regardless of the
  // fence.

  /// True when `key` can be resolved at this page and the descent/search
  /// must not move right. Exact complement of NeedsChase.
  bool Covers(Key key) const { return !NeedsChase(key); }

  /// True when the B-link search for `key` must follow right_sibling()
  /// before using this page (inner: key > high_key; leaf/head/drained:
  /// key >= high_key, evaluated after the page content was inspected).
  bool NeedsChase(Key key) const {
    if (right_sibling() == 0) return false;
    const Key fence = high_key();
    return header().level > 0 ? key > fence : key >= fence;
  }

  // ---- Initialisation -----------------------------------------------------

  void InitLeaf(Key high_key, uint64_t right_sibling_raw);
  void InitInner(uint8_t level, Key high_key, uint64_t right_sibling_raw);
  void InitHead(uint64_t right_sibling_raw);

  // ---- Capacities ----------------------------------------------------------

  static uint32_t LeafCapacity(uint32_t page_size) {
    return (page_size - kHeaderBytes - kTombstoneBytes) / sizeof(KV);
  }
  static uint32_t InnerKeyCapacity(uint32_t page_size) {
    // count keys + (count+1) children: 16*cap + 8 <= page_size - header.
    return (page_size - kHeaderBytes - 8) / 16;
  }
  static uint32_t HeadCapacity(uint32_t page_size) {
    return (page_size - kHeaderBytes) / 8;
  }

  uint32_t leaf_capacity() const { return LeafCapacity(page_size_); }
  uint32_t inner_capacity() const { return InnerKeyCapacity(page_size_); }
  uint32_t head_capacity() const { return HeadCapacity(page_size_); }

  // ---- Leaf operations -----------------------------------------------------

  KV* leaf_entries() const {
    return reinterpret_cast<KV*>(data_ + kHeaderBytes + kTombstoneBytes);
  }

  bool LeafIsTombstoned(uint32_t i) const {
    const uint8_t* bits = data_ + kHeaderBytes;
    return (bits[i / 8] >> (i % 8)) & 1;
  }
  void LeafSetTombstone(uint32_t i, bool dead) const {
    uint8_t* bits = data_ + kHeaderBytes;
    if (dead) {
      bits[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    } else {
      bits[i / 8] &= static_cast<uint8_t>(~(1u << (i % 8)));
    }
  }

  /// Index of the first entry with entry.key >= key (== count() if none).
  uint32_t LeafLowerBound(Key key) const;

  /// Index of the first *live* (non-tombstoned) entry with exactly `key`,
  /// or -1.
  int32_t LeafFindLive(Key key) const;

  /// Inserts (key, value) keeping sort order. Returns false when full.
  /// Duplicate keys are allowed and inserted after existing equals.
  bool LeafInsert(Key key, Value value) const;

  /// Marks the first live entry with `key` as deleted. Returns false when
  /// no live match exists in this page.
  bool LeafMarkDeleted(Key key) const;

  /// Overwrites the value of the first live entry with `key`. Returns
  /// false when no live match exists in this page.
  bool LeafUpdateFirst(Key key, Value value) const;

  /// Appends the values of all live entries with `key` to `out`; returns
  /// the number appended. `out` may be null (count only).
  uint32_t LeafCollect(Key key, std::vector<Value>* out) const;

  /// Physically removes tombstoned entries (epoch GC). Returns the number
  /// of entries reclaimed.
  uint32_t LeafCompact() const;

  /// Moves the upper half of this (full) leaf into `right` (an initialised
  /// empty leaf) and fixes both fences. Returns the separator: the first
  /// key of `right`. The caller links `right` into the sibling chain by
  /// setting this->right_sibling = right_raw beforehand or afterwards.
  Key SplitLeafInto(PageView right, uint64_t right_raw) const;

  // ---- Inner operations ------------------------------------------------------

  Key* inner_keys() const {
    return reinterpret_cast<Key*>(data_ + kHeaderBytes);
  }
  uint64_t* inner_children() const {
    return reinterpret_cast<uint64_t*>(data_ + kHeaderBytes +
                                       8ull * inner_capacity());
  }

  /// Child raw pointer to descend for `key`. Precondition: key < high_key
  /// (otherwise callers must chase the right sibling first, B-link rule).
  uint64_t InnerChildFor(Key key) const;

  /// Inserts separator `sep` with right child `child_raw` (the new page
  /// produced by a split of the child left of `sep`). Returns false when
  /// the node is full.
  bool InnerInsert(Key sep, uint64_t child_raw) const;

  /// Splits this (full) inner node, promoting the middle key: the promoted
  /// separator is returned and appears in neither half.
  Key SplitInnerInto(PageView right, uint64_t right_raw) const;

  // ---- Head-node operations ---------------------------------------------------

  uint64_t* head_ptrs() const {
    return reinterpret_cast<uint64_t*>(data_ + kHeaderBytes);
  }

 private:
  uint8_t* data_;
  uint32_t page_size_;
};

}  // namespace namtree::btree

#endif  // NAMTREE_BTREE_PAGE_H_
