#include "btree/page.h"

#include <algorithm>
#include <cassert>

namespace namtree::btree {

void PageView::InitLeaf(Key high_key, uint64_t right_sibling_raw) {
  std::memset(data_, 0, page_size_);
  PageHeader& h = header();
  h.high_key = high_key;
  h.right_sibling = right_sibling_raw;
  h.level = 0;
  assert(leaf_capacity() <= kTombstoneBytes * 8);
}

void PageView::InitInner(uint8_t level, Key high_key,
                         uint64_t right_sibling_raw) {
  assert(level > 0);
  std::memset(data_, 0, page_size_);
  PageHeader& h = header();
  h.high_key = high_key;
  h.right_sibling = right_sibling_raw;
  h.level = level;
}

void PageView::InitHead(uint64_t right_sibling_raw) {
  std::memset(data_, 0, page_size_);
  PageHeader& h = header();
  h.high_key = 0;  // head nodes are pass-through; fences are unused
  h.right_sibling = right_sibling_raw;
  h.level = 0;
  h.flags = kHeadNodeFlag;
}

uint32_t PageView::LeafLowerBound(Key key) const {
  const KV* entries = leaf_entries();
  uint32_t lo = 0;
  uint32_t hi = count();
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (entries[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int32_t PageView::LeafFindLive(Key key) const {
  const KV* entries = leaf_entries();
  const uint32_t n = count();
  for (uint32_t i = LeafLowerBound(key); i < n && entries[i].key == key; ++i) {
    if (!LeafIsTombstoned(i)) return static_cast<int32_t>(i);
  }
  return -1;
}

bool PageView::LeafInsert(Key key, Value value) const {
  const uint32_t n = count();
  if (n >= leaf_capacity()) return false;
  KV* entries = leaf_entries();
  // Insert after existing duplicates: first index with entry.key > key.
  uint32_t pos = LeafLowerBound(key);
  while (pos < n && entries[pos].key == key) pos++;
  // Shift entries and their tombstone bits up by one.
  for (uint32_t i = n; i > pos; --i) {
    entries[i] = entries[i - 1];
    LeafSetTombstone(i, LeafIsTombstoned(i - 1));
  }
  entries[pos] = KV{key, value};
  LeafSetTombstone(pos, false);
  header().count = static_cast<uint16_t>(n + 1);
  return true;
}

bool PageView::LeafMarkDeleted(Key key) const {
  const int32_t i = LeafFindLive(key);
  if (i < 0) return false;
  LeafSetTombstone(static_cast<uint32_t>(i), true);
  return true;
}

bool PageView::LeafUpdateFirst(Key key, Value value) const {
  const int32_t i = LeafFindLive(key);
  if (i < 0) return false;
  leaf_entries()[i].value = value;
  return true;
}

uint32_t PageView::LeafCollect(Key key, std::vector<Value>* out) const {
  const KV* entries = leaf_entries();
  const uint32_t n = count();
  uint32_t found = 0;
  for (uint32_t i = LeafLowerBound(key); i < n && entries[i].key == key;
       ++i) {
    if (LeafIsTombstoned(i)) continue;
    if (out != nullptr) out->push_back(entries[i].value);
    found++;
  }
  return found;
}

uint32_t PageView::LeafCompact() const {
  KV* entries = leaf_entries();
  const uint32_t n = count();
  uint32_t out = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (LeafIsTombstoned(i)) continue;
    entries[out] = entries[i];
    out++;
  }
  for (uint32_t i = 0; i < out; ++i) LeafSetTombstone(i, false);
  for (uint32_t i = out; i < n; ++i) LeafSetTombstone(i, false);
  header().count = static_cast<uint16_t>(out);
  return n - out;
}

Key PageView::SplitLeafInto(PageView right, uint64_t right_raw) const {
  const uint32_t n = count();
  assert(n >= 2);
  KV* entries = leaf_entries();
  // A duplicate run may straddle the separator: the left page is allowed to
  // keep entries equal to its high fence. Lookups use lower-bound inner
  // descent plus the B-link sibling chase, so such entries stay reachable.
  const uint32_t mid = n / 2;

  right.InitLeaf(high_key(), right_sibling());
  KV* rentries = right.leaf_entries();
  const uint32_t moved = n - mid;
  for (uint32_t i = 0; i < moved; ++i) {
    rentries[i] = entries[mid + i];
    right.LeafSetTombstone(i, LeafIsTombstoned(mid + i));
  }
  right.header().count = static_cast<uint16_t>(moved);

  const Key separator = rentries[0].key;
  header().count = static_cast<uint16_t>(mid);
  for (uint32_t i = mid; i < n; ++i) LeafSetTombstone(i, false);
  header().high_key = separator;
  header().right_sibling = right_raw;
  return separator;
}

uint64_t PageView::InnerChildFor(Key key) const {
  const Key* keys = inner_keys();
  const uint32_t n = count();
  // Lower-bound descent: the first separator >= key routes left of itself,
  // so a lookup for a key equal to a separator first visits the left child
  // (where duplicates of the separator may live) and relies on the B-link
  // sibling chase to move right on a miss.
  uint32_t lo = 0;
  uint32_t hi = n;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return inner_children()[lo];
}

bool PageView::InnerInsert(Key sep, uint64_t child_raw) const {
  const uint32_t n = count();
  if (n >= inner_capacity()) return false;
  Key* keys = inner_keys();
  uint64_t* children = inner_children();
  uint32_t pos = 0;
  while (pos < n && keys[pos] < sep) pos++;
  for (uint32_t i = n; i > pos; --i) keys[i] = keys[i - 1];
  for (uint32_t i = n + 1; i > pos + 1; --i) children[i] = children[i - 1];
  keys[pos] = sep;
  children[pos + 1] = child_raw;
  header().count = static_cast<uint16_t>(n + 1);
  return true;
}

Key PageView::SplitInnerInto(PageView right, uint64_t right_raw) const {
  const uint32_t n = count();
  assert(n >= 3);
  const uint32_t mid = n / 2;
  Key* keys = inner_keys();
  uint64_t* children = inner_children();
  const Key separator = keys[mid];

  right.InitInner(level(), high_key(), right_sibling());
  Key* rkeys = right.inner_keys();
  uint64_t* rchildren = right.inner_children();
  const uint32_t moved = n - mid - 1;  // keys[mid] is promoted
  for (uint32_t i = 0; i < moved; ++i) rkeys[i] = keys[mid + 1 + i];
  for (uint32_t i = 0; i <= moved; ++i) rchildren[i] = children[mid + 1 + i];
  right.header().count = static_cast<uint16_t>(moved);

  header().count = static_cast<uint16_t>(mid);
  header().high_key = separator;
  header().right_sibling = right_raw;
  return separator;
}

}  // namespace namtree::btree
