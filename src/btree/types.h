#ifndef NAMTREE_BTREE_TYPES_H_
#define NAMTREE_BTREE_TYPES_H_

#include <cstdint>

namespace namtree::btree {

/// Index key type. The paper's analysis (Table 1) uses 8-byte keys; so do
/// we. `kInfinityKey` is reserved as the +infinity fence sentinel, so user
/// keys must be < UINT64_MAX.
using Key = uint64_t;

/// Leaf payload: for a secondary index this is the primary key (paper §2.2).
using Value = uint64_t;

constexpr Key kInfinityKey = UINT64_MAX;

struct KV {
  Key key;
  Value value;
};

inline bool operator==(const KV& a, const KV& b) {
  return a.key == b.key && a.value == b.value;
}

// ---- Version/lock word helpers (paper §3.1: an 8-byte (version, lock-bit)
// field per index node; bit 0 is the lock bit). ----------------------------

constexpr uint64_t kLockBit = 1ull;

inline bool IsLocked(uint64_t version_word) {
  return (version_word & kLockBit) != 0;
}
inline uint64_t WithLockBit(uint64_t version_word) {
  return version_word | kLockBit;
}
/// Version component only (lock bit masked out).
inline uint64_t VersionOf(uint64_t version_word) {
  return version_word & ~kLockBit;
}

}  // namespace namtree::btree

#endif  // NAMTREE_BTREE_TYPES_H_
