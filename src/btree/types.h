#ifndef NAMTREE_BTREE_TYPES_H_
#define NAMTREE_BTREE_TYPES_H_

#include <cstdint>

namespace namtree::btree {

/// Index key type. The paper's analysis (Table 1) uses 8-byte keys; so do
/// we. `kInfinityKey` is reserved as the +infinity fence sentinel, so user
/// keys must be < UINT64_MAX.
using Key = uint64_t;

/// Leaf payload: for a secondary index this is the primary key (paper §2.2).
using Value = uint64_t;

constexpr Key kInfinityKey = UINT64_MAX;

struct KV {
  Key key;
  Value value;
};

inline bool operator==(const KV& a, const KV& b) {
  return a.key == b.key && a.value == b.value;
}

// ---- Version/lock word helpers (paper §3.1: an 8-byte (version, lock-bit)
// field per index node; bit 0 is the lock bit). ----------------------------
//
// Crash-fault layout extension: bits 48..63 carry the lock holder's client
// id while the lock is held, so a waiter that suspects the holder crashed
// can consult the fabric's client-liveness registry and CAS-steal the lock
// (docs/fault_model.md). The unlock FETCH_AND_ADD(+1) leaves the holder
// bits behind as harmless stale garbage in the *unlocked* word — they are
// masked out of every version comparison and replaced wholesale by the
// next acquire CAS. The version still advances by 2 per lock/unlock cycle.

constexpr uint64_t kLockBit = 1ull;
constexpr uint32_t kHolderShift = 48;
constexpr uint64_t kHolderMask = 0xFFFFull << kHolderShift;
constexpr uint64_t kVersionMask = ~(kLockBit | kHolderMask);

inline bool IsLocked(uint64_t version_word) {
  return (version_word & kLockBit) != 0;
}
inline uint64_t WithLockBit(uint64_t version_word) {
  return version_word | kLockBit;
}
/// Version component only (lock bit and holder bits masked out).
inline uint64_t VersionOf(uint64_t version_word) {
  return version_word & kVersionMask;
}
/// Client id recorded in a locked word (meaningless while unlocked).
inline uint32_t HolderOf(uint64_t version_word) {
  return static_cast<uint32_t>(version_word >> kHolderShift);
}
/// The locked word a client installs when acquiring: same version, lock bit
/// set, holder bits naming the client (stale holder bits are overwritten).
inline uint64_t MakeLockedWord(uint64_t version_word, uint32_t holder) {
  return VersionOf(version_word) | kLockBit |
         (static_cast<uint64_t>(holder & 0xFFFF) << kHolderShift);
}
/// The clean word a waiter CAS-installs when stealing an orphaned lock:
/// holder cleared, lock clear, version advanced by one full cycle (+2) so
/// optimistic readers of the orphan's image restart.
inline uint64_t StolenUnlockWord(uint64_t locked_word) {
  return VersionOf(locked_word) + 2;
}

}  // namespace namtree::btree

#endif  // NAMTREE_BTREE_TYPES_H_
