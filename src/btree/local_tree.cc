#include "btree/local_tree.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace namtree::btree {

LocalBLinkTree::LocalBLinkTree(uint32_t page_size) : page_size_(page_size) {
  assert(page_size >= PageView::kMinPageSize);
  assert(page_size % 8 == 0);
  const uint64_t root = AllocatePage();
  View(root).InitLeaf(kInfinityKey, 0);
  root_.store(root, std::memory_order_release);
  root_level_.store(0, std::memory_order_release);
}

LocalBLinkTree::~LocalBLinkTree() {
  for (uint8_t* p : pages_) ::operator delete[](p, std::align_val_t(64));
}

uint64_t LocalBLinkTree::AllocatePage() {
  uint8_t* p = static_cast<uint8_t*>(
      ::operator new[](page_size_, std::align_val_t(64)));
  std::memset(p, 0, page_size_);
  {
    std::lock_guard<std::mutex> guard(pages_mutex_);
    pages_.push_back(p);
  }
  return reinterpret_cast<uint64_t>(p);
}

uint64_t LocalBLinkTree::AwaitNodeUnlocked(PageView page) {
  uint64_t version = VersionWord(page).load(std::memory_order_acquire);
  while (IsLocked(version)) {
    std::this_thread::yield();
    version = VersionWord(page).load(std::memory_order_acquire);
  }
  return version;
}

bool LocalBLinkTree::TryUpgradeToWriteLock(PageView page, uint64_t version) {
  uint64_t expected = version;
  return VersionWord(page).compare_exchange_strong(
      expected, WithLockBit(version), std::memory_order_acquire);
}

uint64_t LocalBLinkTree::WriteLock(PageView page) {
  for (;;) {
    const uint64_t version = AwaitNodeUnlocked(page);
    if (TryUpgradeToWriteLock(page, version)) return version;
  }
}

uint64_t LocalBLinkTree::DescendToLeaf(Key key, uint64_t* version) const {
  for (;;) {  // restart loop
    uint64_t node = root_.load(std::memory_order_acquire);
    uint64_t v = AwaitNodeUnlocked(View(node));
    bool restart = false;
    while (!restart) {
      PageView view = View(node);
      if (view.is_leaf()) {
        *version = v;
        return node;
      }
      // Stale-range chase: strictly beyond this node's fence.
      if (key > view.high_key()) {
        const uint64_t next = view.right_sibling();
        if (!CheckVersion(view, v) || next == 0) {
          restart = true;
          break;
        }
        node = next;
        v = AwaitNodeUnlocked(View(node));
        continue;
      }
      const uint64_t child = view.InnerChildFor(key);
      const uint64_t child_version = AwaitNodeUnlocked(View(child));
      if (!CheckVersion(view, v)) {
        restart = true;
        break;
      }
      node = child;
      v = child_version;
    }
  }
}

Result<Value> LocalBLinkTree::Lookup(Key key) const {
  for (;;) {
    uint64_t version = 0;
    uint64_t node = DescendToLeaf(key, &version);
    // Chase the leaf chain (B-link rule + duplicate runs over the fence).
    for (;;) {
      PageView view = View(node);
      if (view.is_head()) {  // pass-through (only FG trees have them)
        const uint64_t next = view.right_sibling();
        if (!CheckVersion(view, version) || next == 0) break;  // restart
        node = next;
        version = AwaitNodeUnlocked(View(node));
        continue;
      }
      const int32_t idx = view.LeafFindLive(key);
      const Value value = idx >= 0 ? view.leaf_entries()[idx].value : 0;
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      if (!CheckVersion(view, version)) break;  // torn read -> restart
      if (idx >= 0) return value;
      if (key >= high && next != 0) {
        node = next;
        version = AwaitNodeUnlocked(View(node));
        continue;
      }
      return Status::NotFound();
    }
  }
}

Status LocalBLinkTree::Insert(Key key, Value value) {
  for (;;) {
    uint64_t version = 0;
    uint64_t node = DescendToLeaf(key, &version);
    PageView view = View(node);
    // The key may belong further right (fence moved by a concurrent or
    // duplicate-run split): chase before locking.
    {
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      if (!CheckVersion(view, version)) continue;
      if (key >= high && next != 0) {
        // Re-descend via the sibling chain under optimistic reads.
        uint64_t n = next;
        uint64_t v = AwaitNodeUnlocked(View(n));
        bool restart = false;
        while (true) {
          PageView nv = View(n);
          if (nv.is_head()) {
            const uint64_t nn = nv.right_sibling();
            if (!CheckVersion(nv, v) || nn == 0) {
              restart = true;
              break;
            }
            n = nn;
            v = AwaitNodeUnlocked(View(n));
            continue;
          }
          const Key h = nv.high_key();
          const uint64_t nn = nv.right_sibling();
          if (!CheckVersion(nv, v)) {
            restart = true;
            break;
          }
          if (key >= h && nn != 0) {
            n = nn;
            v = AwaitNodeUnlocked(View(n));
            continue;
          }
          break;
        }
        if (restart) continue;
        node = n;
        version = v;
        view = View(node);
      }
    }

    if (!TryUpgradeToWriteLock(view, version)) continue;
    // Under the lock the snapshot is stable; re-verify the range in case
    // the CAS admitted us to a page that split right before we read it.
    if (view.NeedsChase(key)) {
      WriteUnlock(view);
      continue;
    }

    if (view.LeafInsert(key, value)) {
      WriteUnlock(view);
      return Status::OK();
    }

    // Full: split, then insert into the proper half before unlocking.
    const uint64_t right_raw = AllocatePage();
    PageView right = View(right_raw);
    const Key separator = view.SplitLeafInto(right, right_raw);
    const bool into_left = key < separator;
    const bool ok = into_left ? view.LeafInsert(key, value)
                              : right.LeafInsert(key, value);
    assert(ok);
    (void)ok;
    WriteUnlock(view);

    const uint8_t level = 1;
    InstallSeparator(level, separator, node, right_raw);
    return Status::OK();
  }
}

uint64_t LocalBLinkTree::DescendToLevelLocked(uint8_t level, Key sep) {
  for (;;) {
    if (root_level_.load(std::memory_order_acquire) < level) return 0;
    uint64_t node = root_.load(std::memory_order_acquire);
    uint64_t v = AwaitNodeUnlocked(View(node));
    if (View(node).level() < level) continue;  // root changed underneath us
    bool restart = false;
    while (!restart) {
      PageView view = View(node);
      if (view.level() == level) {
        if (!TryUpgradeToWriteLock(view, v)) {
          v = AwaitNodeUnlocked(view);
          continue;  // re-try lock on the same node
        }
        // Locked; chase right if the separator now belongs further right.
        while (view.NeedsChase(sep)) {
          const uint64_t next = view.right_sibling();
          WriteUnlock(view);
          node = next;
          view = View(node);
          (void)WriteLock(view);
        }
        return node;
      }
      if (sep > view.high_key()) {
        const uint64_t next = view.right_sibling();
        if (!CheckVersion(view, v) || next == 0) {
          restart = true;
          break;
        }
        node = next;
        v = AwaitNodeUnlocked(View(node));
        continue;
      }
      const uint64_t child = view.InnerChildFor(sep);
      const uint64_t child_version = AwaitNodeUnlocked(View(child));
      if (!CheckVersion(view, v)) {
        restart = true;
        break;
      }
      node = child;
      v = child_version;
    }
  }
}

bool LocalBLinkTree::TryGrowRoot(uint8_t new_level, Key sep,
                                 uint64_t left_raw, uint64_t right_raw) {
  const uint64_t new_root = AllocatePage();
  PageView view = View(new_root);
  view.InitInner(new_level, kInfinityKey, 0);
  view.inner_keys()[0] = sep;
  view.inner_children()[0] = left_raw;
  view.inner_children()[1] = right_raw;
  view.header().count = 1;

  uint64_t expected = left_raw;
  if (root_.compare_exchange_strong(expected, new_root,
                                    std::memory_order_acq_rel)) {
    root_level_.store(new_level, std::memory_order_release);
    return true;
  }
  return false;  // page leaks into pages_ and is reclaimed at destruction
}

void LocalBLinkTree::InstallSeparator(uint8_t level, Key sep,
                                      uint64_t left_raw, uint64_t right_raw) {
  for (;;) {
    if (root_level_.load(std::memory_order_acquire) < level) {
      // The split node was the root: grow the tree.
      if (TryGrowRoot(level, sep, left_raw, right_raw)) return;
      continue;  // another thread grew it; find the parent normally
    }
    const uint64_t parent = DescendToLevelLocked(level, sep);
    if (parent == 0) continue;  // raced with a root change
    PageView view = View(parent);
    if (view.InnerInsert(sep, right_raw)) {
      WriteUnlock(view);
      return;
    }
    // Parent full: split it and retry the insert into the proper half.
    const uint64_t new_raw = AllocatePage();
    PageView right = View(new_raw);
    const Key promoted = view.SplitInnerInto(right, new_raw);
    PageView target = sep < promoted ? view : right;
    const bool ok = target.InnerInsert(sep, right_raw);
    assert(ok);
    (void)ok;
    WriteUnlock(view);
    InstallSeparator(static_cast<uint8_t>(level + 1), promoted, parent,
                     new_raw);
    return;
  }
}

Status LocalBLinkTree::Update(Key key, Value value) {
  for (;;) {
    uint64_t version = 0;
    uint64_t node = DescendToLeaf(key, &version);
    for (;;) {
      PageView view = View(node);
      if (!TryUpgradeToWriteLock(view, version)) {
        version = AwaitNodeUnlocked(view);
        continue;
      }
      const bool updated = view.LeafUpdateFirst(key, value);
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      WriteUnlock(view);
      if (updated) return Status::OK();
      if (key >= high && next != 0) {
        node = next;
        version = AwaitNodeUnlocked(View(node));
        continue;
      }
      return Status::NotFound();
    }
  }
}

uint64_t LocalBLinkTree::LookupAll(Key key, std::vector<Value>* out) const {
  for (;;) {
    uint64_t version = 0;
    uint64_t node = DescendToLeaf(key, &version);
    uint64_t found = 0;
    std::vector<Value> page_hits;
    bool restart = false;
    for (;;) {
      PageView view = View(node);
      if (view.is_head()) {
        const uint64_t next = view.right_sibling();
        if (!CheckVersion(view, version) || next == 0) {
          restart = true;
          break;
        }
        node = next;
        version = AwaitNodeUnlocked(View(node));
        continue;
      }
      page_hits.clear();
      view.LeafCollect(key, &page_hits);
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      if (!CheckVersion(view, version)) {
        version = AwaitNodeUnlocked(view);
        continue;  // retry this page
      }
      found += page_hits.size();
      if (out != nullptr) {
        out->insert(out->end(), page_hits.begin(), page_hits.end());
      }
      if (key >= high && next != 0) {
        node = next;
        version = AwaitNodeUnlocked(View(node));
        continue;
      }
      return found;
    }
    if (restart) {
      if (out != nullptr && found > 0) {
        out->resize(out->size() - found);
      }
      continue;
    }
  }
}

Status LocalBLinkTree::Delete(Key key) {
  for (;;) {
    uint64_t version = 0;
    uint64_t node = DescendToLeaf(key, &version);
    for (;;) {
      PageView view = View(node);
      if (!TryUpgradeToWriteLock(view, version)) {
        version = AwaitNodeUnlocked(view);
        continue;
      }
      if (view.LeafMarkDeleted(key)) {
        WriteUnlock(view);
        return Status::OK();
      }
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      WriteUnlock(view);
      if (key >= high && next != 0) {
        node = next;
        version = AwaitNodeUnlocked(View(node));
        continue;
      }
      return Status::NotFound();
    }
  }
}

uint64_t LocalBLinkTree::Scan(Key lo, Key hi, std::vector<KV>* out) const {
  if (lo >= hi) return 0;
  uint64_t version = 0;
  uint64_t node = DescendToLeaf(lo, &version);
  uint64_t found = 0;
  std::vector<KV> page_hits;
  for (;;) {
    PageView view = View(node);
    page_hits.clear();
    bool done = false;
    if (!view.is_head()) {
      const uint32_t n = view.count();
      const KV* entries = view.leaf_entries();
      for (uint32_t i = view.LeafLowerBound(lo); i < n; ++i) {
        if (entries[i].key >= hi) break;
        if (!view.LeafIsTombstoned(i)) page_hits.push_back(entries[i]);
      }
      done = view.high_key() >= hi;
    }
    const uint64_t next = view.right_sibling();
    if (!CheckVersion(view, version)) {
      // Torn read: retry this page.
      version = AwaitNodeUnlocked(view);
      continue;
    }
    if (out != nullptr) {
      out->insert(out->end(), page_hits.begin(), page_hits.end());
    }
    found += page_hits.size();
    if (done || next == 0) return found;
    node = next;
    version = AwaitNodeUnlocked(View(node));
  }
}

LocalBLinkTree::Cursor::Cursor(const LocalBLinkTree* tree, Key seek)
    : tree_(tree) {
  FetchFrom(seek);
}

void LocalBLinkTree::Cursor::FetchFrom(Key lo) {
  buffer_.clear();
  position_ = 0;
  if (exhausted_) return;
  // Read one page's worth of live entries >= lo under OLC validation.
  for (;;) {
    uint64_t version = 0;
    uint64_t node = tree_->DescendToLeaf(lo, &version);
    for (;;) {
      PageView view = tree_->View(node);
      if (view.is_head()) {
        const uint64_t next = view.right_sibling();
        if (!CheckVersion(view, version) || next == 0) break;  // restart
        node = next;
        version = AwaitNodeUnlocked(tree_->View(node));
        continue;
      }
      buffer_.clear();
      const uint32_t n = view.count();
      const KV* entries = view.leaf_entries();
      for (uint32_t i = view.LeafLowerBound(lo); i < n; ++i) {
        if (!view.LeafIsTombstoned(i)) buffer_.push_back(entries[i]);
      }
      const Key high = view.high_key();
      const uint64_t next = view.right_sibling();
      if (!CheckVersion(view, version)) {
        version = AwaitNodeUnlocked(view);
        continue;  // retry this page
      }
      if (buffer_.empty()) {
        if (next == 0 || high == kInfinityKey) {
          exhausted_ = true;
          return;
        }
        // Page had nothing live >= lo: continue from its fence.
        lo = high;
        node = next;
        version = AwaitNodeUnlocked(tree_->View(node));
        continue;
      }
      resume_at_ = high;
      exhausted_ = (next == 0 || high == kInfinityKey);
      return;
    }
  }
}

void LocalBLinkTree::Cursor::Next() {
  if (!Valid()) return;
  position_++;
  if (position_ < buffer_.size()) return;
  const bool was_exhausted = exhausted_;
  if (was_exhausted) {
    buffer_.clear();
    position_ = 0;
    return;
  }
  FetchFrom(resume_at_);
}

Status LocalBLinkTree::BulkLoad(std::span<const KV> sorted) {
  // Build the leaf level (pages ~90% full), then inner levels bottom-up.
  const uint32_t leaf_fill =
      std::max<uint32_t>(1, PageView::LeafCapacity(page_size_) * 9 / 10);
  const uint32_t inner_fill =
      std::max<uint32_t>(2, PageView::InnerKeyCapacity(page_size_) * 9 / 10);

  struct NodeRef {
    uint64_t raw;
    Key low;  // smallest key reachable in the subtree
  };
  std::vector<NodeRef> level_nodes;

  // Leaves.
  size_t i = 0;
  uint64_t prev = 0;
  do {
    const uint64_t raw = AllocatePage();
    PageView leaf = View(raw);
    leaf.InitLeaf(kInfinityKey, 0);
    const size_t take = std::min<size_t>(leaf_fill, sorted.size() - i);
    for (size_t j = 0; j < take; ++j) {
      leaf.leaf_entries()[j] = sorted[i + j];
    }
    leaf.header().count = static_cast<uint16_t>(take);
    const Key low = take > 0 ? sorted[i].key : 0;
    if (prev != 0) {
      View(prev).header().right_sibling = raw;
      View(prev).header().high_key = low;
    }
    level_nodes.push_back({raw, low});
    prev = raw;
    i += take;
  } while (i < sorted.size());

  // Inner levels.
  uint8_t level = 0;
  while (level_nodes.size() > 1) {
    level++;
    std::vector<NodeRef> upper;
    size_t j = 0;
    uint64_t prev_inner = 0;
    while (j < level_nodes.size()) {
      const uint64_t raw = AllocatePage();
      PageView inner = View(raw);
      inner.InitInner(level, kInfinityKey, 0);
      const size_t children =
          std::min<size_t>(inner_fill + 1, level_nodes.size() - j);
      inner.inner_children()[0] = level_nodes[j].raw;
      for (size_t c = 1; c < children; ++c) {
        inner.inner_keys()[c - 1] = level_nodes[j + c].low;
        inner.inner_children()[c] = level_nodes[j + c].raw;
      }
      inner.header().count = static_cast<uint16_t>(children - 1);
      if (prev_inner != 0) {
        View(prev_inner).header().right_sibling = raw;
        View(prev_inner).header().high_key = level_nodes[j].low;
      }
      upper.push_back({raw, level_nodes[j].low});
      prev_inner = raw;
      j += children;
    }
    level_nodes.swap(upper);
  }

  root_.store(level_nodes[0].raw, std::memory_order_release);
  root_level_.store(level, std::memory_order_release);
  return Status::OK();
}

uint64_t LocalBLinkTree::GarbageCollect() {
  // Find the leftmost leaf, then sweep the chain compacting each page
  // under its write lock (epoch GC, paper §3.2).
  uint64_t version = 0;
  uint64_t node = DescendToLeaf(0, &version);
  uint64_t reclaimed = 0;
  while (node != 0) {
    PageView view = View(node);
    if (view.is_head()) {
      node = view.right_sibling();
      continue;
    }
    (void)WriteLock(view);
    reclaimed += view.LeafCompact();
    const uint64_t next = view.right_sibling();
    WriteUnlock(view);
    node = next;
  }
  return reclaimed;
}

LocalBLinkTree::TreeStats LocalBLinkTree::GetStats() const {
  TreeStats stats;
  uint64_t node = root_.load(std::memory_order_acquire);
  stats.height = View(node).level() + 1ull;
  // Walk down the leftmost spine, counting each level's chain.
  while (true) {
    PageView view = View(node);
    uint64_t chain = node;
    while (chain != 0) {
      PageView cv = View(chain);
      stats.pages++;
      if (cv.is_leaf()) {
        for (uint32_t i = 0; i < cv.count(); ++i) {
          if (cv.LeafIsTombstoned(i)) {
            stats.tombstones++;
          } else {
            stats.live_entries++;
          }
        }
      }
      chain = cv.right_sibling();
    }
    if (view.is_leaf() || view.is_head()) break;
    node = view.inner_children()[0];
  }
  return stats;
}

}  // namespace namtree::btree
