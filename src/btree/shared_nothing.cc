#include "btree/shared_nothing.h"

#include <algorithm>

namespace namtree::btree {

SharedNothingCluster::SharedNothingCluster(uint32_t nodes,
                                           uint32_t workers_per_node,
                                           uint32_t page_size)
    : page_size_(page_size) {
  for (uint32_t n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<Node>(page_size));
    boundaries_.push_back(kInfinityKey);
  }
  for (auto& node : nodes_) {
    // Capture the Node by value: the loop variable dies with this frame
    // while the worker threads keep running.
    Node* raw = node.get();
    for (uint32_t w = 0; w < workers_per_node; ++w) {
      node->workers.emplace_back([this, raw] { WorkerMain(*raw); });
    }
  }
}

SharedNothingCluster::~SharedNothingCluster() {
  for (auto& node : nodes_) {
    {
      std::lock_guard<std::mutex> lock(node->mutex);
      node->stopping = true;
    }
    node->cv.notify_all();
  }
  for (auto& node : nodes_) {
    for (std::thread& worker : node->workers) worker.join();
  }
}

Status SharedNothingCluster::BulkLoad(std::span<const KV> sorted) {
  const uint32_t n = num_nodes();
  size_t begin = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const size_t end =
        (i + 1 == n) ? sorted.size() : sorted.size() * (i + 1) / n;
    const Status status =
        nodes_[i]->tree.BulkLoad(sorted.subspan(begin, end - begin));
    if (!status.ok()) return status;
    boundaries_[i] =
        (end < sorted.size()) ? sorted[end].key : kInfinityKey;
    begin = end;
  }
  return Status::OK();
}

uint32_t SharedNothingCluster::NodeFor(Key key) const {
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end() - 1, key);
  return static_cast<uint32_t>(it - boundaries_.begin());
}

std::pair<Status, uint64_t> SharedNothingCluster::Execute(
    Node& node, const Request& request) {
  switch (request.kind) {
    case OpKind::kLookup: {
      const Result<Value> r = node.tree.Lookup(request.key);
      return {r.ok() ? Status::OK() : r.status(), r.value_or(0)};
    }
    case OpKind::kInsert:
      return {node.tree.Insert(request.key, request.value), 0};
    case OpKind::kUpdate:
      return {node.tree.Update(request.key, request.value), 0};
    case OpKind::kDelete:
      return {node.tree.Delete(request.key), 0};
    case OpKind::kScan:
      return {Status::OK(),
              node.tree.Scan(request.key, request.hi, request.out)};
    case OpKind::kGc:
      return {Status::OK(), node.tree.GarbageCollect()};
  }
  return {Status::Unsupported(), 0};
}

void SharedNothingCluster::WorkerMain(Node& node) {
  for (;;) {
    std::unique_ptr<Request> request;
    {
      std::unique_lock<std::mutex> lock(node.mutex);
      node.cv.wait(lock,
                   [&node] { return node.stopping || !node.inbox.empty(); });
      if (node.inbox.empty()) return;  // stopping and drained
      request = std::move(node.inbox.front());
      node.inbox.pop_front();
    }
    node.served.fetch_add(1, std::memory_order_relaxed);
    request->done.set_value(Execute(node, *request));
  }
}

std::pair<Status, uint64_t> SharedNothingCluster::Submit(
    uint32_t target, OpKind kind, Key key, Key hi, Value value,
    std::vector<KV>* out, uint32_t home_node) {
  Node& node = *nodes_[target];
  Request staged;
  staged.kind = kind;
  staged.key = key;
  staged.hi = hi;
  staged.value = value;
  staged.out = out;

  if (home_node == target) {
    // Locality fast path (Appendix A.3): same-node operations touch the
    // tree directly instead of paying the mailbox round trip.
    local_requests_.fetch_add(1, std::memory_order_relaxed);
    return Execute(node, staged);
  }

  auto request = std::make_unique<Request>(std::move(staged));
  std::future<std::pair<Status, uint64_t>> done =
      request->done.get_future();
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.inbox.push_back(std::move(request));
  }
  node.cv.notify_one();
  return done.get();
}

Result<Value> SharedNothingCluster::Lookup(Key key, uint32_t home_node) {
  const auto [status, value] = Submit(NodeFor(key), OpKind::kLookup, key, 0,
                                      0, nullptr, home_node);
  if (!status.ok()) return status;
  return value;
}

Status SharedNothingCluster::Insert(Key key, Value value,
                                    uint32_t home_node) {
  return Submit(NodeFor(key), OpKind::kInsert, key, 0, value, nullptr,
                home_node)
      .first;
}

Status SharedNothingCluster::Update(Key key, Value value,
                                    uint32_t home_node) {
  return Submit(NodeFor(key), OpKind::kUpdate, key, 0, value, nullptr,
                home_node)
      .first;
}

Status SharedNothingCluster::Delete(Key key, uint32_t home_node) {
  return Submit(NodeFor(key), OpKind::kDelete, key, 0, 0, nullptr, home_node)
      .first;
}

uint64_t SharedNothingCluster::Scan(Key lo, Key hi, std::vector<KV>* out,
                                    uint32_t home_node) {
  if (lo >= hi) return 0;
  uint64_t found = 0;
  const uint32_t first = NodeFor(lo);
  const uint32_t last = NodeFor(hi - 1);
  for (uint32_t n = first; n <= last; ++n) {
    found +=
        Submit(n, OpKind::kScan, lo, hi, 0, out, home_node).second;
  }
  return found;
}

uint64_t SharedNothingCluster::GarbageCollect() {
  uint64_t reclaimed = 0;
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    reclaimed += Submit(n, OpKind::kGc, 0, 0, 0, nullptr, kRemoteOnly).second;
  }
  return reclaimed;
}

uint64_t SharedNothingCluster::remote_requests() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->served.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace namtree::btree
