#ifndef NAMTREE_BTREE_SHARED_NOTHING_H_
#define NAMTREE_BTREE_SHARED_NOTHING_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "btree/local_tree.h"
#include "btree/types.h"
#include "common/status.h"

namespace namtree::btree {

/// Section 7's shared-nothing adaptation, running on real std::threads
/// (no simulator): every node hosts a LocalBLinkTree over its range
/// partition plus a worker pool draining a request mailbox — the
/// process-local stand-in for the paper's "ship the operation over
/// two-sided RDMA". Clients route by key; operations against the client's
/// *own* node can bypass the mailbox entirely and touch the tree directly,
/// which is exactly the locality benefit the paper measures in Appendix
/// A.3 ("transactions that run on the same node where the index resides
/// can leverage locality").
///
/// This module exists to exercise the B-link substrate under true hardware
/// parallelism (the NAM designs run in deterministic virtual time); it is
/// not a performance model of a network.
class SharedNothingCluster {
 public:
  /// `nodes`: partition count; `workers_per_node`: mailbox consumers.
  SharedNothingCluster(uint32_t nodes, uint32_t workers_per_node,
                       uint32_t page_size = 1024);
  ~SharedNothingCluster();

  SharedNothingCluster(const SharedNothingCluster&) = delete;
  SharedNothingCluster& operator=(const SharedNothingCluster&) = delete;

  /// Range-partitions `sorted` evenly and bulk-loads every node. Must run
  /// before concurrent access.
  Status BulkLoad(std::span<const KV> sorted);

  // ---- Client API (thread-safe, blocking). `home_node` identifies the
  // node the calling thread lives on; pass kRemoteOnly to force the RPC
  // path even for local keys. -----------------------------------------------

  static constexpr uint32_t kRemoteOnly = UINT32_MAX;

  Result<Value> Lookup(Key key, uint32_t home_node = kRemoteOnly);
  Status Insert(Key key, Value value, uint32_t home_node = kRemoteOnly);
  Status Update(Key key, Value value, uint32_t home_node = kRemoteOnly);
  Status Delete(Key key, uint32_t home_node = kRemoteOnly);
  /// Scans [lo, hi) across all intersecting partitions in key order.
  uint64_t Scan(Key lo, Key hi, std::vector<KV>* out,
                uint32_t home_node = kRemoteOnly);
  /// Compacts every node's tree.
  uint64_t GarbageCollect();

  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t NodeFor(Key key) const;

  /// Requests served through the mailbox (vs. locality fast path).
  uint64_t remote_requests() const;
  uint64_t local_requests() const { return local_requests_.load(); }

 private:
  enum class OpKind { kLookup, kInsert, kUpdate, kDelete, kScan, kGc };

  struct Request {
    OpKind kind;
    Key key = 0;
    Key hi = 0;
    Value value = 0;
    std::vector<KV>* out = nullptr;
    std::promise<std::pair<Status, uint64_t>> done;
  };

  struct Node {
    explicit Node(uint32_t page_size) : tree(page_size) {}
    LocalBLinkTree tree;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::unique_ptr<Request>> inbox;
    bool stopping = false;
    std::vector<std::thread> workers;
    std::atomic<uint64_t> served{0};
  };

  /// Executes `request` against `node`'s tree (worker or fast path).
  static std::pair<Status, uint64_t> Execute(Node& node,
                                             const Request& request);

  std::pair<Status, uint64_t> Submit(uint32_t target, OpKind kind, Key key,
                                     Key hi, Value value, std::vector<KV>* out,
                                     uint32_t home_node);

  void WorkerMain(Node& node);

  uint32_t page_size_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Key> boundaries_;  // exclusive upper bound per node (last=inf)
  std::atomic<uint64_t> local_requests_{0};
};

}  // namespace namtree::btree

#endif  // NAMTREE_BTREE_SHARED_NOTHING_H_
