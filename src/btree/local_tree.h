#ifndef NAMTREE_BTREE_LOCAL_TREE_H_
#define NAMTREE_BTREE_LOCAL_TREE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "btree/page.h"
#include "btree/types.h"
#include "common/status.h"

namespace namtree::btree {

/// A thread-safe in-memory B-link tree with optimistic lock coupling.
///
/// This is the tree a memory server builds over its partition in the
/// coarse-grained design (paper §3): B-link sibling pointers [Lehman/Yao],
/// real memory pointers instead of page ids, and the 8-byte
/// (version, lock-bit) word per node driving the OLC protocol of
/// Listing 1/3 [Leis et al., "The ART of practical synchronization"].
///
/// Deletes set a per-entry tombstone bit; `GarbageCollect()` compacts leaf
/// pages (epoch-style: pages are never freed or merged while the tree is
/// alive, so readers never dereference reclaimed memory).
///
/// Thread safety: all operations may be called concurrently from any number
/// of threads. `BulkLoad` must run before concurrent access starts.
class LocalBLinkTree {
 public:
  explicit LocalBLinkTree(uint32_t page_size = 1024);
  ~LocalBLinkTree();

  LocalBLinkTree(const LocalBLinkTree&) = delete;
  LocalBLinkTree& operator=(const LocalBLinkTree&) = delete;

  /// Returns the value of (any) live entry with `key`.
  Result<Value> Lookup(Key key) const;

  /// Inserts (key, value); duplicate keys are allowed.
  Status Insert(Key key, Value value);

  /// Overwrites the value of the first live entry with `key` in place.
  Status Update(Key key, Value value);

  /// Appends the values of all live entries with `key` to `out` (may be
  /// null); returns the number found.
  uint64_t LookupAll(Key key, std::vector<Value>* out) const;

  /// Tombstones the first live entry with `key`.
  Status Delete(Key key);

  /// Collects live entries with lo <= key < hi into `out` (appended in key
  /// order). Returns the number of entries found.
  uint64_t Scan(Key lo, Key hi, std::vector<KV>* out) const;

  /// A forward cursor over live entries, starting at the first key >= the
  /// seek key. Reads one page at a time under optimistic validation, so a
  /// cursor never blocks writers and always returns a per-page-consistent
  /// stream (concurrent inserts/deletes may or may not be observed, as
  /// with Scan). Cheap to copy around; keep the tree alive while using it.
  class Cursor {
   public:
    /// True while the cursor points at a live entry.
    bool Valid() const { return position_ < buffer_.size(); }
    Key key() const { return buffer_[position_].key; }
    Value value() const { return buffer_[position_].value; }
    const KV& entry() const { return buffer_[position_]; }

    /// Advances to the next live entry (fetches the next page as needed).
    void Next();

   private:
    friend class LocalBLinkTree;
    Cursor(const LocalBLinkTree* tree, Key seek);
    void FetchFrom(Key lo);

    const LocalBLinkTree* tree_;
    std::vector<KV> buffer_;   // live entries of the current page
    size_t position_ = 0;
    Key resume_at_ = 0;        // first key of the next fetch
    bool exhausted_ = false;
  };

  /// Positions a cursor at the first live entry with key >= `seek`.
  Cursor Seek(Key seek) const { return Cursor(this, seek); }

  /// Replaces the tree contents with `sorted` (ascending by key). Must not
  /// race with other operations.
  Status BulkLoad(std::span<const KV> sorted);

  /// Compacts tombstoned entries out of every leaf. Returns the number of
  /// entries reclaimed. Safe to run concurrently with readers/writers.
  uint64_t GarbageCollect();

  struct TreeStats {
    uint64_t pages = 0;
    uint64_t height = 0;  // number of levels (1 = a single leaf)
    uint64_t live_entries = 0;
    uint64_t tombstones = 0;
  };
  /// Walks the tree (quiescent use only; concurrent writers may skew
  /// counts).
  TreeStats GetStats() const;

  uint32_t page_size() const { return page_size_; }

 private:
  // Pages are addressed by their raw memory address stored in uint64_t
  // child/sibling slots ("real memory pointers", paper §3.1).
  static PageView View(uint64_t raw, uint32_t page_size) {
    return PageView(reinterpret_cast<uint8_t*>(raw), page_size);
  }
  PageView View(uint64_t raw) const { return View(raw, page_size_); }

  uint64_t AllocatePage();

  // ---- OLC primitives (Listing 3) ----------------------------------------
  static std::atomic<uint64_t>& VersionWord(PageView page) {
    // The version word is the first 8 bytes of the page; pages are 8-byte
    // aligned, so treating it as an atomic is valid on all supported ABIs.
    return *reinterpret_cast<std::atomic<uint64_t>*>(page.data());
  }
  /// Spins until the node is unlocked; returns the observed version word.
  static uint64_t AwaitNodeUnlocked(PageView page);
  /// True if the node's version word still equals `version`.
  static bool CheckVersion(PageView page, uint64_t version) {
#if !defined(__SANITIZE_THREAD__)
    // Orders the speculative payload reads before the version re-load.
    // TSan cannot instrument fences (GCC hard-errors under -Wtsan), so the
    // sanitizer build relies on the acquire load alone; the OLC races it
    // then reports are the by-design ones listed in tsan.supp.
    std::atomic_thread_fence(std::memory_order_acquire);
#endif
    return VersionWord(page).load(std::memory_order_acquire) == version;
  }
  /// Tries to set the lock bit via CAS(version -> version|1).
  static bool TryUpgradeToWriteLock(PageView page, uint64_t version);
  /// Spin-acquires the write lock; returns the pre-lock version word.
  static uint64_t WriteLock(PageView page);
  /// Releases the lock and bumps the version (FAA +1 on the odd word).
  static void WriteUnlock(PageView page) {
    VersionWord(page).fetch_add(1, std::memory_order_release);
  }

  /// Descends to the leaf whose range contains `key`, chasing B-link
  /// siblings as needed. On success returns the leaf raw pointer; `version`
  /// receives its validated-unlocked version word.
  uint64_t DescendToLeaf(Key key, uint64_t* version) const;

  /// Descends to the *inner* node at `level` whose range contains `sep` and
  /// write-locks it. Returns its raw pointer, or 0 if the root level is
  /// below `level` (caller must grow the tree).
  uint64_t DescendToLevelLocked(uint8_t level, Key sep);

  /// Installs a separator produced by a split of a node at `level - 1`.
  void InstallSeparator(uint8_t level, Key sep, uint64_t left_raw,
                        uint64_t right_raw);

  /// Attempts to replace the root with a new root over (left, right).
  bool TryGrowRoot(uint8_t new_level, Key sep, uint64_t left_raw,
                   uint64_t right_raw);

  uint32_t page_size_;
  std::atomic<uint64_t> root_;        // raw pointer of the root page
  std::atomic<uint8_t> root_level_;   // level of the current root
  mutable std::mutex pages_mutex_;    // guards pages_ (allocation only)
  std::vector<uint8_t*> pages_;       // owned allocations, freed in dtor
};

}  // namespace namtree::btree

#endif  // NAMTREE_BTREE_LOCAL_TREE_H_
