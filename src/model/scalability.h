#ifndef NAMTREE_MODEL_SCALABILITY_H_
#define NAMTREE_MODEL_SCALABILITY_H_

#include <cstdint>
#include <string>

namespace namtree::model {

/// The symbols of the paper's scalability analysis (Table 1), initialised
/// to the example column.
struct ModelParams {
  double num_servers = 4;        ///< S: # of memory servers
  double bandwidth = 50e9;       ///< BW: bytes/s per memory server
  double page_size = 1024;       ///< P: bytes per index node
  double data_size = 100e6;      ///< D: # of tuples
  double key_size = 8;           ///< K: bytes (same as value/pointer size)

  /// M = P / (3K): fanout per index node (Table 1).
  double Fanout() const { return page_size / (3.0 * key_size); }

  /// L = D / M: number of leaf nodes.
  double Leaves() const { return data_size / Fanout(); }

  /// H_FG = ceil(log_M(L)): index height of the fine-grained (global)
  /// index; also the skewed-case height of the coarse-grained index.
  double HeightFineGrained() const;

  /// H_CG(uniform) = ceil(log_M(L / S)).
  double HeightCoarseUniform() const;

  /// H_CG(skew) = H_FG (most leaves end up on one server).
  double HeightCoarseSkew() const { return HeightFineGrained(); }
};

/// The index design / distribution-scheme axis of Table 2.
enum class Scheme {
  kFineGrained,   ///< FG, one-sided
  kCoarseRange,   ///< CG two-sided, range partitioned
  kCoarseHash,    ///< CG two-sided, hash partitioned
};

/// Workload distribution axis.
enum class Distribution {
  kUniform,
  kSkew,
};

const char* SchemeName(Scheme scheme);
const char* DistributionName(Distribution dist);

/// Step (1) in Table 2: total effectively available aggregated bandwidth in
/// bytes/s. Under skew the coarse-grained schemes collapse to one server's
/// bandwidth.
double AvailableBandwidth(const ModelParams& p, Scheme scheme,
                          Distribution dist);

/// Step (2): per-query bandwidth requirement of a point query, in bytes.
/// `z` is the skew read-amplification factor (z leaf pages are read instead
/// of one; the paper's example uses z = 10).
double PointQueryBytes(const ModelParams& p, Scheme scheme, Distribution dist,
                       double z);

/// Step (2): per-query bandwidth requirement of a range query with
/// selectivity `s` (fraction of leaves read); skewed workloads read
/// s * z leaves.
double RangeQueryBytes(const ModelParams& p, Scheme scheme, Distribution dist,
                       double s, double z);

/// Step (3): theoretical maximal throughput in queries/s (Figure 3).
double MaxThroughputPoint(const ModelParams& p, Scheme scheme,
                          Distribution dist, double z);
double MaxThroughputRange(const ModelParams& p, Scheme scheme,
                          Distribution dist, double s, double z);

}  // namespace namtree::model

#endif  // NAMTREE_MODEL_SCALABILITY_H_
