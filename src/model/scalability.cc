#include "model/scalability.h"

#include <cmath>

namespace namtree::model {

namespace {

double LogBase(double x, double base) { return std::log(x) / std::log(base); }

}  // namespace

double ModelParams::HeightFineGrained() const {
  return std::ceil(LogBase(Leaves(), Fanout()));
}

double ModelParams::HeightCoarseUniform() const {
  return std::ceil(LogBase(Leaves() / num_servers, Fanout()));
}

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kFineGrained:
      return "fine-grained";
    case Scheme::kCoarseRange:
      return "coarse-grained-range";
    case Scheme::kCoarseHash:
      return "coarse-grained-hash";
  }
  return "?";
}

const char* DistributionName(Distribution dist) {
  return dist == Distribution::kUniform ? "uniform" : "skew";
}

double AvailableBandwidth(const ModelParams& p, Scheme scheme,
                          Distribution dist) {
  // Table 2 step (1): FG always farms requests over all servers thanks to
  // the round-robin node placement; CG collapses to 1 x BW under
  // attribute-value skew.
  if (scheme == Scheme::kFineGrained || dist == Distribution::kUniform) {
    return p.num_servers * p.bandwidth;
  }
  return p.bandwidth;
}

double PointQueryBytes(const ModelParams& p, Scheme scheme, Distribution dist,
                       double z) {
  const double P = p.page_size;
  double height = 0;
  switch (scheme) {
    case Scheme::kFineGrained:
      height = p.HeightFineGrained();
      break;
    case Scheme::kCoarseRange:
    case Scheme::kCoarseHash:
      height = dist == Distribution::kUniform ? p.HeightCoarseUniform()
                                              : p.HeightCoarseSkew();
      break;
  }
  // Table 2 step (2), point rows: H*P (uniform, sel = 1/L) or H*P + z*P
  // (skew, sel = z/L).
  if (dist == Distribution::kUniform) return height * P;
  return height * P + z * P;
}

double RangeQueryBytes(const ModelParams& p, Scheme scheme, Distribution dist,
                       double s, double z) {
  const double P = p.page_size;
  const double L = p.Leaves();
  const double sel = dist == Distribution::kUniform ? s : s * z;
  double traversal = 0;
  switch (scheme) {
    case Scheme::kFineGrained:
      traversal = p.HeightFineGrained() * P;
      break;
    case Scheme::kCoarseRange:
      traversal = (dist == Distribution::kUniform ? p.HeightCoarseUniform()
                                                  : p.HeightCoarseSkew()) *
                  P;
      break;
    case Scheme::kCoarseHash:
      // Hash partitioning must traverse the index on all S servers.
      traversal = (dist == Distribution::kUniform ? p.HeightCoarseUniform()
                                                  : p.HeightCoarseSkew()) *
                  P * p.num_servers;
      break;
  }
  return traversal + sel * L * P;
}

double MaxThroughputPoint(const ModelParams& p, Scheme scheme,
                          Distribution dist, double z) {
  return AvailableBandwidth(p, scheme, dist) /
         PointQueryBytes(p, scheme, dist, z);
}

double MaxThroughputRange(const ModelParams& p, Scheme scheme,
                          Distribution dist, double s, double z) {
  return AvailableBandwidth(p, scheme, dist) /
         RangeQueryBytes(p, scheme, dist, s, z);
}

}  // namespace namtree::model
