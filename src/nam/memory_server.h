#ifndef NAMTREE_NAM_MEMORY_SERVER_H_
#define NAMTREE_NAM_MEMORY_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "rdma/fabric.h"
#include "rdma/memory_region.h"
#include "rdma/rpc.h"
#include "sim/task.h"

namespace namtree::nam {

/// A NAM memory server: an RDMA-registered memory region plus a small pool
/// of worker threads that poll the shared receive queue and execute RPC
/// handlers (two-sided access path, paper §3.2). One-sided verbs bypass
/// these workers entirely and hit the region through the NIC.
class MemoryServer {
 public:
  /// Handler invoked by a worker for each incoming RPC. The handler runs in
  /// virtual time (it should co_await Delay for its CPU consumption) and
  /// must eventually call fabric.Respond(server_id, rpc, response).
  using RpcHandler =
      std::function<sim::Task<>(MemoryServer& server, rdma::IncomingRpc rpc)>;

  MemoryServer(rdma::Fabric& fabric, uint32_t server_id,
               uint64_t region_bytes)
      : fabric_(fabric),
        server_id_(server_id),
        region_(server_id, region_bytes) {
    fabric_.RegisterRegion(server_id, &region_);
  }

  MemoryServer(const MemoryServer&) = delete;
  MemoryServer& operator=(const MemoryServer&) = delete;

  ~MemoryServer() {
    // Workers are infinite loops suspended on the SRQ; reclaim their frames.
    for (auto h : worker_handles_) h.destroy();
  }

  uint32_t server_id() const { return server_id_; }
  rdma::MemoryRegion& region() { return region_; }
  rdma::Fabric& fabric() { return fabric_; }

  /// Registers the handler serving RPCs tagged with `service`; a memory
  /// server can host several services (indexes) concurrently, sharing one
  /// worker pool and SRQ. The first registration spawns the workers.
  void RegisterHandler(uint16_t service, RpcHandler handler) {
    handlers_[service] = std::move(handler);
    Start();
  }

  /// Convenience for single-service deployments: registers under service 0.
  void Start(RpcHandler handler) { RegisterHandler(0, std::move(handler)); }

  /// Spawns the `workers_per_server` (FabricConfig) worker coroutines;
  /// idempotent.
  void Start() {
    if (!worker_handles_.empty()) return;
    const uint32_t workers = fabric_.config().workers_per_server;
    for (uint32_t w = 0; w < workers; ++w) {
      // The worker loop never finishes; keep the raw handle so the frame
      // can be reclaimed in the destructor.
      auto h = WorkerLoop().Release();
      worker_handles_.push_back(h);
      fabric_.simulator().ScheduleAt(fabric_.simulator().now(), h);
    }
  }

  /// CPU cost scaled by the QPI penalty if this server's cores sit on the
  /// far socket from the NIC, and by any injected straggler slowdown.
  SimTime ScaledCpu(SimTime base) const {
    double factor = fabric_.ServerSlowdown(server_id_);
    if (fabric_.config().CrossesQpi(server_id_)) {
      factor *= fabric_.config().qpi_penalty;
    }
    return static_cast<SimTime>(static_cast<double>(base) * factor);
  }

  /// Per-request fixed handler cost: RPC handling plus connection-state
  /// bookkeeping that grows with the number of connected clients.
  SimTime RequestOverhead() const {
    return ScaledCpu(fabric_.config().rpc_fixed_ns) +
           fabric_.PerRequestConnectionOverhead();
  }

  uint64_t requests_handled() const { return requests_handled_; }

 private:
  sim::Task<> WorkerLoop() {
    for (;;) {
      rdma::IncomingRpc rpc = co_await fabric_.srq(server_id_).Recv();
      if (!fabric_.ServerAlive(server_id_)) {
        // A dead server's workers are gone: requests still queued on the
        // SRQ are lost (their callers are failed by the death fallout).
        continue;
      }
      if (!fabric_.AdmitRpc(server_id_, rpc)) {
        // Retransmission of a request that already executed (or is mid
        // handler): answered from the fabric's dedup cache, never re-run.
        continue;
      }
      requests_handled_++;
      auto it = handlers_.find(rpc.request.service);
      if (it == handlers_.end()) {
        rdma::RpcResponse resp;
        resp.status = static_cast<uint16_t>(StatusCode::kUnsupported);
        fabric_.Respond(server_id_, rpc, std::move(resp));
        continue;
      }
      co_await it->second(*this, std::move(rpc));
    }
  }

  rdma::Fabric& fabric_;
  uint32_t server_id_;
  rdma::MemoryRegion region_;
  std::map<uint16_t, RpcHandler> handlers_;
  std::vector<sim::Task<>::Handle> worker_handles_;
  uint64_t requests_handled_ = 0;
};

}  // namespace namtree::nam

#endif  // NAMTREE_NAM_MEMORY_SERVER_H_
