#ifndef NAMTREE_NAM_CLUSTER_H_
#define NAMTREE_NAM_CLUSTER_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "nam/memory_server.h"
#include "rdma/fabric.h"
#include "rdma/fabric_config.h"
#include "sim/simulator.h"

namespace namtree::nam {

/// A complete simulated NAM deployment: the event simulator, the RDMA
/// fabric, and `num_memory_servers` memory servers with registered regions.
/// Compute clients are plain coroutines identified by a client id; create
/// a `ClientContext` per client.
class Cluster {
 public:
  Cluster(const rdma::FabricConfig& config, uint64_t region_bytes_per_server)
      : fabric_(simulator_, config) {
    for (uint32_t s = 0; s < config.num_memory_servers; ++s) {
      memory_servers_.push_back(
          std::make_unique<MemoryServer>(fabric_, s, region_bytes_per_server));
    }
  }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  rdma::Fabric& fabric() { return fabric_; }
  const rdma::FabricConfig& config() const { return fabric_.config(); }

  uint32_t num_memory_servers() const {
    return static_cast<uint32_t>(memory_servers_.size());
  }
  MemoryServer& memory_server(uint32_t s) { return *memory_servers_[s]; }

  /// Hands out a cluster-unique RPC service id (memory servers route
  /// requests to the matching registered handler, so several RPC-based
  /// indexes can share the cluster).
  uint16_t AllocateRpcService() { return next_rpc_service_++; }

  /// Hands out a cluster-unique catalog slot (per-server 8-byte metadata
  /// word, e.g. a root pointer). Aborts when the catalog is full.
  uint32_t AllocateCatalogSlot() {
    const uint32_t slot = next_catalog_slot_++;
    assert(slot < rdma::MemoryRegion::kCatalogSlots && "catalog exhausted");
    return slot;
  }

 private:
  sim::Simulator simulator_;
  rdma::Fabric fabric_;
  std::vector<std::unique_ptr<MemoryServer>> memory_servers_;
  uint16_t next_rpc_service_ = 1;  // 0 = the single-service default
  uint32_t next_catalog_slot_ = 0;
};

/// Per-client state for index operations issued from a compute server:
/// scratch page buffers for one-sided reads, a private RNG, and verb/latency
/// accounting.
class ClientContext {
 public:
  ClientContext(uint32_t client_id, rdma::Fabric& fabric, uint32_t page_size,
                uint64_t seed = 42)
      : client_id_(client_id),
        fabric_(&fabric),
        rng_(seed ^ (0x5851F42D4C957F2Dull * (client_id + 1))),
        page_buf_a_(page_size),
        page_buf_b_(page_size),
        trace_(client_id) {
    metrics::MetricRegistry& registry = fabric.metrics();
    const metrics::LabelSet labels = {{"client", std::to_string(client_id)}};
    registry.RegisterCounter(round_trips, "client.round_trips", labels,
                             "network round trips issued");
    registry.RegisterCounter(restarts, "client.restarts", labels,
                             "optimistic protocol restarts");
    registry.RegisterCounter(lock_waits, "client.lock_waits", labels,
                             "remote spinlock re-reads");
    registry.RegisterCounter(backoff_rounds, "client.backoff_rounds", labels,
                             "exponential-backoff sleeps while spinning");
    registry.RegisterCounter(lock_steals, "client.lock_steals", labels,
                             "orphaned locks reclaimed from dead holders");
    registry.RegisterCounter(combined_reads, "client.combined_reads", labels,
                             "READs served by attaching to in-flight ones");
    registry.RegisterCounter(speculative_hits, "client.speculative_hits",
                             labels, "speculative descents fully validated");
    registry.RegisterCounter(mispredicts, "client.mispredicts", labels,
                             "speculative descents that fell back");
    // Retry accounting is labeled by retry *domain*, not by client: every
    // client's handle feeds the same {domain=...} cell, so the registry sum
    // is the fleet-wide figure the flaky-net acceptance gate reads
    // (`retry.exhausted == 0`). The rpc domain lives in the Fabric itself.
    registry.RegisterCounter(lock_retry_attempts, "retry.attempts",
                             {{"domain", "lock"}},
                             "retries after a first failed attempt");
    registry.RegisterCounter(lock_retry_exhausted, "retry.exhausted",
                             {{"domain", "lock"}},
                             "retry budgets spent without success");
    registry.RegisterCounter(verb_retry_attempts, "retry.attempts",
                             {{"domain", "verb"}},
                             "retries after a first failed attempt");
    registry.RegisterCounter(verb_retry_exhausted, "retry.exhausted",
                             {{"domain", "verb"}},
                             "retry budgets spent without success");
    registry.RegisterCounter(steal_retry_attempts, "retry.attempts",
                             {{"domain", "steal"}},
                             "retries after a first failed attempt");
    registry.RegisterCounter(steal_retry_exhausted, "retry.exhausted",
                             {{"domain", "steal"}},
                             "retry budgets spent without success");
    registry.RegisterCounter(alloc_leaks, "client.alloc_leaks", labels,
                             "page slots conservatively re-drawn after a "
                             "lost allocation FAA");
    trace_.SetClock([&fabric] { return fabric.simulator().now(); });
  }

  ClientContext(const ClientContext&) = delete;
  ClientContext& operator=(const ClientContext&) = delete;

  uint32_t client_id() const { return client_id_; }
  rdma::Fabric& fabric() { return *fabric_; }
  Rng& rng() { return rng_; }

  uint8_t* page_a() { return page_buf_a_.data(); }
  uint8_t* page_b() { return page_buf_b_.data(); }
  uint32_t page_size() const {
    return static_cast<uint32_t>(page_buf_a_.size());
  }

  /// Counted RPC: the one place client code pays the round-trip toll for a
  /// two-sided call, so coalesced frames and retried sends cannot be
  /// miscounted by hand-bumped sites. Every caller awaits the task
  /// immediately, so the bump matches the historical
  /// `round_trips++; co_await fabric().Call(...)` pattern bit-for-bit.
  sim::Task<rdma::RpcResponse> Call(uint32_t server,
                                    rdma::RpcRequest request) {
    round_trips.Inc();
    const SimTime posted = trace_.in_span() ? fabric_->simulator().now() : 0;
    rdma::RpcResponse response =
        co_await fabric_->Call(client_id_, server, std::move(request));
    trace_.Event(metrics::TraceVerb::kRpc, server, /*chain=*/0, posted);
    co_return response;
  }

  /// This client's op trace (off until OpTrace::Enable). The counted-verb
  /// helpers (RemoteOps, Call) record verb events here; the YCSB runner and
  /// index entry points open the spans.
  metrics::OpTrace& trace() { return trace_; }

  // ---- Per-client accounting ---------------------------------------------
  // Registered `client.*` counter families labeled {client}; the handles
  // own the storage, so the hot-path increment is still a plain uint64_t
  // bump and per-context reads keep their historical values. Mutate only
  // through Inc()/Reset() — the consolidated counting paths (RemoteOps,
  // Call) do this for every verb.
  metrics::Counter round_trips;     ///< network round trips issued
  metrics::Counter restarts;        ///< optimistic protocol restarts
  metrics::Counter lock_waits;      ///< remote spinlock re-reads
  metrics::Counter backoff_rounds;  ///< backoff sleeps while spinning
  metrics::Counter lock_steals;     ///< orphaned locks reclaimed from dead
  /// Page reads served by attaching to another lane's in-flight READ
  /// (FabricConfig::read_combining); these do not count as round trips —
  /// the saved duplicate verb is exactly what the combiner measures.
  metrics::Counter combined_reads;
  /// Speculative descents (TraversalEngine::Options::speculative_descent)
  /// whose predicted root->leaf path validated without a fallback read.
  metrics::Counter speculative_hits;
  /// Speculative descents where validation had to fall back to the
  /// level-by-level loop (stale prediction, locked or dropped batch slot).
  metrics::Counter mispredicts;
  // Unified retry families ({domain=lock|verb|steal}; {domain=rpc} is owned
  // by the Fabric). `attempts` counts re-tries (first tries are free),
  // `exhausted` counts budgets that ran dry.
  metrics::Counter lock_retry_attempts;
  metrics::Counter lock_retry_exhausted;
  metrics::Counter verb_retry_attempts;
  metrics::Counter verb_retry_exhausted;
  metrics::Counter steal_retry_attempts;
  metrics::Counter steal_retry_exhausted;
  /// Allocation-cursor slots abandoned when a lost FAA could not be proven
  /// absent (the cursor moved under concurrency): the conservative re-draw
  /// leaks at most one page-size hole per event.
  metrics::Counter alloc_leaks;

  /// Round-robin cursor for remote page allocation (fine-grained splits
  /// scatter new nodes over all memory servers).
  uint32_t alloc_rr = 0;

  /// Failover lock routes (replicated fabrics only): primary page address
  /// -> the acting-primary replica this client actually locked, recorded
  /// by TryLockPage and consumed by the unlock paths so a release lands on
  /// the server that holds the lock even after further failovers. Empty at
  /// R=1.
  std::unordered_map<uint64_t, uint64_t> lock_routes;

 private:
  uint32_t client_id_;
  rdma::Fabric* fabric_;
  Rng rng_;
  std::vector<uint8_t> page_buf_a_;
  std::vector<uint8_t> page_buf_b_;
  metrics::OpTrace trace_;
};

}  // namespace namtree::nam

#endif  // NAMTREE_NAM_CLUSTER_H_
