# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/page_test[1]_include.cmake")
include("/root/repo/build/tests/local_tree_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/remote_ops_test[1]_include.cmake")
include("/root/repo/build/tests/server_tree_test[1]_include.cmake")
include("/root/repo/build/tests/leaf_level_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/node_cache_test[1]_include.cmake")
include("/root/repo/build/tests/inspector_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/hash_index_test[1]_include.cmake")
include("/root/repo/build/tests/rebalance_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/multi_index_test[1]_include.cmake")
include("/root/repo/build/tests/page_size_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/shared_nothing_test[1]_include.cmake")
