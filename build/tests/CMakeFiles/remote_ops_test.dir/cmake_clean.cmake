file(REMOVE_RECURSE
  "CMakeFiles/remote_ops_test.dir/remote_ops_test.cc.o"
  "CMakeFiles/remote_ops_test.dir/remote_ops_test.cc.o.d"
  "remote_ops_test"
  "remote_ops_test.pdb"
  "remote_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
