# Empty compiler generated dependencies file for remote_ops_test.
# This may be replaced when dependencies are built.
