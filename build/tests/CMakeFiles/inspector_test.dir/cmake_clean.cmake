file(REMOVE_RECURSE
  "CMakeFiles/inspector_test.dir/inspector_test.cc.o"
  "CMakeFiles/inspector_test.dir/inspector_test.cc.o.d"
  "inspector_test"
  "inspector_test.pdb"
  "inspector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
