# Empty compiler generated dependencies file for inspector_test.
# This may be replaced when dependencies are built.
