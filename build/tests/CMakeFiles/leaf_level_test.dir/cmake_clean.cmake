file(REMOVE_RECURSE
  "CMakeFiles/leaf_level_test.dir/leaf_level_test.cc.o"
  "CMakeFiles/leaf_level_test.dir/leaf_level_test.cc.o.d"
  "leaf_level_test"
  "leaf_level_test.pdb"
  "leaf_level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
