# Empty compiler generated dependencies file for leaf_level_test.
# This may be replaced when dependencies are built.
