file(REMOVE_RECURSE
  "CMakeFiles/multi_index_test.dir/multi_index_test.cc.o"
  "CMakeFiles/multi_index_test.dir/multi_index_test.cc.o.d"
  "multi_index_test"
  "multi_index_test.pdb"
  "multi_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
