# Empty compiler generated dependencies file for multi_index_test.
# This may be replaced when dependencies are built.
