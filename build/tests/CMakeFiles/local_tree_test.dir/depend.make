# Empty dependencies file for local_tree_test.
# This may be replaced when dependencies are built.
