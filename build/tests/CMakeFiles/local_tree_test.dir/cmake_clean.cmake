file(REMOVE_RECURSE
  "CMakeFiles/local_tree_test.dir/local_tree_test.cc.o"
  "CMakeFiles/local_tree_test.dir/local_tree_test.cc.o.d"
  "local_tree_test"
  "local_tree_test.pdb"
  "local_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
