# Empty compiler generated dependencies file for page_size_sweep_test.
# This may be replaced when dependencies are built.
