file(REMOVE_RECURSE
  "CMakeFiles/page_size_sweep_test.dir/page_size_sweep_test.cc.o"
  "CMakeFiles/page_size_sweep_test.dir/page_size_sweep_test.cc.o.d"
  "page_size_sweep_test"
  "page_size_sweep_test.pdb"
  "page_size_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_size_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
