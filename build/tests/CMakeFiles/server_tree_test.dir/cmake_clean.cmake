file(REMOVE_RECURSE
  "CMakeFiles/server_tree_test.dir/server_tree_test.cc.o"
  "CMakeFiles/server_tree_test.dir/server_tree_test.cc.o.d"
  "server_tree_test"
  "server_tree_test.pdb"
  "server_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
