# Empty dependencies file for server_tree_test.
# This may be replaced when dependencies are built.
