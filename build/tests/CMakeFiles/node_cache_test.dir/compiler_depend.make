# Empty compiler generated dependencies file for node_cache_test.
# This may be replaced when dependencies are built.
