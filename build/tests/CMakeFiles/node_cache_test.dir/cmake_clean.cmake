file(REMOVE_RECURSE
  "CMakeFiles/node_cache_test.dir/node_cache_test.cc.o"
  "CMakeFiles/node_cache_test.dir/node_cache_test.cc.o.d"
  "node_cache_test"
  "node_cache_test.pdb"
  "node_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
