# Empty compiler generated dependencies file for shared_nothing_test.
# This may be replaced when dependencies are built.
