file(REMOVE_RECURSE
  "CMakeFiles/shared_nothing_test.dir/shared_nothing_test.cc.o"
  "CMakeFiles/shared_nothing_test.dir/shared_nothing_test.cc.o.d"
  "shared_nothing_test"
  "shared_nothing_test.pdb"
  "shared_nothing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_nothing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
