file(REMOVE_RECURSE
  "CMakeFiles/rebalance_test.dir/rebalance_test.cc.o"
  "CMakeFiles/rebalance_test.dir/rebalance_test.cc.o.d"
  "rebalance_test"
  "rebalance_test.pdb"
  "rebalance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
