# Empty compiler generated dependencies file for rebalance_test.
# This may be replaced when dependencies are built.
