# Empty dependencies file for hash_index_test.
# This may be replaced when dependencies are built.
