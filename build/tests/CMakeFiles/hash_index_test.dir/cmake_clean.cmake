file(REMOVE_RECURSE
  "CMakeFiles/hash_index_test.dir/hash_index_test.cc.o"
  "CMakeFiles/hash_index_test.dir/hash_index_test.cc.o.d"
  "hash_index_test"
  "hash_index_test.pdb"
  "hash_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
