file(REMOVE_RECURSE
  "libnamtree_btree.a"
)
