# Empty compiler generated dependencies file for namtree_btree.
# This may be replaced when dependencies are built.
