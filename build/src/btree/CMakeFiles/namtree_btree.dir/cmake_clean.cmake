file(REMOVE_RECURSE
  "CMakeFiles/namtree_btree.dir/local_tree.cc.o"
  "CMakeFiles/namtree_btree.dir/local_tree.cc.o.d"
  "CMakeFiles/namtree_btree.dir/page.cc.o"
  "CMakeFiles/namtree_btree.dir/page.cc.o.d"
  "CMakeFiles/namtree_btree.dir/shared_nothing.cc.o"
  "CMakeFiles/namtree_btree.dir/shared_nothing.cc.o.d"
  "libnamtree_btree.a"
  "libnamtree_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
