
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/local_tree.cc" "src/btree/CMakeFiles/namtree_btree.dir/local_tree.cc.o" "gcc" "src/btree/CMakeFiles/namtree_btree.dir/local_tree.cc.o.d"
  "/root/repo/src/btree/page.cc" "src/btree/CMakeFiles/namtree_btree.dir/page.cc.o" "gcc" "src/btree/CMakeFiles/namtree_btree.dir/page.cc.o.d"
  "/root/repo/src/btree/shared_nothing.cc" "src/btree/CMakeFiles/namtree_btree.dir/shared_nothing.cc.o" "gcc" "src/btree/CMakeFiles/namtree_btree.dir/shared_nothing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/namtree_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
