file(REMOVE_RECURSE
  "libnamtree_sim.a"
)
