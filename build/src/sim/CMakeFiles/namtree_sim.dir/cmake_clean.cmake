file(REMOVE_RECURSE
  "CMakeFiles/namtree_sim.dir/simulator.cc.o"
  "CMakeFiles/namtree_sim.dir/simulator.cc.o.d"
  "libnamtree_sim.a"
  "libnamtree_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
