# Empty compiler generated dependencies file for namtree_sim.
# This may be replaced when dependencies are built.
