file(REMOVE_RECURSE
  "libnamtree_model.a"
)
