file(REMOVE_RECURSE
  "CMakeFiles/namtree_model.dir/scalability.cc.o"
  "CMakeFiles/namtree_model.dir/scalability.cc.o.d"
  "libnamtree_model.a"
  "libnamtree_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
