# Empty dependencies file for namtree_model.
# This may be replaced when dependencies are built.
