file(REMOVE_RECURSE
  "libnamtree_common.a"
)
