# Empty compiler generated dependencies file for namtree_common.
# This may be replaced when dependencies are built.
