file(REMOVE_RECURSE
  "CMakeFiles/namtree_common.dir/arg_parser.cc.o"
  "CMakeFiles/namtree_common.dir/arg_parser.cc.o.d"
  "CMakeFiles/namtree_common.dir/histogram.cc.o"
  "CMakeFiles/namtree_common.dir/histogram.cc.o.d"
  "CMakeFiles/namtree_common.dir/random.cc.o"
  "CMakeFiles/namtree_common.dir/random.cc.o.d"
  "CMakeFiles/namtree_common.dir/status.cc.o"
  "CMakeFiles/namtree_common.dir/status.cc.o.d"
  "CMakeFiles/namtree_common.dir/units.cc.o"
  "CMakeFiles/namtree_common.dir/units.cc.o.d"
  "libnamtree_common.a"
  "libnamtree_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
