file(REMOVE_RECURSE
  "libnamtree_index.a"
)
