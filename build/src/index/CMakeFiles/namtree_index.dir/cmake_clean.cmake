file(REMOVE_RECURSE
  "CMakeFiles/namtree_index.dir/coarse_grained.cc.o"
  "CMakeFiles/namtree_index.dir/coarse_grained.cc.o.d"
  "CMakeFiles/namtree_index.dir/coarse_one_sided.cc.o"
  "CMakeFiles/namtree_index.dir/coarse_one_sided.cc.o.d"
  "CMakeFiles/namtree_index.dir/fine_grained.cc.o"
  "CMakeFiles/namtree_index.dir/fine_grained.cc.o.d"
  "CMakeFiles/namtree_index.dir/hash_index.cc.o"
  "CMakeFiles/namtree_index.dir/hash_index.cc.o.d"
  "CMakeFiles/namtree_index.dir/hybrid.cc.o"
  "CMakeFiles/namtree_index.dir/hybrid.cc.o.d"
  "CMakeFiles/namtree_index.dir/inspector.cc.o"
  "CMakeFiles/namtree_index.dir/inspector.cc.o.d"
  "CMakeFiles/namtree_index.dir/leaf_level.cc.o"
  "CMakeFiles/namtree_index.dir/leaf_level.cc.o.d"
  "CMakeFiles/namtree_index.dir/partition.cc.o"
  "CMakeFiles/namtree_index.dir/partition.cc.o.d"
  "CMakeFiles/namtree_index.dir/remote_ops.cc.o"
  "CMakeFiles/namtree_index.dir/remote_ops.cc.o.d"
  "CMakeFiles/namtree_index.dir/server_tree.cc.o"
  "CMakeFiles/namtree_index.dir/server_tree.cc.o.d"
  "CMakeFiles/namtree_index.dir/tree_build.cc.o"
  "CMakeFiles/namtree_index.dir/tree_build.cc.o.d"
  "libnamtree_index.a"
  "libnamtree_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
