# Empty dependencies file for namtree_index.
# This may be replaced when dependencies are built.
