
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/coarse_grained.cc" "src/index/CMakeFiles/namtree_index.dir/coarse_grained.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/coarse_grained.cc.o.d"
  "/root/repo/src/index/coarse_one_sided.cc" "src/index/CMakeFiles/namtree_index.dir/coarse_one_sided.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/coarse_one_sided.cc.o.d"
  "/root/repo/src/index/fine_grained.cc" "src/index/CMakeFiles/namtree_index.dir/fine_grained.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/fine_grained.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "src/index/CMakeFiles/namtree_index.dir/hash_index.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/hash_index.cc.o.d"
  "/root/repo/src/index/hybrid.cc" "src/index/CMakeFiles/namtree_index.dir/hybrid.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/hybrid.cc.o.d"
  "/root/repo/src/index/inspector.cc" "src/index/CMakeFiles/namtree_index.dir/inspector.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/inspector.cc.o.d"
  "/root/repo/src/index/leaf_level.cc" "src/index/CMakeFiles/namtree_index.dir/leaf_level.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/leaf_level.cc.o.d"
  "/root/repo/src/index/partition.cc" "src/index/CMakeFiles/namtree_index.dir/partition.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/partition.cc.o.d"
  "/root/repo/src/index/remote_ops.cc" "src/index/CMakeFiles/namtree_index.dir/remote_ops.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/remote_ops.cc.o.d"
  "/root/repo/src/index/server_tree.cc" "src/index/CMakeFiles/namtree_index.dir/server_tree.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/server_tree.cc.o.d"
  "/root/repo/src/index/tree_build.cc" "src/index/CMakeFiles/namtree_index.dir/tree_build.cc.o" "gcc" "src/index/CMakeFiles/namtree_index.dir/tree_build.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btree/CMakeFiles/namtree_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/namtree_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/namtree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/namtree_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
