file(REMOVE_RECURSE
  "CMakeFiles/namtree_rdma.dir/fabric.cc.o"
  "CMakeFiles/namtree_rdma.dir/fabric.cc.o.d"
  "libnamtree_rdma.a"
  "libnamtree_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
