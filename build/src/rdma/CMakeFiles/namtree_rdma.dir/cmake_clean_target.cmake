file(REMOVE_RECURSE
  "libnamtree_rdma.a"
)
