# Empty compiler generated dependencies file for namtree_rdma.
# This may be replaced when dependencies are built.
