# Empty dependencies file for namtree_ycsb.
# This may be replaced when dependencies are built.
