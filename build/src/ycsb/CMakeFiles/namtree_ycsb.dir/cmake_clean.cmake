file(REMOVE_RECURSE
  "CMakeFiles/namtree_ycsb.dir/runner.cc.o"
  "CMakeFiles/namtree_ycsb.dir/runner.cc.o.d"
  "CMakeFiles/namtree_ycsb.dir/trace.cc.o"
  "CMakeFiles/namtree_ycsb.dir/trace.cc.o.d"
  "CMakeFiles/namtree_ycsb.dir/workload.cc.o"
  "CMakeFiles/namtree_ycsb.dir/workload.cc.o.d"
  "libnamtree_ycsb.a"
  "libnamtree_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
