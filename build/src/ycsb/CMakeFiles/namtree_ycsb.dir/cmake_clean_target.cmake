file(REMOVE_RECURSE
  "libnamtree_ycsb.a"
)
