file(REMOVE_RECURSE
  "CMakeFiles/index_fsck.dir/index_fsck.cpp.o"
  "CMakeFiles/index_fsck.dir/index_fsck.cpp.o.d"
  "index_fsck"
  "index_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
