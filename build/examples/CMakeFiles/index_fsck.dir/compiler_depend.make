# Empty compiler generated dependencies file for index_fsck.
# This may be replaced when dependencies are built.
