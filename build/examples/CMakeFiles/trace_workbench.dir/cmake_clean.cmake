file(REMOVE_RECURSE
  "CMakeFiles/trace_workbench.dir/trace_workbench.cpp.o"
  "CMakeFiles/trace_workbench.dir/trace_workbench.cpp.o.d"
  "trace_workbench"
  "trace_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
