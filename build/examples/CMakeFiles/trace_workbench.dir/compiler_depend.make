# Empty compiler generated dependencies file for trace_workbench.
# This may be replaced when dependencies are built.
