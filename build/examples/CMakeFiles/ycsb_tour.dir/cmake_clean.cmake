file(REMOVE_RECURSE
  "CMakeFiles/ycsb_tour.dir/ycsb_tour.cpp.o"
  "CMakeFiles/ycsb_tour.dir/ycsb_tour.cpp.o.d"
  "ycsb_tour"
  "ycsb_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
