# Empty compiler generated dependencies file for ycsb_tour.
# This may be replaced when dependencies are built.
