# Empty compiler generated dependencies file for table_network_efficiency.
# This may be replaced when dependencies are built.
