file(REMOVE_RECURSE
  "CMakeFiles/table_network_efficiency.dir/table_network_efficiency.cc.o"
  "CMakeFiles/table_network_efficiency.dir/table_network_efficiency.cc.o.d"
  "table_network_efficiency"
  "table_network_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_network_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
