file(REMOVE_RECURSE
  "CMakeFiles/fig09_network_util.dir/fig09_network_util.cc.o"
  "CMakeFiles/fig09_network_util.dir/fig09_network_util.cc.o.d"
  "fig09_network_util"
  "fig09_network_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_network_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
