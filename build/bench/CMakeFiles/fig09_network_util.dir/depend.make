# Empty dependencies file for fig09_network_util.
# This may be replaced when dependencies are built.
