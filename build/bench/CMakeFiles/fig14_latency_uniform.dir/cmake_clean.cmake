file(REMOVE_RECURSE
  "CMakeFiles/fig14_latency_uniform.dir/fig14_latency_uniform.cc.o"
  "CMakeFiles/fig14_latency_uniform.dir/fig14_latency_uniform.cc.o.d"
  "fig14_latency_uniform"
  "fig14_latency_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_latency_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
