# Empty dependencies file for fig14_latency_uniform.
# This may be replaced when dependencies are built.
