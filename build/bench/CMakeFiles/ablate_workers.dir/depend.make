# Empty dependencies file for ablate_workers.
# This may be replaced when dependencies are built.
