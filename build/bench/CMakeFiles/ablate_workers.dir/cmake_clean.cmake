file(REMOVE_RECURSE
  "CMakeFiles/ablate_workers.dir/ablate_workers.cc.o"
  "CMakeFiles/ablate_workers.dir/ablate_workers.cc.o.d"
  "ablate_workers"
  "ablate_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
