# Empty dependencies file for fig12_inserts.
# This may be replaced when dependencies are built.
