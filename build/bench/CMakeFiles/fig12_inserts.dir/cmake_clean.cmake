file(REMOVE_RECURSE
  "CMakeFiles/fig12_inserts.dir/fig12_inserts.cc.o"
  "CMakeFiles/fig12_inserts.dir/fig12_inserts.cc.o.d"
  "fig12_inserts"
  "fig12_inserts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_inserts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
