file(REMOVE_RECURSE
  "CMakeFiles/fig10_data_size.dir/fig10_data_size.cc.o"
  "CMakeFiles/fig10_data_size.dir/fig10_data_size.cc.o.d"
  "fig10_data_size"
  "fig10_data_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_data_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
