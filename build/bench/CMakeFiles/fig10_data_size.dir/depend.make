# Empty dependencies file for fig10_data_size.
# This may be replaced when dependencies are built.
