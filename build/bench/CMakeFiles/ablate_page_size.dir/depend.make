# Empty dependencies file for ablate_page_size.
# This may be replaced when dependencies are built.
