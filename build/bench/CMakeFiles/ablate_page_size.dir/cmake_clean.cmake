file(REMOVE_RECURSE
  "CMakeFiles/ablate_page_size.dir/ablate_page_size.cc.o"
  "CMakeFiles/ablate_page_size.dir/ablate_page_size.cc.o.d"
  "ablate_page_size"
  "ablate_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
