# Empty dependencies file for ablate_transport.
# This may be replaced when dependencies are built.
