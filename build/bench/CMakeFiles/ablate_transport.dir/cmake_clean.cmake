file(REMOVE_RECURSE
  "CMakeFiles/ablate_transport.dir/ablate_transport.cc.o"
  "CMakeFiles/ablate_transport.dir/ablate_transport.cc.o.d"
  "ablate_transport"
  "ablate_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
