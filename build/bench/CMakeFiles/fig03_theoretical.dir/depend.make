# Empty dependencies file for fig03_theoretical.
# This may be replaced when dependencies are built.
