file(REMOVE_RECURSE
  "CMakeFiles/fig03_theoretical.dir/fig03_theoretical.cc.o"
  "CMakeFiles/fig03_theoretical.dir/fig03_theoretical.cc.o.d"
  "fig03_theoretical"
  "fig03_theoretical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_theoretical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
