# Empty compiler generated dependencies file for fig11_memory_servers.
# This may be replaced when dependencies are built.
