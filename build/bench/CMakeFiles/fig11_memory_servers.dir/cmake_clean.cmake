file(REMOVE_RECURSE
  "CMakeFiles/fig11_memory_servers.dir/fig11_memory_servers.cc.o"
  "CMakeFiles/fig11_memory_servers.dir/fig11_memory_servers.cc.o.d"
  "fig11_memory_servers"
  "fig11_memory_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memory_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
