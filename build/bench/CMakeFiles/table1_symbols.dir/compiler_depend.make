# Empty compiler generated dependencies file for table1_symbols.
# This may be replaced when dependencies are built.
