file(REMOVE_RECURSE
  "CMakeFiles/table1_symbols.dir/table1_symbols.cc.o"
  "CMakeFiles/table1_symbols.dir/table1_symbols.cc.o.d"
  "table1_symbols"
  "table1_symbols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
