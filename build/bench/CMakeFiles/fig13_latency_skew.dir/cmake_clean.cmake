file(REMOVE_RECURSE
  "CMakeFiles/fig13_latency_skew.dir/fig13_latency_skew.cc.o"
  "CMakeFiles/fig13_latency_skew.dir/fig13_latency_skew.cc.o.d"
  "fig13_latency_skew"
  "fig13_latency_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_latency_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
