# Empty dependencies file for fig13_latency_skew.
# This may be replaced when dependencies are built.
