file(REMOVE_RECURSE
  "CMakeFiles/fig07_throughput_skew.dir/fig07_throughput_skew.cc.o"
  "CMakeFiles/fig07_throughput_skew.dir/fig07_throughput_skew.cc.o.d"
  "fig07_throughput_skew"
  "fig07_throughput_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_throughput_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
