# Empty dependencies file for fig07_throughput_skew.
# This may be replaced when dependencies are built.
