# Empty dependencies file for design_space_matrix.
# This may be replaced when dependencies are built.
