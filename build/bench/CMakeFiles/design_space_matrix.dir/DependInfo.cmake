
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/design_space_matrix.cc" "bench/CMakeFiles/design_space_matrix.dir/design_space_matrix.cc.o" "gcc" "bench/CMakeFiles/design_space_matrix.dir/design_space_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/namtree_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/namtree_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/namtree_index.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/namtree_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/namtree_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/namtree_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/namtree_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/namtree_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
