file(REMOVE_RECURSE
  "CMakeFiles/design_space_matrix.dir/design_space_matrix.cc.o"
  "CMakeFiles/design_space_matrix.dir/design_space_matrix.cc.o.d"
  "design_space_matrix"
  "design_space_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
