# Empty compiler generated dependencies file for baseline_hash.
# This may be replaced when dependencies are built.
