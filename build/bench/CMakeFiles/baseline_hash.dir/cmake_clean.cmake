file(REMOVE_RECURSE
  "CMakeFiles/baseline_hash.dir/baseline_hash.cc.o"
  "CMakeFiles/baseline_hash.dir/baseline_hash.cc.o.d"
  "baseline_hash"
  "baseline_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
