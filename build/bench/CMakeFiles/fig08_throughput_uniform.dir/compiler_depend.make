# Empty compiler generated dependencies file for fig08_throughput_uniform.
# This may be replaced when dependencies are built.
