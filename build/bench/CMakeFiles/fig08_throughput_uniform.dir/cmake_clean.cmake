file(REMOVE_RECURSE
  "CMakeFiles/fig08_throughput_uniform.dir/fig08_throughput_uniform.cc.o"
  "CMakeFiles/fig08_throughput_uniform.dir/fig08_throughput_uniform.cc.o.d"
  "fig08_throughput_uniform"
  "fig08_throughput_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_throughput_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
