file(REMOVE_RECURSE
  "CMakeFiles/namtree_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/namtree_bench_common.dir/bench_common.cc.o.d"
  "libnamtree_bench_common.a"
  "libnamtree_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namtree_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
