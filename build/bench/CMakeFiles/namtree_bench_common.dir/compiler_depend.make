# Empty compiler generated dependencies file for namtree_bench_common.
# This may be replaced when dependencies are built.
