file(REMOVE_RECURSE
  "libnamtree_bench_common.a"
)
