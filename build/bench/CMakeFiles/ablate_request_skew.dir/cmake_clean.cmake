file(REMOVE_RECURSE
  "CMakeFiles/ablate_request_skew.dir/ablate_request_skew.cc.o"
  "CMakeFiles/ablate_request_skew.dir/ablate_request_skew.cc.o.d"
  "ablate_request_skew"
  "ablate_request_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_request_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
