# Empty dependencies file for ablate_request_skew.
# This may be replaced when dependencies are built.
