# Empty dependencies file for ablate_client_cache.
# This may be replaced when dependencies are built.
