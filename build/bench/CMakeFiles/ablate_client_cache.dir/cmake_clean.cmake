file(REMOVE_RECURSE
  "CMakeFiles/ablate_client_cache.dir/ablate_client_cache.cc.o"
  "CMakeFiles/ablate_client_cache.dir/ablate_client_cache.cc.o.d"
  "ablate_client_cache"
  "ablate_client_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_client_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
