file(REMOVE_RECURSE
  "CMakeFiles/ablate_head_nodes.dir/ablate_head_nodes.cc.o"
  "CMakeFiles/ablate_head_nodes.dir/ablate_head_nodes.cc.o.d"
  "ablate_head_nodes"
  "ablate_head_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_head_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
