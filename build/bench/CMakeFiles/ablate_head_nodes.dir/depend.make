# Empty dependencies file for ablate_head_nodes.
# This may be replaced when dependencies are built.
