# Empty compiler generated dependencies file for fig15_colocation.
# This may be replaced when dependencies are built.
