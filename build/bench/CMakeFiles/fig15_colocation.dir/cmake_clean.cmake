file(REMOVE_RECURSE
  "CMakeFiles/fig15_colocation.dir/fig15_colocation.cc.o"
  "CMakeFiles/fig15_colocation.dir/fig15_colocation.cc.o.d"
  "fig15_colocation"
  "fig15_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
