# Empty compiler generated dependencies file for ablate_rebalance.
# This may be replaced when dependencies are built.
