file(REMOVE_RECURSE
  "CMakeFiles/ablate_rebalance.dir/ablate_rebalance.cc.o"
  "CMakeFiles/ablate_rebalance.dir/ablate_rebalance.cc.o.d"
  "ablate_rebalance"
  "ablate_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
