// Tests for the Section 2.3 scalability model: Table 1 example values,
// Table 2 formulas, and the qualitative findings behind Figure 3.

#include <gtest/gtest.h>

#include "model/scalability.h"

namespace namtree::model {
namespace {

ModelParams PaperExample() { return ModelParams{}; }  // Table 1 defaults

TEST(ModelParamsTest, Table1ExampleColumn) {
  const ModelParams p = PaperExample();
  EXPECT_DOUBLE_EQ(p.num_servers, 4);
  EXPECT_DOUBLE_EQ(p.bandwidth, 50e9);
  // M = P/(3K) ~ 42.67 (the paper rounds to 42).
  EXPECT_NEAR(p.Fanout(), 42.67, 0.1);
  // L = D/M ~ 2.34M (paper: "approx. 2.3M").
  EXPECT_NEAR(p.Leaves(), 2.34e6, 5e4);
  // H_FG = log_M(L) = 4 and H_CG(uniform) = log_M(L/S) = 4 (Table 1).
  EXPECT_DOUBLE_EQ(p.HeightFineGrained(), 4);
  EXPECT_DOUBLE_EQ(p.HeightCoarseUniform(), 4);
  EXPECT_DOUBLE_EQ(p.HeightCoarseSkew(), 4);
}

TEST(ModelTest, AvailableBandwidthStep1) {
  const ModelParams p = PaperExample();
  // Uniform: S*BW for every scheme. Skew: FG keeps S*BW, CG collapses to BW.
  for (Scheme s : {Scheme::kFineGrained, Scheme::kCoarseRange,
                   Scheme::kCoarseHash}) {
    EXPECT_DOUBLE_EQ(AvailableBandwidth(p, s, Distribution::kUniform),
                     4 * 50e9);
  }
  EXPECT_DOUBLE_EQ(
      AvailableBandwidth(p, Scheme::kFineGrained, Distribution::kSkew),
      4 * 50e9);
  EXPECT_DOUBLE_EQ(
      AvailableBandwidth(p, Scheme::kCoarseRange, Distribution::kSkew), 50e9);
  EXPECT_DOUBLE_EQ(
      AvailableBandwidth(p, Scheme::kCoarseHash, Distribution::kSkew), 50e9);
}

TEST(ModelTest, PointQueryBytesStep2) {
  const ModelParams p = PaperExample();
  const double P = p.page_size;
  // Uniform: H*P.
  EXPECT_DOUBLE_EQ(
      PointQueryBytes(p, Scheme::kFineGrained, Distribution::kUniform, 10),
      4 * P);
  EXPECT_DOUBLE_EQ(
      PointQueryBytes(p, Scheme::kCoarseRange, Distribution::kUniform, 10),
      4 * P);
  // Skew: H*P + z*P.
  EXPECT_DOUBLE_EQ(
      PointQueryBytes(p, Scheme::kFineGrained, Distribution::kSkew, 10),
      4 * P + 10 * P);
  EXPECT_DOUBLE_EQ(
      PointQueryBytes(p, Scheme::kCoarseHash, Distribution::kSkew, 10),
      4 * P + 10 * P);
}

TEST(ModelTest, RangeQueryBytesStep2) {
  const ModelParams p = PaperExample();
  const double P = p.page_size;
  const double L = p.Leaves();
  const double s = 0.001;
  EXPECT_DOUBLE_EQ(
      RangeQueryBytes(p, Scheme::kFineGrained, Distribution::kUniform, s, 10),
      4 * P + s * L * P);
  // Hash: the traversal multiplies by S (query goes to all servers).
  EXPECT_DOUBLE_EQ(
      RangeQueryBytes(p, Scheme::kCoarseHash, Distribution::kUniform, s, 10),
      4 * P * 4 + s * L * P);
  // Skew: selectivity amplified by z.
  EXPECT_DOUBLE_EQ(
      RangeQueryBytes(p, Scheme::kCoarseRange, Distribution::kSkew, s, 10),
      4 * P + 10 * s * L * P);
}

TEST(ModelTest, Figure3Findings) {
  // The qualitative results of Figure 3 for range queries (sel=0.001,
  // z=10): (a) all schemes scale under uniform; (b) under skew only FG
  // keeps scaling; (c) CG-hash is below CG-range under uniform.
  const double s = 0.001;
  const double z = 10;

  auto at = [&](double servers, Scheme scheme, Distribution dist) {
    ModelParams p = PaperExample();
    p.num_servers = servers;
    return MaxThroughputRange(p, scheme, dist, s, z);
  };

  // (a) uniform scaling: 64 servers >> 2 servers for all schemes.
  for (Scheme scheme : {Scheme::kFineGrained, Scheme::kCoarseRange,
                        Scheme::kCoarseHash}) {
    EXPECT_GT(at(64, scheme, Distribution::kUniform),
              10 * at(2, scheme, Distribution::kUniform));
  }
  // (b) skew: FG scales ~linearly, CG stagnates at ~BW/query.
  EXPECT_GT(at(64, Scheme::kFineGrained, Distribution::kSkew),
            20 * at(2, Scheme::kFineGrained, Distribution::kSkew));
  EXPECT_LT(at(64, Scheme::kCoarseRange, Distribution::kSkew),
            1.10 * at(2, Scheme::kCoarseRange, Distribution::kSkew));
  // (c) hash <= range under uniform (S traversals).
  EXPECT_LT(at(16, Scheme::kCoarseHash, Distribution::kUniform),
            at(16, Scheme::kCoarseRange, Distribution::kUniform));
  // FG(skew) == FG(uniform at z-amplified selectivity) relationship: FG is
  // workload-robust: its uniform and skew curves differ only by the z
  // amplification, not by available bandwidth.
  ModelParams p = PaperExample();
  EXPECT_DOUBLE_EQ(
      AvailableBandwidth(p, Scheme::kFineGrained, Distribution::kSkew),
      AvailableBandwidth(p, Scheme::kFineGrained, Distribution::kUniform));
}

TEST(ModelTest, ThroughputIsBandwidthOverQueryBytes) {
  const ModelParams p = PaperExample();
  const double thr =
      MaxThroughputPoint(p, Scheme::kCoarseRange, Distribution::kUniform, 10);
  EXPECT_DOUBLE_EQ(
      thr, (4 * 50e9) / PointQueryBytes(p, Scheme::kCoarseRange,
                                        Distribution::kUniform, 10));
}

TEST(ModelTest, HeightsGrowWithData) {
  ModelParams p = PaperExample();
  p.data_size = 1e6;
  const double h1 = p.HeightFineGrained();
  p.data_size = 1e9;
  const double h2 = p.HeightFineGrained();
  EXPECT_GT(h2, h1);
}

}  // namespace
}  // namespace namtree::model
