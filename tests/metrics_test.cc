// Unit tests for the unified metrics registry and per-op tracing layer
// (src/common/metrics.h, docs/observability.md): handle registration and
// label fan-out, Snapshot/Delta window semantics (mid-window cells, reset
// detection, retired-handle residue), histogram cell merging, and the
// OpTrace span ring (bounding, event truncation, outlier retention and
// hook, nested-span inertness).

#include "common/metrics.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace namtree::metrics {
namespace {

TEST(MetricRegistryTest, RegisterAndLookup) {
  MetricRegistry registry;
  Counter frobs;
  registry.RegisterCounter(frobs, "x.frobs", {}, "frobnications");
  EXPECT_EQ(registry.family_count(), 1u);
  EXPECT_EQ(registry.Value("x.frobs"), 0u);
  EXPECT_EQ(registry.Help("x.frobs"), "frobnications");

  frobs.Inc();
  frobs.Inc(4);
  EXPECT_EQ(registry.Value("x.frobs"), 5u);
  EXPECT_EQ(frobs.value(), 5u);
  // The implicit conversion is the compatibility shim for legacy field
  // reads: arithmetic and gtest comparisons work unchanged.
  EXPECT_EQ(frobs, 5u);

  // Unknown families read as zero rather than erroring: callers probe
  // families that a given run may never have touched.
  EXPECT_EQ(registry.Value("x.absent"), 0u);
  EXPECT_EQ(registry.Help("x.absent"), "");
}

TEST(MetricRegistryTest, LabelFanOutSumsAndFilters) {
  MetricRegistry registry;
  Counter c0, c1, c2;
  registry.RegisterCounter(c0, "x.ops", {{"client", "0"}});
  registry.RegisterCounter(c1, "x.ops", {{"client", "1"}});
  registry.RegisterCounter(c2, "x.ops", {{"client", "2"}});
  EXPECT_EQ(registry.family_count(), 1u) << "one family, three cells";

  c0.Inc(1);
  c1.Inc(10);
  c2.Inc(100);
  EXPECT_EQ(registry.Value("x.ops"), 111u);
  EXPECT_EQ(registry.Value("x.ops", "client", "1"), 10u);
  EXPECT_EQ(registry.Value("x.ops", "client", "9"), 0u);

  const Snapshot snap = registry.Collect();
  EXPECT_EQ(snap.Value("x.ops"), 111u);
  EXPECT_EQ(snap.Value("x.ops", "client", "2"), 100u);
  ASSERT_EQ(snap.families().size(), 1u);
  EXPECT_EQ(snap.families()[0].label_keys,
            std::vector<std::string>{"client"});
  EXPECT_EQ(snap.families()[0].values.size(), 3u);
}

TEST(MetricRegistryTest, MultipleHandlesOfOneCellSum) {
  // Two handles carrying the same label values land in the same logical
  // cell of the family (e.g. several RemoteOps engines for one client).
  MetricRegistry registry;
  Counter a, b;
  registry.RegisterCounter(a, "x.ops", {{"client", "0"}});
  registry.RegisterCounter(b, "x.ops", {{"client", "0"}});
  a.Inc(3);
  b.Inc(4);
  EXPECT_EQ(registry.Value("x.ops", "client", "0"), 7u);
  const Snapshot snap = registry.Collect();
  ASSERT_EQ(snap.families()[0].values.size(), 1u) << "one merged cell";
  EXPECT_EQ(snap.families()[0].values[0].second, 7u);
}

TEST(MetricRegistryTest, RetiredHandleResidueKeepsTotalsMonotone) {
  MetricRegistry registry;
  {
    Counter ephemeral;
    registry.RegisterCounter(ephemeral, "x.ops", {{"client", "7"}});
    ephemeral.Inc(42);
  }  // handle destroyed: value folds into the retired residue
  EXPECT_EQ(registry.Value("x.ops"), 42u);
  EXPECT_EQ(registry.Value("x.ops", "client", "7"), 42u);

  // A successor handle with the same labels adds on top of the residue —
  // per-run ClientContexts on a long-lived fabric keep family totals
  // monotone across runs.
  Counter successor;
  registry.RegisterCounter(successor, "x.ops", {{"client", "7"}});
  successor.Inc(8);
  EXPECT_EQ(registry.Value("x.ops", "client", "7"), 50u);
}

TEST(MetricRegistryTest, CallbackFamilyReadsAtCollectTime) {
  MetricRegistry registry;
  uint64_t source = 0;
  registry.RegisterCallback("x.bytes", [&] { return source; },
                            {{"server", "0"}});
  EXPECT_EQ(registry.Value("x.bytes"), 0u);
  source = 1234;
  EXPECT_EQ(registry.Value("x.bytes"), 1234u);
  EXPECT_EQ(registry.Collect().Value("x.bytes", "server", "0"), 1234u);
}

TEST(MetricRegistryTest, GaugeReportsLevel) {
  MetricRegistry registry;
  Gauge depth;
  registry.RegisterGauge(depth, "x.depth");
  depth.Set(5);
  depth.Add(2);
  depth.Sub(3);
  EXPECT_EQ(registry.Value("x.depth"), 4u);
}

TEST(DeltaTest, WindowSubtractsCounters) {
  MetricRegistry registry;
  Counter ops;
  registry.RegisterCounter(ops, "x.ops");
  ops.Inc(10);
  const Snapshot begin = registry.Collect();
  ops.Inc(7);
  const Delta delta = Delta::Between(begin, registry.Collect());
  EXPECT_EQ(delta.Value("x.ops"), 7u);
  EXPECT_TRUE(delta.Has("x.ops"));
  EXPECT_FALSE(delta.Has("x.other"));
}

TEST(DeltaTest, CellCreatedMidWindowCountsFromZero) {
  MetricRegistry registry;
  Counter before;
  registry.RegisterCounter(before, "x.ops", {{"client", "0"}});
  before.Inc(5);
  const Snapshot begin = registry.Collect();

  Counter mid;
  registry.RegisterCounter(mid, "x.ops", {{"client", "1"}});
  mid.Inc(30);
  before.Inc(1);

  const Delta delta = Delta::Between(begin, registry.Collect());
  EXPECT_EQ(delta.Value("x.ops", "client", "0"), 1u);
  EXPECT_EQ(delta.Value("x.ops", "client", "1"), 30u)
      << "mid-window cell must count from zero, not vanish";
  EXPECT_EQ(delta.Value("x.ops"), 31u);
}

TEST(DeltaTest, ResetInsideWindowReportsPostResetValue) {
  // Prometheus-style reset detection: a window spanning Fabric::ResetStats
  // must reproduce the legacy "since last reset" reading.
  MetricRegistry registry;
  Counter ops;
  registry.RegisterCounter(ops, "x.ops");
  ops.Inc(100);
  const Snapshot begin = registry.Collect();
  ops.Reset();
  ops.Inc(9);
  const Delta delta = Delta::Between(begin, registry.Collect());
  EXPECT_EQ(delta.Value("x.ops"), 9u);
}

TEST(DeltaTest, DefaultConstructedIsEmpty) {
  const Delta delta;
  EXPECT_EQ(delta.Value("anything"), 0u);
  EXPECT_EQ(delta.Value("anything", "k", "v"), 0u);
  EXPECT_FALSE(delta.Has("anything"));
  EXPECT_TRUE(delta.families().empty());
}

TEST(DeltaTest, GaugeReportsEndLevelNotDifference) {
  MetricRegistry registry;
  Gauge depth;
  registry.RegisterGauge(depth, "x.depth");
  depth.Set(10);
  const Snapshot begin = registry.Collect();
  depth.Set(3);
  const Delta delta = Delta::Between(begin, registry.Collect());
  EXPECT_EQ(delta.Value("x.depth"), 3u);
}

TEST(HistogramFamilyTest, CellsMergePerLabelSet) {
  MetricRegistry registry;
  Histogram lane0, lane1;
  registry.RegisterHistogram(lane0, "x.latency", {{"op", "point"}});
  registry.RegisterHistogram(lane1, "x.latency", {{"op", "point"}});
  lane0.Observe(100);
  lane0.Observe(200);
  lane1.Observe(300);

  const Snapshot snap = registry.Collect();
  ASSERT_EQ(snap.families().size(), 1u);
  const FamilySample& family = snap.families()[0];
  EXPECT_EQ(family.kind, MetricKind::kHistogram);
  ASSERT_EQ(family.hists.size(), 1u) << "same labels -> one merged cell";
  EXPECT_EQ(family.hists[0].second.count(), 3u);
  EXPECT_EQ(family.hists[0].second.max(), 300u);
  EXPECT_EQ(snap.Value("x.latency"), 3u) << "values carry the obs count";
}

TEST(HistogramFamilyTest, DeltaReportsWindowedCount) {
  MetricRegistry registry;
  Histogram lat;
  registry.RegisterHistogram(lat, "x.latency", {{"op", "point"}});
  lat.Observe(1);
  lat.Observe(2);
  const Snapshot begin = registry.Collect();
  lat.Observe(3);
  const Delta delta = Delta::Between(begin, registry.Collect());
  EXPECT_EQ(delta.Value("x.latency"), 1u);
  ASSERT_EQ(delta.families().size(), 1u);
  // The distribution itself is cumulative end-of-window.
  EXPECT_EQ(delta.families()[0].hists[0].second.count(), 3u);
}

TEST(HistogramFamilyTest, RetiredHistogramMergesIntoResidue) {
  MetricRegistry registry;
  {
    Histogram ephemeral;
    registry.RegisterHistogram(ephemeral, "x.latency", {{"op", "point"}});
    ephemeral.Observe(50);
  }
  Histogram successor;
  registry.RegisterHistogram(successor, "x.latency", {{"op", "point"}});
  successor.Observe(70);
  const Snapshot snap = registry.Collect();
  EXPECT_EQ(snap.Value("x.latency"), 2u);
  EXPECT_EQ(snap.families()[0].hists[0].second.max(), 70u);
  EXPECT_EQ(snap.families()[0].hists[0].second.min(), 50u);
}

// ---------------------------------------------------------------------------
// OpTrace
// ---------------------------------------------------------------------------

class OpTraceTest : public ::testing::Test {
 protected:
  OpTraceTest() : trace_(3) {
    trace_.SetClock([this] { return now_; });
  }

  SimTime now_ = 0;
  OpTrace trace_;
};

TEST_F(OpTraceTest, DisabledTraceIsInert) {
  EXPECT_FALSE(trace_.enabled());
  {
    OpSpan span(trace_, "point");
    EXPECT_FALSE(span.active());
    EXPECT_FALSE(trace_.in_span());
    trace_.Event(TraceVerb::kRead, 0, 0, 0);
  }
  EXPECT_TRUE(trace_.ring().empty());
}

TEST_F(OpTraceTest, SpanRecordsVerbEventsInOrder) {
  trace_.Enable();
  now_ = 1000;
  {
    OpSpan span(trace_, "point");
    EXPECT_TRUE(span.active());
    EXPECT_TRUE(trace_.in_span());
    const SimTime t0 = now_;
    now_ = 1500;
    trace_.Event(TraceVerb::kRead, 2, 0, t0);
    now_ = 2000;
    trace_.Event(TraceVerb::kCas, 1, 7, 1500);
  }
  ASSERT_EQ(trace_.ring().size(), 1u);
  const SpanRecord& rec = trace_.ring().front();
  EXPECT_EQ(rec.op, "point");
  EXPECT_EQ(rec.start, 1000);
  EXPECT_EQ(rec.finish, 2000);
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(rec.events[0].verb, TraceVerb::kRead);
  EXPECT_EQ(rec.events[0].server, 2u);
  EXPECT_EQ(rec.events[0].start, 1000);
  EXPECT_EQ(rec.events[0].finish, 1500);
  EXPECT_EQ(rec.events[1].verb, TraceVerb::kCas);
  EXPECT_EQ(rec.events[1].chain, 7u);
  EXPECT_EQ(rec.truncated, 0u);
  EXPECT_NE(rec.ToString().find("point"), std::string::npos);
}

TEST_F(OpTraceTest, NestedSpansStayInert) {
  trace_.Enable();
  OpSpan outer(trace_, "point");
  ASSERT_TRUE(outer.active());
  {
    // The index entry point opens its own span under the runner's: it must
    // not record, and closing it must not close the outer span.
    OpSpan inner(trace_, "lookup");
    EXPECT_FALSE(inner.active());
    EXPECT_TRUE(trace_.in_span());
  }
  EXPECT_TRUE(trace_.in_span()) << "inner destructor closed the outer span";
  trace_.Event(TraceVerb::kRead, 0, 0, 0);
  EXPECT_TRUE(trace_.ring().empty()) << "outer span still open";
}

TEST_F(OpTraceTest, RingIsBoundedNewestWin) {
  trace_.Enable(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    now_ = i * 100;
    OpSpan span(trace_, "point");
    now_ = i * 100 + 10;
  }
  ASSERT_EQ(trace_.ring().size(), 4u);
  EXPECT_EQ(trace_.ring().front().start, 600);
  EXPECT_EQ(trace_.ring().back().start, 900);
}

TEST_F(OpTraceTest, EventsPerSpanAreTruncated) {
  trace_.Enable();
  {
    OpSpan span(trace_, "scan");
    for (size_t i = 0; i < OpTrace::kMaxEventsPerSpan + 25; ++i) {
      trace_.Event(TraceVerb::kRead, 0, 0, 0);
    }
  }
  ASSERT_EQ(trace_.ring().size(), 1u);
  const SpanRecord& rec = trace_.ring().front();
  EXPECT_EQ(rec.events.size(), OpTrace::kMaxEventsPerSpan);
  EXPECT_EQ(rec.truncated, 25u);
  EXPECT_NE(rec.ToString().find("truncated"), std::string::npos);
}

TEST_F(OpTraceTest, SlowestSpansRetainedPerOpWithHook) {
  trace_.Enable(/*ring_capacity=*/2, /*outliers_per_op=*/2);
  size_t hook_calls = 0;
  trace_.SetOutlierHook([&](const SpanRecord&) { hook_calls++; });

  // Durations: point 10, 40, 20, 30; scan 99.
  const SimTime durations[] = {10, 40, 20, 30};
  SimTime t = 0;
  for (SimTime d : durations) {
    now_ = t;
    OpSpan span(trace_, "point");
    now_ = t + d;
    t += 1000;
  }
  now_ = t;
  {
    OpSpan span(trace_, "scan");
    now_ = t + 99;
  }

  const auto slowest = trace_.SlowestFor("point");
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0]->duration(), 40);
  EXPECT_EQ(slowest[1]->duration(), 30);
  ASSERT_EQ(trace_.SlowestFor("scan").size(), 1u);
  // Spans 10 and 40 seed the set, 20 evicts 10, 30 evicts 20, scan's 99
  // enters its own op's set: every admission fires the hook once.
  EXPECT_EQ(hook_calls, 5u);

  const std::string dump = trace_.DumpOutliers();
  EXPECT_NE(dump.find("point"), std::string::npos);
  EXPECT_NE(dump.find("scan"), std::string::npos);

  // The ring only kept the newest two spans; the retained outliers
  // survive ring eviction.
  EXPECT_EQ(trace_.ring().size(), 2u);
}

TEST_F(OpTraceTest, ChainIdsAreMonotonePerClient) {
  const uint64_t a = trace_.NextChainId();
  const uint64_t b = trace_.NextChainId();
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace namtree::metrics
