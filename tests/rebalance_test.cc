// Tests for epoch leaf rebalancing: delete-heavy chains shrink (merge +
// unlink), searches and scans stay exact across drained pages — including
// scans racing the merge itself — and duplicate runs are never straddled.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "index/fine_grained.h"
#include "index/inspector.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using btree::Value;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

constexpr uint32_t kPage = 256;  // leaf capacity 10

rdma::FabricConfig Config() {
  rdma::FabricConfig config;
  config.num_memory_servers = 4;
  return config;
}

IndexConfig MakeIndexConfig() {
  IndexConfig config;
  config.page_size = kPage;
  config.head_node_interval = 4;
  config.gc_merge_fill_percent = 70;
  return config;
}

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

Task<> ChainPages(FineGrainedIndex& index, ClientContext& ctx,
                  uint64_t* pages, uint64_t* live) {
  RemoteOps ops(ctx);
  *pages = co_await LeafLevel::CountChain(ops, index.first_leaf(), live,
                                          nullptr);
}

TEST(RebalanceTest, DeleteHeavyChainShrinksAfterGc) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, MakeIndexConfig());
  const uint64_t keys = 10000;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  struct Driver {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t keys) {
      // Delete 90% of the entries.
      for (Key k = 0; k < keys; ++k) {
        if (k % 10 != 0) {
          EXPECT_TRUE((co_await index.Delete(ctx, k * 2)).ok());
        }
      }
      // Epoch 1 compacts + drains; epoch 2 unlinks the drained pages.
      (void)co_await index.GarbageCollect(ctx);
      (void)co_await index.GarbageCollect(ctx);
    }
  };
  uint64_t pages_before = 0;
  uint64_t live_before = 0;
  Spawn(cluster.simulator(), ChainPages(index, ctx, &pages_before,
                                        &live_before));
  cluster.simulator().Run();

  Spawn(cluster.simulator(), Driver::Go(index, ctx, keys));
  cluster.simulator().Run();

  uint64_t pages_after = 0;
  uint64_t live_after = 0;
  Spawn(cluster.simulator(), ChainPages(index, ctx, &pages_after,
                                        &live_after));
  cluster.simulator().Run();

  EXPECT_EQ(live_after, keys / 10);
  // 90% of the data is gone; the chain must shrink by at least 4x.
  EXPECT_LT(pages_after, pages_before / 4)
      << "before=" << pages_before << " after=" << pages_after;
  // GC's page drains/merges must obey the lock/version discipline too.
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();

  // Everything still correct afterwards.
  struct Verify {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t keys) {
      uint64_t count = co_await index.Scan(ctx, 0, keys * 2, nullptr);
      EXPECT_EQ(count, keys / 10);
      for (Key k = 0; k < keys; k += 10) {
        EXPECT_TRUE((co_await index.Lookup(ctx, k * 2)).found);
      }
      for (Key k = 1; k < 100; ++k) {
        if (k % 10 != 0) {
          EXPECT_FALSE((co_await index.Lookup(ctx, k * 2)).found);
        }
      }
    }
  };
  Spawn(cluster.simulator(), Verify::Go(index, ctx, keys));
  cluster.simulator().Run();

  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RebalanceTest, ScansRacingTheMergeCountExactlyOnce) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, MakeIndexConfig());
  const uint64_t keys = 4000;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());
  cluster.fabric().SetNumClients(9);

  // Phase 1: delete 80% (no GC yet) so nearly every page is mergeable.
  ClientContext prep(0, cluster.fabric(), kPage, 1);
  struct Prep {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t keys) {
      for (Key k = 0; k < keys; ++k) {
        if (k % 5 != 0) (void)co_await index.Delete(ctx, k * 2);
      }
    }
  };
  Spawn(cluster.simulator(), Prep::Go(index, prep, keys));
  cluster.simulator().Run();

  // Phase 2: eight clients scan continuously while GC rebalances.
  const uint64_t expected = keys / 5;
  struct Scanner {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t keys, uint64_t expected, int rounds) {
      for (int r = 0; r < rounds; ++r) {
        const uint64_t n = co_await index.Scan(ctx, 0, keys * 2, nullptr);
        EXPECT_EQ(n, expected) << "scan raced a merge incorrectly";
      }
    }
  };
  struct Collector {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     int rounds) {
      for (int r = 0; r < rounds; ++r) {
        for (Key k = 0; k < 50; ++k) {
          const uint64_t n =
              co_await index.LookupAll(ctx, k * 5 * 2, nullptr);
          EXPECT_EQ(n, 1u) << "key " << k * 10;
        }
      }
    }
  };
  struct Gc {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx) {
      (void)co_await index.GarbageCollect(ctx);
      (void)co_await index.GarbageCollect(ctx);
    }
  };
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  for (uint32_t c = 0; c < 6; ++c) {
    ctxs.push_back(
        std::make_unique<ClientContext>(c, cluster.fabric(), kPage, c));
    Spawn(cluster.simulator(),
          Scanner::Go(index, *ctxs[c], keys, expected, 8));
  }
  ctxs.push_back(
      std::make_unique<ClientContext>(6, cluster.fabric(), kPage, 6));
  Spawn(cluster.simulator(), Collector::Go(index, *ctxs[6], 8));
  ctxs.push_back(
      std::make_unique<ClientContext>(7, cluster.fabric(), kPage, 7));
  Spawn(cluster.simulator(), Gc::Go(index, *ctxs[7]));
  cluster.simulator().Run();

  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RebalanceTest, WritersLandInAbsorbersAfterDrain) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, MakeIndexConfig());
  const uint64_t keys = 2000;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  struct Driver {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t keys) {
      for (Key k = 0; k < keys; ++k) {
        if (k % 4 != 0) (void)co_await index.Delete(ctx, k * 2);
      }
      (void)co_await index.GarbageCollect(ctx);
      // Re-insert into ranges whose original pages are now drained: the
      // insert chase must land in the absorbers and stay findable.
      for (Key k = 1; k < keys; k += 4) {
        EXPECT_TRUE((co_await index.Insert(ctx, k * 2, 70000 + k)).ok());
      }
      for (Key k = 1; k < keys; k += 4) {
        const LookupResult r = co_await index.Lookup(ctx, k * 2);
        EXPECT_TRUE(r.found) << "key " << k * 2;
        EXPECT_EQ(r.value, 70000 + k);
      }
      const uint64_t count = co_await index.Scan(ctx, 0, keys * 2, nullptr);
      EXPECT_EQ(count, keys / 4 + (keys + 2) / 4);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx, keys));
  cluster.simulator().Run();
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RebalanceTest, DuplicateRunsAreNeverStraddled) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, MakeIndexConfig());
  ASSERT_TRUE(index.BulkLoad(MakeData(500)).ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  struct Driver {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx) {
      // A duplicate run spanning several pages.
      for (uint64_t i = 0; i < 35; ++i) {
        EXPECT_TRUE((co_await index.Insert(ctx, 300, 5000 + i)).ok());
      }
      // Thin out the surroundings so merges become attractive, then GC.
      for (Key k = 0; k < 500; ++k) {
        if (k % 3 != 0 && k * 2 != 300) {
          (void)co_await index.Delete(ctx, k * 2);
        }
      }
      (void)co_await index.GarbageCollect(ctx);
      (void)co_await index.GarbageCollect(ctx);
      // All duplicates still found exactly once.
      std::vector<Value> values;
      const uint64_t n = co_await index.LookupAll(ctx, 300, &values);
      EXPECT_EQ(n, 36u);
      std::set<Value> unique(values.begin(), values.end());
      EXPECT_EQ(unique.size(), 36u);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RebalanceTest, DisabledByConfig) {
  Cluster cluster(Config(), 64 << 20);
  IndexConfig config = MakeIndexConfig();
  config.gc_merge_fill_percent = 0;
  FineGrainedIndex index(cluster, config);
  const uint64_t keys = 3000;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  uint64_t pages_before = 0;
  Spawn(cluster.simulator(), ChainPages(index, ctx, &pages_before, nullptr));
  cluster.simulator().Run();

  struct Driver {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t keys) {
      for (Key k = 0; k < keys; ++k) {
        if (k % 10 != 0) (void)co_await index.Delete(ctx, k * 2);
      }
      (void)co_await index.GarbageCollect(ctx);
      (void)co_await index.GarbageCollect(ctx);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx, keys));
  cluster.simulator().Run();

  uint64_t pages_after = 0;
  Spawn(cluster.simulator(), ChainPages(index, ctx, &pages_after, nullptr));
  cluster.simulator().Run();
  // Compaction without merging never removes pages.
  EXPECT_EQ(pages_after, pages_before);
}

}  // namespace
}  // namespace namtree::index
