// Tests for workload trace record/replay: serialisation round trips,
// malformed input handling, deterministic replay, and replay equivalence
// across index designs.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "index/coarse_grained.h"
#include "index/fine_grained.h"
#include "nam/cluster.h"
#include "ycsb/trace.h"

namespace namtree::ycsb {
namespace {

using index::IndexConfig;
using nam::Cluster;

TEST(TraceTest, TextRoundTrip) {
  Trace trace;
  Operation op;
  op.type = OpType::kPoint;
  op.key = 42;
  trace.Add(0, op);
  op.type = OpType::kRange;
  op.key = 10;
  op.hi = 99;
  trace.Add(1, op);
  op.type = OpType::kInsert;
  op.key = 5;
  op.value = 777;
  trace.Add(2, op);
  op.type = OpType::kUpdate;
  op.key = 6;
  op.value = 888;
  trace.Add(0, op);
  op.type = OpType::kDelete;
  op.key = 7;
  trace.Add(1, op);

  std::stringstream buffer;
  trace.Write(buffer);
  auto loaded = Trace::Read(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Trace& t = loaded.value();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t.num_clients(), 3u);
  EXPECT_EQ(t.ops()[0].op.type, OpType::kPoint);
  EXPECT_EQ(t.ops()[0].op.key, 42u);
  EXPECT_EQ(t.ops()[1].op.hi, 99u);
  EXPECT_EQ(t.ops()[2].op.value, 777u);
  EXPECT_EQ(t.ops()[3].client, 0u);
  EXPECT_EQ(t.ops()[4].op.type, OpType::kDelete);
}

TEST(TraceTest, RejectsMalformedLines) {
  std::stringstream bad1("0 X 14\n");
  EXPECT_FALSE(Trace::Read(bad1).ok());
  std::stringstream bad2("0 R 14\n");  // missing hi
  EXPECT_FALSE(Trace::Read(bad2).ok());
  std::stringstream bad3("not-a-number P 14\n");
  EXPECT_FALSE(Trace::Read(bad3).ok());
  std::stringstream fine("# comment\n\n3 G? no\n");
  EXPECT_FALSE(Trace::Read(fine).ok());
}

TEST(TraceTest, SaveAndLoadFile) {
  Trace trace = Trace::Generate(WorkloadC(), 1000, 4, 25, 7);
  const std::string path = "/tmp/namtree_trace_test.txt";
  ASSERT_TRUE(trace.Save(path).ok());
  auto loaded = Trace::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.value().ops()[i].op.key, trace.ops()[i].op.key);
  }
  std::remove(path.c_str());
  EXPECT_FALSE(Trace::Load(path).ok());
}

TEST(TraceTest, GenerateIsSeedDeterministic) {
  const Trace a = Trace::Generate(WorkloadD(), 5000, 8, 50, 11);
  const Trace b = Trace::Generate(WorkloadD(), 5000, 8, 50, 11);
  const Trace c = Trace::Generate(WorkloadD(), 5000, 8, 50, 12);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool differs_from_c = false;
  for (size_t i = 0; i < a.size(); ++i) {
    all_equal &= a.ops()[i].op.key == b.ops()[i].op.key;
    differs_from_c |= a.ops()[i].op.key != c.ops()[i].op.key;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(TraceReplayTest, DeterministicReplay) {
  const Trace trace = Trace::Generate(WorkloadC(), 10000, 8, 100, 3);
  auto run = [&] {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    Cluster cluster(fc, 64 << 20);
    index::FineGrainedIndex index(cluster, IndexConfig{});
    EXPECT_TRUE(index.BulkLoad(GenerateDataset(10000)).ok());
    return ReplayTrace(cluster, index, trace);
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(a.ops(), trace.size());
  EXPECT_EQ(a.ops(), b.ops());
  EXPECT_EQ(a.server_bytes, b.server_bytes);
  EXPECT_EQ(a.round_trips(), b.round_trips());
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(TraceReplayTest, PerTypeBreakdownMatchesTrace) {
  const Trace trace = Trace::Generate(WorkloadD(), 5000, 4, 200, 5);
  uint64_t points = 0;
  uint64_t inserts = 0;
  for (const TraceOp& top : trace.ops()) {
    if (top.op.type == OpType::kPoint) points++;
    if (top.op.type == OpType::kInsert) inserts++;
  }
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  Cluster cluster(fc, 64 << 20);
  index::CoarseGrainedIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad(GenerateDataset(5000)).ok());
  const RunResult result = ReplayTrace(cluster, index, trace);
  EXPECT_EQ(result.per_type[static_cast<int>(OpType::kPoint)].count, points);
  EXPECT_EQ(result.per_type[static_cast<int>(OpType::kInsert)].count,
            inserts);
  EXPECT_EQ(result.failed_ops(), 0u);
}

}  // namespace
}  // namespace namtree::ycsb
