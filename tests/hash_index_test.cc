// Tests for the one-sided distributed hash-index baseline: bucket layout,
// overflow chains, one-sided lock protocol under contention, duplicate
// keys, and differential checking against a reference model.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "index/hash_index.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using btree::Value;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

rdma::FabricConfig Config() {
  rdma::FabricConfig config;
  config.num_memory_servers = 4;
  return config;
}

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

TEST(HashIndexTest, BulkLoadThenLookup) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  const auto data = MakeData(20000);
  ASSERT_TRUE(index.BulkLoad(data).ok());

  ClientContext ctx(0, cluster.fabric(), index.page_size(), 1);
  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx) {
      for (uint64_t i = 0; i < 20000; i += 53) {
        const LookupResult hit = co_await index.Lookup(ctx, i * 2);
        EXPECT_TRUE(hit.found) << "key " << i * 2;
        EXPECT_EQ(hit.value, i);
        const LookupResult miss = co_await index.Lookup(ctx, i * 2 + 1);
        EXPECT_FALSE(miss.found);
      }
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
}

TEST(HashIndexTest, PointLookupIsOneRoundTripMostly) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  const auto data = MakeData(50000);
  ASSERT_TRUE(index.BulkLoad(data).ok());
  ClientContext ctx(0, cluster.fabric(), index.page_size(), 1);
  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx) {
      for (uint64_t i = 0; i < 2000; ++i) {
        (void)co_await index.Lookup(ctx, (ctx.rng().NextBelow(50000)) * 2);
      }
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
  // Overflow chains are rare at the default load factor: ~1.0-1.3 reads
  // per lookup (vs ~4 for the tree designs).
  EXPECT_LT(static_cast<double>(ctx.round_trips), 2000 * 1.5);
}

TEST(HashIndexTest, ScanIsUnsupported) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad(MakeData(100)).ok());
  ClientContext ctx(0, cluster.fabric(), index.page_size(), 1);
  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx) {
      EXPECT_EQ(co_await index.Scan(ctx, 0, 1000, nullptr), 0u);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
}

TEST(HashIndexTest, OverflowChainsHoldDuplicates) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad(MakeData(100)).ok());
  ClientContext ctx(0, cluster.fabric(), index.page_size(), 1);
  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx) {
      // 40 duplicates overflow several 6-slot buckets.
      for (uint64_t i = 0; i < 40; ++i) {
        EXPECT_TRUE((co_await index.Insert(ctx, 42, 1000 + i)).ok());
      }
      std::vector<Value> values;
      EXPECT_EQ(co_await index.LookupAll(ctx, 42, &values), 41u);
      std::set<Value> unique(values.begin(), values.end());
      EXPECT_EQ(unique.size(), 41u);
      // Delete them one by one.
      for (uint64_t i = 0; i < 41; ++i) {
        EXPECT_TRUE((co_await index.Delete(ctx, 42)).ok());
      }
      EXPECT_TRUE((co_await index.Delete(ctx, 42)).IsNotFound());
      EXPECT_FALSE((co_await index.Lookup(ctx, 42)).found);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
}

TEST(HashIndexTest, UpdateInPlace) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad(MakeData(1000)).ok());
  ClientContext ctx(0, cluster.fabric(), index.page_size(), 1);
  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx) {
      EXPECT_TRUE((co_await index.Update(ctx, 100, 999)).ok());
      const LookupResult hit = co_await index.Lookup(ctx, 100);
      EXPECT_TRUE(hit.found);
      EXPECT_EQ(hit.value, 999u);
      EXPECT_TRUE((co_await index.Update(ctx, 101, 1)).IsNotFound());
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
}

TEST(HashIndexTest, ConcurrentClientsOnHotBucket) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad(MakeData(100)).ok());
  cluster.fabric().SetNumClients(8);

  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx,
                     uint64_t tag) {
      // Everyone hammers the same key's chain. Values start at 1000 so
      // they never collide with the bulk-loaded value of key 14.
      for (int i = 0; i < 30; ++i) {
        EXPECT_TRUE(
            (co_await index.Insert(ctx, 7 * 2, (tag + 1) * 1000 + i)).ok());
      }
    }
  };
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  for (uint32_t c = 0; c < 8; ++c) {
    ctxs.push_back(std::make_unique<ClientContext>(c, cluster.fabric(),
                                                   index.page_size(), c));
    Spawn(cluster.simulator(), Driver::Go(index, *ctxs[c], c));
  }
  cluster.simulator().Run();

  ClientContext verify(0, cluster.fabric(), index.page_size(), 99);
  struct Verify {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx) {
      std::vector<Value> values;
      EXPECT_EQ(co_await index.LookupAll(ctx, 7 * 2, &values),
                1u + 8u * 30u);
      std::set<Value> unique(values.begin(), values.end());
      EXPECT_EQ(unique.size(), 1u + 8u * 30u) << "lost updates";
    }
  };
  Spawn(cluster.simulator(), Verify::Go(index, verify));
  cluster.simulator().Run();
}

TEST(HashIndexTest, StructureValidatesAfterChurn) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad(MakeData(5000)).ok());
  cluster.fabric().SetNumClients(6);

  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx,
                     uint64_t seed) {
      Rng rng(seed);
      for (int i = 0; i < 800; ++i) {
        const Key k = rng.NextBelow(15000);
        const double a = rng.NextDouble();
        if (a < 0.5) {
          (void)co_await index.Insert(ctx, k, k);
        } else if (a < 0.75) {
          (void)co_await index.Delete(ctx, k);
        } else {
          (void)co_await index.Update(ctx, k, k + 1);
        }
      }
    }
  };
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  for (uint32_t c = 0; c < 6; ++c) {
    ctxs.push_back(std::make_unique<ClientContext>(c, cluster.fabric(),
                                                   index.page_size(), c));
    Spawn(cluster.simulator(), Driver::Go(index, *ctxs[c], c + 1));
  }
  cluster.simulator().Run();

  const auto report = index.ValidateStructure();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.entries, 4000u);
  EXPECT_EQ(report.head_buckets, 4 * index.buckets_per_server());
}

TEST(HashIndexTest, ValidatorDetectsCorruption) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad(MakeData(1000)).ok());
  ASSERT_TRUE(index.ValidateStructure().ok());
  // Smash a count byte somewhere in server 0's bucket array.
  uint8_t* region = cluster.fabric().region(0)->at(
      rdma::MemoryRegion::kHeaderSize + 8);
  region[0] = 200;  // count = 200 > 6 slots
  EXPECT_FALSE(index.ValidateStructure().ok());
}

class HashDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HashDifferentialTest,
                         ::testing::Values(7u, 8u, 9u));

TEST_P(HashDifferentialTest, MatchesReferenceModel) {
  Cluster cluster(Config(), 64 << 20);
  DistributedHashIndex index(cluster, IndexConfig{});
  ASSERT_TRUE(index.BulkLoad({}).ok());
  ClientContext ctx(0, cluster.fabric(), index.page_size(), GetParam());

  struct Driver {
    static Task<> Go(DistributedHashIndex& index, ClientContext& ctx,
                     uint64_t seed) {
      Rng rng(seed);
      std::multimap<Key, Value> model;
      for (int step = 0; step < 4000; ++step) {
        const Key k = rng.NextBelow(300);
        const double a = rng.NextDouble();
        if (a < 0.40) {
          const Value v = rng.Next() >> 1;
          EXPECT_TRUE((co_await index.Insert(ctx, k, v)).ok());
          model.emplace(k, v);
        } else if (a < 0.60) {
          const bool deleted = (co_await index.Delete(ctx, k)).ok();
          const bool exists = model.count(k) > 0;
          EXPECT_EQ(deleted, exists) << "delete(" << k << ")";
          if (exists) {
            // The hash index removes an arbitrary duplicate; mirror by
            // erasing any one.
            model.erase(model.find(k));
          }
        } else if (a < 0.85) {
          const LookupResult r = co_await index.Lookup(ctx, k);
          EXPECT_EQ(r.found, model.count(k) > 0) << "lookup(" << k << ")";
        } else {
          EXPECT_EQ(co_await index.LookupAll(ctx, k, nullptr),
                    model.count(k));
        }
      }
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx, GetParam()));
  cluster.simulator().Run();
}

}  // namespace
}  // namespace namtree::index
