// Tests for seeded schedule exploration (src/sim/simulator.h): the
// schedule seed must permute equal-timestamp tie-breaks deterministically,
// ScheduleExplorer must shrink to the minimal failing seed and confirm
// deterministic replay, and the real index designs must stay audit-clean —
// no kRemoteRace, no protocol findings — across a family of legal
// schedules, with and without crash injection and bounded delay injection.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "index/fine_grained.h"
#include "nam/cluster.h"
#include "rdma/audit.h"
#include "rdma/fabric.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::sim {
namespace {

using rdma::ViolationKind;

/// Seeds explored by the workload tests below; NAMTREE_EXPLORE_SEEDS widens
/// the sweep (the CI schedule-exploration job and check.sh --explore also
/// pass seeds to the full suite via NAMTREE_SCHEDULE_SEED).
uint32_t ExploreSeeds() {
  if (const char* env = std::getenv("NAMTREE_EXPLORE_SEEDS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<uint32_t>(n);
  }
  return 8;
}

Task<> ArriveTogether(Simulator& simulator, int id, std::vector<int>& order) {
  // Every spawned instance resumes at the same virtual instant: the firing
  // order among them is exactly the tie-break the schedule seed permutes.
  co_await Delay(simulator, 100);
  order.push_back(id);
}

std::vector<int> OrderUnderSeed(uint64_t seed) {
  Simulator simulator;
  simulator.ConfigureSchedule(seed);
  std::vector<int> order;
  for (int id = 0; id < 6; ++id) {
    Spawn(simulator, ArriveTogether(simulator, id, order));
  }
  simulator.Run();
  return order;
}

TEST(ScheduleSeedTest, PermutesEqualTimestampTiesDeterministically) {
  // Seed 0 is the legacy FIFO tie-break: schedule order.
  const std::vector<int> fifo = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(OrderUnderSeed(0), fifo);

  std::set<std::vector<int>> distinct;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    const std::vector<int> order = OrderUnderSeed(seed);
    // Determinism: the same seed always yields the same order.
    EXPECT_EQ(order, OrderUnderSeed(seed)) << "seed " << seed;
    distinct.insert(order);
  }
  // The seed is a real degree of freedom, not a no-op relabeling.
  EXPECT_GE(distinct.size(), 4u)
      << "16 seeds must explore several equal-time firing orders";
}

TEST(ScheduleExplorerTest, FindsMinimalSeedAndConfirmsReplay) {
  // Synthetic body with a known failure frontier: seeds >= 13 fail.
  const auto body = [](uint64_t seed) {
    return seed >= 13 ? Status::Corruption("boom") : Status::OK();
  };

  ScheduleExplorer::Options options;
  options.base_seed = 10;
  options.num_seeds = 8;  // seeds 10..17
  const auto report = ScheduleExplorer::Explore(options, body);

  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.first_failing_seed, 13u);
  // Ascending exploration + stop_at_first_failure: 10, 11, 12, 13.
  EXPECT_EQ(report.seeds_run, 4u);
  ASSERT_EQ(report.failing_seeds.size(), 1u);
  EXPECT_TRUE(report.replay_deterministic);
  EXPECT_EQ(report.first_failure.code(), StatusCode::kCorruption);
  EXPECT_NE(report.ToString().find("13"), std::string::npos)
      << report.ToString();

  // Without early stop the whole range runs and every failure is listed.
  options.stop_at_first_failure = false;
  const auto full = ScheduleExplorer::Explore(options, body);
  EXPECT_EQ(full.seeds_run, 8u);
  EXPECT_EQ(full.failing_seeds.size(), 5u);
  EXPECT_EQ(full.first_failing_seed, 13u);
}

TEST(ScheduleExplorerTest, CleanBodyRunsEverySeed) {
  ScheduleExplorer::Options options;
  options.base_seed = 0;
  options.num_seeds = 5;
  const auto report = ScheduleExplorer::Explore(
      options, [](uint64_t) { return Status::OK(); });
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.seeds_run, 5u);
  EXPECT_TRUE(report.first_failure.ok());
  EXPECT_TRUE(report.replay_deterministic);
  EXPECT_NE(report.ToString().find("clean"), std::string::npos)
      << report.ToString();
}

Task<> RoguePageWrite(rdma::Fabric& fabric, uint32_t client,
                      rdma::RemotePtr page, uint64_t word) {
  std::vector<uint8_t> image(256, 0);
  std::memcpy(image.data(), &word, 8);
  co_await fabric.Write(client, page, image.data(), image.size());
}

Task<> LockedCycle(rdma::Fabric& fabric, uint32_t client,
                   rdma::RemotePtr page) {
  (void)co_await fabric.CompareAndSwap(client, page, 0, 1);
  std::vector<uint8_t> image(256, 0);
  const uint64_t locked = 1;
  std::memcpy(image.data(), &locked, 8);
  co_await fabric.Write(client, page, image.data(), image.size());
  (void)co_await fabric.FetchAndAdd(client, page, 1);
}

TEST(ScheduleExplorerTest, InjectedRaceFailsEverySeedAndReplays) {
  // An actually-broken protocol (two unsynchronized writers) must fail on
  // the very first seed, and CI's one-command reproduction contract — the
  // failing seed replays to the same verdict — must hold. The verb trace
  // gives the artifact CI uploads next to the seed.
  std::string trace;
  const auto body = [&trace](uint64_t seed) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 1;
    fc.schedule_seed = seed;
    nam::Cluster cluster(fc, 1 << 20);
    cluster.fabric().SetNumClients(3);
    rdma::VerbAuditor* auditor = cluster.fabric().auditor();
    if (auditor == nullptr) return Status::OK();  // audit compiled out
    const rdma::RemotePtr page =
        cluster.memory_server(0).region().AllocateLocal(256);

    Spawn(cluster.simulator(), LockedCycle(cluster.fabric(), 0, page));
    cluster.simulator().Run();
    Spawn(cluster.simulator(),
          RoguePageWrite(cluster.fabric(), 1, page, /*word=*/2));
    Spawn(cluster.simulator(),
          RoguePageWrite(cluster.fabric(), 2, page, /*word=*/2));
    cluster.simulator().Run();

    const Status status = cluster.fabric().CheckAuditClean();
    if (!status.ok() && trace.empty()) trace = auditor->DumpTrace();
    return status;
  };

  ScheduleExplorer::Options options;
  options.base_seed = 1;
  options.num_seeds = 4;
  const auto report = ScheduleExplorer::Explore(options, body);
  if (report.clean()) GTEST_SKIP() << "built with -DNAMTREE_AUDIT=OFF";

  EXPECT_EQ(report.first_failing_seed, 1u);
  EXPECT_EQ(report.seeds_run, 1u);
  EXPECT_TRUE(report.replay_deterministic)
      << "a failing seed must reproduce on replay: " << report.ToString();
  EXPECT_EQ(report.first_failure.code(), StatusCode::kCorruption);
  EXPECT_NE(trace.find("WRITE"), std::string::npos)
      << "the trace artifact must carry the racing verbs:\n"
      << trace;
}

/// One differential-style multi-client run of the fine-grained design under
/// `schedule_seed`; OK iff the run is audit-clean with zero kRemoteRace.
Status RunFineGrainedUnderSeed(uint64_t schedule_seed, SimTime jitter_ns,
                               bool inject_crashes) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.schedule_seed = schedule_seed;
  fc.schedule_jitter_ns = jitter_ns;
  if (inject_crashes) {
    fc.lock_lease_ns = 100 * kMicrosecond;
    fc.crash_points = {{1, 400}, {3, 1500}};
  }
  nam::Cluster cluster(fc, 64ull << 20);
  index::IndexConfig ic;
  ic.page_size = 256;
  ic.head_node_interval = 4;
  index::FineGrainedIndex index(cluster, ic);
  const uint64_t keys = 4000;
  Status load = index.BulkLoad(ycsb::GenerateDataset(keys));
  if (!load.ok()) return load;

  ycsb::RunConfig rc;
  rc.num_clients = 6;
  rc.warmup = kMillisecond;
  rc.duration = 4 * kMillisecond;
  rc.mix = ycsb::WorkloadD();  // insert-heavy: splits, locks, hand-offs
  rc.gc_interval = 2 * kMillisecond;
  const ycsb::RunResult result = ycsb::RunWorkload(cluster, index, keys, rc);
  if (result.ops() == 0) return Status::Corruption("no ops completed");

  const Status audit = cluster.fabric().CheckAuditClean();
  if (!audit.ok()) return audit;
  if (rdma::VerbAuditor* auditor = cluster.fabric().auditor()) {
    if (auditor->CountOfKind(ViolationKind::kRemoteRace) != 0) {
      return Status::Corruption("kRemoteRace on a clean protocol");
    }
  }
  return Status::OK();
}

TEST(ScheduleExplorerTest, FineGrainedStaysRaceFreeAcrossSeeds) {
  // The tentpole claim: the one-sided protocol is race-free under *every*
  // legal schedule, not just the FIFO one. Seed 0 (legacy) is included.
  ScheduleExplorer::Options options;
  options.base_seed = 0;
  options.num_seeds = ExploreSeeds();
  const auto report = ScheduleExplorer::Explore(options, [](uint64_t seed) {
    return RunFineGrainedUnderSeed(seed, /*jitter_ns=*/0,
                                   /*inject_crashes=*/false);
  });
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.seeds_run, options.num_seeds);
}

TEST(ScheduleExplorerTest, CrashInjectionStaysRaceFreeAcrossSeeds) {
  // Crash points are verb-count based, so each seed deterministically
  // crashes the same clients at (seed-dependent) protocol states: dropped
  // in-flight writes and sanctioned lease steals must not surface as
  // races under any explored schedule.
  ScheduleExplorer::Options options;
  options.base_seed = 0;
  options.num_seeds = 4;
  const auto report = ScheduleExplorer::Explore(options, [](uint64_t seed) {
    return RunFineGrainedUnderSeed(seed, /*jitter_ns=*/0,
                                   /*inject_crashes=*/true);
  });
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(ScheduleExplorerTest, BoundedDelayInjectionStaysRaceFree) {
  // Jitter stretches NIC/queue timings by a seed-deterministic amount in
  // [0, 200ns] per event — a different (still legal) fabric. The protocol
  // must not care.
  const Status status = RunFineGrainedUnderSeed(/*schedule_seed=*/7,
                                                /*jitter_ns=*/200,
                                                /*inject_crashes=*/false);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace namtree::sim
