// Direct tests of the server-side B-link tree (the coarse-grained memory
// server component and the hybrid upper levels): coroutine OLC in virtual
// time, handler lock spins, hybrid FindLeafChild / InstallChildSeparator.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/server_tree.h"
#include "nam/cluster.h"
#include "rdma/remote_ptr.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using btree::Value;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

rdma::FabricConfig Config() {
  rdma::FabricConfig config;
  config.num_memory_servers = 1;
  return config;
}

std::vector<KV> MakeData(uint64_t n, Key stride = 2) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * stride, i});
  return data;
}

TEST(ServerTreeTest, BuildProducesExpectedShape) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  const auto data = MakeData(10000);
  ASSERT_TRUE(tree.Build(data, 90).ok());
  const auto stats = tree.GetStats();
  EXPECT_EQ(stats.live_entries, 10000u);
  EXPECT_GE(stats.height, 3u);
  EXPECT_GT(stats.pages, 1000u);  // leaf capacity 10 at P=256
}

Task<> DoLookups(ServerTree& tree, std::vector<Key> keys,
                 std::vector<LookupResult>* out) {
  for (Key k : keys) out->push_back(co_await tree.Lookup(k));
}

TEST(ServerTreeTest, LookupHitsAndMisses) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  ASSERT_TRUE(tree.Build(MakeData(5000), 90).ok());
  std::vector<LookupResult> results;
  Spawn(cluster.simulator(),
        DoLookups(tree, {0, 2, 9998, 1, 10000}, &results));
  cluster.simulator().Run();
  EXPECT_TRUE(results[0].found);
  EXPECT_TRUE(results[1].found);
  EXPECT_EQ(results[1].value, 1u);
  EXPECT_TRUE(results[2].found);
  EXPECT_FALSE(results[3].found);
  EXPECT_FALSE(results[4].found);
}

Task<> InsertRange(ServerTree& tree, Key from, Key to, Key step) {
  for (Key k = from; k < to; k += step) {
    EXPECT_TRUE((co_await tree.Insert(k, k)).ok());
  }
}

TEST(ServerTreeTest, ConcurrentHandlerInsertsWithSplits) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  ASSERT_TRUE(tree.Build(MakeData(1000, 8), 90).ok());
  // 4 concurrent "handlers" insert into interleaved gap slots.
  for (Key offset = 1; offset <= 4; ++offset) {
    Spawn(cluster.simulator(),
          InsertRange(tree, offset, 8000 + offset, 8));
  }
  cluster.simulator().Run();

  struct Scan {
    static Task<> Go(ServerTree& tree, uint64_t* count) {
      *count = co_await tree.Scan(0, btree::kInfinityKey, nullptr);
    }
  };
  uint64_t count = 0;
  Spawn(cluster.simulator(), Scan::Go(tree, &count));
  cluster.simulator().Run();
  EXPECT_EQ(count, 1000u + 4u * 1000u);
  EXPECT_EQ(tree.GetStats().live_entries, 5000u);
}

TEST(ServerTreeTest, LockHoldersBlockConflictingWriters) {
  // Two inserts into the same (tiny) leaf must serialize; total virtual
  // time reflects the spin.
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  ASSERT_TRUE(tree.Build(MakeData(5), 90).ok());
  Spawn(cluster.simulator(), InsertRange(tree, 1, 2, 1));
  Spawn(cluster.simulator(), InsertRange(tree, 3, 4, 1));
  cluster.simulator().Run();
  EXPECT_EQ(tree.GetStats().live_entries, 7u);
}

TEST(ServerTreeTest, UpdateAndLookupAll) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  ASSERT_TRUE(tree.Build(MakeData(1000), 90).ok());

  struct Driver {
    static Task<> Go(ServerTree& tree) {
      EXPECT_TRUE((co_await tree.Update(100, 4242)).ok());
      const LookupResult r = co_await tree.Lookup(100);
      EXPECT_TRUE(r.found);
      EXPECT_EQ(r.value, 4242u);
      EXPECT_TRUE((co_await tree.Update(101, 1)).IsNotFound());

      // Duplicates spanning page boundaries (capacity 10 at P=256).
      for (uint64_t i = 0; i < 25; ++i) {
        EXPECT_TRUE((co_await tree.Insert(500, 9000 + i)).ok());
      }
      std::vector<btree::Value> values;
      EXPECT_EQ(co_await tree.LookupAll(500, &values), 26u);
      EXPECT_EQ(co_await tree.LookupAll(501, nullptr), 0u);
      // Update touches exactly one duplicate.
      EXPECT_TRUE((co_await tree.Update(500, 777)).ok());
      values.clear();
      (void)co_await tree.LookupAll(500, &values);
      EXPECT_EQ(std::count(values.begin(), values.end(),
                           btree::Value{777}),
                1);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(tree));
  cluster.simulator().Run();
}

TEST(ServerTreeTest, DeleteAndCompact) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  ASSERT_TRUE(tree.Build(MakeData(2000), 90).ok());

  struct Driver {
    static Task<> Go(ServerTree& tree, uint64_t* reclaimed) {
      for (Key k = 0; k < 2000; k += 4) {
        EXPECT_TRUE((co_await tree.Delete(k * 2)).ok());
      }
      EXPECT_TRUE((co_await tree.Delete(99999)).IsNotFound());
      *reclaimed = co_await tree.Compact();
    }
  };
  uint64_t reclaimed = 0;
  Spawn(cluster.simulator(), Driver::Go(tree, &reclaimed));
  cluster.simulator().Run();
  EXPECT_EQ(reclaimed, 500u);
  EXPECT_EQ(tree.GetStats().tombstones, 0u);
  EXPECT_EQ(tree.GetStats().live_entries, 1500u);
}

// ---- Hybrid mode (remote leaf children) -------------------------------------

TEST(ServerTreeTest, HybridModeRoutesToChildren) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  // Fake remote children at lows 0,100,200,...: child ptr encodes the low.
  std::vector<ServerTree::ChildRef> children;
  for (uint64_t i = 0; i < 50; ++i) {
    children.push_back({i * 100, rdma::RemotePtr::Make(0, 4096 + i).raw()});
  }
  ASSERT_TRUE(tree.BuildOverChildren(children, 90).ok());

  struct Driver {
    static Task<> Go(ServerTree& tree, std::vector<uint64_t>* out) {
      out->push_back(co_await tree.FindLeafChild(0));
      out->push_back(co_await tree.FindLeafChild(99));
      out->push_back(co_await tree.FindLeafChild(100));
      out->push_back(co_await tree.FindLeafChild(101));
      out->push_back(co_await tree.FindLeafChild(4999));
      out->push_back(co_await tree.FindLeafChild(1u << 20));
    }
  };
  std::vector<uint64_t> out;
  Spawn(cluster.simulator(), Driver::Go(tree, &out));
  cluster.simulator().Run();
  EXPECT_EQ(rdma::RemotePtr(out[0]).offset(), 4096u);
  EXPECT_EQ(rdma::RemotePtr(out[1]).offset(), 4096u);
  // Key equal to a low fence may route to the left neighbour (lower-bound
  // descent + chain chase semantics); key strictly above routes right.
  EXPECT_LE(rdma::RemotePtr(out[2]).offset(), 4097u);
  EXPECT_EQ(rdma::RemotePtr(out[3]).offset(), 4097u);
  EXPECT_EQ(rdma::RemotePtr(out[4]).offset(), 4096u + 49u);
  EXPECT_EQ(rdma::RemotePtr(out[5]).offset(), 4096u + 49u);
}

TEST(ServerTreeTest, HybridInstallSeparatorGrowsUpperLevels) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  std::vector<ServerTree::ChildRef> children = {
      {0, rdma::RemotePtr::Make(0, 5000).raw()}};
  ASSERT_TRUE(tree.BuildOverChildren(children, 90).ok());

  struct Driver {
    static Task<> Go(ServerTree& tree) {
      // Install 500 separators (forces splits and root growth at P=256).
      for (uint64_t i = 1; i <= 500; ++i) {
        const Status s = co_await tree.InstallChildSeparator(
            i * 10, rdma::RemotePtr::Make(0, 5000 + i).raw());
        EXPECT_TRUE(s.ok());
      }
      // Every separator must now route correctly.
      for (uint64_t i = 1; i <= 500; ++i) {
        const uint64_t child = co_await tree.FindLeafChild(i * 10 + 5);
        EXPECT_EQ(rdma::RemotePtr(child).offset(), 5000 + i);
      }
    }
  };
  Spawn(cluster.simulator(), Driver::Go(tree));
  cluster.simulator().Run();
  EXPECT_GE(tree.GetStats().height, 2u);
}

TEST(ServerTreeTest, EmptyBuild) {
  Cluster cluster(Config(), 64 << 20);
  ServerTree tree(cluster.memory_server(0), 256);
  ASSERT_TRUE(tree.Build({}, 90).ok());
  std::vector<LookupResult> results;
  Spawn(cluster.simulator(), DoLookups(tree, {7}, &results));
  cluster.simulator().Run();
  EXPECT_FALSE(results[0].found);
}

}  // namespace
}  // namespace namtree::index
