// Tests for the one-RTT fast path trio: speculative descent (predict the
// root→leaf path from cached inner images, fetch the missing prefix plus
// the leaf in one doorbell-batched READ, validate top-down with fallback),
// the in-flight read combiner (concurrent lanes attach to one outstanding
// READ instead of duplicating it), and batched MultiGet (grouped point
// lookups served from shared chain walks). All three default off and must
// change performance only, never results — most tests here are
// differential against the plain paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "index/node_cache.h"
#include "nam/cluster.h"
#include "rdma/audit.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

std::vector<KV> EvenKeys(uint64_t n) {
  std::vector<KV> data;
  data.reserve(n);
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

Task<> LookupSequence(DistributedIndex& index, ClientContext& ctx,
                      int rounds, uint64_t keys, uint64_t* found) {
  for (int i = 0; i < rounds; ++i) {
    const Key k = ctx.rng().NextBelow(keys) * 2;
    const LookupResult r = co_await index.Lookup(ctx, k);
    if (r.found) (*found)++;
  }
}

// ---- Speculative descent ----------------------------------------------------

struct SpecRunStats {
  uint64_t found = 0;
  uint64_t round_trips = 0;
  uint64_t speculative_hits = 0;
  uint64_t mispredicts = 0;
  FineGrainedIndex::CacheStats cache;
  std::vector<uint64_t> lru;
};

/// One deterministic single-client run: warm with `rounds` random lookups,
/// TTL `ttl`, speculation per `speculative`. Everything about the two runs
/// is identical except the knob.
SpecRunStats RunSpecLookups(bool speculative, SimTime ttl, int rounds) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = ttl;
  ic.speculative_descent = speculative;
  FineGrainedIndex index(cluster, ic);
  const uint64_t keys = 20000;
  EXPECT_TRUE(index.BulkLoad(EvenKeys(keys)).ok());
  EXPECT_GE(index.root_level(), 2u) << "tree too short to exercise descent";

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 7);
  SpecRunStats stats;
  Spawn(cluster.simulator(),
        LookupSequence(index, ctx, rounds, keys, &stats.found));
  cluster.simulator().Run();
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();

  // Registry parity: the registered client.* cells must read identically
  // to the context handles they are backed by (docs/observability.md).
  auto& registry = cluster.fabric().metrics();
  EXPECT_EQ(registry.Value("client.round_trips", "client", "0"),
            ctx.round_trips.value());
  EXPECT_EQ(registry.Value("client.speculative_hits", "client", "0"),
            ctx.speculative_hits.value());
  EXPECT_EQ(registry.Value("client.mispredicts", "client", "0"),
            ctx.mispredicts.value());

  stats.round_trips = ctx.round_trips;
  stats.speculative_hits = ctx.speculative_hits;
  stats.mispredicts = ctx.mispredicts;
  stats.cache = index.GetCacheStats();
  if (NodeCache* cache = index.CacheFor(0)) stats.lru = cache->LruKeys();
  return stats;
}

TEST(SpeculativeDescentTest, FindsEverythingWithSameCacheBehavior) {
  // Long TTL: nothing expires, so the two runs must agree not only on every
  // result but on every cache counter and the exact LRU order — the
  // validation loop consults the cache in the plain loop's order.
  const SpecRunStats plain = RunSpecLookups(false, kSecond, 2000);
  const SpecRunStats spec = RunSpecLookups(true, kSecond, 2000);
  EXPECT_EQ(plain.found, 2000u);
  EXPECT_EQ(spec.found, 2000u);
  EXPECT_EQ(spec.cache.hits, plain.cache.hits);
  EXPECT_EQ(spec.cache.misses, plain.cache.misses);
  EXPECT_EQ(spec.cache.expirations, plain.cache.expirations);
  EXPECT_EQ(spec.lru, plain.lru) << "speculation skewed the LRU order";
  EXPECT_EQ(plain.speculative_hits, 0u);
  EXPECT_EQ(plain.mispredicts, 0u);
}

TEST(SpeculativeDescentTest, ExpiredImagesStillDriveOneRttDescents) {
  // A TTL short enough that inner images are expired by the time they are
  // reused: the plain loop re-reads the path level by level (one RTT per
  // level) while speculation predicts through the expired images and
  // refreshes the whole path in one batched RTT.
  const SimTime ttl = 30 * kMicrosecond;
  const SpecRunStats plain = RunSpecLookups(false, ttl, 2000);
  const SpecRunStats spec = RunSpecLookups(true, ttl, 2000);
  EXPECT_EQ(plain.found, 2000u);
  EXPECT_EQ(spec.found, 2000u);
  EXPECT_GT(spec.speculative_hits, 0u);
  EXPECT_LT(spec.round_trips, plain.round_trips)
      << "speculation must strictly reduce round trips under TTL churn";
  // The descent itself collapses to one RTT: with a height >= 3 tree the
  // per-op saving must be large, not marginal.
  EXPECT_LT(static_cast<double>(spec.round_trips),
            0.6 * static_cast<double>(plain.round_trips));
}

TEST(SpeculativeDescentTest, MispredictFallbackRecoversMovedKeys) {
  // Note the TTL: with a never-expiring cache, validation would consult the
  // same stale images prediction used and the two always agree (the leaf
  // chain's chase absorbs the staleness — a speculative *hit*). A short TTL
  // makes prediction run on expired images while validation sees the fresh
  // batched ones; after the writer's splits those route differently, which
  // is exactly the mispredict → fallback path under test.
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  Cluster cluster(fc, 32 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = 50 * kMicrosecond;
  ic.speculative_descent = true;
  FineGrainedIndex index(cluster, ic);
  EXPECT_TRUE(index.BulkLoad(EvenKeys(2000)).ok());
  cluster.fabric().SetNumClients(2);

  // Reader warms its cache, then a writer splits many leaves (and inner
  // nodes), leaving the reader's cached images stale.
  ClientContext reader(0, cluster.fabric(), ic.page_size, 1);
  uint64_t found = 0;
  Spawn(cluster.simulator(),
        LookupSequence(index, reader, 500, 2000, &found));
  cluster.simulator().Run();

  ClientContext writer(1, cluster.fabric(), ic.page_size, 2);
  struct Writer {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx) {
      for (Key k = 1; k < 8000; k += 2) {
        EXPECT_TRUE((co_await index.Insert(ctx, k, k)).ok());
      }
    }
  };
  Spawn(cluster.simulator(), Writer::Go(index, writer));
  cluster.simulator().Run();

  // The reader's speculative descents now predict from stale images: the
  // validation loop must chase/fall back and still find every key.
  struct Verify {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t* missing) {
      for (Key k = 1; k < 8000; k += 2) {
        const LookupResult r = co_await index.Lookup(ctx, k);
        if (!r.found) (*missing)++;
      }
    }
  };
  uint64_t missing = 0;
  Spawn(cluster.simulator(), Verify::Go(index, reader, &missing));
  cluster.simulator().Run();
  EXPECT_EQ(missing, 0u) << "a mispredicted descent lost keys";
  EXPECT_GT(reader.mispredicts, 0u)
      << "stale predictions must be counted as mispredicts";
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

TEST(SpeculativeDescentTest, SurvivesServerKillUnderReplication) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 3;
  fc.replication_factor = 2;
  Cluster cluster(fc, 32 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = 50 * kMicrosecond;
  ic.speculative_descent = true;
  FineGrainedIndex index(cluster, ic);
  EXPECT_TRUE(index.BulkLoad(EvenKeys(5000)).ok());
  cluster.fabric().SetNumClients(1);

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 3);
  struct Driver {
    static Task<> Go(Cluster& cluster, FineGrainedIndex& index,
                     ClientContext& ctx, uint64_t* missing) {
      // Warm, then kill a server mid-run: speculative batches whose slots
      // target the dead primary are rejected at validation time and the
      // fallback reads fail over to the backup replica.
      for (Key k = 0; k < 1000; ++k) {
        const LookupResult r = co_await index.Lookup(ctx, k * 2);
        if (!r.found) (*missing)++;
      }
      cluster.fabric().KillServer(1);
      for (Key k = 0; k < 5000; ++k) {
        const LookupResult r = co_await index.Lookup(ctx, k * 2);
        if (!r.found) (*missing)++;
      }
    }
  };
  uint64_t missing = 0;
  Spawn(cluster.simulator(), Driver::Go(cluster, index, ctx, &missing));
  cluster.simulator().Run();
  EXPECT_EQ(missing, 0u) << "failover lost keys under speculation";
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

TEST(SpeculativeDescentTest, ClientCrashMidDescentLeavesCleanAudit) {
  // Crash the speculating client after its k-th verb for a sweep of k:
  // every lookup must end found / clean-miss / Unavailable (never a wrong
  // result), and the fabric audit must stay clean.
  for (const uint64_t crash_after : {1ull, 2ull, 3ull, 5ull, 9ull, 17ull}) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    fc.crash_points = {{0, crash_after}};
    Cluster cluster(fc, 32 << 20);
    IndexConfig ic;
    ic.page_size = 256;
    ic.client_cache_pages = 2048;
    ic.client_cache_ttl = 10 * kMicrosecond;  // expire fast: batches stay hot
    ic.speculative_descent = true;
    FineGrainedIndex index(cluster, ic);
    EXPECT_TRUE(index.BulkLoad(EvenKeys(3000)).ok());
    cluster.fabric().SetNumClients(1);

    ClientContext ctx(0, cluster.fabric(), ic.page_size, crash_after);
    struct Driver {
      static Task<> Go(FineGrainedIndex& index, ClientContext& ctx) {
        for (Key k = 0; k < 50; ++k) {
          const LookupResult r = co_await index.Lookup(ctx, k * 2);
          if (!r.status.ok()) {
            EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
            co_return;
          }
          EXPECT_TRUE(r.found);
        }
      }
    };
    Spawn(cluster.simulator(), Driver::Go(index, ctx));
    cluster.simulator().Run();
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << "crash point " << crash_after << ": "
        << cluster.fabric().CheckAuditClean().ToString();
  }
}

// ---- MultiGet ---------------------------------------------------------------

enum class DesignUnderTest { kFine, kCoarseOneSided, kHybrid, kCoarse };

std::unique_ptr<DistributedIndex> MakeDesign(DesignUnderTest kind,
                                             Cluster& cluster,
                                             const IndexConfig& ic) {
  switch (kind) {
    case DesignUnderTest::kFine:
      return std::make_unique<FineGrainedIndex>(cluster, ic);
    case DesignUnderTest::kCoarseOneSided:
      return std::make_unique<CoarseOneSidedIndex>(cluster, ic);
    case DesignUnderTest::kHybrid:
      return std::make_unique<HybridIndex>(cluster, ic);
    case DesignUnderTest::kCoarse:
      return std::make_unique<CoarseGrainedIndex>(cluster, ic);
  }
  return nullptr;
}

class MultiGetDifferentialTest
    : public ::testing::TestWithParam<DesignUnderTest> {};

INSTANTIATE_TEST_SUITE_P(AllDesigns, MultiGetDifferentialTest,
                         ::testing::Values(DesignUnderTest::kFine,
                                           DesignUnderTest::kCoarseOneSided,
                                           DesignUnderTest::kHybrid,
                                           DesignUnderTest::kCoarse),
                         [](const auto& info) {
                           switch (info.param) {
                             case DesignUnderTest::kFine: return "Fine";
                             case DesignUnderTest::kCoarseOneSided:
                               return "CoarseOneSided";
                             case DesignUnderTest::kHybrid: return "Hybrid";
                             case DesignUnderTest::kCoarse: return "Coarse";
                           }
                           return "Unknown";
                         });

TEST_P(MultiGetDifferentialTest, MatchesIndividualLookups) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = kSecond;
  ic.speculative_descent = true;  // exercised where supported, inert elsewhere
  auto index = MakeDesign(GetParam(), cluster, ic);
  const uint64_t keys = 4000;
  ASSERT_TRUE(index->BulkLoad(EvenKeys(keys)).ok());

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 11);
  struct Driver {
    static Task<> Go(DistributedIndex& index, ClientContext& ctx,
                     uint64_t keys) {
      // Warm the caches so grouped prediction has something to group by.
      for (int i = 0; i < 800; ++i) {
        (void)(co_await index.Lookup(ctx, ctx.rng().NextBelow(keys) * 2))
            .status;
      }
      // Batches mixing present keys, absent keys (odd), dense runs that
      // share leaves, and unsorted input — MultiGet must agree with N
      // independent Lookups on found/value for every key.
      std::vector<std::vector<Key>> batches;
      batches.push_back({100, 102, 104, 106, 108, 110, 112, 114});  // one leaf
      batches.push_back({3, 101, 4444, 7999, 200, 202});  // hits and misses
      batches.push_back({7000, 2, 5000, 2, 6400, 0});     // unsorted, dupes
      std::vector<Key> wide;
      for (Key k = 0; k < 64; ++k) wide.push_back(k * 120);
      batches.push_back(wide);  // spans partitions/leaves
      for (const auto& batch : batches) {
        std::vector<LookupResult> multi(batch.size());
        co_await index.MultiGet(ctx, batch, multi.data());
        for (size_t i = 0; i < batch.size(); ++i) {
          const LookupResult single = co_await index.Lookup(ctx, batch[i]);
          EXPECT_EQ(multi[i].found, single.found)
              << "key " << batch[i] << " diverged";
          if (single.found) {
            EXPECT_EQ(multi[i].value, single.value)
                << "key " << batch[i] << " returned a different value";
          }
          EXPECT_TRUE(multi[i].status.ok());
        }
      }
    }
  };
  Spawn(cluster.simulator(), Driver::Go(*index, ctx, keys));
  cluster.simulator().Run();
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

TEST(MultiGetTest, GroupedLookupsCostFewerRoundTrips) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = kSecond;
  FineGrainedIndex index(cluster, ic);
  ASSERT_TRUE(index.BulkLoad(EvenKeys(20000)).ok());

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 5);
  struct Driver {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx) {
      // Warm the inner cache so PredictLeaf can group.
      for (Key k = 0; k < 20000; k += 50) {
        (void)(co_await index.Lookup(ctx, k * 2)).status;
      }
      // A dense ascending batch: many keys share each leaf, so the grouped
      // walk reads each leaf once instead of once per key.
      std::vector<Key> batch;
      for (Key k = 1000; k < 1256; ++k) batch.push_back(k * 2);
      std::vector<LookupResult> results(batch.size());

      const uint64_t before_single = ctx.round_trips;
      for (const Key k : batch) {
        const LookupResult r = co_await index.Lookup(ctx, k);
        EXPECT_TRUE(r.found);
      }
      const uint64_t single_cost = ctx.round_trips - before_single;

      const uint64_t before_multi = ctx.round_trips;
      co_await index.MultiGet(ctx, batch, results.data());
      const uint64_t multi_cost = ctx.round_trips - before_multi;
      for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_TRUE(results[i].found) << "batched lookup lost key " << i;
      }
      EXPECT_LT(multi_cost * 2, single_cost)
          << "grouping must at least halve the round trips of a dense batch";
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
}

// ---- In-flight read combining -----------------------------------------------

TEST(ReadCombiningTest, ConcurrentLanesShareOneVerb) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.read_combining = true;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(1);
  const rdma::RemotePtr ptr =
      cluster.memory_server(0).region().AllocateLocal(64);
  cluster.memory_server(0).region().WriteU64(ptr.offset(), 0xFEEDBEEF);

  struct Lane {
    static Task<> Go(rdma::Fabric& fabric, rdma::RemotePtr ptr,
                     uint64_t* out, bool* combined) {
      std::vector<uint8_t> buf(64, 0);
      *combined =
          (co_await fabric.CombinedRead(0, ptr, buf.data(), 64)).combined;
      std::memcpy(out, buf.data(), 8);
    }
  };
  uint64_t a = 0, b = 0, c = 0;
  bool ca = false, cb = false, cc = false;
  Spawn(cluster.simulator(),
        Lane::Go(cluster.fabric(), ptr, &a, &ca));
  Spawn(cluster.simulator(),
        Lane::Go(cluster.fabric(), ptr, &b, &cb));
  Spawn(cluster.simulator(),
        Lane::Go(cluster.fabric(), ptr, &c, &cc));
  cluster.simulator().Run();

  EXPECT_EQ(a, 0xFEEDBEEFu);
  EXPECT_EQ(b, 0xFEEDBEEFu);
  EXPECT_EQ(c, 0xFEEDBEEFu);
  // Exactly one poster; the two other lanes attached to its verb.
  EXPECT_EQ(static_cast<int>(ca) + static_cast<int>(cb) +
                static_cast<int>(cc),
            2);
  EXPECT_EQ(cluster.fabric().metrics().Value("fabric.combined_reads"), 2u);
  ASSERT_NE(cluster.fabric().auditor(), nullptr);
  EXPECT_EQ(cluster.fabric().auditor()->duplicate_inflight_reads(), 0u);
}

TEST(ReadCombiningTest, DisabledKnobIsPassThrough) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.read_combining = false;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(1);
  const rdma::RemotePtr ptr =
      cluster.memory_server(0).region().AllocateLocal(64);
  cluster.memory_server(0).region().WriteU64(ptr.offset(), 77);

  struct Lane {
    static Task<> Go(rdma::Fabric& fabric, rdma::RemotePtr ptr,
                     uint64_t* out) {
      std::vector<uint8_t> buf(64, 0);
      const bool combined =
          (co_await fabric.CombinedRead(0, ptr, buf.data(), 64)).combined;
      EXPECT_FALSE(combined);
      std::memcpy(out, buf.data(), 8);
    }
  };
  uint64_t a = 0, b = 0;
  Spawn(cluster.simulator(), Lane::Go(cluster.fabric(), ptr, &a));
  Spawn(cluster.simulator(), Lane::Go(cluster.fabric(), ptr, &b));
  cluster.simulator().Run();
  EXPECT_EQ(a, 77u);
  EXPECT_EQ(b, 77u);
  EXPECT_EQ(cluster.fabric().metrics().Value("fabric.combined_reads"), 0u);
  // The auditor sees what combining would have saved: the second lane
  // posted a duplicate of an outstanding READ.
  ASSERT_NE(cluster.fabric().auditor(), nullptr);
  EXPECT_GT(cluster.fabric().auditor()->duplicate_inflight_reads(), 0u);
}

/// One pipelined Zipf run of the fine-grained design; returns the
/// duplicate-read count the auditor observed and the run result.
struct CombineRunOutcome {
  uint64_t duplicates = 0;
  uint64_t combined = 0;
  uint64_t ops = 0;
  uint64_t failed = 0;
};

CombineRunOutcome RunZipfPipelined(bool combining) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.read_combining = combining;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  FineGrainedIndex index(cluster, ic);
  const uint64_t keys = 10000;
  EXPECT_TRUE(index.BulkLoad(EvenKeys(keys)).ok());

  ycsb::RunConfig rc;
  rc.num_clients = 8;
  rc.pipeline_depth = 8;  // 8 lanes per client: hot pages collide in flight
  rc.mix = ycsb::WorkloadA();
  rc.dist = ycsb::RequestDistribution::kZipfian;
  rc.zipf_theta = 0.99;
  rc.warmup = kMillisecond;
  rc.duration = 10 * kMillisecond;
  const ycsb::RunResult result =
      ycsb::RunWorkload(cluster, index, keys, rc);

  CombineRunOutcome out;
  out.duplicates = cluster.fabric().auditor()
                       ? cluster.fabric().auditor()->duplicate_inflight_reads()
                       : 0;
  out.combined = result.combined_reads();
  out.ops = result.ops();
  out.failed = result.failed_ops();
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  return out;
}

TEST(ReadCombiningTest, PipelinedZipfLanesStopDuplicatingReads) {
  const CombineRunOutcome base = RunZipfPipelined(false);
  const CombineRunOutcome combined = RunZipfPipelined(true);
  // The skewed pipelined workload demonstrably duplicates in-flight reads
  // without combining...
  EXPECT_GT(base.duplicates, 0u)
      << "workload never collided — the combining assertion is vacuous";
  // ...and combining eliminates every one of them (acceptance criterion).
  EXPECT_EQ(combined.duplicates, 0u);
  EXPECT_GT(combined.combined, 0u);
  // Same workload semantics either way.
  EXPECT_EQ(base.failed, 0u);
  EXPECT_EQ(combined.failed, 0u);
  EXPECT_GT(combined.ops, 0u);
}

// ---- YCSB MultiGet loop -----------------------------------------------------

TEST(MultiGetRunnerTest, BatchedPointLoopCompletesCleanly) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = kSecond;
  ic.speculative_descent = true;
  FineGrainedIndex index(cluster, ic);
  const uint64_t keys = 10000;
  ASSERT_TRUE(index.BulkLoad(EvenKeys(keys)).ok());

  ycsb::RunConfig rc;
  rc.num_clients = 8;
  rc.multiget_batch = 8;
  rc.mix = ycsb::WorkloadC();  // 95% lookups, 5% inserts through the flush
  rc.warmup = kMillisecond;
  rc.duration = 10 * kMillisecond;
  const ycsb::RunResult result = ycsb::RunWorkload(cluster, index, keys, rc);
  EXPECT_GT(result.ops(), 0u);
  EXPECT_EQ(result.failed_ops(), 0u);
  EXPECT_GT(result.speculative_hits(), 0u);
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

}  // namespace
}  // namespace namtree::index
