// Parameterized page-size sweep through the full distributed stack: every
// design must be correct at every supported node size (the layout math,
// fences and split logic all depend on P).

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "index/inspector.h"
#include "nam/cluster.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

class PageSizeSweepTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<int, uint32_t>>& info) {
  static const char* kNames[] = {"Coarse", "Fine", "Hybrid",
                                 "CoarseOneSided"};
  return std::string(kNames[std::get<0>(info.param)]) + "_P" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndSizes, PageSizeSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(256u, 512u, 1024u, 4096u)),
    SweepName);

TEST_P(PageSizeSweepTest, EndToEndCorrectness) {
  const auto [design, page_size] = GetParam();
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig config;
  config.page_size = page_size;
  config.head_node_interval = 8;
  std::unique_ptr<DistributedIndex> index;
  switch (design) {
    case 0:
      index = std::make_unique<CoarseGrainedIndex>(cluster, config);
      break;
    case 1:
      index = std::make_unique<FineGrainedIndex>(cluster, config);
      break;
    case 2:
      index = std::make_unique<HybridIndex>(cluster, config);
      break;
    default:
      index = std::make_unique<CoarseOneSidedIndex>(cluster, config);
      break;
  }

  const uint64_t n = 8000;
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 4, i});
  ASSERT_TRUE(index->BulkLoad(data).ok());

  ClientContext ctx(0, cluster.fabric(), page_size, 1);
  struct Driver {
    static Task<> Go(DistributedIndex& index, ClientContext& ctx,
                     uint64_t n) {
      // Reads.
      for (uint64_t i = 0; i < n; i += 37) {
        const LookupResult hit = co_await index.Lookup(ctx, i * 4);
        EXPECT_TRUE(hit.found);
        EXPECT_EQ(hit.value, i);
        EXPECT_FALSE((co_await index.Lookup(ctx, i * 4 + 2)).found);
      }
      // Split-heavy inserts.
      for (uint64_t i = 0; i < n; i += 2) {
        EXPECT_TRUE((co_await index.Insert(ctx, i * 4 + 1, i)).ok());
      }
      // Deletes + GC.
      for (uint64_t i = 0; i < n; i += 4) {
        EXPECT_TRUE((co_await index.Delete(ctx, i * 4)).ok());
      }
      (void)co_await index.GarbageCollect(ctx);
      // Full scan: n - n/4 originals + n/2 inserts.
      const uint64_t count =
          co_await index.Scan(ctx, 0, btree::kInfinityKey, nullptr);
      EXPECT_EQ(count, n - n / 4 + n / 2);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(*index, ctx, n));
  cluster.simulator().Run();
}

}  // namespace
}  // namespace namtree::index
