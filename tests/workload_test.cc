// Tests for the modified-YCSB workload suite (Table 3), the data generator,
// partitioning, and the closed-loop runner.

#include <gtest/gtest.h>

#include <map>

#include "index/coarse_grained.h"
#include "index/fine_grained.h"
#include "index/partition.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::ycsb {
namespace {

using btree::KV;

TEST(WorkloadMixTest, Table3Mixes) {
  EXPECT_DOUBLE_EQ(WorkloadA().point, 1.0);
  EXPECT_DOUBLE_EQ(WorkloadB(0.01).range, 1.0);
  EXPECT_DOUBLE_EQ(WorkloadB(0.01).range_selectivity, 0.01);
  EXPECT_DOUBLE_EQ(WorkloadC().point, 0.95);
  EXPECT_DOUBLE_EQ(WorkloadC().insert, 0.05);
  EXPECT_DOUBLE_EQ(WorkloadD().point, 0.50);
  EXPECT_DOUBLE_EQ(WorkloadD().insert, 0.50);
}

TEST(DatasetTest, MonotonicKeysWithStride) {
  const auto data = GenerateDataset(1000);
  ASSERT_EQ(data.size(), 1000u);
  for (uint64_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i].key, i * kKeyStride);
    EXPECT_EQ(data[i].value, i);
  }
}

TEST(WorkloadGeneratorTest, MixFractionsRespected) {
  WorkloadGenerator gen(WorkloadC(), 10000);
  Rng rng(3);
  std::map<OpType, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[gen.Next(rng).type]++;
  EXPECT_NEAR(counts[OpType::kPoint], 0.95 * n, 0.01 * n);
  EXPECT_NEAR(counts[OpType::kInsert], 0.05 * n, 0.01 * n);
  EXPECT_EQ(counts[OpType::kRange], 0);
}

TEST(WorkloadGeneratorTest, RangeSpanMatchesSelectivity) {
  const double sel = 0.01;
  WorkloadGenerator gen(WorkloadB(sel), 100000);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Operation op = gen.Next(rng);
    ASSERT_EQ(op.type, OpType::kRange);
    EXPECT_EQ(op.hi - op.key,
              static_cast<btree::Key>(sel * 100000 * kKeyStride));
    EXPECT_LE(op.hi, gen.domain());
  }
}

TEST(WorkloadGeneratorTest, PointKeysHitDataset) {
  WorkloadGenerator gen(WorkloadA(), 5000);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Operation op = gen.Next(rng);
    EXPECT_EQ(op.key % kKeyStride, 0u) << "point keys must exist";
    EXPECT_LT(op.key, gen.domain());
  }
}

TEST(WorkloadGeneratorTest, InsertKeysLandInGaps) {
  WorkloadGenerator gen(WorkloadD(), 5000);
  Rng rng(6);
  int inserts = 0;
  for (int i = 0; i < 1000; ++i) {
    const Operation op = gen.Next(rng);
    if (op.type != OpType::kInsert) continue;
    inserts++;
    EXPECT_NE(op.key % kKeyStride, 0u) << "inserts use gap keys";
  }
  EXPECT_GT(inserts, 300);
}

TEST(WorkloadMixTest, OriginalYcsbPresets) {
  EXPECT_DOUBLE_EQ(OriginalYcsbA().point, 0.50);
  EXPECT_DOUBLE_EQ(OriginalYcsbA().update, 0.50);
  EXPECT_DOUBLE_EQ(OriginalYcsbB().point, 0.95);
  EXPECT_DOUBLE_EQ(OriginalYcsbB().update, 0.05);
}

TEST(WorkloadGeneratorTest, UpdatesTargetExistingKeys) {
  WorkloadGenerator gen(OriginalYcsbA(), 5000);
  Rng rng(8);
  int updates = 0;
  for (int i = 0; i < 2000; ++i) {
    const Operation op = gen.Next(rng);
    if (op.type != OpType::kUpdate) continue;
    updates++;
    EXPECT_EQ(op.key % kKeyStride, 0u) << "updates hit dataset keys";
  }
  EXPECT_NEAR(updates, 1000, 100);
}

TEST(WorkloadGeneratorTest, ClusteredZipfStaysAtTheLowEnd) {
  WorkloadGenerator clustered(WorkloadA(), 100000,
                              RequestDistribution::kZipfianClustered, 0.99);
  Rng rng(9);
  uint64_t low_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (clustered.Next(rng).key < 100 * kKeyStride) low_hits++;
  }
  // The hot ranks map to the smallest keys: a large share lands in the
  // first 0.1% of the key space.
  EXPECT_GT(low_hits, static_cast<uint64_t>(0.3 * n));
}

TEST(WorkloadGeneratorTest, ZipfianConcentratesRequests) {
  WorkloadGenerator uniform(WorkloadA(), 100000,
                            RequestDistribution::kUniform);
  WorkloadGenerator zipf(WorkloadA(), 100000, RequestDistribution::kZipfian,
                         0.99);
  Rng rng(7);
  std::map<btree::Key, int> ucounts;
  std::map<btree::Key, int> zcounts;
  for (int i = 0; i < 50000; ++i) {
    ucounts[uniform.Next(rng).key]++;
    zcounts[zipf.Next(rng).key]++;
  }
  int umax = 0;
  int zmax = 0;
  for (auto& [k, c] : ucounts) umax = std::max(umax, c);
  for (auto& [k, c] : zcounts) zmax = std::max(zmax, c);
  EXPECT_GT(zmax, 20 * umax) << "zipf must concentrate on hot keys";
}

// ---- Partitioner ------------------------------------------------------------

TEST(PartitionerTest, UniformRangeBoundaries) {
  const auto data = GenerateDataset(1000);
  index::Partitioner part(index::PartitionKind::kRange, 4);
  part.FitBoundaries(data, {});
  int counts[4] = {0, 0, 0, 0};
  for (const KV& kv : data) counts[part.ServerFor(kv.key)]++;
  for (int c : counts) EXPECT_NEAR(c, 250, 10);
}

TEST(PartitionerTest, SkewedWeightsFollowPaperSetup) {
  const auto data = GenerateDataset(10000);
  index::Partitioner part(index::PartitionKind::kRange, 4);
  const std::vector<double> weights = {0.80, 0.12, 0.05, 0.03};
  part.FitBoundaries(data, weights);
  int counts[4] = {0, 0, 0, 0};
  for (const KV& kv : data) counts[part.ServerFor(kv.key)]++;
  EXPECT_NEAR(counts[0], 8000, 100);
  EXPECT_NEAR(counts[1], 1200, 100);
  EXPECT_NEAR(counts[2], 500, 100);
  EXPECT_NEAR(counts[3], 300, 100);
}

TEST(PartitionerTest, HashScatterAndFanout) {
  index::Partitioner part(index::PartitionKind::kHash, 4);
  int counts[4] = {0, 0, 0, 0};
  for (uint64_t k = 0; k < 10000; ++k) counts[part.ServerFor(k * 8)]++;
  for (int c : counts) EXPECT_NEAR(c, 2500, 300);
  // Range queries must fan out to all servers.
  EXPECT_EQ(part.ServersFor(10, 20).size(), 4u);
}

TEST(PartitionerTest, RangeServersForSpansOnlyTouchedPartitions) {
  const auto data = GenerateDataset(1000);
  index::Partitioner part(index::PartitionKind::kRange, 4);
  part.FitBoundaries(data, {});
  const auto one = part.ServersFor(0, 10);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
  const auto all = part.ServersFor(0, 1000 * kKeyStride);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(part.ServersFor(5, 5).empty());
}

// ---- Runner -----------------------------------------------------------------

TEST(RunnerTest, MeasuresClosedLoopThroughput) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  nam::Cluster cluster(fc, 64ull << 20);
  index::IndexConfig ic;
  ic.page_size = 1024;
  index::CoarseGrainedIndex index(cluster, ic);
  const uint64_t keys = 20000;
  ASSERT_TRUE(index.BulkLoad(GenerateDataset(keys)).ok());

  RunConfig rc;
  rc.num_clients = 8;
  rc.warmup = 1 * kMillisecond;
  rc.duration = 10 * kMillisecond;
  rc.mix = WorkloadA();
  const RunResult result = RunWorkload(cluster, index, keys, rc);

  EXPECT_GT(result.ops(), 100u);
  EXPECT_NEAR(result.seconds, 0.010, 1e-9);
  EXPECT_GT(result.ops_per_sec, 10000.0);
  EXPECT_GT(result.latency.count(), 0u);
  EXPECT_GT(result.server_bytes, 0u);
  EXPECT_EQ(result.per_server_bytes.size(), 2u);
  EXPECT_GT(result.round_trips(), 0u);
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  auto run = [] {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    nam::Cluster cluster(fc, 64ull << 20);
    index::IndexConfig ic;
    index::FineGrainedIndex index(cluster, ic);
    const uint64_t keys = 10000;
    EXPECT_TRUE(index.BulkLoad(GenerateDataset(keys)).ok());
    RunConfig rc;
    rc.num_clients = 4;
    rc.warmup = kMillisecond;
    rc.duration = 5 * kMillisecond;
    rc.mix = WorkloadC();
    return RunWorkload(cluster, index, keys, rc);
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(a.ops(), b.ops());
  EXPECT_EQ(a.server_bytes, b.server_bytes);
  EXPECT_EQ(a.round_trips(), b.round_trips());
}

TEST(RunnerTest, OpTracingRecordsOutliersWithoutPerturbingTheRun) {
  auto run = [](bool trace) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    nam::Cluster cluster(fc, 64ull << 20);
    index::IndexConfig ic;
    index::FineGrainedIndex index(cluster, ic);
    const uint64_t keys = 10000;
    EXPECT_TRUE(index.BulkLoad(GenerateDataset(keys)).ok());
    RunConfig rc;
    rc.num_clients = 4;
    rc.warmup = kMillisecond;
    rc.duration = 5 * kMillisecond;
    rc.mix = WorkloadA();  // mutations too, so insert/update spans appear
    rc.trace_ops = trace;
    return RunWorkload(cluster, index, keys, rc);
  };
  const RunResult plain = run(false);
  const RunResult traced = run(true);

  // Tracing is pure host-side observation: virtual time and every counter
  // must be identical to the untraced run.
  EXPECT_EQ(traced.ops(), plain.ops());
  EXPECT_EQ(traced.round_trips(), plain.round_trips());
  EXPECT_EQ(traced.server_bytes, plain.server_bytes);

  EXPECT_TRUE(plain.trace_outliers.empty());
  ASSERT_FALSE(traced.trace_outliers.empty());
  // The dump names the runner's op labels and verb-level events.
  EXPECT_NE(traced.trace_outliers.find("point"), std::string::npos);
  EXPECT_NE(traced.trace_outliers.find("server="), std::string::npos);
}

TEST(RunnerTest, MoreClientsMoreThroughputUntilSaturation) {
  auto throughput = [](uint32_t clients) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    fc.workers_per_server = 2;
    nam::Cluster cluster(fc, 64ull << 20);
    index::IndexConfig ic;
    index::CoarseGrainedIndex index(cluster, ic);
    const uint64_t keys = 20000;
    EXPECT_TRUE(index.BulkLoad(GenerateDataset(keys)).ok());
    RunConfig rc;
    rc.num_clients = clients;
    rc.warmup = kMillisecond;
    rc.duration = 10 * kMillisecond;
    return RunWorkload(cluster, index, keys, rc).ops_per_sec;
  };
  const double t1 = throughput(1);
  const double t8 = throughput(8);
  const double t64 = throughput(64);
  EXPECT_GT(t8, 2 * t1) << "scaling region";
  // 64 clients on 4 workers: saturated, not collapsing.
  EXPECT_GT(t64, 0.5 * t8);
}

TEST(RunnerTest, BatchedPipelineCoalescesRpcs) {
  // pipeline_depth > 1 on a design with batched point ops: the runner
  // gathers up to `depth` ops per client into one multi-op RPC frame per
  // touched server, cutting round trips per op and amortising the server's
  // per-request overhead.
  auto run = [](uint32_t depth) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    nam::Cluster cluster(fc, 64ull << 20);
    index::IndexConfig ic;
    index::CoarseGrainedIndex index(cluster, ic);
    const uint64_t keys = 20000;
    EXPECT_TRUE(index.BulkLoad(GenerateDataset(keys)).ok());
    RunConfig rc;
    rc.num_clients = 8;
    rc.warmup = kMillisecond;
    rc.duration = 10 * kMillisecond;
    rc.mix = WorkloadC();
    rc.pipeline_depth = depth;
    return RunWorkload(cluster, index, keys, rc);
  };
  const RunResult solo = run(1);
  const RunResult batched = run(4);
  ASSERT_GT(solo.ops(), 100u);
  ASSERT_GT(batched.ops(), 100u);
  const double rt_solo =
      static_cast<double>(solo.round_trips()) / static_cast<double>(solo.ops());
  const double rt_batched = static_cast<double>(batched.round_trips()) /
                            static_cast<double>(batched.ops());
  EXPECT_LT(rt_batched, 0.75 * rt_solo)
      << "coalesced frames must cut RPC round trips per op";
  EXPECT_GT(batched.ops_per_sec, solo.ops_per_sec);
}

TEST(RunnerTest, PipelineLanesOverlapOneSidedClients) {
  // On a one-sided design (no batched point ops), pipeline_depth > 1 runs
  // extra closed-loop lanes per client so independent lookups overlap.
  auto run = [](uint32_t depth) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    nam::Cluster cluster(fc, 64ull << 20);
    index::IndexConfig ic;
    index::FineGrainedIndex index(cluster, ic);
    const uint64_t keys = 10000;
    EXPECT_TRUE(index.BulkLoad(GenerateDataset(keys)).ok());
    RunConfig rc;
    rc.num_clients = 2;
    rc.warmup = kMillisecond;
    rc.duration = 10 * kMillisecond;
    rc.mix = WorkloadC();
    rc.pipeline_depth = depth;
    return RunWorkload(cluster, index, keys, rc);
  };
  const RunResult solo = run(1);
  const RunResult piped = run(4);
  ASSERT_GT(solo.ops(), 100u);
  EXPECT_GT(piped.ops(), 2 * solo.ops())
      << "extra lanes must overlap independent lookups";
}

}  // namespace
}  // namespace namtree::ycsb
