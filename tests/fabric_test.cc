// Tests for the simulated RDMA fabric: verb semantics (READ/WRITE/CAS/FAA),
// remote pointers, memory regions, SRQ delivery, RPC round trips, and the
// cost model (latency composition, engine serialization, co-location).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nam/cluster.h"
#include "nam/memory_server.h"
#include "rdma/fabric.h"
#include "rdma/memory_region.h"
#include "rdma/remote_ptr.h"
#include "sim/task.h"

namespace namtree::rdma {
namespace {

using nam::Cluster;
using sim::Spawn;
using sim::Task;

FabricConfig TestConfig() {
  FabricConfig config;
  config.num_memory_servers = 2;
  config.workers_per_server = 2;
  return config;
}

TEST(RemotePtrTest, PackAndUnpack) {
  RemotePtr p = RemotePtr::Make(5, 123456);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(p.server_id(), 5u);
  EXPECT_EQ(p.offset(), 123456u);
  EXPECT_EQ(sizeof(p), 8u);
}

TEST(RemotePtrTest, NullIsZero) {
  RemotePtr null;
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.raw(), 0u);
  EXPECT_EQ(RemotePtr(0).raw(), RemotePtr::Null().raw());
}

TEST(RemotePtrTest, ExtremesRoundTrip) {
  RemotePtr p = RemotePtr::Make(127, RemotePtr::kOffsetMask);
  EXPECT_EQ(p.server_id(), 127u);
  EXPECT_EQ(p.offset(), RemotePtr::kOffsetMask);
  RemotePtr q = RemotePtr::Make(0, 0);
  EXPECT_FALSE(q.is_null());
  EXPECT_EQ(q.server_id(), 0u);
  EXPECT_EQ(q.offset(), 0u);
}

TEST(RemotePtrTest, PlusDisplacesWithinServer) {
  RemotePtr p = RemotePtr::Make(3, 1000);
  RemotePtr q = p.Plus(24);
  EXPECT_EQ(q.server_id(), 3u);
  EXPECT_EQ(q.offset(), 1024u);
}

TEST(MemoryRegionTest, LocalAllocationBumpsCursor) {
  MemoryRegion region(0, 1 << 20);
  const uint64_t before = region.allocated();
  RemotePtr p = region.AllocateLocal(1024);
  ASSERT_FALSE(p.is_null());
  EXPECT_EQ(p.offset(), before);
  EXPECT_EQ(region.allocated(), before + 1024);
}

TEST(MemoryRegionTest, ExhaustionReturnsNull) {
  MemoryRegion region(0, 4096);
  RemotePtr p = region.AllocateLocal(8192);
  EXPECT_TRUE(p.is_null());
}

Task<> DoReadWrite(Fabric& fabric, RemotePtr ptr, bool* ok) {
  uint64_t value = 0xDEADBEEFCAFEF00Dull;
  co_await fabric.Write(0, ptr, &value, sizeof(value));
  uint64_t readback = 0;
  co_await fabric.Read(0, ptr, &readback, sizeof(readback));
  *ok = (readback == value);
}

TEST(FabricTest, WriteThenReadRoundTrips) {
  Cluster cluster(TestConfig(), 1 << 20);
  RemotePtr ptr = cluster.memory_server(1).region().AllocateLocal(64);
  bool ok = false;
  Spawn(cluster.simulator(), DoReadWrite(cluster.fabric(), ptr, &ok));
  cluster.simulator().Run();
  EXPECT_TRUE(ok);
}

Task<> DoCas(Fabric& fabric, RemotePtr ptr, std::vector<uint64_t>* results) {
  results->push_back((co_await fabric.CompareAndSwap(0, ptr, 0, 111)).value);
  results->push_back((co_await fabric.CompareAndSwap(0, ptr, 0, 222)).value);
  results->push_back((co_await fabric.CompareAndSwap(0, ptr, 111, 333)).value);
}

TEST(FabricTest, CompareAndSwapSemantics) {
  Cluster cluster(TestConfig(), 1 << 20);
  RemotePtr ptr = cluster.memory_server(0).region().AllocateLocal(8);
  std::vector<uint64_t> results;
  Spawn(cluster.simulator(), DoCas(cluster.fabric(), ptr, &results));
  cluster.simulator().Run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 0u);    // swap succeeded
  EXPECT_EQ(results[1], 111u);  // failed: returns current
  EXPECT_EQ(results[2], 111u);  // swap succeeded again
  EXPECT_EQ(cluster.memory_server(0).region().ReadU64(ptr.offset()), 333u);
}

Task<> DoFaa(Fabric& fabric, RemotePtr ptr, uint32_t client, int n) {
  for (int i = 0; i < n; ++i) {
    co_await fabric.FetchAndAdd(client, ptr, 1);
  }
}

TEST(FabricTest, ConcurrentFetchAndAddIsAtomic) {
  Cluster cluster(TestConfig(), 1 << 20);
  cluster.fabric().SetNumClients(4);
  RemotePtr ptr = cluster.memory_server(0).region().AllocateLocal(8);
  for (uint32_t c = 0; c < 4; ++c) {
    Spawn(cluster.simulator(), DoFaa(cluster.fabric(), ptr, c, 25));
  }
  cluster.simulator().Run();
  EXPECT_EQ(cluster.memory_server(0).region().ReadU64(ptr.offset()), 100u);
}

// Remote allocation via FETCH_AND_ADD on the region's allocation cursor
// (the paper's RDMA_ALLOC).
Task<> RemoteAlloc(Fabric& fabric, uint32_t client, uint32_t server,
                   uint64_t bytes, std::vector<uint64_t>* offsets) {
  RemotePtr cursor =
      RemotePtr::Make(server, MemoryRegion::kAllocCursorOffset);
  const uint64_t offset =
      (co_await fabric.FetchAndAdd(client, cursor, bytes)).value;
  offsets->push_back(offset);
}

TEST(FabricTest, RemoteAllocationYieldsDisjointPages) {
  Cluster cluster(TestConfig(), 1 << 20);
  cluster.fabric().SetNumClients(8);
  std::vector<uint64_t> offsets;
  for (uint32_t c = 0; c < 8; ++c) {
    Spawn(cluster.simulator(),
          RemoteAlloc(cluster.fabric(), c, 0, 1024, &offsets));
  }
  cluster.simulator().Run();
  ASSERT_EQ(offsets.size(), 8u);
  std::sort(offsets.begin(), offsets.end());
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i] - offsets[i - 1], 1024u) << "overlapping pages";
  }
}

Task<> MeasuredRead(Fabric& fabric, RemotePtr ptr, uint32_t len,
                    SimTime* latency) {
  std::vector<uint8_t> buf(len);
  const SimTime start = fabric.simulator().now();
  co_await fabric.Read(0, ptr, buf.data(), len);
  *latency = fabric.simulator().now() - start;
}

TEST(FabricTest, ReadLatencyMatchesCostModel) {
  FabricConfig config = TestConfig();
  Cluster cluster(config, 1 << 20);
  RemotePtr ptr = cluster.memory_server(0).region().AllocateLocal(1024);
  SimTime latency = 0;
  Spawn(cluster.simulator(),
        MeasuredRead(cluster.fabric(), ptr, 1024, &latency));
  cluster.simulator().Run();
  // post + request wire + engine + payload + response wire (+ link time of
  // the 16-byte request, a few ns).
  const SimTime payload =
      static_cast<SimTime>(1024 / (config.link_bandwidth_bytes_per_sec / 1e9));
  const SimTime expected_min = config.nic_post_ns + 2 * config.wire_latency_ns +
                               config.onesided_engine_ns + payload;
  EXPECT_GE(latency, expected_min);
  EXPECT_LE(latency, expected_min + 100);
}

TEST(FabricTest, EngineSerializesConcurrentReadsToOneServer) {
  FabricConfig config = TestConfig();
  Cluster cluster(config, 1 << 20);
  cluster.fabric().SetNumClients(8);
  RemotePtr ptr = cluster.memory_server(0).region().AllocateLocal(1024);
  // 8 concurrent 1KB reads from different clients to the same server: the
  // engine (1 op at a time) makes total time ~ 8 * engine occupancy.
  struct Runner {
    static Task<> Read(Fabric& fabric, uint32_t client, RemotePtr ptr) {
      std::vector<uint8_t> buf(1024);
      co_await fabric.Read(client, ptr, buf.data(), 1024);
    }
  };
  for (uint32_t c = 0; c < 8; ++c) {
    Spawn(cluster.simulator(), Runner::Read(cluster.fabric(), c, ptr));
  }
  const SimTime end = cluster.simulator().Run();
  EXPECT_GE(end, 8 * config.onesided_engine_ns);
  const auto stats = cluster.fabric().server_stats(0);
  EXPECT_EQ(stats.tx_bytes, 8u * 1024u);
}

// ---- Two-sided RPC ----------------------------------------------------------

Task<> EchoHandler(nam::MemoryServer& server, IncomingRpc rpc) {
  co_await sim::Delay(server.fabric().simulator(), server.RequestOverhead());
  RpcResponse resp;
  resp.status = 0;
  resp.arg0 = rpc.request.arg0 + 1;
  resp.payload = rpc.request.payload;
  server.fabric().Respond(server.server_id(), rpc, std::move(resp));
}

Task<> CallEcho(Fabric& fabric, uint32_t client, uint32_t server,
                uint64_t arg, std::vector<uint64_t>* replies) {
  RpcRequest req;
  req.op = 7;
  req.arg0 = arg;
  RpcResponse resp = co_await fabric.Call(client, server, std::move(req));
  replies->push_back(resp.arg0);
}

TEST(RpcTest, EchoRoundTrip) {
  Cluster cluster(TestConfig(), 1 << 20);
  cluster.fabric().SetNumClients(1);
  cluster.memory_server(0).Start(EchoHandler);
  std::vector<uint64_t> replies;
  Spawn(cluster.simulator(),
        CallEcho(cluster.fabric(), 0, 0, 41, &replies));
  cluster.simulator().Run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0], 42u);
}

TEST(RpcTest, WorkerPoolBoundsConcurrency) {
  // With 2 workers and a fixed handler cost, 10 requests take ~5 waves.
  FabricConfig config = TestConfig();
  config.per_client_poll_ns = 0;
  config.qpi_penalty = 1.0;
  Cluster cluster(config, 1 << 20);
  cluster.fabric().SetNumClients(10);
  cluster.memory_server(0).Start(EchoHandler);
  std::vector<uint64_t> replies;
  for (uint32_t c = 0; c < 10; ++c) {
    Spawn(cluster.simulator(), CallEcho(cluster.fabric(), c, 0, c, &replies));
  }
  const SimTime end = cluster.simulator().Run();
  EXPECT_EQ(replies.size(), 10u);
  EXPECT_GE(end, 5 * config.rpc_fixed_ns);  // waves serialized on 2 workers
  EXPECT_EQ(cluster.memory_server(0).requests_handled(), 10u);
}

TEST(RpcTest, RequestsToDistinctServersRunInParallel) {
  FabricConfig config = TestConfig();
  config.per_client_poll_ns = 0;
  config.qpi_penalty = 1.0;
  Cluster cluster(config, 1 << 20);
  cluster.fabric().SetNumClients(2);
  cluster.memory_server(0).Start(EchoHandler);
  cluster.memory_server(1).Start(EchoHandler);
  std::vector<uint64_t> replies;
  Spawn(cluster.simulator(), CallEcho(cluster.fabric(), 0, 0, 1, &replies));
  Spawn(cluster.simulator(), CallEcho(cluster.fabric(), 1, 1, 2, &replies));
  const SimTime end = cluster.simulator().Run();
  EXPECT_EQ(replies.size(), 2u);
  // Both finish in about one RPC latency (they do not share a server).
  EXPECT_LT(end, 2 * (config.rpc_fixed_ns + 2 * config.wire_latency_ns) + 4000);
}

// ---- Batched (selectively signaled) reads -----------------------------------

Task<> BatchRead(Fabric& fabric, std::vector<Fabric::ReadRequest> reqs,
                 SimTime* latency) {
  const SimTime start = fabric.simulator().now();
  co_await fabric.ReadBatch(0, std::move(reqs));
  *latency = fabric.simulator().now() - start;
}

TEST(FabricTest, BatchedReadsAreCheaperThanSequentialReads) {
  FabricConfig config = TestConfig();
  Cluster cluster(config, 1 << 20);
  auto& region = cluster.memory_server(0).region();
  std::vector<Fabric::ReadRequest> reqs;
  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(1024));
  for (int i = 0; i < 8; ++i) {
    RemotePtr p = region.AllocateLocal(1024);
    region.WriteU64(p.offset(), 1000 + i);
    reqs.push_back({p, bufs[i].data(), 1024});
  }
  SimTime batch_latency = 0;
  Spawn(cluster.simulator(),
        BatchRead(cluster.fabric(), reqs, &batch_latency));
  cluster.simulator().Run();
  // Contents arrived.
  for (int i = 0; i < 8; ++i) {
    uint64_t v;
    std::memcpy(&v, bufs[i].data(), 8);
    EXPECT_EQ(v, 1000u + i);
  }
  // The batch pipelines: far cheaper than 8 full round trips.
  const SimTime sequential = 8 * (config.nic_post_ns +
                                  2 * config.wire_latency_ns +
                                  config.onesided_engine_ns);
  EXPECT_LT(batch_latency, sequential);
}

// ---- Co-location -------------------------------------------------------------

TEST(FabricTest, ColocatedAccessSkipsTheWire) {
  FabricConfig config = TestConfig();
  config.colocate = true;
  config.memory_servers_per_machine = 1;
  config.clients_per_compute_machine = 40;
  Cluster cluster(config, 1 << 20);
  RemotePtr ptr = cluster.memory_server(0).region().AllocateLocal(1024);

  SimTime local_latency = 0;
  // Client 0 lives on compute machine 0 == memory machine 0.
  Spawn(cluster.simulator(),
        MeasuredRead(cluster.fabric(), ptr, 1024, &local_latency));
  cluster.simulator().Run();
  EXPECT_LT(local_latency, config.wire_latency_ns);
  EXPECT_TRUE(cluster.fabric().IsLocal(0, 0));
  EXPECT_FALSE(cluster.fabric().IsLocal(0, 1));
}

}  // namespace
}  // namespace namtree::rdma
