// Flaky-network fault-domain tests (docs/fault_model.md §8): under seeded
// lossy/dup/delayed verb injection every design must stay exactly correct —
// a differential replay against a std::multimap must match on all 8
// schedule seeds with a clean verb audit and no exhausted retry budgets —
// and the targeted ambiguity cases must resolve the way the protocol
// documents: a lost-but-landed lock CAS is claimed via the holder-stamp
// read-back, a lost unlock FAA is never double-released, a duplicated
// release FAA trips the auditor, and a partitioned link surfaces kTimedOut
// (distinct from the kUnavailable of a dead server) until it heals.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "btree/page.h"
#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "index/inspector.h"
#include "index/leaf_level.h"
#include "index/remote_ops.h"
#include "nam/cluster.h"
#include "rdma/audit.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using btree::PageView;
using btree::Value;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

constexpr uint32_t kPage = 256;

// The acceptance-gate fault rates: 1% drops, 0.5% duplicates, delay spikes.
rdma::FabricConfig FlakyConfig(uint64_t seed) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.drop_prob = 0.01;
  fc.dup_prob = 0.005;
  fc.delay_jitter_ns = 2 * kMicrosecond;
  fc.net_fault_seed = 0x51ED270Bu + seed;
  fc.schedule_seed = seed;  // 0 = legacy FIFO tie-break, others permute
  // Generous RPC resend budget: the differential replay asserts that no
  // operation fails, so the per-call loss probability must be negligible.
  fc.rpc_max_retries = 6;
  return fc;
}

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

struct Op {
  enum Kind { kInsert, kDelete, kLookup, kScan, kUpdate } kind;
  Key key = 0;
  Key hi = 0;
  Value value = 0;
};

std::vector<Op> MakeTrace(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Op> trace;
  for (int i = 0; i < n; ++i) {
    Op op;
    const double a = rng.NextDouble();
    op.key = rng.NextBelow(3000);
    if (a < 0.35) {
      op.kind = Op::kInsert;
      op.value = rng.Next() >> 1;
    } else if (a < 0.50) {
      op.kind = Op::kDelete;
    } else if (a < 0.60) {
      op.kind = Op::kUpdate;
      op.value = rng.Next() >> 1;
    } else if (a < 0.85) {
      op.kind = Op::kLookup;
    } else {
      op.kind = Op::kScan;
      op.hi = op.key + 1 + rng.NextBelow(150);
    }
    trace.push_back(op);
  }
  return trace;
}

// Replays the trace against the index and a multimap model: every result
// must match exactly — a flaky fabric may slow operations down, never
// corrupt them or make them lie. Takes the trace by value: the caller
// hands in a temporary that would die before the coroutine first resumes.
Task<> Replay(DistributedIndex& index, ClientContext& ctx,
              std::vector<KV> loaded, std::vector<Op> trace) {
  std::multimap<Key, Value> model;
  for (const KV& kv : loaded) model.emplace(kv.key, kv.value);
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::kInsert: {
        EXPECT_TRUE((co_await index.Insert(ctx, op.key, op.value)).ok());
        model.emplace(op.key, op.value);
        break;
      }
      case Op::kDelete: {
        const bool deleted = (co_await index.Delete(ctx, op.key)).ok();
        auto it = model.lower_bound(op.key);
        const bool exists = it != model.end() && it->first == op.key;
        EXPECT_EQ(deleted, exists) << "delete(" << op.key << ")";
        if (exists) model.erase(it);
        break;
      }
      case Op::kUpdate: {
        const Status s = co_await index.Update(ctx, op.key, op.value);
        auto it = model.lower_bound(op.key);
        const bool exists = it != model.end() && it->first == op.key;
        EXPECT_EQ(s.ok(), exists) << "update(" << op.key << ")";
        if (exists) it->second = op.value;
        break;
      }
      case Op::kLookup: {
        const LookupResult r = co_await index.Lookup(ctx, op.key);
        EXPECT_TRUE(r.status.ok()) << r.status.ToString();
        EXPECT_EQ(r.found, model.count(op.key) > 0)
            << "lookup(" << op.key << ") on " << index.name();
        if (r.found) {
          bool matches = false;
          for (auto [it, end] = model.equal_range(op.key); it != end; ++it) {
            matches |= (it->second == r.value);
          }
          EXPECT_TRUE(matches) << "lookup(" << op.key << ") stale value";
        }
        break;
      }
      case Op::kScan: {
        Status status;
        const uint64_t n =
            co_await index.Scan(ctx, op.key, op.hi, nullptr, &status);
        EXPECT_TRUE(status.ok()) << status.ToString();
        const uint64_t expected = static_cast<uint64_t>(std::distance(
            model.lower_bound(op.key), model.lower_bound(op.hi)));
        EXPECT_EQ(n, expected)
            << "scan[" << op.key << ", " << op.hi << ") on " << index.name();
        break;
      }
    }
  }
}

template <typename Index>
void RunFlakyDifferential(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Cluster cluster(FlakyConfig(seed), 64 << 20);
  IndexConfig config;
  config.page_size = kPage;
  config.head_node_interval = 4;
  Index index(cluster, config);
  const uint64_t keys = 1500;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());

  ClientContext ctx(0, cluster.fabric(), kPage, seed + 1);
  Spawn(cluster.simulator(),
        Replay(index, ctx, MakeData(keys), MakeTrace(seed * 7 + 1, 300)));
  cluster.simulator().Run();

  // Zero sanctioned-shape violations: every lost atomic must have been
  // resolved by a read-back before any re-post.
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  // No retry budget may run dry at these fault rates (the acceptance gate).
  EXPECT_EQ(cluster.fabric().metrics().Value("retry.exhausted"), 0u);
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

template <typename Index>
void RunFlakyDifferentialMatrix() {
  for (uint64_t seed = 0; seed < 8; ++seed) RunFlakyDifferential<Index>(seed);
}

TEST(FlakyNetDifferentialTest, FineGrainedExactOnAllSeeds) {
  RunFlakyDifferentialMatrix<FineGrainedIndex>();
}

TEST(FlakyNetDifferentialTest, HybridExactOnAllSeeds) {
  RunFlakyDifferentialMatrix<HybridIndex>();
}

TEST(FlakyNetDifferentialTest, CoarseGrainedExactOnAllSeeds) {
  RunFlakyDifferentialMatrix<CoarseGrainedIndex>();
}

TEST(FlakyNetDifferentialTest, CoarseOneSidedExactOnAllSeeds) {
  RunFlakyDifferentialMatrix<CoarseOneSidedIndex>();
}

// Multi-client YCSB under the same fault rates: progress, clean audit,
// structural soundness, and zero exhausted retry budgets.
template <typename Index>
void RunFlakyYcsb(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Cluster cluster(FlakyConfig(seed), 64 << 20);
  IndexConfig config;
  config.page_size = kPage;
  config.head_node_interval = 4;
  Index index(cluster, config);
  const uint64_t keys = 2000;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());

  ycsb::RunConfig run;
  run.num_clients = 8;
  run.warmup = 0;
  run.duration = 8 * kMillisecond;
  run.seed = seed;
  ycsb::WorkloadMix mix;
  mix.point = 0.35;
  mix.range = 0.10;
  mix.insert = 0.30;
  mix.update = 0.15;
  mix.remove = 0.10;
  mix.range_selectivity = 0.01;
  run.mix = mix;
  const auto result = ycsb::RunWorkload(cluster, index, keys, run);

  EXPECT_GT(result.ops(), 100u);
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  EXPECT_EQ(cluster.fabric().metrics().Value("retry.exhausted"), 0u);
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(FlakyNetYcsbTest, FineGrainedSurvives) {
  RunFlakyYcsb<FineGrainedIndex>(3);
  RunFlakyYcsb<FineGrainedIndex>(7);
}

TEST(FlakyNetYcsbTest, HybridSurvives) {
  RunFlakyYcsb<HybridIndex>(3);
  RunFlakyYcsb<HybridIndex>(7);
}

TEST(FlakyNetYcsbTest, CoarseGrainedSurvives) {
  RunFlakyYcsb<CoarseGrainedIndex>(3);
  RunFlakyYcsb<CoarseGrainedIndex>(7);
}

TEST(FlakyNetYcsbTest, CoarseOneSidedSurvives) {
  RunFlakyYcsb<CoarseOneSidedIndex>(3);
  RunFlakyYcsb<CoarseOneSidedIndex>(7);
}

}  // namespace
}  // namespace namtree::index

// ---- Targeted ambiguity resolution --------------------------------------

namespace namtree::index {
namespace {

using btree::IsLocked;
using btree::PageView;
using btree::VersionOf;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

using Kind = rdma::FabricConfig::VerbFaultPoint::Kind;

// One leaf page on server 0; verb post-order of the driver below:
//   #0 READ (LockPage's unlocked read)   #1 CAS (lock acquire)
//   unchained unlock: #2 page WRITE      #3 FAA (release)
// chained unlock: #2 is the whole {page WRITE, unlock WRITE} doorbell.
struct AmbiguityRig {
  explicit AmbiguityRig(rdma::FabricConfig fc) : cluster(fc, 1 << 20) {
    ptr = cluster.memory_server(0).region().AllocateLocal(kPage);
    PageView view(cluster.memory_server(0).region().at(ptr.offset()), kPage);
    view.InitLeaf(btree::kInfinityKey, 0);
  }

  static rdma::FabricConfig Config() {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    return fc;
  }

  PageView RemoteView() {
    return PageView(cluster.memory_server(0).region().at(ptr.offset()),
                    kPage);
  }

  Cluster cluster;
  rdma::RemotePtr ptr;
};

Task<> LockInsertUnlock(RemoteOps ops, rdma::RemotePtr ptr) {
  uint8_t* buf = ops.ctx().page_a();
  EXPECT_TRUE((co_await ops.LockPage(ptr, buf)).ok());
  PageView view(buf, kPage);
  EXPECT_TRUE(view.LeafInsert(7, 70));
  EXPECT_TRUE((co_await ops.WriteUnlockPage(ptr, buf)).ok());
}

TEST(FlakyAmbiguityTest, LostButLandedLockCasClaimedViaStampReadBack) {
  // The CAS executes but its completion is dropped: the holder-stamp
  // read-back must prove the swap landed, so the client owns the lock
  // without re-posting the CAS (a blind re-CAS of its own locked word is
  // the audited anti-pattern).
  auto fc = AmbiguityRig::Config();
  fc.verb_fault_points = {{0, 1, Kind::kDropCompletion}};
  AmbiguityRig rig(fc);
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  Spawn(rig.cluster.simulator(), LockInsertUnlock(RemoteOps(ctx), rig.ptr));
  rig.cluster.simulator().Run();

  PageView view = rig.RemoteView();
  EXPECT_FALSE(IsLocked(view.version_word()));
  EXPECT_EQ(VersionOf(view.version_word()), 2u);  // one lock/unlock cycle
  EXPECT_EQ(view.count(), 1u);
  EXPECT_EQ(rig.cluster.fabric().metrics().Value(
                "fabric.net.dropped_completions"),
            1u);
  EXPECT_TRUE(rig.cluster.fabric().CheckAuditClean().ok())
      << rig.cluster.fabric().CheckAuditClean().ToString();
}

TEST(FlakyAmbiguityTest, LostUnlockFaaCompletionNotDoubleReleased) {
  // The release FAA lands but its pre-image is lost: the version-word
  // read-back shows the lock already released, so the client must NOT add
  // again (a second +1 would corrupt the version protocol).
  auto fc = AmbiguityRig::Config();
  fc.verb_chaining = false;
  fc.verb_fault_points = {{0, 3, Kind::kDropCompletion}};
  AmbiguityRig rig(fc);
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  Spawn(rig.cluster.simulator(), LockInsertUnlock(RemoteOps(ctx), rig.ptr));
  rig.cluster.simulator().Run();

  PageView view = rig.RemoteView();
  EXPECT_FALSE(IsLocked(view.version_word()));
  EXPECT_EQ(VersionOf(view.version_word()), 2u)
      << "the lost-completion FAA was re-posted despite having landed";
  EXPECT_EQ(view.count(), 1u);
  EXPECT_TRUE(rig.cluster.fabric().CheckAuditClean().ok())
      << rig.cluster.fabric().CheckAuditClean().ToString();
}

TEST(FlakyAmbiguityTest, DroppedUnlockFaaVerbIsRepostedAfterReadBack) {
  // The release FAA never reaches the NIC: the read-back shows the word
  // still locked by us, sanctioning exactly one re-post.
  auto fc = AmbiguityRig::Config();
  fc.verb_chaining = false;
  fc.verb_fault_points = {{0, 3, Kind::kDropVerb}};
  AmbiguityRig rig(fc);
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  Spawn(rig.cluster.simulator(), LockInsertUnlock(RemoteOps(ctx), rig.ptr));
  rig.cluster.simulator().Run();

  PageView view = rig.RemoteView();
  EXPECT_FALSE(IsLocked(view.version_word()));
  EXPECT_EQ(VersionOf(view.version_word()), 2u);
  EXPECT_EQ(view.count(), 1u);
  EXPECT_GE(ctx.verb_retry_attempts, 1u) << "the lost FAA was never re-posted";
  EXPECT_TRUE(rig.cluster.fabric().CheckAuditClean().ok())
      << rig.cluster.fabric().CheckAuditClean().ToString();
}

TEST(FlakyAmbiguityTest, UnsanctionedDuplicateReleaseFaaTripsAuditor) {
  // A forced NIC-level duplicate of the release FAA adds twice: the second
  // effect is a release without a matching lock and the auditor must flag
  // it (FAA duplication is exactly what the retry discipline exists to
  // avoid — this pins the detector that keeps everyone honest).
  auto fc = AmbiguityRig::Config();
  fc.verb_chaining = false;
  fc.verb_fault_points = {{0, 3, Kind::kDuplicate}};
  AmbiguityRig rig(fc);
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  Spawn(rig.cluster.simulator(), LockInsertUnlock(RemoteOps(ctx), rig.ptr));
  rig.cluster.simulator().Run();

  EXPECT_EQ(rig.cluster.fabric().metrics().Value("fabric.net.duplicates"),
            1u);
  EXPECT_FALSE(rig.cluster.fabric().CheckAuditClean().ok())
      << "a duplicated release FAA must be reported as a violation";
}

Task<> ReadThroughPartition(RemoteOps ops, rdma::RemotePtr ptr,
                            Status* first, Status* second) {
  uint8_t* buf = ops.ctx().page_a();
  *first = co_await ops.ReadPage(ptr, buf);
  ops.fabric().HealLink(ops.ctx().client_id(), ptr.server_id());
  *second = co_await ops.ReadPage(ptr, buf);
}

TEST(FlakyPartitionTest, PartitionedLinkTimesOutThenHeals) {
  // A severed (client, server) link drops every verb: the bounded verb
  // budget must surface kTimedOut — not kUnavailable, the server is alive —
  // and the link must work again after HealLink.
  AmbiguityRig rig(AmbiguityRig::Config());
  rig.cluster.fabric().PartitionLink(0, 0);
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  Status first;
  Status second;
  Spawn(rig.cluster.simulator(),
        ReadThroughPartition(RemoteOps(ctx), rig.ptr, &first, &second));
  rig.cluster.simulator().Run();

  EXPECT_TRUE(first.IsTimedOut()) << first.ToString();
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_GE(rig.cluster.fabric().metrics().Value(
                "fabric.net.partitioned_drops"),
            8u);
  EXPECT_EQ(rig.cluster.fabric().metrics().Value("retry.exhausted", "domain",
                                                 "verb"),
            1u);
}

// ---- Scan degraded-status reporting (satellite: kTimedOut vs
// kUnavailable through LookupResult-style status out-params) --------------

Task<> ScanWithStatus(RemoteOps ops, rdma::RemotePtr first, uint64_t* count,
                      Status* status) {
  *count = co_await LeafLevel::ScanChain(ops, first, 0, btree::kInfinityKey,
                                         nullptr, status);
}

struct ChainRig {
  ChainRig() : cluster(Config(), 16 << 20) {
    IndexConfig config;
    config.page_size = kPage;
    config.head_node_interval = 0;
    std::vector<btree::KV> data;
    for (uint64_t i = 0; i < 500; ++i) data.push_back({i * 2, i});
    EXPECT_TRUE(
        LeafLevel::Build(cluster.fabric(), data, config, &built).ok());
  }

  static rdma::FabricConfig Config() {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    return fc;
  }

  Cluster cluster;
  LeafLevel::BuildResult built;
};

TEST(FlakyScanStatusTest, PartitionedChainReportsTimedOut) {
  // The chain alternates servers 0/1; severing the link to server 1 makes
  // the scan truncate with kTimedOut (the server is alive, the path isn't).
  ChainRig rig;
  rig.cluster.fabric().PartitionLink(0, 1);
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  uint64_t count = 0;
  Status status;
  Spawn(rig.cluster.simulator(),
        ScanWithStatus(RemoteOps(ctx), rig.built.first, &count, &status));
  rig.cluster.simulator().Run();

  EXPECT_TRUE(status.IsTimedOut()) << status.ToString();
  EXPECT_LT(count, 500u);
}

TEST(FlakyScanStatusTest, DeadServerChainReportsUnavailable) {
  // A crashed server (R=1, no replica to promote) truncates the same scan
  // with kUnavailable — the FailureBreakdown distinction under test.
  ChainRig rig;
  rig.cluster.fabric().KillServer(1);
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  uint64_t count = 0;
  Status status;
  Spawn(rig.cluster.simulator(),
        ScanWithStatus(RemoteOps(ctx), rig.built.first, &count, &status));
  rig.cluster.simulator().Run();

  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_LT(count, 500u);
}

TEST(FlakyScanStatusTest, CleanScanReportsOk) {
  ChainRig rig;
  ClientContext ctx(0, rig.cluster.fabric(), kPage, 1);
  uint64_t count = 0;
  Status status = Status::Unavailable("never set");
  Spawn(rig.cluster.simulator(),
        ScanWithStatus(RemoteOps(ctx), rig.built.first, &count, &status));
  rig.cluster.simulator().Run();

  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(count, 500u);
}

}  // namespace
}  // namespace namtree::index
